#![forbid(unsafe_code)]
//! # greenla
//!
//! Energy-consumption comparison of parallel linear-system solvers on a
//! simulated HPC infrastructure — a Rust reproduction of Montebugnoli &
//! Ciampolini, *"Energy consumption comparison of parallel linear systems
//! solver algorithms on HPC infrastructure"* (SC-W 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`linalg`] — dense matrices, mini-BLAS, generators, system file I/O;
//! * [`cluster`] — the simulated Marconi-A3-like hardware: nodes, sockets,
//!   Slurm-style placement (the paper's Table 1), power model;
//! * [`mpi`] — the virtual-time MPI runtime (rank threads, communicators,
//!   collectives, traffic accounting);
//! * [`rapl`] — simulated RAPL MSRs (units, 32-bit wrap, ~1 ms updates);
//! * [`papi`] — the PAPI-like counter API with the powercap component;
//! * [`monitor`] — the paper's white-box per-node monitoring framework;
//! * [`ime`] — the Inhibition Method (sequential, parallel, fault-tolerant);
//! * [`scalapack`] — ScaLAPACK-lite distributed LU with partial pivoting;
//! * [`model`] — calibrated analytic models for paper-scale extrapolation;
//! * [`harness`] — the experiment harness regenerating every table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use greenla::cluster::{placement::{LoadLayout, Placement}, spec::ClusterSpec, PowerModel};
//! use greenla::linalg::generate;
//! use greenla::monitor::{monitoring::MonitorConfig, protocol::monitored_run};
//! use greenla::mpi::Machine;
//! use greenla::rapl::RaplSim;
//! use std::sync::Arc;
//!
//! // A 2-node simulated cluster, 8 ranks, full load.
//! let spec = ClusterSpec::test_cluster(2, 4);
//! let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
//! let power = PowerModel::scaled_for(&spec.node);
//! let machine = Machine::new(spec, placement, power, 1).unwrap();
//! let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 1));
//!
//! let sys = generate::diag_dominant(64, 42);
//! let out = machine.run(|ctx| {
//!     let world = ctx.world();
//!     monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
//!         greenla::ime::solve_imep(ctx, &world, &sys, Default::default()).unwrap()
//!     })
//!     .unwrap()
//!     .report
//! });
//! let reports: Vec<_> = out.results.into_iter().flatten().collect();
//! assert_eq!(reports.len(), 2); // one monitoring rank per node
//! ```

pub use greenla_cluster as cluster;
pub use greenla_harness as harness;
pub use greenla_ime as ime;
pub use greenla_linalg as linalg;
pub use greenla_model as model;
pub use greenla_monitor as monitor;
pub use greenla_mpi as mpi;
pub use greenla_papi as papi;
pub use greenla_rapl as rapl;
pub use greenla_scalapack as scalapack;
