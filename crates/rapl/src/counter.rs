//! Energy-status counter behaviour: unit conversion, 32-bit wrap-around and
//! ~1 ms update quantisation.

/// Counters are updated "approximately once a millisecond (due to jitter)"
/// (paper §2.3). We quantise reads onto a 1 ms grid shifted by a per-domain
/// phase, so immediate re-reads can observe an unchanged value.
pub const UPDATE_PERIOD_S: f64 = 1.0e-3;

/// Quantise a read at time `t` to the last counter-update instant, given the
/// domain's phase offset in `[0, UPDATE_PERIOD_S)`.
pub fn quantize_read_time(t: f64, phase: f64) -> f64 {
    debug_assert!((0.0..UPDATE_PERIOD_S).contains(&phase));
    if t <= phase {
        return 0.0;
    }
    let ticks = ((t - phase) / UPDATE_PERIOD_S).floor();
    (ticks * UPDATE_PERIOD_S + phase).max(0.0)
}

/// Convert cumulative joules into a wrapped 32-bit count in the given energy
/// unit.
pub fn joules_to_count(joules: f64, unit_j: f64) -> u64 {
    debug_assert!(joules >= 0.0 && unit_j > 0.0);
    let counts = (joules / unit_j) as u128;
    (counts % (1u128 << 32)) as u64
}

/// Reconstruct the energy delta between two wrapped counter reads
/// (`later` read after `earlier`) — the correction every RAPL consumer
/// must apply.
///
/// **Single-wrap assumption.** Two reads of a 32-bit counter are
/// ambiguous modulo the wrap range (≈ 262144 J at the 2⁻¹⁴ J package
/// unit): this function assumes *at most one* wrap happened between them,
/// which holds whenever the sampling interval is shorter than
/// `range / power` (~ half an hour at 150 W). A misbehaving counter — or
/// a wrap-storm fault — can cross the range several times between reads;
/// use [`delta_joules_with_hint`] with an independent energy estimate to
/// disambiguate those.
pub fn delta_joules(earlier: u64, later: u64, unit_j: f64) -> f64 {
    let diff = if later >= earlier {
        later - earlier
    } else {
        later + (1u64 << 32) - earlier
    };
    diff as f64 * unit_j
}

/// The full span of a 32-bit counter in joules (the wrap period).
pub fn wrap_range_j(unit_j: f64) -> f64 {
    unit_j * (1u64 << 32) as f64
}

/// Reconstruct the energy delta between two wrapped reads when *multiple*
/// wraps may have occurred, using `expected_j` — an independent estimate
/// of the energy consumed between the reads (power model × elapsed time,
/// nominal TDP × interval, …) — to pick the number of extra wraps.
///
/// The counter pins the delta modulo the wrap range; the hint selects the
/// congruent value closest to the expectation. The result is exact (up to
/// one counter unit) whenever the hint is within half a wrap range
/// (≈ ±131072 J for the package domain) of the true delta.
pub fn delta_joules_with_hint(earlier: u64, later: u64, unit_j: f64, expected_j: f64) -> f64 {
    let base = delta_joules(earlier, later, unit_j); // in [0, range)
    let range = wrap_range_j(unit_j);
    let extra_wraps = ((expected_j - base) / range).round().max(0.0);
    base + extra_wraps * range
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_steps() {
        let phase = 0.0002;
        // Just before the first update instant → 0.
        assert_eq!(quantize_read_time(0.0001, phase), 0.0);
        // Right after an update.
        let q = quantize_read_time(0.00121, phase);
        assert!((q - 0.0012).abs() < 1e-12);
        // Two reads within one period see the same instant.
        let a = quantize_read_time(0.00540, 0.0);
        let b = quantize_read_time(0.00599, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn wrap_around() {
        let unit = 6.103515625e-5; // 2^-14 J
        let range = unit * 4.294967296e9; // 2^32 counts ≈ 262144 J
        let just_under = range - unit;
        let just_over = range + unit;
        let c_under = joules_to_count(just_under, unit);
        let c_over = joules_to_count(just_over, unit);
        assert_eq!(c_under, (1u64 << 32) - 1);
        assert_eq!(c_over, 1);
    }

    #[test]
    fn delta_handles_single_wrap() {
        let unit = 2.0f64.powi(-14);
        let e1 = 262_100.0; // J, near wrap (range ≈ 262144 J)
        let e2 = 262_200.0; // J, past wrap
        let c1 = joules_to_count(e1, unit);
        let c2 = joules_to_count(e2, unit);
        assert!(c2 < c1, "expected wrapped counter");
        let d = delta_joules(c1, c2, unit);
        assert!((d - 100.0).abs() < 0.01, "delta {d}");
    }

    #[test]
    fn hinted_delta_recovers_multi_wrap() {
        let unit = 2.0f64.powi(-14);
        let range = wrap_range_j(unit); // ≈ 262144 J
        let e1 = 1000.0;
        // 3 full wraps plus a bit between the reads — the single-wrap
        // reconstruction is off by exactly 3 ranges.
        let true_delta = 3.0 * range + 5000.0;
        let e2 = e1 + true_delta;
        let c1 = joules_to_count(e1, unit);
        let c2 = joules_to_count(e2, unit);
        let naive = delta_joules(c1, c2, unit);
        assert!((naive - 5000.0).abs() < 0.01, "naive sees only the residue");
        // Hints anywhere within ±range/2 of the truth disambiguate.
        for hint in [
            true_delta,
            true_delta - 0.4 * range,
            true_delta + 0.4 * range,
        ] {
            let d = delta_joules_with_hint(c1, c2, unit, hint);
            assert!(
                (d - true_delta).abs() < 0.01,
                "hint {hint}: got {d}, want {true_delta}"
            );
        }
    }

    #[test]
    fn hinted_delta_at_the_wrap_boundary() {
        // The 262144 J boundary itself: deltas of exactly 0, 1 and 2 wrap
        // ranges all produce identical counter readings; only the hint
        // separates them.
        let unit = 2.0f64.powi(-14);
        let range = wrap_range_j(unit);
        assert!((range - 262144.0).abs() < 1e-6, "range is 262144 J");
        let c1 = joules_to_count(100.0, unit);
        for wraps in 0..3 {
            let true_delta = wraps as f64 * range;
            let c2 = joules_to_count(100.0 + true_delta, unit);
            assert_eq!(c1, c2, "boundary crossings are invisible in the count");
            let d = delta_joules_with_hint(c1, c2, unit, true_delta + 10.0);
            assert!(
                (d - true_delta).abs() < 0.01,
                "wraps={wraps}: got {d}, want {true_delta}"
            );
        }
    }

    #[test]
    fn hinted_delta_matches_plain_delta_below_one_wrap() {
        // With a sane hint and < 1 wrap, the hinted variant degenerates to
        // the classic reconstruction (including the single-wrap case).
        let unit = 2.0f64.powi(-14);
        let pairs = [(10.0, 20.0), (262_100.0, 262_200.0)];
        for (e1, e2) in pairs {
            let c1 = joules_to_count(e1, unit);
            let c2 = joules_to_count(e2, unit);
            let plain = delta_joules(c1, c2, unit);
            let hinted = delta_joules_with_hint(c1, c2, unit, e2 - e1);
            assert_eq!(plain.to_bits(), hinted.to_bits());
        }
    }

    #[test]
    fn hinted_delta_never_goes_negative() {
        let unit = 2.0f64.powi(-14);
        let c1 = joules_to_count(50.0, unit);
        let c2 = joules_to_count(60.0, unit);
        // A wildly wrong (negative-ish) hint must not drag the delta below
        // the counter-pinned residue.
        let d = delta_joules_with_hint(c1, c2, unit, -1.0e9);
        assert!((d - 10.0).abs() < 0.01, "got {d}");
    }

    #[test]
    fn monotone_without_wrap() {
        let unit = 2.0f64.powi(-14);
        let c1 = joules_to_count(10.0, unit);
        let c2 = joules_to_count(20.0, unit);
        assert!(c2 > c1);
        assert!((delta_joules(c1, c2, unit) - 10.0).abs() < 1e-3);
    }
}
