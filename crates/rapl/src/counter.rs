//! Energy-status counter behaviour: unit conversion, 32-bit wrap-around and
//! ~1 ms update quantisation.

/// Counters are updated "approximately once a millisecond (due to jitter)"
/// (paper §2.3). We quantise reads onto a 1 ms grid shifted by a per-domain
/// phase, so immediate re-reads can observe an unchanged value.
pub const UPDATE_PERIOD_S: f64 = 1.0e-3;

/// Quantise a read at time `t` to the last counter-update instant, given the
/// domain's phase offset in `[0, UPDATE_PERIOD_S)`.
pub fn quantize_read_time(t: f64, phase: f64) -> f64 {
    debug_assert!((0.0..UPDATE_PERIOD_S).contains(&phase));
    if t <= phase {
        return 0.0;
    }
    let ticks = ((t - phase) / UPDATE_PERIOD_S).floor();
    (ticks * UPDATE_PERIOD_S + phase).max(0.0)
}

/// Convert cumulative joules into a wrapped 32-bit count in the given energy
/// unit.
pub fn joules_to_count(joules: f64, unit_j: f64) -> u64 {
    debug_assert!(joules >= 0.0 && unit_j > 0.0);
    let counts = (joules / unit_j) as u128;
    (counts % (1u128 << 32)) as u64
}

/// Reconstruct the energy delta between two wrapped counter reads
/// (`later` read after `earlier`, assuming at most one wrap between them) —
/// the correction every RAPL consumer must apply.
pub fn delta_joules(earlier: u64, later: u64, unit_j: f64) -> f64 {
    let diff = if later >= earlier {
        later - earlier
    } else {
        later + (1u64 << 32) - earlier
    };
    diff as f64 * unit_j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_steps() {
        let phase = 0.0002;
        // Just before the first update instant → 0.
        assert_eq!(quantize_read_time(0.0001, phase), 0.0);
        // Right after an update.
        let q = quantize_read_time(0.00121, phase);
        assert!((q - 0.0012).abs() < 1e-12);
        // Two reads within one period see the same instant.
        let a = quantize_read_time(0.00540, 0.0);
        let b = quantize_read_time(0.00599, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn wrap_around() {
        let unit = 6.103515625e-5; // 2^-14 J
        let range = unit * 4.294967296e9; // 2^32 counts ≈ 262144 J
        let just_under = range - unit;
        let just_over = range + unit;
        let c_under = joules_to_count(just_under, unit);
        let c_over = joules_to_count(just_over, unit);
        assert_eq!(c_under, (1u64 << 32) - 1);
        assert_eq!(c_over, 1);
    }

    #[test]
    fn delta_handles_single_wrap() {
        let unit = 2.0f64.powi(-14);
        let e1 = 262_100.0; // J, near wrap (range ≈ 262144 J)
        let e2 = 262_200.0; // J, past wrap
        let c1 = joules_to_count(e1, unit);
        let c2 = joules_to_count(e2, unit);
        assert!(c2 < c1, "expected wrapped counter");
        let d = delta_joules(c1, c2, unit);
        assert!((d - 100.0).abs() < 0.01, "delta {d}");
    }

    #[test]
    fn monotone_without_wrap() {
        let unit = 2.0f64.powi(-14);
        let c1 = joules_to_count(10.0, unit);
        let c2 = joules_to_count(20.0, unit);
        assert!(c2 > c1);
        assert!((delta_joules(c1, c2, unit) - 10.0).abs() < 1e-3);
    }
}
