//! The simulated RAPL device: counters backed by the power model and the
//! activity ledger.

use crate::counter::{joules_to_count, quantize_read_time, UPDATE_PERIOD_S};
use crate::cpuid::CpuModel;
use crate::domains::Domain;
use crate::msr::{
    MsrAccess, MsrError, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT,
    MSR_PP0_ENERGY_STATUS, MSR_PP1_ENERGY_STATUS, MSR_RAPL_POWER_UNIT,
};
use crate::units::{RaplUnits, SKX_RAPL_POWER_UNIT};
use greenla_cluster::ledger::Ledger;
use greenla_cluster::PowerModel;
use greenla_faults::{CounterFaultKind, FaultSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// RAPL for one simulated job: one logical MSR file per `(node, socket)`.
///
/// Reads are time-indexed: the caller supplies the *virtual* time of the
/// read (its rank clock), and the device reports the energy accumulated in
/// `[0, t]` — quantised to the counter's ~1 ms update grid and wrapped to 32
/// bits, exactly like hardware.
pub struct RaplSim {
    ledger: Arc<Ledger>,
    power: PowerModel,
    seed: u64,
    access: MsrAccess,
    cpu: CpuModel,
    /// Programmed `MSR_PKG_POWER_LIMIT` values per (node, socket). Writes
    /// are stored and read back; on real hardware the PCU then throttles —
    /// in this virtual-time simulation throttling must be configured at
    /// machine construction via [`PowerModel::with_power_cap`], because a
    /// run's timing cannot be re-derived retroactively.
    power_limits: Mutex<HashMap<(usize, usize), u64>>,
    /// Planned measurement faults (wrap storms, stuck counters, failing
    /// reads). Disabled by default; the ground-truth path never consults
    /// it, so external-meter comparisons stay exact even in faulted runs.
    faults: FaultSink,
}

fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RaplSim {
    /// Build with full msr access (the configuration on the paper's
    /// testbed).
    pub fn new(ledger: Arc<Ledger>, power: PowerModel, seed: u64) -> Self {
        let cpu = CpuModel::detect(&ledger.node_spec().cpu);
        Self {
            ledger,
            power,
            seed,
            access: MsrAccess::permitted(),
            cpu,
            power_limits: Mutex::new(HashMap::new()),
            faults: FaultSink::disabled(),
        }
    }

    /// Build with explicit access state (to exercise failure paths).
    pub fn with_access(
        ledger: Arc<Ledger>,
        power: PowerModel,
        seed: u64,
        access: MsrAccess,
    ) -> Self {
        let cpu = CpuModel::detect(&ledger.node_spec().cpu);
        Self {
            ledger,
            power,
            seed,
            access,
            cpu,
            power_limits: Mutex::new(HashMap::new()),
            faults: FaultSink::disabled(),
        }
    }

    /// Attach a fault-injection sink (shared with the machine running the
    /// job, so one `FaultReport` covers runtime and measurement faults).
    pub fn set_faults(&mut self, sink: FaultSink) {
        self.faults = sink;
    }

    /// Builder-style [`RaplSim::set_faults`].
    pub fn with_faults(mut self, sink: FaultSink) -> Self {
        self.faults = sink;
        self
    }

    pub fn cpu(&self) -> CpuModel {
        self.cpu
    }

    pub fn nodes(&self) -> usize {
        self.ledger.nodes()
    }

    pub fn sockets_per_node(&self) -> usize {
        self.ledger.node_spec().sockets
    }

    /// Decoded units for this CPU.
    pub fn units(&self) -> RaplUnits {
        RaplUnits::decode(SKX_RAPL_POWER_UNIT, self.cpu)
    }

    fn check_location(&self, node: usize, socket: usize) -> Result<(), MsrError> {
        if node >= self.nodes() {
            return Err(MsrError::NoSuchNode(node));
        }
        if socket >= self.sockets_per_node() {
            return Err(MsrError::NoSuchSocket(socket));
        }
        Ok(())
    }

    /// Per-domain counter-update phase in `[0, 1 ms)`.
    fn phase(&self, node: usize, socket: usize, domain: Domain) -> f64 {
        let d = match domain {
            Domain::Package => 0u64,
            Domain::Pp0 => 1,
            Domain::Pp1 => 2,
            Domain::Dram => 3,
        };
        let h = mix(self.seed ^ (node as u64) << 32 ^ (socket as u64) << 8 ^ d);
        (h >> 11) as f64 / (1u64 << 53) as f64 * UPDATE_PERIOD_S
    }

    /// Continuous (un-quantised, un-wrapped) model energy — the "external
    /// power meter" ground truth the paper plans to integrate in future
    /// work.
    pub fn ground_truth_j(
        &self,
        node: usize,
        socket: usize,
        domain: Domain,
        t: f64,
    ) -> Result<f64, MsrError> {
        self.check_location(node, socket)?;
        match domain {
            Domain::Package => {
                Ok(self
                    .power
                    .pkg_energy_j(&self.ledger, node, socket, t, self.seed))
            }
            Domain::Pp0 => Ok(self
                .power
                .pp0_energy_j(&self.ledger, node, socket, t, self.seed)),
            Domain::Dram => Ok(self
                .power
                .dram_energy_j(&self.ledger, node, socket, t, self.seed)),
            Domain::Pp1 => {
                if self.cpu.has_pp1() {
                    Ok(0.0)
                } else {
                    Err(MsrError::UnsupportedRegister(MSR_PP1_ENERGY_STATUS))
                }
            }
        }
    }

    /// Counter energy as the *register* reports it at the (already
    /// quantised) read time `tq`: ground truth, unless a planned
    /// measurement fault covers this `(node, socket)` — a stuck counter
    /// freezes at its onset value, a wrap storm piles phantom joules on
    /// top (wrapping the 32-bit register many times between reads), and a
    /// glitch fails the read outright.
    fn register_energy_j(
        &self,
        node: usize,
        socket: usize,
        domain: Domain,
        tq: f64,
    ) -> Result<f64, MsrError> {
        match self.faults.counter_fault(node, socket, tq) {
            None => self.ground_truth_j(node, socket, domain, tq),
            Some((CounterFaultKind::Glitch, _)) => Err(MsrError::Faulted),
            Some((CounterFaultKind::Stuck, from_s)) => {
                let tf = quantize_read_time(from_s, self.phase(node, socket, domain));
                self.ground_truth_j(node, socket, domain, tf)
            }
            Some((CounterFaultKind::WrapStorm { extra_w }, from_s)) => {
                let truth = self.ground_truth_j(node, socket, domain, tq)?;
                Ok(truth + extra_w * (tq - from_s).max(0.0))
            }
        }
    }

    /// Read an MSR of `(node, socket)` at virtual time `t` — the full
    /// hardware path: access check, quantisation, unit conversion, 32-bit
    /// wrap.
    pub fn read_msr(&self, node: usize, socket: usize, addr: u32, t: f64) -> Result<u64, MsrError> {
        self.access.check()?;
        self.check_location(node, socket)?;
        match addr {
            MSR_RAPL_POWER_UNIT => Ok(SKX_RAPL_POWER_UNIT),
            MSR_PKG_POWER_LIMIT => Ok(self
                .power_limits
                .lock()
                .get(&(node, socket))
                .copied()
                .unwrap_or(0)),
            MSR_PKG_ENERGY_STATUS
            | MSR_PP0_ENERGY_STATUS
            | MSR_DRAM_ENERGY_STATUS
            | MSR_PP1_ENERGY_STATUS => {
                let domain = Domain::from_msr(addr).expect("energy MSR");
                if domain == Domain::Pp1 && !self.cpu.has_pp1() {
                    return Err(MsrError::UnsupportedRegister(addr));
                }
                let tq = quantize_read_time(t, self.phase(node, socket, domain));
                let joules = self.register_energy_j(node, socket, domain, tq)?;
                let units = self.units();
                let unit_j = if domain == Domain::Dram {
                    units.dram_energy_j
                } else {
                    units.energy_j
                };
                Ok(joules_to_count(joules, unit_j))
            }
            other => Err(MsrError::UnsupportedRegister(other)),
        }
    }

    /// Write an MSR. Only `MSR_PKG_POWER_LIMIT` is writable (the paper's
    /// future-work power-capping hook); everything else is read-only, as on
    /// hardware.
    pub fn write_msr(
        &self,
        node: usize,
        socket: usize,
        addr: u32,
        value: u64,
    ) -> Result<(), MsrError> {
        self.access.check()?;
        self.check_location(node, socket)?;
        match addr {
            MSR_PKG_POWER_LIMIT => {
                self.power_limits.lock().insert((node, socket), value);
                Ok(())
            }
            other => Err(MsrError::UnsupportedRegister(other)),
        }
    }

    /// Convenience used by the powercap layer: energy in microjoules, with
    /// the counter quantisation applied but the wrap undone as long as the
    /// cumulative energy stays below one wrap (the powercap sysfs daemon
    /// accumulates wraps; we model a reader that has been attached since
    /// t = 0).
    pub fn energy_uj(
        &self,
        node: usize,
        socket: usize,
        domain: Domain,
        t: f64,
    ) -> Result<u64, MsrError> {
        self.access.check()?;
        self.check_location(node, socket)?;
        if domain == Domain::Pp1 && !self.cpu.has_pp1() {
            return Err(MsrError::UnsupportedRegister(MSR_PP1_ENERGY_STATUS));
        }
        let tq = quantize_read_time(t, self.phase(node, socket, domain));
        let joules = self.register_energy_j(node, socket, domain, tq)?;
        Ok((joules * 1e6) as u64)
    }

    /// powercap's advertised wrap range for a domain, in µJ.
    pub fn max_energy_range_uj(&self, domain: Domain) -> u64 {
        let units = self.units();
        let unit_j = if domain == Domain::Dram {
            units.dram_energy_j
        } else {
            units.energy_j
        };
        (unit_j * 4.294967296e9 * 1e6) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::ledger::{ActivityKind, Interval};
    use greenla_cluster::spec::NodeSpec;
    use greenla_cluster::topology::CoreId;

    fn sim_with_activity() -> RaplSim {
        let ledger = Arc::new(Ledger::new(NodeSpec::marconi_a3(), 2));
        for c in 0..24 {
            ledger.record(
                CoreId::new(0, 0, c),
                Interval {
                    start: 0.0,
                    end: 10.0,
                    kind: ActivityKind::Compute,
                    flops: 1000,
                },
            );
        }
        ledger.record_dram(0, 0, 1.0, 5_000_000_000);
        RaplSim::new(ledger, PowerModel::deterministic(), 0)
    }

    #[test]
    fn full_read_path_matches_ground_truth() {
        let sim = sim_with_activity();
        let t = 10.0;
        let raw = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, t).unwrap();
        let decoded = raw as f64 * sim.units().energy_j;
        let truth = sim.ground_truth_j(0, 0, Domain::Package, t).unwrap();
        // Quantisation may lose up to 1 ms of energy (< 0.2 J at ~150 W)
        // plus one counter unit.
        assert!(
            (decoded - truth).abs() < 0.2,
            "decoded {decoded} truth {truth}"
        );
        assert!(truth > 1000.0, "10 s of a loaded socket should exceed 1 kJ");
    }

    #[test]
    fn dram_counter_uses_fixed_unit() {
        let sim = sim_with_activity();
        let raw = sim.read_msr(0, 0, MSR_DRAM_ENERGY_STATUS, 10.0).unwrap();
        let truth = sim.ground_truth_j(0, 0, Domain::Dram, 10.0).unwrap();
        let with_dram_unit = raw as f64 * sim.units().dram_energy_j;
        let with_pkg_unit = raw as f64 * sim.units().energy_j;
        assert!((with_dram_unit - truth).abs() < 0.1);
        assert!(
            (with_pkg_unit - truth).abs() > truth,
            "pkg unit must be badly wrong for DRAM"
        );
    }

    #[test]
    fn counters_are_monotone_before_wrap() {
        let sim = sim_with_activity();
        let mut last = 0;
        for i in 1..=10 {
            let t = i as f64;
            let c = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, t).unwrap();
            assert!(c >= last, "counter regressed at t={t}");
            last = c;
        }
    }

    #[test]
    fn immediate_rereads_can_be_equal() {
        let sim = sim_with_activity();
        let a = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 5.0001).unwrap();
        let b = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 5.0002).unwrap();
        // Reads 0.1 ms apart usually land in the same update slot.
        // (This can only differ if an update boundary falls between them;
        // with the deterministic phase for this seed it does not.)
        assert_eq!(a, b);
    }

    #[test]
    fn pp1_unsupported_on_skylake() {
        let sim = sim_with_activity();
        assert_eq!(
            sim.read_msr(0, 0, MSR_PP1_ENERGY_STATUS, 1.0),
            Err(MsrError::UnsupportedRegister(MSR_PP1_ENERGY_STATUS))
        );
    }

    #[test]
    fn access_control_enforced() {
        let ledger = Arc::new(Ledger::new(NodeSpec::marconi_a3(), 1));
        let sim = RaplSim::with_access(
            ledger,
            PowerModel::deterministic(),
            0,
            MsrAccess {
                driver_loaded: true,
                read_permitted: false,
            },
        );
        assert_eq!(
            sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 1.0),
            Err(MsrError::PermissionDenied)
        );
    }

    #[test]
    fn bad_locations_rejected() {
        let sim = sim_with_activity();
        assert_eq!(
            sim.read_msr(5, 0, MSR_PKG_ENERGY_STATUS, 1.0),
            Err(MsrError::NoSuchNode(5))
        );
        assert_eq!(
            sim.read_msr(0, 7, MSR_PKG_ENERGY_STATUS, 1.0),
            Err(MsrError::NoSuchSocket(7))
        );
    }

    #[test]
    fn unknown_msr_rejected() {
        let sim = sim_with_activity();
        assert_eq!(
            sim.read_msr(0, 0, 0x1234, 1.0),
            Err(MsrError::UnsupportedRegister(0x1234))
        );
    }

    #[test]
    fn idle_socket_energy_is_half_ish_of_loaded() {
        let sim = sim_with_activity();
        let loaded = sim.ground_truth_j(0, 0, Domain::Package, 10.0).unwrap();
        let idle = sim.ground_truth_j(0, 1, Domain::Package, 10.0).unwrap();
        let ratio = idle / loaded;
        assert!((0.35..0.65).contains(&ratio), "idle/loaded = {ratio}");
    }

    #[test]
    fn stuck_counter_freezes_at_onset() {
        use greenla_faults::{CounterFault, FaultPlan};
        let plan = FaultPlan {
            counters: vec![CounterFault {
                node: 0,
                socket: 0,
                from_s: 2.0,
                kind: greenla_faults::CounterFaultKind::Stuck,
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let sim = sim_with_activity().with_faults(sink.clone());
        let before = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 1.0).unwrap();
        let at_onset = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 2.0).unwrap();
        let later = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 8.0).unwrap();
        assert!(before < at_onset, "counter lives until the onset");
        assert_eq!(at_onset, later, "stuck counter must not advance");
        // The untouched socket keeps counting.
        let other = sim.read_msr(0, 1, MSR_PKG_ENERGY_STATUS, 8.0).unwrap();
        assert!(other > 0);
        let rep = sink.report();
        assert_eq!(rep.injected.counter, 1);
    }

    #[test]
    fn glitched_counter_fails_reads_after_onset() {
        use greenla_faults::{CounterFault, FaultPlan};
        let plan = FaultPlan {
            counters: vec![CounterFault {
                node: 0,
                socket: 0,
                from_s: 2.0,
                kind: greenla_faults::CounterFaultKind::Glitch,
            }],
            ..Default::default()
        };
        let sim = sim_with_activity().with_faults(FaultSink::with_plan(plan));
        assert!(sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 1.0).is_ok());
        assert_eq!(
            sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, 3.0),
            Err(MsrError::Faulted)
        );
        assert_eq!(
            sim.energy_uj(0, 0, Domain::Package, 3.0),
            Err(MsrError::Faulted)
        );
    }

    #[test]
    fn wrap_storm_is_recovered_by_hinted_delta() {
        use crate::counter::{delta_joules, delta_joules_with_hint, wrap_range_j};
        use greenla_faults::{CounterFault, FaultPlan};
        // ~1e8 W of phantom power wraps the 32-bit register several times
        // between two reads 8 s apart.
        let extra_w = 1.0e8;
        let plan = FaultPlan {
            counters: vec![CounterFault {
                node: 0,
                socket: 0,
                from_s: 0.0,
                kind: greenla_faults::CounterFaultKind::WrapStorm { extra_w },
            }],
            ..Default::default()
        };
        let sim = sim_with_activity().with_faults(FaultSink::with_plan(plan));
        let unit = sim.units().energy_j;
        let t1 = 1.0;
        let t2 = 9.0;
        let c1 = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, t1).unwrap();
        let c2 = sim.read_msr(0, 0, MSR_PKG_ENERGY_STATUS, t2).unwrap();
        let expected = extra_w * (t2 - t1); // dominates the real ~150 W
        assert!(
            expected > 2.0 * wrap_range_j(unit),
            "storm must span multiple wraps for this test to bite"
        );
        let naive = delta_joules(c1, c2, unit);
        let hinted = delta_joules_with_hint(c1, c2, unit, expected);
        assert!(
            (hinted - expected).abs() / expected < 0.01,
            "hinted {hinted} vs expected {expected}"
        );
        assert!(
            (naive - expected).abs() / expected > 0.5,
            "naive reconstruction must be badly wrong under a storm: {naive}"
        );
    }

    #[test]
    fn energy_uj_is_microjoules() {
        let sim = sim_with_activity();
        let uj = sim.energy_uj(0, 0, Domain::Package, 10.0).unwrap();
        let truth = sim.ground_truth_j(0, 0, Domain::Package, 10.0).unwrap();
        assert!((uj as f64 / 1e6 - truth).abs() < 0.2);
    }
}
