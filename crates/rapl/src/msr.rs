//! MSR addresses and access control.
//!
//! Mirrors the Linux `msr` driver surface the paper describes: "the MSR
//! driver must be enabled, and the read access permission must be set".

/// `MSR_RAPL_POWER_UNIT`: unit definitions for all RAPL domains.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// `MSR_PKG_POWER_LIMIT`: package power-cap control (future work in the
/// paper; readable here, writes accepted but only stored).
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
/// `MSR_PKG_ENERGY_STATUS`: cumulative package energy, 32-bit wrapping.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// `MSR_DRAM_ENERGY_STATUS`: cumulative DRAM energy, 32-bit wrapping.
pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;
/// `MSR_PP0_ENERGY_STATUS`: cumulative core-domain energy.
pub const MSR_PP0_ENERGY_STATUS: u32 = 0x639;
/// `MSR_PP1_ENERGY_STATUS`: graphics domain — absent on server parts.
pub const MSR_PP1_ENERGY_STATUS: u32 = 0x641;

/// Failures of the simulated `/dev/cpu/*/msr` interface.
#[derive(Debug, PartialEq, Eq)]
pub enum MsrError {
    /// The msr kernel driver is not loaded.
    DriverNotLoaded,
    /// No read permission on the msr device node.
    PermissionDenied,
    /// The register does not exist on this CPU model (e.g. PP1 on
    /// Skylake-SP).
    UnsupportedRegister(u32),
    /// Socket index out of range for the node.
    NoSuchSocket(usize),
    /// Node index out of range for the job.
    NoSuchNode(usize),
    /// An injected measurement fault: the counter read failed outright
    /// (models a dead powercap sysfs node / flaky MSR access mid-run).
    Faulted,
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::DriverNotLoaded => write!(f, "msr driver not loaded"),
            MsrError::PermissionDenied => write!(f, "permission denied reading msr device"),
            MsrError::UnsupportedRegister(a) => write!(f, "unsupported MSR {a:#x}"),
            MsrError::NoSuchSocket(s) => write!(f, "no such socket {s}"),
            MsrError::NoSuchNode(n) => write!(f, "no such node {n}"),
            MsrError::Faulted => write!(f, "injected measurement fault"),
        }
    }
}

impl std::error::Error for MsrError {}

/// Access-control state of the msr device on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsrAccess {
    /// Is the kernel msr module loaded?
    pub driver_loaded: bool,
    /// Does the caller have read permission on `/dev/cpu/*/msr`?
    pub read_permitted: bool,
}

impl MsrAccess {
    /// Driver loaded with read access (the configuration the paper sets up
    /// on Marconi).
    pub fn permitted() -> Self {
        Self {
            driver_loaded: true,
            read_permitted: true,
        }
    }

    /// Check access, mapping the failure mode.
    pub fn check(&self) -> Result<(), MsrError> {
        if !self.driver_loaded {
            return Err(MsrError::DriverNotLoaded);
        }
        if !self.read_permitted {
            return Err(MsrError::PermissionDenied);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_failure_modes() {
        assert_eq!(
            MsrAccess {
                driver_loaded: false,
                read_permitted: true
            }
            .check(),
            Err(MsrError::DriverNotLoaded)
        );
        assert_eq!(
            MsrAccess {
                driver_loaded: true,
                read_permitted: false
            }
            .check(),
            Err(MsrError::PermissionDenied)
        );
        assert_eq!(MsrAccess::permitted().check(), Ok(()));
    }
}
