//! RAPL power domains.

use crate::msr::{
    MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS, MSR_PP0_ENERGY_STATUS, MSR_PP1_ENERGY_STATUS,
};

/// One measurable RAPL domain on a socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Whole package (cores + uncore).
    Package,
    /// Core domain (power plane 0).
    Pp0,
    /// Graphics domain (power plane 1) — absent on server CPUs.
    Pp1,
    /// Memory domain.
    Dram,
}

impl Domain {
    /// The energy-status MSR backing this domain.
    pub fn msr(&self) -> u32 {
        match self {
            Domain::Package => MSR_PKG_ENERGY_STATUS,
            Domain::Pp0 => MSR_PP0_ENERGY_STATUS,
            Domain::Pp1 => MSR_PP1_ENERGY_STATUS,
            Domain::Dram => MSR_DRAM_ENERGY_STATUS,
        }
    }

    /// Domain measured by a given energy-status MSR address.
    pub fn from_msr(addr: u32) -> Option<Domain> {
        match addr {
            MSR_PKG_ENERGY_STATUS => Some(Domain::Package),
            MSR_PP0_ENERGY_STATUS => Some(Domain::Pp0),
            MSR_PP1_ENERGY_STATUS => Some(Domain::Pp1),
            MSR_DRAM_ENERGY_STATUS => Some(Domain::Dram),
            _ => None,
        }
    }

    /// Linux powercap-style zone name for socket `s` (what PAPI's powercap
    /// component shows as event names).
    pub fn zone_name(&self, socket: usize) -> String {
        match self {
            Domain::Package => format!("package-{socket}"),
            Domain::Pp0 => format!("package-{socket}/core"),
            Domain::Pp1 => format!("package-{socket}/uncore"),
            Domain::Dram => format!("package-{socket}/dram"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_roundtrip() {
        for d in [Domain::Package, Domain::Pp0, Domain::Pp1, Domain::Dram] {
            assert_eq!(Domain::from_msr(d.msr()), Some(d));
        }
        assert_eq!(Domain::from_msr(0x123), None);
    }

    #[test]
    fn zone_names() {
        assert_eq!(Domain::Package.zone_name(1), "package-1");
        assert_eq!(Domain::Dram.zone_name(0), "package-0/dram");
    }
}
