#![forbid(unsafe_code)]
//! # greenla-rapl
//!
//! A functional simulation of Intel's Running Average Power Limit (RAPL)
//! energy-reporting interface, faithful to the properties real RAPL readers
//! must deal with:
//!
//! * energy is exposed through **model-specific registers** at the real
//!   addresses (`MSR_RAPL_POWER_UNIT` 0x606, `PKG_ENERGY_STATUS` 0x611,
//!   `DRAM_ENERGY_STATUS` 0x619, `PP0_ENERGY_STATUS` 0x639);
//! * counters are **32-bit and wrap around**;
//! * raw counts are in **RAPL energy units** that must be decoded from
//!   `MSR_RAPL_POWER_UNIT` — and on Skylake-SP the DRAM domain uses a fixed
//!   2⁻¹⁶ J unit regardless of what the unit register says, a real-world
//!   quirk reproduced here;
//! * counters update roughly **once per millisecond with jitter**, so two
//!   immediate reads may return the same value;
//! * access requires the **msr driver** with read permission, and reading
//!   an unsupported domain fails.
//!
//! The counters are backed by the [`greenla_cluster`] power model integrated
//! over the activity ledger that the simulated MPI runtime fills in, so a
//! read at virtual time *t* reports exactly the energy the model says the
//! domain consumed in `[0, t]`.

pub mod counter;
pub mod cpuid;
pub mod domains;
pub mod msr;
pub mod sim;
pub mod units;

pub use domains::Domain;
pub use msr::{
    MsrError, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT,
    MSR_PP0_ENERGY_STATUS, MSR_RAPL_POWER_UNIT,
};
pub use sim::RaplSim;
pub use units::RaplUnits;
