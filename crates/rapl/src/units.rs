//! RAPL unit decoding.
//!
//! `MSR_RAPL_POWER_UNIT` packs three fields:
//!
//! * bits 3:0 — power unit, `1 / 2^PU` watts;
//! * bits 12:8 — energy status unit, `1 / 2^ESU` joules;
//! * bits 19:16 — time unit, `1 / 2^TU` seconds.
//!
//! Skylake-SP reports `ESU = 14` (≈ 61 µJ) but its **DRAM** domain counts in
//! a fixed `2⁻¹⁶ J` (≈ 15.3 µJ) unit regardless — readers that skip this
//! quirk report DRAM energy 4× too high, a classic RAPL bug this simulation
//! deliberately lets tests exercise.

use crate::cpuid::CpuModel;

/// Skylake-SP's `MSR_RAPL_POWER_UNIT` value: PU=3 (1/8 W), ESU=14
/// (2⁻¹⁴ J), TU=10 (976 µs).
pub const SKX_RAPL_POWER_UNIT: u64 = (10 << 16) | (14 << 8) | 3;

/// Decoded RAPL units for one CPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RaplUnits {
    /// Watts per power-limit count.
    pub power_w: f64,
    /// Joules per energy count (PKG and PP0 domains).
    pub energy_j: f64,
    /// Seconds per time count.
    pub time_s: f64,
    /// Joules per energy count in the DRAM domain (differs on servers).
    pub dram_energy_j: f64,
}

impl RaplUnits {
    /// Decode the raw `MSR_RAPL_POWER_UNIT` value for a given CPU model.
    pub fn decode(raw: u64, cpu: CpuModel) -> Self {
        let pu = (raw & 0xf) as i32;
        let esu = ((raw >> 8) & 0x1f) as i32;
        let tu = ((raw >> 16) & 0xf) as i32;
        let energy_j = 0.5f64.powi(esu);
        let dram_energy_j = if cpu.has_fixed_dram_unit() {
            0.5f64.powi(16)
        } else {
            energy_j
        };
        Self {
            power_w: 0.5f64.powi(pu),
            energy_j,
            time_s: 0.5f64.powi(tu),
            dram_energy_j,
        }
    }
}

/// Encode a package power limit in watts into the `MSR_PKG_POWER_LIMIT`
/// PL1 field (bits 14:0 = limit in power units, bit 15 = enable).
pub fn encode_power_limit(watts: f64, units: &RaplUnits) -> u64 {
    let counts = (watts / units.power_w).round().min(0x7fff as f64).max(0.0) as u64;
    counts | (1 << 15)
}

/// Decode the PL1 field of `MSR_PKG_POWER_LIMIT`; `None` when the enable
/// bit is clear.
pub fn decode_power_limit(raw: u64, units: &RaplUnits) -> Option<f64> {
    if raw & (1 << 15) == 0 {
        return None;
    }
    Some((raw & 0x7fff) as f64 * units.power_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpuid::CpuModel;

    #[test]
    fn power_limit_roundtrip() {
        let u = RaplUnits::decode(SKX_RAPL_POWER_UNIT, CpuModel::skylake_sp());
        for w in [50.0, 100.0, 150.0] {
            let raw = encode_power_limit(w, &u);
            let back = decode_power_limit(raw, &u).unwrap();
            assert!((back - w).abs() <= u.power_w, "{back} vs {w}");
        }
        assert_eq!(decode_power_limit(0x1000, &u), None, "enable bit clear");
    }

    #[test]
    fn skylake_units() {
        let u = RaplUnits::decode(SKX_RAPL_POWER_UNIT, CpuModel::skylake_sp());
        assert!((u.power_w - 0.125).abs() < 1e-15);
        assert!((u.energy_j - 6.103515625e-5).abs() < 1e-15); // 2^-14
        assert!((u.dram_energy_j - 1.52587890625e-5).abs() < 1e-15); // 2^-16
        assert!((u.time_s - 9.765625e-4).abs() < 1e-12); // 2^-10
    }

    #[test]
    fn dram_quirk_only_on_servers() {
        // A hypothetical client CPU model: DRAM unit equals the general ESU.
        let client = CpuModel {
            family: 6,
            model: 0x9e,
        }; // Kaby Lake
        let u = RaplUnits::decode(SKX_RAPL_POWER_UNIT, client);
        assert_eq!(u.dram_energy_j, u.energy_j);
    }

    #[test]
    fn naive_dram_reading_is_4x_off_on_skylake() {
        // The bug the module docs describe: using the ESU for DRAM counts.
        let u = RaplUnits::decode(SKX_RAPL_POWER_UNIT, CpuModel::skylake_sp());
        let counts = 1_000_000u64;
        let correct = counts as f64 * u.dram_energy_j;
        let naive = counts as f64 * u.energy_j;
        assert!((naive / correct - 4.0).abs() < 1e-12);
    }
}
