//! CPU model detection.
//!
//! "Reading RAPL domain values directly from MSRs requires detecting the CPU
//! model and reading the RAPL energy units before reading the RAPL domain
//! consumption values" (paper §2.3). This module is that detection step,
//! driven by the simulated cluster's [`greenla_cluster::CpuSpec`].

use greenla_cluster::spec::CpuSpec;

/// CPUID (display family, display model) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuModel {
    pub family: u32,
    pub model: u32,
}

impl CpuModel {
    /// Skylake-SP / Xeon Scalable gen 1 (the Marconi A3 CPU).
    pub fn skylake_sp() -> Self {
        Self {
            family: 6,
            model: 0x55,
        }
    }

    /// Detect from a simulated CPU spec.
    pub fn detect(spec: &CpuSpec) -> Self {
        Self {
            family: spec.family,
            model: spec.model,
        }
    }

    /// Does this model expose RAPL at all?
    pub fn supports_rapl(&self) -> bool {
        // RAPL exists from Sandy Bridge (family 6, model 0x2a) onward.
        self.family == 6 && self.model >= 0x2a
    }

    /// Server models whose DRAM domain uses the fixed 2⁻¹⁶ J unit
    /// (Haswell-EP, Broadwell-EP, Skylake-SP, Cascade Lake, …).
    pub fn has_fixed_dram_unit(&self) -> bool {
        matches!(self.model, 0x3f | 0x4f | 0x55 | 0x56 | 0x6a | 0x6c) && self.family == 6
    }

    /// Server models have no PP1 (graphics) RAPL domain.
    pub fn has_pp1(&self) -> bool {
        // Client parts only; every spec we simulate is a server part.
        !self.has_fixed_dram_unit() && self.model != 0x55
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_from_marconi_spec() {
        let m = CpuModel::detect(&CpuSpec::xeon_8160());
        assert_eq!(m, CpuModel::skylake_sp());
        assert!(m.supports_rapl());
        assert!(m.has_fixed_dram_unit());
        assert!(!m.has_pp1());
    }

    #[test]
    fn ancient_cpu_has_no_rapl() {
        let nehalem = CpuModel {
            family: 6,
            model: 0x1a,
        };
        assert!(!nehalem.supports_rapl());
    }
}
