//! Property-style tests for the packed Level-3 kernels.
//!
//! Seeded loops (per the vendored-stub convention: deterministic per seed,
//! never sensitive to specific draws) drive the packed `dgemm`/`dtrsm`
//! through randomly shaped problems — padded leading dimensions, empty
//! dimensions, non-square panels, the full `alpha`/`beta` special-case set —
//! and compare every result against a naive triple-loop oracle written
//! independently of `blas3.rs`.

use greenla_linalg::blas3::{dgemm_blocked, dtrsm_left_lower_unit, dtrsm_left_upper};
use greenla_linalg::tune::{Blocking, MR, NR};
use greenla_linalg::{BlockMut, BlockRef};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Naive `C ← α·A·B + β·C` over raw column-major buffers with leading
/// dimensions. No blocking, no packing, no zero-skips: the BLAS-semantics
/// oracle, including the `β = 0` write-without-read convention.
#[allow(clippy::too_many_arguments)]
fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i + p * lda] * b[p + j * ldb];
            }
            let cij = &mut c[i + j * ldc];
            *cij = if beta == 0.0 {
                alpha * acc
            } else {
                alpha * acc + beta * *cij
            };
        }
    }
}

/// Random column-major buffer for a `rows×cols` block with leading
/// dimension `ld`; the padding rows are filled with a sentinel so tests can
/// verify kernels neither read nor write them.
fn random_buf(
    rng: &mut ChaCha8Rng,
    rows: usize,
    cols: usize,
    ld: usize,
    sentinel: f64,
) -> Vec<f64> {
    let mut buf = vec![sentinel; ld * cols.max(1)];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = rng.gen_range(-2.0..2.0);
        }
    }
    buf
}

fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len());
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol * (1.0 + w.abs()),
            "{what}: element {idx} differs: got {g}, want {w}"
        );
    }
}

const ALPHAS_BETAS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];

#[test]
fn packed_gemm_matches_naive_over_random_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9e37);
    for case in 0..120 {
        let m = rng.gen_range(0..40usize);
        let n = rng.gen_range(0..40usize);
        let k = rng.gen_range(0..40usize);
        let lda = m.max(1) + rng.gen_range(0..4usize);
        let ldb = k.max(1) + rng.gen_range(0..4usize);
        let ldc = m.max(1) + rng.gen_range(0..4usize);
        let alpha = ALPHAS_BETAS[rng.gen_range(0..4usize)];
        let beta = ALPHAS_BETAS[rng.gen_range(0..4usize)];

        let a = random_buf(&mut rng, m, k, lda, 7e77);
        let b = random_buf(&mut rng, k, n, ldb, 7e77);
        let c0 = random_buf(&mut rng, m, n, ldc, 3e33);

        let mut want = c0.clone();
        naive_gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut want, ldc);

        // Exercise both the default blocking and a deliberately tiny one
        // that forces every packing edge (partial tiles in all three loops).
        let tiny = Blocking {
            mc: MR,
            nc: NR,
            kc: 1 + rng.gen_range(0..7usize),
        };
        for tune in [Blocking::default_blocking(), tiny] {
            let mut c = c0.clone();
            dgemm_blocked(
                alpha,
                BlockRef::new(&a, m, k, lda),
                BlockRef::new(&b, k, n, ldb),
                beta,
                BlockMut::new(&mut c, m, n, ldc),
                &tune,
            );
            // Padding rows of C must be untouched.
            for j in 0..n {
                for i in m..ldc.min(c.len() - j * ldc) {
                    assert_eq!(c[i + j * ldc], 3e33, "case {case}: padding clobbered");
                }
            }
            assert_close(
                &c,
                &want,
                1e-12,
                &format!("case {case} ({m}×{k}·{n}, α={alpha}, β={beta})"),
            );
        }
    }
}

#[test]
fn packed_gemm_propagates_nan_and_inf() {
    // 0 × NaN and 0 × ∞ from the A/B operands must reach C — the old
    // scalar kernel's `if abv == 0.0 {{ continue }}` skip dropped them.
    let m = 12;
    let n = 9;
    let k = 15;
    let mut rng = ChaCha8Rng::seed_from_u64(0xfeed);
    let mut a = random_buf(&mut rng, m, k, m, 0.0);
    let mut b = random_buf(&mut rng, k, n, k, 0.0);
    a[3] = f64::NAN; // A(3,0) pairs with B(0,j)
    for j in 0..n {
        b[j * k] = 0.0; // 0 × NaN paths
    }
    b[5 * k + 2] = f64::INFINITY; // B(2,5) pairs with A(i,2)
    for i in 0..m {
        a[i + 2 * m] = 0.0; // 0 × ∞ paths
    }
    let mut c = vec![0.0; m * n];
    dgemm_blocked(
        1.0,
        BlockRef::new(&a, m, k, m),
        BlockRef::new(&b, k, n, k),
        0.0,
        BlockMut::new(&mut c, m, n, m),
        &Blocking::default_blocking(),
    );
    for j in 0..n {
        assert!(c[3 + j * m].is_nan(), "NaN row not propagated to col {j}");
    }
    for i in 0..m {
        assert!(
            c[i + 5 * m].is_nan(),
            "0·∞ not propagated to row {i} of col 5"
        );
    }
}

#[test]
fn blocked_trsm_lower_unit_matches_naive_solve() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xbeef);
    for case in 0..40 {
        let m = rng.gen_range(0..90usize);
        let n = rng.gen_range(0..20usize);
        let lda = m.max(1) + rng.gen_range(0..3usize);
        let ldb = m.max(1) + rng.gen_range(0..3usize);
        // Unit-lower L: implicit 1s on the diagonal, modest off-diagonals so
        // the forward substitution stays well conditioned.
        let mut l = random_buf(&mut rng, m, m, lda, 0.0);
        for j in 0..m {
            for i in 0..=j {
                l[i + j * lda] = if i == j { 1.0 } else { 0.0 };
            }
            for i in j + 1..m {
                l[i + j * lda] *= 0.25;
            }
        }
        let b0 = random_buf(&mut rng, m, n, ldb, 5e55);
        let mut x = b0.clone();
        dtrsm_left_lower_unit(m, n, &l, lda, &mut x, ldb);
        // Verify L·X == B elementwise (with the implicit unit diagonal).
        for j in 0..n {
            for i in 0..m {
                let mut acc = x[i + j * ldb];
                for p in 0..i {
                    acc += l[i + p * lda] * x[p + j * ldb];
                }
                let want = b0[i + j * ldb];
                assert!(
                    (acc - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "case {case} ({m}×{n}): L·X ≠ B at ({i},{j}): {acc} vs {want}"
                );
            }
            for i in m..ldb {
                assert_eq!(x[i + j * ldb], 5e55, "case {case}: padding clobbered");
            }
        }
    }
}

#[test]
fn blocked_trsm_upper_matches_naive_solve() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xcafe);
    for case in 0..40 {
        let m = rng.gen_range(0..90usize);
        let n = rng.gen_range(0..20usize);
        let lda = m.max(1) + rng.gen_range(0..3usize);
        let ldb = m.max(1) + rng.gen_range(0..3usize);
        // Upper U with a dominant diagonal so back substitution is stable.
        let mut u = random_buf(&mut rng, m, m, lda, 0.0);
        for j in 0..m {
            for i in j + 1..m {
                u[i + j * lda] = 0.0;
            }
            for i in 0..j {
                u[i + j * lda] *= 0.25;
            }
            u[j + j * lda] = 2.0 + (j % 3) as f64;
        }
        let b0 = random_buf(&mut rng, m, n, ldb, 5e55);
        let mut x = b0.clone();
        dtrsm_left_upper(m, n, &u, lda, &mut x, ldb);
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in i..m {
                    acc += u[i + p * lda] * x[p + j * ldb];
                }
                let want = b0[i + j * ldb];
                assert!(
                    (acc - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "case {case} ({m}×{n}): U·X ≠ B at ({i},{j}): {acc} vs {want}"
                );
            }
            for i in m..ldb {
                assert_eq!(x[i + j * ldb], 5e55, "case {case}: padding clobbered");
            }
        }
    }
}
