//! Cross-path dispatch properties: every SIMD microkernel the host can
//! execute must agree with the scalar oracle within the documented ulp
//! tolerance, never touch `ld` padding, and the parallel driver must be
//! *bitwise* identical to the sequential nest for the same kernel path at
//! every worker count (the determinism contract `par.rs` documents).
//!
//! Seeded loops per the vendored-stub convention: deterministic per seed,
//! never sensitive to specific draws.

use greenla_linalg::blas3::dgemm_blocked_path;
use greenla_linalg::par::dgemm_parallel_path;
use greenla_linalg::simd::{self, KernelPath};
use greenla_linalg::tune::{Blocking, NR};
use greenla_linalg::{BlockMut, BlockRef};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Documented cross-path tolerance, in ulps of the scalar result: the
/// SIMD kernels contract multiply-add into FMA, so each of the `k`
/// accumulation steps may round differently from the scalar oracle's
/// separate multiply and add. The error is a random walk of at most one
/// ulp per step — 64 ulps gives `k ≤ 256` a wide safety margin while
/// still catching any real indexing or packing defect (which produces
/// wrong *values*, not wrong *roundings*).
const ULP_TOL: f64 = 64.0;

const PATHS: [KernelPath; 3] = [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx512];

fn assert_ulp_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= ULP_TOL * f64::EPSILON * (1.0 + w.abs()),
            "{what}: element {idx} beyond {ULP_TOL} ulps: got {g}, want {w}"
        );
    }
}

/// Column-major `rows×cols` buffer with leading dimension `ld`; padding
/// rows hold a sentinel so the tests can assert kernels neither read nor
/// write them. Fractional values (not small integers) so FMA-contraction
/// rounding differences actually materialize and the bitwise claims are
/// tested against worst-case inputs, not ones where every product is
/// exact.
fn random_buf(
    rng: &mut ChaCha8Rng,
    rows: usize,
    cols: usize,
    ld: usize,
    sentinel: f64,
) -> Vec<f64> {
    let mut buf = vec![sentinel; ld * cols.max(1)];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = rng.gen_range(-2.0..2.0);
        }
    }
    buf
}

#[test]
fn simd_paths_agree_with_scalar_within_ulp_tolerance() {
    let tune = Blocking::default_blocking();
    let mut rng = ChaCha8Rng::seed_from_u64(0x51D0);
    for case in 0..60 {
        let m = rng.gen_range(1..48usize);
        let n = rng.gen_range(1..48usize);
        // k is the accumulation length the tolerance is about; push it
        // past one kc block now and then.
        let k = rng.gen_range(1..200usize);
        let lda = m + rng.gen_range(0..4usize);
        let ldb = k + rng.gen_range(0..4usize);
        let ldc = m + rng.gen_range(0..4usize);
        let alpha = [1.0, -1.0, 0.5][rng.gen_range(0..3usize)];
        let beta = [0.0, 1.0, 0.5][rng.gen_range(0..3usize)];

        let a = random_buf(&mut rng, m, k, lda, 7e77);
        let b = random_buf(&mut rng, k, n, ldb, 7e77);
        let c0 = random_buf(&mut rng, m, n, ldc, 3e33);

        let mut want = c0.clone();
        dgemm_blocked_path(
            KernelPath::Scalar,
            alpha,
            BlockRef::new(&a, m, k, lda),
            BlockRef::new(&b, k, n, ldb),
            beta,
            BlockMut::new(&mut want, m, n, ldc),
            &tune,
        );

        for path in PATHS.into_iter().filter(|p| p.is_simd() && p.supported()) {
            let mut c = c0.clone();
            dgemm_blocked_path(
                path,
                alpha,
                BlockRef::new(&a, m, k, lda),
                BlockRef::new(&b, k, n, ldb),
                beta,
                BlockMut::new(&mut c, m, n, ldc),
                &tune,
            );
            // Padding rows of C stay untouched on every path.
            for j in 0..n {
                for i in m..ldc.min(c.len() - j * ldc) {
                    assert_eq!(
                        c[i + j * ldc],
                        3e33,
                        "case {case} {path:?}: padding clobbered"
                    );
                }
            }
            assert_ulp_close(&c, &want, &format!("case {case} ({m}×{n}×{k}) {path:?}"));
        }
    }
}

#[test]
fn parallel_is_bitwise_sequential_for_every_path_and_worker_count() {
    let tune = Blocking::default_blocking();
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17E);
    for case in 0..12 {
        let m = rng.gen_range(8..80usize);
        // Several NR panels plus a ragged tail, so the column partition
        // actually splits and the tail lands in different chunks as the
        // worker count changes.
        let n = NR * rng.gen_range(4..12usize) + rng.gen_range(0..NR);
        let k = rng.gen_range(8..120usize);
        let ldc = m + rng.gen_range(0..3usize);
        let a = random_buf(&mut rng, m, k, m, 0.0);
        let b = random_buf(&mut rng, k, n, k, 0.0);
        let c0 = random_buf(&mut rng, m, n, ldc, 3e33);

        for path in PATHS.into_iter().filter(|p| p.supported()) {
            let mut want = c0.clone();
            dgemm_blocked_path(
                path,
                1.0,
                BlockRef::new(&a, m, k, m),
                BlockRef::new(&b, k, n, k),
                0.5,
                BlockMut::new(&mut want, m, n, ldc),
                &tune,
            );
            for workers in [1usize, 2, 3, 4, 8] {
                let mut c = c0.clone();
                dgemm_parallel_path(
                    path,
                    1.0,
                    BlockRef::new(&a, m, k, m),
                    BlockRef::new(&b, k, n, k),
                    0.5,
                    BlockMut::new(&mut c, m, n, ldc),
                    &tune,
                    workers,
                );
                // Bitwise, not approximately: the column partition must
                // not change any element's accumulation order.
                assert!(
                    c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "case {case} {path:?} workers={workers}: parallel result \
                     is not bit-identical to sequential"
                );
            }
        }
    }
}

#[test]
fn unsupported_explicit_path_panics() {
    // The dispatcher refuses to hand out a kernel the CPU cannot run;
    // only meaningful to assert on hosts that actually lack one.
    for path in PATHS.into_iter().filter(|p| !p.supported()) {
        let r = std::panic::catch_unwind(|| {
            let a = [1.0f64];
            let b = [1.0f64];
            let mut c = [0.0f64];
            dgemm_blocked_path(
                path,
                1.0,
                BlockRef::new(&a, 1, 1, 1),
                BlockRef::new(&b, 1, 1, 1),
                0.0,
                BlockMut::new(&mut c, 1, 1, 1),
                &Blocking::default_blocking(),
            );
        });
        assert!(r.is_err(), "{path:?} unsupported but did not panic");
    }
}

#[test]
fn resolved_path_is_logged_and_honors_the_env_override() {
    // What the process-wide dispatch resolved to (GREENLA_KERNEL=auto
    // unless the environment says otherwise) — printed so CI logs show
    // which ISA the whole battery actually exercised.
    let path = simd::resolved();
    println!(
        "kernel dispatch: {} (runtime-detected best: {})",
        path.label(),
        simd::best_supported().label()
    );
    assert!(path.supported());
    if let Ok(want) = std::env::var("GREENLA_KERNEL") {
        if let Some(p) = KernelPath::parse(&want) {
            assert_eq!(path, p, "GREENLA_KERNEL={want} not honored");
        }
    }
}
