#![deny(unsafe_code)]
//! # greenla-linalg
//!
//! Dense linear-algebra substrate for the `greenla` workspace: a column-major
//! [`Matrix`] type, a from-scratch mini-BLAS (levels 1–3), well-conditioned
//! test-system generators, closed-form flop counts for every kernel, and the
//! plain-text linear-system file format the paper uses to keep inputs
//! identical across repeated measurements.
//!
//! Everything is `f64`; all kernels are deterministic and allocation-free on
//! the hot path so higher layers can account flops and bytes exactly.
//!
//! `unsafe` is denied crate-wide with exactly one carve-out: the [`simd`]
//! dispatch module, whose `#[target_feature]` microkernels are the only
//! intrinsic code in the workspace's numerics (every `unsafe` block there
//! carries a SAFETY note and greenla-lint GL001/GL006 audit the shape).

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod block;
pub mod flops;
pub mod generate;
pub mod io;
pub mod matrix;
pub mod norms;
pub mod par;
pub mod permutation;
#[allow(unsafe_code)]
pub mod simd;
pub mod sparse;
pub mod tune;

pub use block::{BlockMut, BlockRef};
pub use generate::LinearSystem;
pub use matrix::Matrix;
pub use sparse::{CsrMatrix, SparseSystem};
