#![forbid(unsafe_code)]
//! # greenla-linalg
//!
//! Dense linear-algebra substrate for the `greenla` workspace: a column-major
//! [`Matrix`] type, a from-scratch mini-BLAS (levels 1–3), well-conditioned
//! test-system generators, closed-form flop counts for every kernel, and the
//! plain-text linear-system file format the paper uses to keep inputs
//! identical across repeated measurements.
//!
//! Everything is `f64`; all kernels are deterministic and allocation-free on
//! the hot path so higher layers can account flops and bytes exactly.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod block;
pub mod flops;
pub mod generate;
pub mod io;
pub mod matrix;
pub mod norms;
pub mod permutation;
pub mod tune;

pub use block::{BlockMut, BlockRef};
pub use generate::LinearSystem;
pub use matrix::Matrix;
