//! Cache-blocking and microkernel tuning knobs for the Level-3 kernels.
//!
//! The packed [`crate::blas3`] kernels traverse `C ← α·A·B + β·C` in the
//! canonical three-loop blocked order (columns of `C` in `NC`-wide slabs,
//! the `k` dimension in `KC`-deep panels, rows of `C` in `MC`-tall blocks),
//! packing each `MC×KC` block of `A` and `KC×NC` panel of `B` once into
//! contiguous, microkernel-ordered buffers. The register microkernel shape
//! is fixed at compile time ([`MR`]`×`[`NR`]); the cache-level block sizes
//! are runtime values so benchmarks (and future autotuning) can sweep them
//! through one place instead of editing three hard-coded consts.

/// Microkernel tile height: rows of `C` updated per microkernel call.
/// Eight `f64`s = two AVX2 vectors, four SSE2 vectors, or one AVX-512
/// vector, so each accumulator column is a whole number of registers at
/// every vector width LLVM may pick.
pub const MR: usize = 8;

/// Microkernel tile width: columns of `C` updated per microkernel call.
/// 8×8 measured fastest across ISAs on the 512³ probe: with AVX2 the
/// 64-element accumulator tile is exactly the 16-register ymm file, and
/// with AVX-512 it is 8 zmm registers — enough independent FMA chains to
/// cover the 4-cycle FMA latency, which the issue's initial 8×4 shape
/// (4 zmm accumulators) was not (19 → 25 GFLOP/s on the dev box).
pub const NR: usize = 8;

/// Cache-level blocking parameters for the packed GEMM loop nest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of `A` packed per block; the `MC×KC` packed block of `A` should
    /// sit comfortably in L2. Must be a multiple of [`MR`].
    pub mc: usize,
    /// Columns of `B` packed per panel; bounds the packed-`B` working set.
    /// Must be a multiple of [`NR`].
    pub nc: usize,
    /// Shared (inner-product) depth per panel; an `MR×KC` micro-panel of
    /// `A` plus a `KC×NR` micro-panel of `B` should fit in L1.
    pub kc: usize,
}

impl Blocking {
    /// Default blocking: `MC×KC` of `A` = 256 KiB (L2-resident on anything
    /// Skylake-class or newer — dev-box L2 is 2 MiB), and a microkernel
    /// working set of one `MR×KC` `A` panel (16 KiB) plus one `KC×NR` `B`
    /// sliver (16 KiB) that fits 48 KiB L1d *for every kernel path*. The
    /// PR-8 sweep measured `kc = 512` ~3% faster on the avx512 pair kernel
    /// (it amortises the `B` sliver over two `A` panels), but the same
    /// setting pushed the single-panel scalar microkernel's per-tile
    /// working set to 64 KiB and cost it ~40% — `kc = 256` is the setting
    /// that is near-optimal on every path.
    pub const fn default_blocking() -> Self {
        Blocking {
            mc: 128,
            nc: 512,
            kc: 256,
        }
    }

    /// Panics unless the block sizes are positive and microkernel-aligned.
    pub fn validate(&self) {
        assert!(self.mc > 0 && self.nc > 0 && self.kc > 0, "zero block size");
        assert_eq!(self.mc % MR, 0, "mc {} not a multiple of MR {MR}", self.mc);
        assert_eq!(self.nc % NR, 0, "nc {} not a multiple of NR {NR}", self.nc);
    }
}

impl Default for Blocking {
    fn default() -> Self {
        Self::default_blocking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Blocking::default().validate();
    }

    #[test]
    #[should_panic(expected = "not a multiple of MR")]
    fn misaligned_mc_rejected() {
        Blocking {
            mc: MR + 1,
            ..Blocking::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn zero_block_rejected() {
        Blocking {
            kc: 0,
            ..Blocking::default()
        }
        .validate();
    }
}
