//! Sparse substrate for the memory-bound workload family: CSR storage,
//! seeded SPD generators (Laplacian stencils and random diagonally
//! dominant), and a sequential SpMV whose DRAM traffic has a closed form
//! in [`crate::flops`] so the roofline model can place it on the memory
//! ceiling.
//!
//! Everything here mirrors the dense side's contracts: generators are
//! deterministic per seed, systems carry a known reference solution, and
//! the kernels are allocation-free on the hot path so the simulated
//! runtime can charge flops and bytes exactly.

use crate::generate::{reference_solution, LinearSystem};
use crate::matrix::Matrix;
use crate::simd::{self, KernelPath, SpmvKernel};
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Square sparse matrix in compressed-sparse-row form.
///
/// Column indices are `u32` (the simulator never exceeds 2³² unknowns and
/// the narrower index stream is half the gather traffic — the byte model
/// in [`crate::flops::spmv_csr_bytes`] counts exactly this layout).
/// Within each row the column indices are strictly increasing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries; `n + 1` long.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from per-row `(col, value)` lists. Each row's entries must be
    /// sorted by column with no duplicates; zeros are kept as given (the
    /// generators never emit them).
    pub fn from_rows(rows: Vec<Vec<(usize, f64)>>) -> Self {
        let n = rows.len();
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in &rows {
            let mut prev: Option<usize> = None;
            for &(j, v) in row {
                assert!(j < n, "column {j} out of range for order {n}");
                assert!(prev.is_none_or(|p| p < j), "row entries not sorted");
                prev = Some(j);
                col_idx.push(j as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Compress a dense matrix, dropping exact zeros.
    pub fn from_dense(a: &Matrix) -> Self {
        assert!(a.is_square(), "CSR storage here is square-only");
        let n = a.rows();
        let rows = (0..n)
            .map(|i| {
                (0..n)
                    .filter_map(|j| {
                        let v = a[(i, j)];
                        (v != 0.0).then_some((j, v))
                    })
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(rows)
    }

    /// Order of the (square) matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as parallel column/value slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// The diagonal, with `0.0` for rows that store no diagonal entry.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .position(|&j| j as usize == i)
                    .map_or(0.0, |p| vals[p])
            })
            .collect()
    }

    /// Sequential SpMV: `y = A·x` on the dispatched
    /// [`crate::simd::spmv_kernel`] path. Flop count is
    /// [`crate::flops::spmv`]`(nnz)`, DRAM traffic
    /// [`crate::flops::spmv_csr_bytes`]`(n, nnz)`. Every kernel path
    /// accumulates rows in the same left-to-right order, so results are
    /// bit-identical across `GREENLA_KERNEL` settings.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        simd::active_spmv_kernel()(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// [`Self::spmv`] pinned to an explicit [`KernelPath`] (panics when
    /// the CPU cannot execute it) — the cross-path property tests compare
    /// kernels through here.
    pub fn spmv_path(&self, path: KernelPath, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.local_rows());
        simd::spmv_kernel(path)(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// Convenience allocating SpMV (tests and reference paths).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.spmv(x, &mut y);
        y
    }

    /// Expand to dense storage (oracle paths only — O(n²) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                a[(i, j as usize)] = v;
            }
        }
        a
    }

    /// A contiguous row block `[lo, hi)` as its own CSR matrix with
    /// unchanged (global) column indices — the 1-D row-block distribution
    /// the distributed SpMV uses.
    pub fn row_block(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.n);
        let span = self.row_ptr[lo]..self.row_ptr[hi];
        CsrMatrix {
            n: self.n, // column space stays global
            row_ptr: self.row_ptr[lo..=hi]
                .iter()
                .map(|p| p - self.row_ptr[lo])
                .collect(),
            col_idx: self.col_idx[span.clone()].to_vec(),
            values: self.values[span].to_vec(),
        }
    }

    /// Number of rows stored locally (differs from [`Self::n`] only for
    /// [`Self::row_block`] views, where `n` is the global column space).
    pub fn local_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// SpMV restricted to a row block: `y[i] = Σ A[lo+i, j]·x[j]` with `x`
    /// spanning the full (global) column space, on the dispatched kernel
    /// path (bit-identical across paths, like [`Self::spmv`]).
    pub fn spmv_block(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.local_rows());
        simd::active_spmv_kernel()(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// SpMV over an arbitrary subset of local rows: `y[i] = Σ A[i,j]·x[j]`
    /// for each `i` in `rows`, leaving every other slot of `y` untouched.
    /// Each row accumulates left to right — the same order every kernel
    /// path uses — so computing a partition of the rows in any subset
    /// order is bit-identical to one [`Self::spmv_block`] sweep (the
    /// overlapped CG solver's interior/boundary split relies on exactly
    /// this).
    pub fn spmv_rows(&self, rows: &[usize], x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.local_rows());
        for &i in rows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j as usize];
            }
            y[i] = acc;
        }
    }

    /// Multithreaded row-block SpMV with [`default_spmv_workers`] threads
    /// on the dispatched kernel path. Row-partitioned: each `y[i]` is
    /// produced by exactly one worker running the same per-row
    /// accumulation as the sequential kernel, so the result is *bitwise*
    /// identical to [`Self::spmv_block`] for every worker count.
    pub fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_parallel_with(x, y, default_spmv_workers());
    }

    /// [`Self::spmv_parallel`] with an explicit worker count.
    pub fn spmv_parallel_with(&self, x: &[f64], y: &mut [f64], workers: usize) {
        self.spmv_parallel_kernel(simd::active_spmv_kernel(), x, y, workers);
    }

    /// [`Self::spmv_parallel`] pinned to an explicit [`KernelPath`] and
    /// worker count (panics when the CPU cannot execute the path) — the
    /// cross-path property tests compare parallel results against the
    /// sequential oracle per path through here.
    pub fn spmv_parallel_path(&self, path: KernelPath, x: &[f64], y: &mut [f64], workers: usize) {
        self.spmv_parallel_kernel(simd::spmv_kernel(path), x, y, workers);
    }

    fn spmv_parallel_kernel(&self, kernel: SpmvKernel, x: &[f64], y: &mut [f64], workers: usize) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.local_rows());
        let rows = self.local_rows();
        let chunks = workers.min(rows / MIN_ROWS_PER_WORKER.max(1)).max(1);
        if chunks <= 1 {
            kernel(&self.row_ptr, &self.col_idx, &self.values, x, y);
            return;
        }
        // Carve y into `chunks` contiguous row ranges tiling [0, rows);
        // each worker gets the matching row_ptr window over the shared
        // entry streams. Disjoint `split_at_mut` slices — no locks, no
        // write sharing beyond cache-line spill at chunk edges.
        let mut jobs: Vec<(&[usize], &mut [f64])> = Vec::with_capacity(chunks);
        let mut rest = y;
        let mut lo = 0usize;
        for i in 0..chunks {
            let hi = if i + 1 == chunks {
                rows
            } else {
                (i + 1) * rows / chunks
            };
            debug_assert!(hi > lo);
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            jobs.push((&self.row_ptr[lo..=hi], chunk));
            lo = hi;
        }
        let run = |(rp, yc): (&[usize], &mut [f64])| {
            kernel(rp, &self.col_idx, &self.values, x, yc);
        };
        std::thread::scope(|s| {
            let mut it = jobs.into_iter();
            // The first chunk runs on the calling thread; only the rest
            // spawn.
            let head = it.next();
            let handles: Vec<_> = it.map(|job| s.spawn(move || run(job))).collect();
            if let Some(job) = head {
                run(job);
            }
            for h in handles {
                h.join().expect("spmv worker panicked");
            }
        });
    }
}

/// Row chunks below this height run sequentially: thread spawn overhead
/// (~10 µs) dwarfs a few thousand rows of memory-bound work.
const MIN_ROWS_PER_WORKER: usize = 1024;

/// Worker count used by [`CsrMatrix::spmv_parallel`]: the
/// `GREENLA_SPMV_THREADS` environment variable when set (must parse to
/// ≥ 1), otherwise the host's available parallelism. Resolved once and
/// cached — the same contract as [`crate::par::default_workers`].
pub fn default_spmv_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| match std::env::var("GREENLA_SPMV_THREADS") {
        Ok(v) => {
            let w: usize = v.parse().unwrap_or_else(|_| {
                panic!("GREENLA_SPMV_THREADS must be a positive integer, got `{v}`")
            });
            assert!(w >= 1, "GREENLA_SPMV_THREADS must be >= 1");
            w
        }
        Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
    })
}

/// A sparse SPD linear system `A·x = b` with a known reference solution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparseSystem {
    /// Coefficient matrix (SPD for every generator in this module).
    pub a: CsrMatrix,
    /// Right-hand side `A·x_ref`.
    pub b: Vec<f64>,
    /// Reference solution used to build `b`.
    pub x_ref: Vec<f64>,
}

impl SparseSystem {
    fn from_matrix(a: CsrMatrix) -> Self {
        let x_ref = reference_solution(a.n());
        let b = a.matvec(&x_ref);
        SparseSystem { a, b, x_ref }
    }

    /// Order of the system.
    pub fn n(&self) -> usize {
        self.a.n()
    }

    /// Scaled residual `‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of a candidate
    /// solution — the same normalisation the dense side uses.
    pub fn residual(&self, x: &[f64]) -> f64 {
        let ax = self.a.matvec(x);
        let r_inf = self
            .b
            .iter()
            .zip(&ax)
            .fold(0.0f64, |m, (b, a)| m.max((b - a).abs()));
        let a_inf = (0..self.n())
            .map(|i| self.a.row(i).1.iter().map(|v| v.abs()).sum())
            .fold(0.0f64, f64::max);
        let x_inf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let b_inf = self.b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let denom = a_inf * x_inf + b_inf;
        if denom == 0.0 {
            r_inf
        } else {
            r_inf / denom
        }
    }

    /// Max-norm error against the reference solution.
    pub fn error_vs_ref(&self, x: &[f64]) -> f64 {
        self.x_ref
            .iter()
            .zip(x)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Densify into the dense-side [`LinearSystem`] (oracle paths only).
    pub fn to_dense(&self) -> LinearSystem {
        LinearSystem {
            a: self.a.to_dense(),
            b: self.b.clone(),
            x_ref: Some(self.x_ref.clone()),
        }
    }
}

/// 5-point Laplacian on a `k × k` grid (`n = k²`): tridiagonal blocks of
/// `4` on the diagonal and `−1` towards the four grid neighbours. SPD,
/// ≤ 5 entries per row — the canonical memory-bound stencil system.
pub fn laplace2d(k: usize) -> SparseSystem {
    assert!(k > 0, "empty grid");
    let n = k * k;
    let rows = (0..n)
        .map(|row| {
            let (gy, gx) = (row / k, row % k);
            let mut entries = Vec::with_capacity(5);
            if gy > 0 {
                entries.push((row - k, -1.0));
            }
            if gx > 0 {
                entries.push((row - 1, -1.0));
            }
            entries.push((row, 4.0));
            if gx + 1 < k {
                entries.push((row + 1, -1.0));
            }
            if gy + 1 < k {
                entries.push((row + k, -1.0));
            }
            entries
        })
        .collect();
    SparseSystem::from_matrix(CsrMatrix::from_rows(rows))
}

/// 7-point Laplacian on a `k × k × k` grid (`n = k³`): `6` on the
/// diagonal, `−1` towards the six grid neighbours. SPD, ≤ 7 entries per
/// row.
pub fn laplace3d(k: usize) -> SparseSystem {
    assert!(k > 0, "empty grid");
    let n = k * k * k;
    let rows = (0..n)
        .map(|row| {
            let gz = row / (k * k);
            let gy = (row / k) % k;
            let gx = row % k;
            let mut entries = Vec::with_capacity(7);
            if gz > 0 {
                entries.push((row - k * k, -1.0));
            }
            if gy > 0 {
                entries.push((row - k, -1.0));
            }
            if gx > 0 {
                entries.push((row - 1, -1.0));
            }
            entries.push((row, 6.0));
            if gx + 1 < k {
                entries.push((row + 1, -1.0));
            }
            if gy + 1 < k {
                entries.push((row + k, -1.0));
            }
            if gz + 1 < k {
                entries.push((row + k * k, -1.0));
            }
            entries
        })
        .collect();
    SparseSystem::from_matrix(CsrMatrix::from_rows(rows))
}

/// Random symmetric strictly-diagonally-dominant system: a symmetric
/// pattern of about `extra` off-diagonal pairs per row with U(−1, 1)
/// values, the diagonal inflated one above the absolute row sum.
/// Symmetric + strictly dominant + positive diagonal ⇒ SPD (Gershgorin),
/// with condition number modest enough that CG converges fast.
pub fn random_spd(n: usize, extra: usize, seed: u64) -> SparseSystem {
    assert!(n > 0, "empty system");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5b_5bd5);
    let dist = Uniform::new_inclusive(-1.0, 1.0);
    let col = Uniform::new(0usize, n);
    // Symmetric off-diagonal pattern via a BTreeMap per row: insertion
    // order is randomised, storage order is sorted, duplicates collapse.
    let mut pattern: Vec<std::collections::BTreeMap<usize, f64>> = vec![Default::default(); n];
    for i in 0..n {
        for _ in 0..extra {
            let j = col.sample(&mut rng);
            if i != j {
                let v = dist.sample(&mut rng);
                pattern[i].insert(j, v);
                pattern[j].insert(i, v);
            }
        }
    }
    let rows = pattern
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let dom: f64 = row.values().map(|v| v.abs()).sum();
            let mut entries: Vec<(usize, f64)> = row.iter().map(|(&j, &v)| (j, v)).collect();
            let at = entries.partition_point(|&(j, _)| j < i);
            entries.insert(at, (i, dom + 1.0));
            entries
        })
        .collect();
    SparseSystem::from_matrix(CsrMatrix::from_rows(rows))
}

/// Named sparse generator kinds for configuration files and the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparseKind {
    /// [`laplace2d`] (n must be a perfect square)
    Laplace2d,
    /// [`laplace3d`] (n must be a perfect cube)
    Laplace3d,
    /// [`random_spd`] with ~4 off-diagonal pairs per row
    RandomSpd,
}

impl SparseKind {
    /// Generate a system of order `n` (stencil kinds round-trip `n`
    /// through the grid edge and assert it matches).
    pub fn generate(self, n: usize, seed: u64) -> SparseSystem {
        match self {
            SparseKind::Laplace2d => {
                let k = (n as f64).sqrt().round() as usize;
                assert_eq!(k * k, n, "Laplace2d needs a perfect square n, got {n}");
                laplace2d(k)
            }
            SparseKind::Laplace3d => {
                let k = (n as f64).cbrt().round() as usize;
                assert_eq!(k * k * k, n, "Laplace3d needs a perfect cube n, got {n}");
                laplace3d(k)
            }
            SparseKind::RandomSpd => random_spd(n, 4, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trips_through_dense() {
        let sys = laplace2d(4);
        let dense = sys.a.to_dense();
        let back = CsrMatrix::from_dense(&dense);
        assert_eq!(sys.a, back);
    }

    #[test]
    fn laplace2d_matches_dense_poisson() {
        // The dense generator and the sparse one must describe the same
        // operator, entry for entry.
        let k = 5;
        let sparse = laplace2d(k);
        let dense = crate::generate::poisson2d(k, 0);
        assert_eq!(sparse.a.to_dense(), dense.a);
        assert_eq!(sparse.b, dense.b);
    }

    #[test]
    fn spmv_agrees_with_dense_matvec() {
        for sys in [laplace3d(3), random_spd(40, 5, 7)] {
            let x: Vec<f64> = (0..sys.n()).map(|i| (i as f64).sin()).collect();
            let sparse = sys.a.matvec(&x);
            let dense = sys.a.to_dense().matvec(&x);
            for (s, d) in sparse.iter().zip(&dense) {
                assert!((s - d).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn generators_are_spd_shaped_and_deterministic() {
        let sys = random_spd(30, 4, 11);
        let a = sys.a.to_dense();
        for i in 0..30 {
            assert!(a[(i, i)] > 0.0);
            let off: f64 = (0..30).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)] > off, "row {i} lost dominance");
            for j in 0..30 {
                assert_eq!(a[(i, j)], a[(j, i)], "asymmetry at ({i},{j})");
            }
        }
        assert_eq!(random_spd(30, 4, 11).a, sys.a);
        assert_ne!(random_spd(30, 4, 12).a, sys.a);
    }

    #[test]
    fn reference_solution_closes_the_residual() {
        for sys in [laplace2d(6), laplace3d(3), random_spd(25, 3, 3)] {
            assert!(sys.residual(&sys.x_ref) < 1e-14);
            assert_eq!(sys.error_vs_ref(&sys.x_ref), 0.0);
        }
    }

    #[test]
    fn row_block_partitions_the_spmv() {
        let sys = laplace2d(4);
        let n = sys.n();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let full = sys.a.matvec(&x);
        let (lo, hi) = (5, 11);
        let block = sys.a.row_block(lo, hi);
        assert_eq!(block.local_rows(), hi - lo);
        let mut y = vec![0.0; hi - lo];
        block.spmv_block(&x, &mut y);
        assert_eq!(&full[lo..hi], &y[..]);
    }

    #[test]
    fn diagonal_extraction() {
        let sys = laplace3d(2);
        assert!(sys.a.diagonal().iter().all(|&d| d == 6.0));
        let sys = laplace2d(3);
        assert!(sys.a.diagonal().iter().all(|&d| d == 4.0));
    }

    #[test]
    fn kind_dispatch_checks_shape() {
        assert_eq!(SparseKind::Laplace2d.generate(49, 0).n(), 49);
        assert_eq!(SparseKind::Laplace3d.generate(27, 0).n(), 27);
        assert_eq!(SparseKind::RandomSpd.generate(10, 1).n(), 10);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn laplace2d_rejects_non_square() {
        let _ = SparseKind::Laplace2d.generate(10, 0);
    }

    /// Seeded awkward shapes for the parallel/dispatch property tests:
    /// empty rows, a dense row, single-entry rows, n = 0 and n = 1.
    fn awkward_shapes() -> Vec<CsrMatrix> {
        let n = 37;
        let mixed = CsrMatrix::from_rows(
            (0..n)
                .map(|i| match i % 4 {
                    0 => Vec::new(),                                    // empty row
                    1 => (0..n).map(|j| (j, 0.5 - j as f64)).collect(), // dense row
                    2 => vec![(i, 2.0)],
                    _ => vec![(i / 2, -1.0), (i, 3.0)],
                })
                .collect(),
        );
        vec![
            mixed,
            CsrMatrix::from_rows(Vec::new()),           // n = 0
            CsrMatrix::from_rows(vec![vec![(0, 2.5)]]), // n = 1
            CsrMatrix::from_rows(vec![Vec::new()]),     // n = 1, empty row
            laplace2d(96).a,                            // 9216 rows: real splits at 8 workers
            random_spd(1500, 5, 3).a,
        ]
    }

    #[test]
    fn spmv_parallel_is_bitwise_equal_to_sequential_for_any_worker_count() {
        for a in awkward_shapes() {
            let x: Vec<f64> = (0..a.n()).map(|i| (i as f64 * 0.31).cos()).collect();
            let mut want = vec![0.0; a.local_rows()];
            a.spmv(&x, &mut want);
            for workers in [1, 3, 8] {
                let mut got = vec![f64::NAN; a.local_rows()];
                a.spmv_parallel_with(&x, &mut got, workers);
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(g, w)| g.to_bits() == w.to_bits()),
                    "n={} workers={workers}",
                    a.n()
                );
            }
        }
    }

    #[test]
    fn spmv_kernel_paths_are_bit_identical_on_matrices() {
        use crate::simd::KernelPath;
        for a in awkward_shapes() {
            let x: Vec<f64> = (0..a.n()).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut want = vec![0.0; a.local_rows()];
            a.spmv_path(KernelPath::Scalar, &x, &mut want);
            for path in [KernelPath::Avx2, KernelPath::Avx512] {
                if !path.supported() {
                    continue;
                }
                for workers in [1, 3] {
                    let mut got = vec![f64::NAN; a.local_rows()];
                    a.spmv_parallel_path(path, &x, &mut got, workers);
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(g, w)| g.to_bits() == w.to_bits()),
                        "n={} {path} workers={workers}",
                        a.n()
                    );
                }
            }
        }
    }

    #[test]
    fn spmv_rows_partition_reassembles_the_block_sweep() {
        let sys = laplace2d(8);
        let a = sys.a.row_block(10, 50);
        let x: Vec<f64> = (0..sys.n()).map(|i| (i as f64).sqrt()).collect();
        let mut want = vec![0.0; a.local_rows()];
        a.spmv_block(&x, &mut want);
        // Odd rows first, then even: subset order must not matter.
        let odd: Vec<usize> = (0..a.local_rows()).filter(|i| i % 2 == 1).collect();
        let even: Vec<usize> = (0..a.local_rows()).filter(|i| i % 2 == 0).collect();
        let mut got = vec![f64::NAN; a.local_rows()];
        a.spmv_rows(&odd, &x, &mut got);
        a.spmv_rows(&even, &x, &mut got);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(g, w)| g.to_bits() == w.to_bits()));
    }

    #[test]
    fn default_spmv_workers_is_cached_and_honours_the_env() {
        let w = default_spmv_workers();
        assert!(w >= 1);
        if let Ok(v) = std::env::var("GREENLA_SPMV_THREADS") {
            assert_eq!(w, v.parse::<usize>().unwrap(), "env override respected");
        }
        assert_eq!(default_spmv_workers(), w);
    }

    #[test]
    fn nnz_matches_stencil_closed_form() {
        // k×k 5-point stencil: 5k² − 4k entries (each of the 2k(k−1)
        // interior edges contributes two off-diagonals).
        let k = 7;
        let sys = laplace2d(k);
        assert_eq!(sys.a.nnz(), 5 * k * k - 4 * k);
        // k³ 7-point stencil: 7k³ − 6k².
        let k = 4;
        let sys = laplace3d(k);
        assert_eq!(sys.a.nnz(), 7 * k * k * k - 6 * k * k);
    }
}
