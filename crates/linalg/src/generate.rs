//! Seeded generators for test linear systems.
//!
//! The paper loads its input system from a file so repeated measurements see
//! identical data; these generators produce those files deterministically.
//! All generators yield well-conditioned, uniquely solvable systems unless
//! stated otherwise, with a known reference solution (`x = 1, 2, …, n`
//! scaled) so residual checks need no factorisation.

use crate::matrix::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A square dense linear system `A·x = b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearSystem {
    /// Coefficient matrix (square).
    pub a: Matrix,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// Reference solution used to build `b`, if known.
    pub x_ref: Option<Vec<f64>>,
}

impl LinearSystem {
    /// Order of the system.
    pub fn n(&self) -> usize {
        self.a.rows()
    }

    /// Scaled residual of a candidate solution (see
    /// [`crate::norms::scaled_residual`]).
    pub fn residual(&self, x: &[f64]) -> f64 {
        crate::norms::scaled_residual(&self.a, x, &self.b)
    }

    /// Max-norm error against the reference solution, if one is known.
    pub fn error_vs_ref(&self, x: &[f64]) -> Option<f64> {
        self.x_ref.as_ref().map(|r| {
            r.iter()
                .zip(x)
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
        })
    }
}

pub(crate) fn reference_solution(n: usize) -> Vec<f64> {
    // Bounded, non-trivial entries: 1 + (i mod 7)/7 with alternating sign.
    (0..n)
        .map(|i| {
            let base = 1.0 + (i % 7) as f64 / 7.0;
            if i % 2 == 0 {
                base
            } else {
                -base
            }
        })
        .collect()
}

fn with_reference_rhs(a: Matrix) -> LinearSystem {
    let x = reference_solution(a.rows());
    let b = a.matvec(&x);
    LinearSystem {
        a,
        b,
        x_ref: Some(x),
    }
}

/// Strictly row-diagonally-dominant random system: entries U(−1, 1), the
/// diagonal inflated above the row sum. Always non-singular, condition
/// number modest; the workhorse input for solver exactness tests.
pub fn diag_dominant(n: usize, seed: u64) -> LinearSystem {
    assert!(n > 0, "empty system");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(-1.0, 1.0);
    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            a[(i, j)] = dist.sample(&mut rng);
        }
    }
    for i in 0..n {
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
        let sign = if a[(i, i)] >= 0.0 { 1.0 } else { -1.0 };
        a[(i, i)] = sign * (row_sum + 1.0);
    }
    with_reference_rhs(a)
}

/// Symmetric positive-definite system `A = Mᵀ·M + n·I` with random `M`.
pub fn spd(n: usize, seed: u64) -> LinearSystem {
    assert!(n > 0, "empty system");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5350445f);
    let dist = Uniform::new_inclusive(-1.0, 1.0);
    let m = Matrix::from_fn(n, n, |_, _| dist.sample(&mut rng));
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += m[(k, i)] * m[(k, j)];
            }
            a[(i, j)] = s / n as f64 + if i == j { 1.0 } else { 0.0 };
        }
    }
    with_reference_rhs(a)
}

/// Nodal conductance matrix of a random resistor ladder network with a
/// grounded reference node — the class of systems the Inhibition Method was
/// invented for (Ciampolini 1963). Diagonally dominant and symmetric.
pub fn circuit_network(n: usize, seed: u64) -> LinearSystem {
    assert!(n > 0, "empty system");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc19c71);
    let gdist = Uniform::new(0.1, 10.0); // conductances in siemens
    let mut a = Matrix::zeros(n, n);
    // Chain conductances between adjacent nodes plus random cross links.
    let connect = |a: &mut Matrix, i: usize, j: usize, g: f64| {
        a[(i, i)] += g;
        a[(j, j)] += g;
        a[(i, j)] -= g;
        a[(j, i)] -= g;
    };
    for i in 0..n.saturating_sub(1) {
        let g = gdist.sample(&mut rng);
        connect(&mut a, i, i + 1, g);
    }
    let extra = Uniform::new(0usize, n);
    for _ in 0..n {
        let i = extra.sample(&mut rng);
        let j = extra.sample(&mut rng);
        if i != j {
            let g = gdist.sample(&mut rng);
            connect(&mut a, i, j, g);
        }
    }
    // Ground conductance at every node keeps the matrix non-singular.
    for i in 0..n {
        a[(i, i)] += gdist.sample(&mut rng);
    }
    with_reference_rhs(a)
}

/// Dense 5-point-Laplacian system on a `k × k` grid (`n = k²` unknowns):
/// the classic PDE workload motivating dense solvers in the paper's intro.
pub fn poisson2d(k: usize, _seed: u64) -> LinearSystem {
    assert!(k > 0, "empty grid");
    let n = k * k;
    let mut a = Matrix::zeros(n, n);
    for gy in 0..k {
        for gx in 0..k {
            let row = gy * k + gx;
            a[(row, row)] = 4.0;
            if gx > 0 {
                a[(row, row - 1)] = -1.0;
            }
            if gx + 1 < k {
                a[(row, row + 1)] = -1.0;
            }
            if gy > 0 {
                a[(row, row - k)] = -1.0;
            }
            if gy + 1 < k {
                a[(row, row + k)] = -1.0;
            }
        }
    }
    with_reference_rhs(a)
}

/// Banded diagonally-dominant system with bandwidth `band` (number of
/// non-zero off-diagonals on each side). ScaLAPACK's banded solvers
/// motivate the shape; here it exercises the dense solvers on the sparsity
/// pattern (the paper's library also targets banded systems).
pub fn banded(n: usize, band: usize, seed: u64) -> LinearSystem {
    assert!(n > 0, "empty system");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xba4ded);
    let dist = Uniform::new_inclusive(-1.0, 1.0);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band + 1).min(n);
        for j in lo..hi {
            a[(i, j)] = dist.sample(&mut rng);
        }
        let off: f64 = (lo..hi).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] = off + 1.0;
    }
    with_reference_rhs(a)
}

/// Deliberately ill-conditioned system: geometric singular-value decay
/// `σ_k = decay^k` imposed on a random orthogonal-ish basis (via two
/// Householder reflections). Condition number ≈ `decay^{-(n-1)}`. Used by
/// iterative-refinement and stability tests; `decay` close to 1 stays
/// benign, `0.7` at n=40 is already cond ≈ 10⁶.
pub fn ill_conditioned(n: usize, decay: f64, seed: u64) -> LinearSystem {
    assert!(n > 0, "empty system");
    assert!((0.0..=1.0).contains(&decay) && decay > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x111c0d);
    let dist = Uniform::new_inclusive(-1.0, 1.0);
    // A = H1 · D · H2 with Householder H = I − 2vvᵀ (orthogonal, exact).
    let unit_vec = |rng: &mut ChaCha8Rng| {
        let mut v: Vec<f64> = (0..n).map(|_| dist.sample(rng)).collect();
        let norm = crate::blas1::dnrm2(&v);
        for x in &mut v {
            *x /= norm;
        }
        v
    };
    let v1 = unit_vec(&mut rng);
    let v2 = unit_vec(&mut rng);
    let mut a = Matrix::zeros(n, n);
    // (H1 D H2)_{ij} = Σ_k H1_{ik} σ_k H2_{kj}
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                let h1 = (if i == k { 1.0 } else { 0.0 }) - 2.0 * v1[i] * v1[k];
                let h2 = (if k == j { 1.0 } else { 0.0 }) - 2.0 * v2[k] * v2[j];
                s += h1 * decay.powi(k as i32) * h2;
            }
            a[(i, j)] = s;
        }
    }
    with_reference_rhs(a)
}

/// Named generator kinds for configuration files and the harness CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// [`diag_dominant`]
    DiagDominant,
    /// [`spd`]
    Spd,
    /// [`circuit_network`]
    Circuit,
    /// [`poisson2d`] (n must be a perfect square)
    Poisson2d,
}

impl SystemKind {
    /// Generate a system of order `n` (for `Poisson2d`, `n` must be a
    /// perfect square).
    pub fn generate(self, n: usize, seed: u64) -> LinearSystem {
        match self {
            SystemKind::DiagDominant => diag_dominant(n, seed),
            SystemKind::Spd => spd(n, seed),
            SystemKind::Circuit => circuit_network(n, seed),
            SystemKind::Poisson2d => {
                let k = (n as f64).sqrt().round() as usize;
                assert_eq!(k * k, n, "Poisson2d needs a perfect square n, got {n}");
                poisson2d(k, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_dominant_is_dominant() {
        let sys = diag_dominant(20, 7);
        for i in 0..20 {
            let off: f64 = (0..20)
                .filter(|&j| j != i)
                .map(|j| sys.a[(i, j)].abs())
                .sum();
            assert!(sys.a[(i, i)].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = diag_dominant(10, 42);
        let b = diag_dominant(10, 42);
        assert_eq!(a.a, b.a);
        assert_eq!(a.b, b.b);
        let c = diag_dominant(10, 43);
        assert_ne!(a.a, c.a);
    }

    #[test]
    fn reference_rhs_consistent() {
        let sys = diag_dominant(16, 3);
        let x = sys.x_ref.clone().unwrap();
        assert!(sys.residual(&x) < 1e-14);
    }

    #[test]
    fn spd_is_symmetric_with_positive_diag() {
        let sys = spd(12, 5);
        for i in 0..12 {
            assert!(sys.a[(i, i)] > 0.0);
            for j in 0..12 {
                assert!((sys.a[(i, j)] - sys.a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn circuit_rows_sum_to_ground_conductance() {
        let sys = circuit_network(15, 9);
        // Off-diagonals are non-positive, matrix symmetric, strictly dominant.
        for i in 0..15 {
            let off: f64 = (0..15).filter(|&j| j != i).map(|j| sys.a[(i, j)]).sum();
            assert!(sys.a[(i, i)] > -off, "row {i} lost dominance");
            for j in 0..15 {
                if i != j {
                    assert!(sys.a[(i, j)] <= 0.0);
                }
            }
        }
    }

    #[test]
    fn poisson_structure() {
        let sys = poisson2d(3, 0);
        assert_eq!(sys.n(), 9);
        assert_eq!(sys.a[(0, 0)], 4.0);
        assert_eq!(sys.a[(0, 1)], -1.0);
        assert_eq!(sys.a[(0, 3)], -1.0);
        assert_eq!(sys.a[(0, 2)], 0.0); // no wraparound across grid rows
        assert_eq!(sys.a[(2, 3)], 0.0);
    }

    #[test]
    fn banded_respects_bandwidth_and_dominance() {
        let sys = banded(30, 3, 4);
        for i in 0..30 {
            for j in 0..30 {
                if (i as isize - j as isize).unsigned_abs() > 3 {
                    assert_eq!(sys.a[(i, j)], 0.0, "entry ({i},{j}) outside band");
                }
            }
            let off: f64 = (0..30)
                .filter(|&j| j != i)
                .map(|j| sys.a[(i, j)].abs())
                .sum();
            assert!(sys.a[(i, i)] > off);
        }
        assert!(sys.residual(&sys.x_ref.clone().unwrap()) < 1e-13);
    }

    #[test]
    fn ill_conditioned_has_geometric_spectrum() {
        let n = 20;
        let decay = 0.6f64;
        let sys = ill_conditioned(n, decay, 5);
        // ‖A‖₂ = σ_max = 1; Frobenius² = Σ σ_k² (orthogonal invariance).
        let fro2: f64 = sys.a.as_slice().iter().map(|v| v * v).sum();
        let expect: f64 = (0..n).map(|k| decay.powi(2 * k as i32)).sum();
        assert!((fro2 - expect).abs() < 1e-9, "{fro2} vs {expect}");
        assert!(sys.residual(&sys.x_ref.clone().unwrap()) < 1e-10);
    }

    #[test]
    fn kind_dispatch() {
        let s = SystemKind::Poisson2d.generate(16, 1);
        assert_eq!(s.n(), 16);
        let s = SystemKind::Circuit.generate(8, 1);
        assert_eq!(s.n(), 8);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn poisson_rejects_non_square() {
        // message comes from the assert in generate()
        let _ = SystemKind::Poisson2d.generate(10, 0);
    }
}
