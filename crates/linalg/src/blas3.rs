//! Level-3 BLAS over column-major buffers with explicit leading dimension.
//!
//! `dgemm` uses a cache-blocked loop nest with a column-panel inner kernel;
//! it is the workhorse of the blocked LU trailing update. `dtrsm` implements
//! the two variants the solvers need.

use crate::block::{BlockMut, BlockRef};

/// Cache-block edge for the `dgemm` loop nest (tuned for L1-resident panels
/// of `f64`; 64×64×64 ≈ 96 KiB working set across three operands).
const MC: usize = 64;
const NC: usize = 64;
const KC: usize = 64;

/// `C ← α·A·B + β·C` with `A: m×k`, `B: k×n`, `C: m×n` column-major views
/// (see [`crate::block`]).
pub fn dgemm(alpha: f64, a: BlockRef, b: BlockRef, beta: f64, mut c: BlockMut) {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    assert!(
        a.rows() == m && b.rows() == k && b.cols() == n,
        "dgemm shape mismatch: ({}×{k}) · ({}×{}) → ({m}×{n})",
        a.rows(),
        b.rows(),
        b.cols(),
    );
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    let (a, b) = (a.data(), b.data());
    let c = c.data_mut();
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else {
                for v in col {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                // Inner kernel: C[ic.., jc..] += alpha * A[ic.., pc..] * B[pc.., jc..]
                for j in 0..nb {
                    let bcol = &b[(jc + j) * ldb + pc..(jc + j) * ldb + pc + kb];
                    let ccol_off = (jc + j) * ldc + ic;
                    for (p, &bv) in bcol.iter().enumerate() {
                        let abv = alpha * bv;
                        if abv == 0.0 {
                            continue;
                        }
                        let acol = &a[(pc + p) * lda + ic..(pc + p) * lda + ic + mb];
                        let ccol = &mut c[ccol_off..ccol_off + mb];
                        for i in 0..mb {
                            ccol[i] += acol[i] * abv;
                        }
                    }
                }
            }
        }
    }
}

/// `B ← L⁻¹·B` where `L` is the unit lower triangle of the leading `m × m`
/// block of `a`; `B` is `m × n`. (LAPACK `dtrsm('L','L','N','U')`.)
pub fn dtrsm_left_lower_unit(m: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= m.max(1) && ldb >= m.max(1));
    for j in 0..n {
        let bcol = &mut b[j * ldb..j * ldb + m];
        for kk in 0..m {
            let bk = bcol[kk];
            if bk != 0.0 {
                let acol = &a[kk * lda..kk * lda + m];
                for i in kk + 1..m {
                    bcol[i] -= bk * acol[i];
                }
            }
        }
    }
}

/// `B ← U⁻¹·B` where `U` is the non-unit upper triangle of the leading
/// `m × m` block of `a`; `B` is `m × n`. (LAPACK `dtrsm('L','U','N','N')`.)
/// Panics on a zero diagonal.
pub fn dtrsm_left_upper(m: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= m.max(1) && ldb >= m.max(1));
    for j in 0..n {
        let bcol = &mut b[j * ldb..j * ldb + m];
        for kk in (0..m).rev() {
            let d = a[kk + kk * lda];
            assert!(d != 0.0, "singular upper triangle at {kk}");
            bcol[kk] /= d;
            let bk = bcol[kk];
            if bk != 0.0 {
                let acol = &a[kk * lda..kk * lda + kk];
                for i in 0..kk {
                    bcol[i] -= bk * acol[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn approx_mat(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    fn naive_mm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive_small() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) - (j as f64) * 0.5);
        let mut c = Matrix::zeros(3, 2);
        dgemm(1.0, a.block(), b.block(), 0.0, c.block_mut());
        approx_mat(&c, &naive_mm(&a, &b), 1e-12);
    }

    #[test]
    fn gemm_matches_naive_beyond_cache_blocks() {
        let n = 97; // > MC/NC/KC and not a multiple of the block size
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let mut c = Matrix::zeros(n, n);
        dgemm(1.0, a.block(), b.block(), 0.0, c.block_mut());
        approx_mat(&c, &naive_mm(&a, &b), 1e-9);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::from_rows(&[&[10.0, 10.0], &[10.0, 10.0]]);
        dgemm(2.0, a.block(), b.block(), 0.5, c.block_mut());
        assert_eq!(c[(0, 0)], 7.0);
        assert_eq!(c[(1, 1)], 13.0);
    }

    #[test]
    fn gemm_submatrix_with_ld() {
        // Multiply 2x2 sub-blocks embedded in 4x4 buffers.
        let big_a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let big_b = Matrix::identity(4);
        let mut c = Matrix::zeros(2, 2);
        // A block at (1,1), B block at (0,0)
        let a_off = 1 + 4; // (1,1) col-major in 4x4
        dgemm(
            1.0,
            BlockRef::new(&big_a.as_slice()[a_off..], 2, 2, 4),
            BlockRef::new(big_b.as_slice(), 2, 2, 4),
            0.0,
            c.block_mut(),
        );
        assert_eq!(c[(0, 0)], big_a[(1, 1)]);
        assert_eq!(c[(1, 1)], big_a[(2, 2)]);
    }

    #[test]
    fn trsm_lower_unit_inverts() {
        let l = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[2.0, 1.0, 0.0], &[3.0, 4.0, 1.0]]);
        let rhs = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut b = naive_mm(&l, &rhs);
        dtrsm_left_lower_unit(3, 2, l.as_slice(), 3, b.as_mut_slice(), 3);
        approx_mat(&b, &rhs, 1e-12);
    }

    #[test]
    fn trsm_upper_inverts() {
        let u = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[0.0, 3.0, 2.0], &[0.0, 0.0, 4.0]]);
        let rhs = Matrix::from_fn(3, 2, |i, j| (2 * i + j) as f64 - 1.5);
        let mut b = naive_mm(&u, &rhs);
        dtrsm_left_upper(3, 2, u.as_slice(), 3, b.as_mut_slice(), 3);
        approx_mat(&b, &rhs, 1e-12);
    }
}
