//! Level-3 BLAS over column-major buffers with explicit leading dimension.
//!
//! `dgemm` is a packed, register-blocked implementation in the classic
//! GotoBLAS/BLIS shape: the operands are repacked once per cache block into
//! contiguous microkernel-ordered buffers (`A` as `MR`-row micro-panels
//! scaled by `α`, `B` as `NR`-column micro-panels), and all arithmetic
//! happens in an unrolled [`crate::tune::MR`]`×`[`crate::tune::NR`]
//! microkernel. Block sizes come from [`crate::tune::Blocking`]; the
//! microkernel shape is fixed at compile time, but the microkernel *body*
//! is runtime-dispatched by [`crate::simd`] (scalar / AVX2+FMA / AVX-512F,
//! overridable via `GREENLA_KERNEL`); [`dgemm_blocked_path`] pins an
//! explicit path for tests and benchmarks. [`crate::par`] layers a
//! column-partitioned multithreaded front end over the same loop nest.
//!
//! `dtrsm` is blocked the same way: small diagonal blocks are solved with a
//! short substitution loop and the (dominant) trailing updates are routed
//! through the packed `dgemm`, so the triangular solves inherit the GEMM
//! throughput. [`dgemm_reference`] preserves the pre-packing scalar loop
//! nest as the correctness oracle and benchmark baseline.
//!
//! Unlike its predecessor, the inner loops have no `x == 0.0` early-skip:
//! reference BLAS propagates `0 × NaN = NaN` and `0 × ∞ = NaN` from the
//! `A`/`B` operands, and the branch was a mispredicted load-dependent jump
//! in the hottest loop of the workspace.

use crate::block::{BlockMut, BlockRef};
use crate::simd::{self, KernelPath, KernelSet};
use crate::tune::{Blocking, MR, NR};
use std::cell::RefCell;

/// `C ← α·A·B + β·C` with `A: m×k`, `B: k×n`, `C: m×n` column-major views
/// (see [`crate::block`]), using the default [`Blocking`].
pub fn dgemm(alpha: f64, a: BlockRef, b: BlockRef, beta: f64, c: BlockMut) {
    dgemm_blocked(alpha, a, b, beta, c, &Blocking::default_blocking());
}

/// [`dgemm`] with explicit cache-blocking parameters (benchmark sweeps and
/// autotuning go through here). The microkernel is the process-wide
/// dispatched one ([`crate::simd::resolved`]).
pub fn dgemm_blocked(
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    c: BlockMut,
    tune: &Blocking,
) {
    dgemm_with(simd::active_kernel_set(), alpha, a, b, beta, c, tune);
}

/// [`dgemm_blocked`] pinned to an explicit [`KernelPath`], bypassing the
/// `GREENLA_KERNEL` dispatch — the cross-path property tests and the bench
/// suite exercise every path in one process through here. Panics when the
/// CPU cannot execute `path`.
pub fn dgemm_blocked_path(
    path: KernelPath,
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    c: BlockMut,
    tune: &Blocking,
) {
    dgemm_with(simd::kernel_set(path), alpha, a, b, beta, c, tune);
}

/// The packed loop nest, generic over the dispatched kernel set;
/// everything above is a thin wrapper choosing `set`.
pub(crate) fn dgemm_with(
    set: KernelSet,
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    mut c: BlockMut,
    tune: &Blocking,
) {
    tune.validate();
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    assert!(
        a.rows() == m && b.rows() == k && b.cols() == n,
        "dgemm shape mismatch: ({}×{k}) · ({}×{}) → ({m}×{n})",
        a.rows(),
        b.rows(),
        b.cols(),
    );
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    let (a, b) = (a.data(), b.data());
    let c = c.data_mut();
    if m == 0 || n == 0 {
        return;
    }
    scale_columns(c, m, n, ldc, beta);
    if alpha == 0.0 || k == 0 {
        return;
    }
    // Clamp block sizes to the problem so the packing scratch stays
    // proportional to the actual working set (solver call sites hand us
    // many small panel updates).
    let mc = tune.mc.min(m.next_multiple_of(MR));
    let nc = tune.nc.min(n.next_multiple_of(NR));
    let kc = tune.kc.min(k);
    with_pack_scratch(mc * kc, kc * nc, |ap, bp| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b(bp, b, ldb, pc, jc, kb, nb);
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a(ap, &a[pc * lda + ic..], lda, mb, kb, alpha);
                    for jr in (0..nb).step_by(NR) {
                        let w = NR.min(nb - jr);
                        let bpan = &bp[(jr / NR) * NR * kb..][..NR * kb];
                        let col0 = (jc + jr) * ldc + ic;
                        let mut ir = 0;
                        // Full panel pairs prefer the two-panel kernel when
                        // the path has one (bit-identical to two single
                        // calls — see `simd::Microkernel2`); partial bottom
                        // panels always take the single-panel kernel.
                        while ir + 2 * MR <= mb {
                            let Some(ukr2) = set.ukr2 else { break };
                            let apan2 = &ap[(ir / MR) * MR * kb..][..2 * MR * kb];
                            let mut acc0 = [0.0f64; MR * NR];
                            let mut acc1 = [0.0f64; MR * NR];
                            ukr2(kb, apan2, bpan, &mut acc0, &mut acc1);
                            add_tile(c, col0 + ir, ldc, w, MR, &acc0);
                            add_tile(c, col0 + ir + MR, ldc, w, MR, &acc1);
                            ir += 2 * MR;
                        }
                        while ir < mb {
                            let h = MR.min(mb - ir);
                            let apan = &ap[(ir / MR) * MR * kb..][..MR * kb];
                            let mut acc = [0.0f64; MR * NR];
                            (set.ukr)(kb, apan, bpan, &mut acc);
                            add_tile(c, col0 + ir, ldc, w, h, &acc);
                            ir += MR;
                        }
                    }
                }
            }
        }
    });
}

/// Add the valid `h×w` corner of an accumulator tile into `C` at linear
/// offset `c0` (the microkernels compute full zero-padded tiles; this
/// write-back clips to the real rows/columns).
#[inline]
fn add_tile(c: &mut [f64], c0: usize, ldc: usize, w: usize, h: usize, acc: &[f64; MR * NR]) {
    for j in 0..w {
        let ccol = &mut c[c0 + j * ldc..][..h];
        let atile = &acc[j * MR..][..h];
        for i in 0..h {
            ccol[i] += atile[i];
        }
    }
}

/// `C ← β·C` over an `m×n` block (the β = 0 case writes zeros without
/// reading `C`, per BLAS convention).
fn scale_columns(c: &mut [f64], m: usize, n: usize, ldc: usize, beta: f64) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

/// Pack the `mb×kb` block of `A` whose top-left corner is `a[0]` (the
/// caller offsets the slice to `(ic, pc)`) into `MR`-row micro-panels,
/// folding `α` in (each element of `A` is packed once per `NC` slab, so the
/// scale comes out of the microkernel entirely). Partial bottom panels are
/// zero-padded: the microkernel then computes full tiles unconditionally
/// and the write-back simply clips to the valid rows.
fn pack_a(ap: &mut [f64], a: &[f64], lda: usize, mb: usize, kb: usize, alpha: f64) {
    for pr in 0..mb.div_ceil(MR) {
        let r0 = pr * MR;
        let h = MR.min(mb - r0);
        let dst = &mut ap[pr * MR * kb..(pr + 1) * MR * kb];
        for p in 0..kb {
            let src = &a[p * lda + r0..][..h];
            let d = &mut dst[p * MR..p * MR + MR];
            for r in 0..h {
                d[r] = alpha * src[r];
            }
            d[h..].fill(0.0);
        }
    }
}

/// Pack the `kb×nb` panel of `B` at `(pc, jc)` into `NR`-column
/// micro-panels (row-major within a panel: the microkernel reads one
/// `NR`-wide sliver per `p`). Partial right panels are zero-padded.
fn pack_b(bp: &mut [f64], b: &[f64], ldb: usize, pc: usize, jc: usize, kb: usize, nb: usize) {
    for pn in 0..nb.div_ceil(NR) {
        let c0 = pn * NR;
        let w = NR.min(nb - c0);
        let dst = &mut bp[pn * NR * kb..(pn + 1) * NR * kb];
        for p in 0..kb {
            let d = &mut dst[p * NR..p * NR + NR];
            for cc in 0..w {
                d[cc] = b[(jc + c0 + cc) * ldb + pc + p];
            }
            d[w..].fill(0.0);
        }
    }
}

thread_local! {
    /// Per-thread packing scratch, reused across calls so the hot path
    /// performs no steady-state allocation (each simulated rank is one OS
    /// thread, so the buffers are effectively per-rank).
    static PACK_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Slack kept at the head of each pack buffer so the panels can start on
/// a cache-line boundary, in doubles. A `Vec<f64>` is only guaranteed
/// 16-byte alignment, and a packed micro-panel row is `MR = 8` doubles =
/// exactly one 64-byte line — so with an unaligned base every panel load
/// straddles two lines, which measured as a stable ~1.6× throughput swing
/// (allocation-dependent, so it flipped between whole process runs).
const PACK_ALIGN: usize = 8;

/// Elements to skip from `p` to the next 64-byte boundary.
fn cache_align_offset(p: *const f64) -> usize {
    let off = p.align_offset(64);
    debug_assert!(off < PACK_ALIGN);
    off
}

fn with_pack_scratch(a_len: usize, b_len: usize, f: impl FnOnce(&mut [f64], &mut [f64])) {
    PACK_SCRATCH.with(|cell| {
        let mut s = cell.borrow_mut();
        let (ap, bp) = &mut *s;
        if ap.len() < a_len + PACK_ALIGN {
            ap.resize(a_len + PACK_ALIGN, 0.0);
        }
        if bp.len() < b_len + PACK_ALIGN {
            bp.resize(b_len + PACK_ALIGN, 0.0);
        }
        let a_off = cache_align_offset(ap.as_ptr());
        let b_off = cache_align_offset(bp.as_ptr());
        f(&mut ap[a_off..a_off + a_len], &mut bp[b_off..b_off + b_len]);
    });
}

/// The pre-packing cache-blocked scalar `dgemm` loop nest, kept as the
/// correctness oracle for the property tests and the baseline the bench
/// trajectory measures speedups against. (The historical `α·b == 0`
/// inner-loop skip is gone here too: it broke `0 × NaN`/`0 × ∞`
/// propagation.)
pub fn dgemm_reference(alpha: f64, a: BlockRef, b: BlockRef, beta: f64, mut c: BlockMut) {
    const BC: usize = 64;
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    assert!(
        a.rows() == m && b.rows() == k && b.cols() == n,
        "dgemm_reference shape mismatch"
    );
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    let (a, b) = (a.data(), b.data());
    let c = c.data_mut();
    if m == 0 || n == 0 {
        return;
    }
    scale_columns(c, m, n, ldc, beta);
    if alpha == 0.0 || k == 0 {
        return;
    }
    for jc in (0..n).step_by(BC) {
        let nb = BC.min(n - jc);
        for pc in (0..k).step_by(BC) {
            let kb = BC.min(k - pc);
            for ic in (0..m).step_by(BC) {
                let mb = BC.min(m - ic);
                for j in 0..nb {
                    let bcol = &b[(jc + j) * ldb + pc..(jc + j) * ldb + pc + kb];
                    let ccol_off = (jc + j) * ldc + ic;
                    for (p, &bv) in bcol.iter().enumerate() {
                        let abv = alpha * bv;
                        let acol = &a[(pc + p) * lda + ic..(pc + p) * lda + ic + mb];
                        let ccol = &mut c[ccol_off..ccol_off + mb];
                        for i in 0..mb {
                            ccol[i] += acol[i] * abv;
                        }
                    }
                }
            }
        }
    }
}

/// Diagonal-block edge for the blocked triangular solves: the substitution
/// runs on `TRSM_BLOCK`-row diagonal blocks and everything below/above is a
/// packed-GEMM update, so ~`1 − TRSM_BLOCK/m` of the flops go through the
/// microkernel.
pub const TRSM_BLOCK: usize = 64;

/// `B ← L⁻¹·B` where `L` is the unit lower triangle of the leading `m × m`
/// block of `a`; `B` is `m × n`. (LAPACK `dtrsm('L','L','N','U')`.)
pub fn dtrsm_left_lower_unit(m: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= m.max(1) && ldb >= m.max(1));
    if m == 0 || n == 0 {
        return;
    }
    let mut tmp = vec![0.0f64; TRSM_BLOCK.min(m) * n];
    let mut k0 = 0;
    while k0 < m {
        let kb = TRSM_BLOCK.min(m - k0);
        // Forward substitution inside the diagonal block.
        for j in 0..n {
            let bcol = &mut b[j * ldb + k0..j * ldb + k0 + kb];
            for kk in 0..kb {
                let bk = bcol[kk];
                let acol = &a[(k0 + kk) * lda + k0..][..kb];
                for i in kk + 1..kb {
                    bcol[i] -= bk * acol[i];
                }
            }
        }
        let rest = k0 + kb;
        if rest < m {
            // Trailing update B[rest.., :] −= L[rest.., k0..rest] · B[k0..rest, :]
            // through the packed GEMM; the solved rows are copied out first
            // because source and destination interleave within B's columns.
            let t = &mut tmp[..kb * n];
            for j in 0..n {
                t[j * kb..(j + 1) * kb].copy_from_slice(&b[j * ldb + k0..j * ldb + k0 + kb]);
            }
            dgemm(
                -1.0,
                BlockRef::new(&a[k0 * lda + rest..], m - rest, kb, lda),
                BlockRef::new(t, kb, n, kb),
                1.0,
                BlockMut::new(&mut b[rest..], m - rest, n, ldb),
            );
        }
        k0 = rest;
    }
}

/// `B ← U⁻¹·B` where `U` is the non-unit upper triangle of the leading
/// `m × m` block of `a`; `B` is `m × n`. (LAPACK `dtrsm('L','U','N','N')`.)
/// Panics on a zero diagonal.
pub fn dtrsm_left_upper(m: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= m.max(1) && ldb >= m.max(1));
    if m == 0 || n == 0 {
        return;
    }
    let mut tmp = vec![0.0f64; TRSM_BLOCK.min(m) * n];
    let mut k1 = m;
    while k1 > 0 {
        let kb = TRSM_BLOCK.min(k1);
        let k0 = k1 - kb;
        // Backward substitution inside the diagonal block.
        for j in 0..n {
            let bcol = &mut b[j * ldb + k0..j * ldb + k1];
            for kk in (0..kb).rev() {
                let g = k0 + kk;
                let d = a[g + g * lda];
                assert!(d != 0.0, "singular upper triangle at {g}");
                bcol[kk] /= d;
                let bk = bcol[kk];
                let acol = &a[g * lda + k0..][..kk];
                for i in 0..kk {
                    bcol[i] -= bk * acol[i];
                }
            }
        }
        if k0 > 0 {
            // Update above: B[..k0, :] −= U[..k0, k0..k1] · B[k0..k1, :].
            let t = &mut tmp[..kb * n];
            for j in 0..n {
                t[j * kb..(j + 1) * kb].copy_from_slice(&b[j * ldb + k0..j * ldb + k1]);
            }
            dgemm(
                -1.0,
                BlockRef::new(&a[k0 * lda..], k0, kb, lda),
                BlockRef::new(t, kb, n, kb),
                1.0,
                BlockMut::new(&mut b[..], k0, n, ldb),
            );
        }
        k1 = k0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn approx_mat(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    fn naive_mm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive_small() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) - (j as f64) * 0.5);
        let mut c = Matrix::zeros(3, 2);
        dgemm(1.0, a.block(), b.block(), 0.0, c.block_mut());
        approx_mat(&c, &naive_mm(&a, &b), 1e-12);
    }

    #[test]
    fn gemm_matches_naive_beyond_cache_blocks() {
        let n = 97; // > MR/NR tiles and not a multiple of any block size
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let mut c = Matrix::zeros(n, n);
        dgemm(1.0, a.block(), b.block(), 0.0, c.block_mut());
        approx_mat(&c, &naive_mm(&a, &b), 1e-9);
    }

    #[test]
    fn gemm_matches_reference_across_blocking_choices() {
        let n = 150; // larger than mc=MR, spans several microtiles
        let a = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 23) as f64 - 11.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 11 + j * 2) % 19) as f64 - 9.0);
        let mut want = Matrix::zeros(n, n);
        dgemm_reference(0.75, a.block(), b.block(), 0.0, want.block_mut());
        for tune in [
            Blocking {
                mc: 8,
                nc: 8,
                kc: 1,
            },
            Blocking {
                mc: 16,
                nc: 24,
                kc: 7,
            },
            Blocking::default_blocking(),
        ] {
            let mut c = Matrix::zeros(n, n);
            dgemm_blocked(0.75, a.block(), b.block(), 0.0, c.block_mut(), &tune);
            approx_mat(&c, &want, 1e-9);
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::from_rows(&[&[10.0, 10.0], &[10.0, 10.0]]);
        dgemm(2.0, a.block(), b.block(), 0.5, c.block_mut());
        assert_eq!(c[(0, 0)], 7.0);
        assert_eq!(c[(1, 1)], 13.0);
    }

    #[test]
    fn gemm_submatrix_with_ld() {
        // Multiply 2x2 sub-blocks embedded in 4x4 buffers.
        let big_a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let big_b = Matrix::identity(4);
        let mut c = Matrix::zeros(2, 2);
        // A block at (1,1), B block at (0,0)
        let a_off = 1 + 4; // (1,1) col-major in 4x4
        dgemm(
            1.0,
            BlockRef::new(&big_a.as_slice()[a_off..], 2, 2, 4),
            BlockRef::new(big_b.as_slice(), 2, 2, 4),
            0.0,
            c.block_mut(),
        );
        assert_eq!(c[(0, 0)], big_a[(1, 1)]);
        assert_eq!(c[(1, 1)], big_a[(2, 2)]);
    }

    #[test]
    fn gemm_propagates_nan_and_inf_through_zero_operands() {
        // 0 × NaN and 0 × ∞ must produce NaN in the accumulation, as
        // reference BLAS does — the old kernel's `α·b == 0` skip dropped
        // these contributions silently.
        let a = Matrix::from_rows(&[&[f64::NAN, 1.0], &[f64::INFINITY, 2.0]]);
        let b = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let mut c = Matrix::zeros(2, 2);
        dgemm(1.0, a.block(), b.block(), 0.0, c.block_mut());
        for j in 0..2 {
            for i in 0..2 {
                assert!(c[(i, j)].is_nan(), "({i},{j}) = {} must be NaN", c[(i, j)]);
            }
        }
    }

    #[test]
    fn trsm_lower_unit_inverts() {
        let l = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[2.0, 1.0, 0.0], &[3.0, 4.0, 1.0]]);
        let rhs = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut b = naive_mm(&l, &rhs);
        dtrsm_left_lower_unit(3, 2, l.as_slice(), 3, b.as_mut_slice(), 3);
        approx_mat(&b, &rhs, 1e-12);
    }

    #[test]
    fn trsm_upper_inverts() {
        let u = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[0.0, 3.0, 2.0], &[0.0, 0.0, 4.0]]);
        let rhs = Matrix::from_fn(3, 2, |i, j| (2 * i + j) as f64 - 1.5);
        let mut b = naive_mm(&u, &rhs);
        dtrsm_left_upper(3, 2, u.as_slice(), 3, b.as_mut_slice(), 3);
        approx_mat(&b, &rhs, 1e-12);
    }

    #[test]
    fn trsm_blocked_inverts_beyond_diagonal_block() {
        // m > TRSM_BLOCK exercises the packed-GEMM trailing updates.
        let m = TRSM_BLOCK + 37;
        let l = Matrix::from_fn(m, m, |i, j| {
            use std::cmp::Ordering::*;
            match i.cmp(&j) {
                Equal => 1.0,
                Greater => ((i * 3 + j * 7) % 5) as f64 * 0.01 - 0.02,
                Less => 0.0,
            }
        });
        let u = Matrix::from_fn(m, m, |i, j| {
            use std::cmp::Ordering::*;
            match i.cmp(&j) {
                Equal => 2.0 + ((i * 7) % 3) as f64,
                Less => ((i + 2 * j) % 7) as f64 * 0.01 - 0.03,
                Greater => 0.0,
            }
        });
        let rhs = Matrix::from_fn(m, 9, |i, j| ((i * 13 + j * 29) % 31) as f64 - 15.0);
        let mut b = naive_mm(&l, &rhs);
        dtrsm_left_lower_unit(m, 9, l.as_slice(), m, b.as_mut_slice(), m);
        approx_mat(&b, &rhs, 1e-8);
        let mut b = naive_mm(&u, &rhs);
        dtrsm_left_upper(m, 9, u.as_slice(), m, b.as_mut_slice(), m);
        approx_mat(&b, &rhs, 1e-8);
    }
}
