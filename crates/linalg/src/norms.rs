//! Vector and matrix norms plus the scaled residual used to judge solver
//! exactness throughout the workspace.

use crate::blas1;
use crate::matrix::Matrix;

/// Vector ∞-norm.
pub fn vec_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Vector 1-norm.
pub fn vec_one(x: &[f64]) -> f64 {
    blas1::dasum(x)
}

/// Vector 2-norm.
pub fn vec_two(x: &[f64]) -> f64 {
    blas1::dnrm2(x)
}

/// Matrix ∞-norm (max row sum).
pub fn mat_inf(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for i in 0..a.rows() {
        let mut s = 0.0;
        for j in 0..a.cols() {
            s += a[(i, j)].abs();
        }
        best = best.max(s);
    }
    best
}

/// Matrix 1-norm (max column sum).
pub fn mat_one(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        best = best.max(blas1::dasum(a.col(j)));
    }
    best
}

/// Frobenius norm.
pub fn mat_fro(a: &Matrix) -> f64 {
    blas1::dnrm2(a.as_slice())
}

/// Componentwise backward-style scaled residual
/// `‖A·x − b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)`; a numerically exact solver returns a
/// value within a modest multiple of machine epsilon.
pub fn scaled_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.cols(), x.len());
    assert_eq!(a.rows(), b.len());
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    let denom = mat_inf(a) * vec_inf(x) + vec_inf(b);
    if denom == 0.0 {
        vec_inf(&r)
    } else {
        vec_inf(&r) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_norm_picks_max_row() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(mat_inf(&a), 7.0);
        assert_eq!(mat_one(&a), 6.0);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let a = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(scaled_residual(&a, &b, &b), 0.0);
    }

    #[test]
    fn residual_positive_for_wrong_solution() {
        let a = Matrix::identity(2);
        let b = vec![1.0, 1.0];
        let x = vec![2.0, 1.0];
        assert!(scaled_residual(&a, &x, &b) > 0.1);
    }

    #[test]
    fn fro_norm() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(mat_fro(&a), 5.0);
    }

    #[test]
    fn vec_norms() {
        let x = [3.0, -4.0];
        assert_eq!(vec_inf(&x), 4.0);
        assert_eq!(vec_one(&x), 7.0);
        assert_eq!(vec_two(&x), 5.0);
    }
}
