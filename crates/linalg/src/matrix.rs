//! Column-major dense matrix.
//!
//! Storage follows the LAPACK convention: element `(i, j)` lives at
//! `data[i + j * rows]`. Column-major keeps the ScaLAPACK-lite crate's
//! block-cyclic maths identical to the reference library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major `f64` matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a column-major buffer. Panics if the length is not
    /// `rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Build from row-major nested slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build element-wise from a function of `(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Leading dimension of the underlying buffer (= `rows`).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Raw column-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy row `i` out into a new vector (rows are strided).
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows);
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Swap rows `a` and `b` over the column range `jlo..jhi`.
    pub fn swap_rows(&mut self, a: usize, b: usize, jlo: usize, jhi: usize) {
        assert!(a < self.rows && b < self.rows && jhi <= self.cols && jlo <= jhi);
        if a == b {
            return;
        }
        for j in jlo..jhi {
            let base = j * self.rows;
            self.data.swap(base + a, base + b);
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// View the whole matrix as a column-major block.
    pub fn block(&self) -> crate::block::BlockRef<'_> {
        crate::block::BlockRef::new(&self.data, self.rows, self.cols, self.rows)
    }

    /// Mutable whole-matrix block view.
    pub fn block_mut(&mut self) -> crate::block::BlockMut<'_> {
        crate::block::BlockMut::new(&mut self.data, self.rows, self.cols, self.rows)
    }

    /// Dense matrix-vector product `A * x` (unaccounted convenience; hot
    /// paths use [`crate::blas2::dgemv`]).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            for (yi, &av) in y.iter_mut().zip(self.col(j)) {
                *yi += av * xj;
            }
        }
        y
    }

    /// Extract the contiguous sub-matrix `rows lo_i..hi_i`, `cols lo_j..hi_j`.
    pub fn submatrix(&self, lo_i: usize, hi_i: usize, lo_j: usize, hi_j: usize) -> Matrix {
        assert!(hi_i <= self.rows && hi_j <= self.cols && lo_i <= hi_i && lo_j <= hi_j);
        Matrix::from_fn(hi_i - lo_i, hi_j - lo_j, |i, j| self[(lo_i + i, lo_j + j)])
    }

    /// Maximum absolute element (∞-norm of the vectorised matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>11.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn swap_rows_partial_range() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        m.swap_rows(0, 1, 1, 3);
        assert_eq!(m.row_to_vec(0), vec![1.0, 5.0, 6.0]);
        assert_eq!(m.row_to_vec(1), vec![4.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matvec_identity() {
        let m = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(1, 1)], m[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_col_major_length_checked() {
        let _ = Matrix::from_col_major(2, 2, vec![0.0; 3]);
    }
}
