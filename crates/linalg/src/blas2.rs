//! Level-2 BLAS over column-major buffers with explicit leading dimension.
//!
//! The raw-slice forms operate on sub-blocks of larger matrices (as the
//! blocked LU factorisation needs); [`crate::matrix::Matrix`] wrappers are
//! provided where whole-matrix operation is more ergonomic.

use crate::block::BlockRef;
use crate::matrix::Matrix;

/// `y ← α·A·x + β·y` for an `m × n` column-major block view `a`.
pub fn dgemv(alpha: f64, a: BlockRef, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n, lda) = (a.rows(), a.cols(), a.ld());
    let a = a.data();
    assert!(x.len() >= n && y.len() >= m, "vector length mismatch");
    if beta != 1.0 {
        for yi in y[..m].iter_mut() {
            *yi *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }
    for j in 0..n {
        let axj = alpha * x[j];
        let col = &a[j * lda..j * lda + m];
        for i in 0..m {
            y[i] += col[i] * axj;
        }
    }
}

/// `y ← α·Aᵀ·x + β·y` for an `m × n` block view (`y` has length `n`).
pub fn dgemv_t(alpha: f64, a: BlockRef, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n, lda) = (a.rows(), a.cols(), a.ld());
    let a = a.data();
    assert!(x.len() >= m && y.len() >= n, "vector length mismatch");
    for j in 0..n {
        let col = &a[j * lda..j * lda + m];
        let mut s = 0.0;
        for i in 0..m {
            s += col[i] * x[i];
        }
        y[j] = alpha * s + if beta == 0.0 { 0.0 } else { beta * y[j] };
    }
}

/// Rank-1 update `A ← A + α·x·yᵀ` on an `m × n` block.
pub fn dger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    assert!(lda >= m.max(1), "lda too small");
    assert!(x.len() >= m && y.len() >= n, "vector length mismatch");
    if alpha == 0.0 {
        return;
    }
    for j in 0..n {
        let ayj = alpha * y[j];
        if ayj == 0.0 {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        for i in 0..m {
            col[i] += x[i] * ayj;
        }
    }
}

/// Solve `L·x = b` in place where `L` is the unit lower triangle of the
/// leading `n × n` block of `a`.
pub fn dtrsv_lower_unit(n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n.max(1) && x.len() >= n);
    for j in 0..n {
        let xj = x[j];
        if xj != 0.0 {
            let col = &a[j * lda..j * lda + n];
            for i in j + 1..n {
                x[i] -= xj * col[i];
            }
        }
    }
}

/// Solve `U·x = b` in place where `U` is the non-unit upper triangle of the
/// leading `n × n` block of `a`. Panics on a zero diagonal entry.
pub fn dtrsv_upper(n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n.max(1) && x.len() >= n);
    for j in (0..n).rev() {
        let d = a[j + j * lda];
        assert!(d != 0.0, "singular upper triangle at {j}");
        x[j] /= d;
        let xj = x[j];
        if xj != 0.0 {
            let col = &a[j * lda..j * lda + j];
            for i in 0..j {
                x[i] -= xj * col[i];
            }
        }
    }
}

/// Whole-matrix convenience: `A·x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.rows()];
    dgemv(1.0, a.block(), x, 0.0, &mut y);
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn dgemv_identity() {
        let a = Matrix::identity(3);
        let mut y = vec![0.0; 3];
        dgemv(1.0, a.block(), &[1.0, 2.0, 3.0], 0.0, &mut y);
        approx(&y, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dgemv_beta_accumulates() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut y = vec![10.0, 20.0];
        dgemv(2.0, a.block(), &[1.0, 1.0], 0.5, &mut y);
        approx(&y, &[7.0, 12.0]);
    }

    #[test]
    fn dgemv_t_transposes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        dgemv_t(1.0, a.block(), &[1.0, 1.0], 0.0, &mut y);
        approx(&y, &[4.0, 6.0]);
    }

    #[test]
    fn dger_rank1() {
        let mut a = Matrix::zeros(2, 2);
        let lda = a.ld();
        dger(2, 2, 1.0, &[1.0, 2.0], &[3.0, 4.0], a.as_mut_slice(), lda);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 0)], 6.0);
        assert_eq!(a[(0, 1)], 4.0);
        assert_eq!(a[(1, 1)], 8.0);
    }

    #[test]
    fn trsv_lower_unit_solves() {
        // L = [[1,0],[2,1]], b = [1, 4] -> x = [1, 2]
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0]]);
        let mut x = vec![1.0, 4.0];
        dtrsv_lower_unit(2, l.as_slice(), 2, &mut x);
        approx(&x, &[1.0, 2.0]);
    }

    #[test]
    fn trsv_upper_solves() {
        // U = [[2,1],[0,4]], b = [4, 8] -> x = [1, 2]
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let mut x = vec![4.0, 8.0];
        dtrsv_upper(2, u.as_slice(), 2, &mut x);
        approx(&x, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "singular upper triangle")]
    fn trsv_upper_rejects_zero_diag() {
        let u = Matrix::zeros(2, 2);
        let mut x = vec![1.0, 1.0];
        dtrsv_upper(2, u.as_slice(), 2, &mut x);
    }
}
