//! Multithreaded dgemm: column-partitioned parallelism over the packed
//! [`crate::blas3`] loop nest.
//!
//! The matrix product is embarrassingly parallel along `C`'s columns: each
//! worker gets a contiguous, `NR`-aligned column chunk of `C` (and the
//! matching columns of `B`) and runs the ordinary packed loop nest on it
//! with the process-wide [`crate::tune::Blocking`]. Chunks are carved with
//! `split_at_mut` at column boundaries, so workers share `A` read-only and
//! own disjoint `C` slices — no locks, no false sharing beyond cache-line
//! spill at chunk edges, and the scoped-thread idiom (`std::thread::scope`,
//! the same shape as `harness::run::parallel_map`) keeps lifetimes borrowed.
//!
//! **Determinism:** the partition is *bitwise* harmless. Each `C[i,j]` is
//! accumulated in `pc`-block order with `p` ascending inside each block,
//! and that order depends only on `k` and the `kc` blocking — never on how
//! columns were split across `jc` slabs or workers. So the parallel result
//! is bit-identical to the sequential result for the same kernel path, for
//! any worker count, on every run (asserted by `tests/kernel_dispatch.rs`).
//!
//! Worker count comes from the caller or [`default_workers`]
//! (`GREENLA_DGEMM_THREADS` override, else the host's available
//! parallelism).

use crate::blas3::dgemm_with;
use crate::block::{BlockMut, BlockRef};
use crate::simd::{self, KernelPath, KernelSet};
use crate::tune::{Blocking, NR};
use std::sync::OnceLock;

/// `C ← α·A·B + β·C` computed by [`default_workers`] threads with the
/// default [`Blocking`] and the dispatched kernel path.
pub fn dgemm_parallel(alpha: f64, a: BlockRef, b: BlockRef, beta: f64, c: BlockMut) {
    dgemm_parallel_blocked(
        alpha,
        a,
        b,
        beta,
        c,
        &Blocking::default_blocking(),
        default_workers(),
    );
}

/// [`dgemm_parallel`] with explicit blocking and worker count, on the
/// dispatched kernel path.
pub fn dgemm_parallel_blocked(
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    c: BlockMut,
    tune: &Blocking,
    workers: usize,
) {
    dgemm_parallel_with(
        simd::active_kernel_set(),
        alpha,
        a,
        b,
        beta,
        c,
        tune,
        workers,
    );
}

/// [`dgemm_parallel_blocked`] pinned to an explicit [`KernelPath`] (panics
/// when the CPU cannot execute it) — the cross-path property tests compare
/// parallel results against the sequential oracle per path through here.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_parallel_path(
    path: KernelPath,
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    c: BlockMut,
    tune: &Blocking,
    workers: usize,
) {
    dgemm_parallel_with(simd::kernel_set(path), alpha, a, b, beta, c, tune, workers);
}

/// Worker count used by [`dgemm_parallel`]: the `GREENLA_DGEMM_THREADS`
/// environment variable when set (must parse to ≥ 1), otherwise the host's
/// available parallelism. Resolved once and cached.
pub fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| match std::env::var("GREENLA_DGEMM_THREADS") {
        Ok(v) => {
            let w: usize = v.parse().unwrap_or_else(|_| {
                panic!("GREENLA_DGEMM_THREADS must be a positive integer, got `{v}`")
            });
            assert!(w >= 1, "GREENLA_DGEMM_THREADS must be >= 1");
            w
        }
        Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
    })
}

/// Column chunks below this width run sequentially: thread spawn overhead
/// (~10 µs) dwarfs a couple of micro-panel columns of work.
const MIN_PANELS_PER_WORKER: usize = 2;

#[allow(clippy::too_many_arguments)]
fn dgemm_parallel_with(
    set: KernelSet,
    alpha: f64,
    a: BlockRef,
    b: BlockRef,
    beta: f64,
    mut c: BlockMut,
    tune: &Blocking,
    workers: usize,
) {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    assert!(
        a.rows() == m && b.rows() == k && b.cols() == n,
        "dgemm_parallel shape mismatch: ({}×{k}) · ({}×{}) → ({m}×{n})",
        a.rows(),
        b.rows(),
        b.cols(),
    );
    let n_panels = n.div_ceil(NR);
    let chunks = workers.min(n_panels / MIN_PANELS_PER_WORKER.max(1)).max(1);
    if chunks <= 1 {
        dgemm_with(set, alpha, a, b, beta, c, tune);
        return;
    }

    let (ldb, ldc) = (b.ld(), c.ld());
    let bdata = b.data();
    let cdata = c.data_mut();

    // Carve C into `chunks` contiguous NR-aligned column ranges and pair
    // each with the matching B columns. The ranges tile [0, n) exactly.
    let mut jobs: Vec<(&mut [f64], &[f64], usize)> = Vec::with_capacity(chunks);
    let mut rest = cdata;
    for i in 0..chunks {
        let j0 = (i * n_panels / chunks) * NR;
        let j1 = if i + 1 == chunks {
            n
        } else {
            ((i + 1) * n_panels / chunks) * NR
        };
        debug_assert!(j1 > j0);
        let cols = j1 - j0;
        let take = if i + 1 == chunks {
            rest.len()
        } else {
            cols * ldc
        };
        let (chunk, tail) = rest.split_at_mut(take);
        rest = tail;
        jobs.push((chunk, &bdata[j0 * ldb..], cols));
    }

    let run = |(cchunk, bchunk, cols): (&mut [f64], &[f64], usize)| {
        dgemm_with(
            set,
            alpha,
            a,
            BlockRef::new(bchunk, k, cols, ldb),
            beta,
            BlockMut::new(cchunk, m, cols, ldc),
            tune,
        );
    };

    std::thread::scope(|s| {
        let mut it = jobs.into_iter();
        // The first chunk runs on the calling thread; only the rest spawn.
        let head = it.next();
        let handles: Vec<_> = it.map(|job| s.spawn(move || run(job))).collect();
        if let Some(job) = head {
            run(job);
        }
        for h in handles {
            h.join().expect("dgemm worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::dgemm_blocked_path;
    use crate::matrix::Matrix;

    fn mat(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 7 + j * 13 + salt) % 23) as f64 * 0.125 - 1.375
        })
    }

    #[test]
    fn parallel_is_bitwise_equal_to_sequential_for_any_worker_count() {
        let (m, n, k) = (61, 83, 45);
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let tune = Blocking::default_blocking();
        let mut want = mat(m, n, 3);
        dgemm_blocked_path(
            KernelPath::Scalar,
            0.5,
            a.block(),
            b.block(),
            -0.25,
            want.block_mut(),
            &tune,
        );
        for workers in [1, 2, 3, 4, 7] {
            let mut got = mat(m, n, 3);
            dgemm_parallel_path(
                KernelPath::Scalar,
                0.5,
                a.block(),
                b.block(),
                -0.25,
                got.block_mut(),
                &tune,
                workers,
            );
            assert_eq!(got.as_slice(), want.as_slice(), "workers={workers}");
        }
    }

    #[test]
    fn narrow_matrices_fall_back_to_sequential() {
        // n < 2·NR panels: the partitioner must not spawn for one panel.
        let (m, n, k) = (32, 9, 16);
        let a = mat(m, k, 4);
        let b = mat(k, n, 5);
        let mut want = Matrix::zeros(m, n);
        let mut got = Matrix::zeros(m, n);
        let tune = Blocking::default_blocking();
        dgemm_blocked_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            want.block_mut(),
            &tune,
        );
        dgemm_parallel_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            got.block_mut(),
            &tune,
            8,
        );
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn oversubscribed_workers_clamp_to_available_panels() {
        let (m, n, k) = (24, 40, 24); // 5 panels, 64 workers requested
        let a = mat(m, k, 6);
        let b = mat(k, n, 7);
        let mut want = Matrix::zeros(m, n);
        let mut got = Matrix::zeros(m, n);
        let tune = Blocking::default_blocking();
        dgemm_blocked_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            want.block_mut(),
            &tune,
        );
        dgemm_parallel_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            got.block_mut(),
            &tune,
            64,
        );
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn default_workers_is_cached_and_positive() {
        let w = default_workers();
        assert!(w >= 1);
        assert_eq!(default_workers(), w);
    }
}
