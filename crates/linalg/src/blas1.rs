//! Level-1 BLAS on `f64` slices.
//!
//! Strides are always 1 (greenla stores matrices column-major and only ever
//! needs contiguous-column vector ops); that keeps every kernel
//! auto-vectorisable. Flop costs are in [`crate::flops`].

/// `x · y`.
#[inline]
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    // Accumulate in 4 lanes so LLVM can vectorise without reassociation flags.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        for l in 0..4 {
            acc[l] += x[b + l] * y[b + l];
        }
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y ← α·x + y`.
#[inline]
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← α·x`.
#[inline]
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `y ← x`.
#[inline]
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy length mismatch");
    y.copy_from_slice(x);
}

/// Swap `x` and `y` element-wise.
#[inline]
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dswap length mismatch");
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// Index of the element with the largest absolute value (first on ties),
/// the LAPACK pivot-search primitive. Panics on an empty slice.
#[inline]
pub fn idamax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "idamax on empty slice");
    let mut best = 0;
    let mut bv = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

/// Euclidean norm with scaling to avoid overflow/underflow.
#[inline]
pub fn dnrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Sum of absolute values.
#[inline]
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddot_basic() {
        assert_eq!(ddot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn ddot_long_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((ddot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn daxpy_updates() {
        let mut y = vec![1.0, 1.0];
        daxpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn daxpy_alpha_zero_is_noop() {
        let mut y = vec![1.0, 2.0];
        daxpy(0.0, &[f64::NAN, f64::NAN], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn dscal_scales() {
        let mut x = vec![1.0, -2.0];
        dscal(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn idamax_finds_largest_abs() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(idamax(&[2.0]), 0);
    }

    #[test]
    fn idamax_first_on_tie() {
        assert_eq!(idamax(&[-4.0, 4.0]), 0);
    }

    #[test]
    fn dnrm2_resists_overflow() {
        let big = 1e300;
        let n = dnrm2(&[big, big]);
        assert!((n - big * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn dnrm2_zero_vector() {
        assert_eq!(dnrm2(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn dswap_swaps() {
        let mut a = vec![1.0, 2.0];
        let mut b = vec![3.0, 4.0];
        dswap(&mut a, &mut b);
        assert_eq!(a, vec![3.0, 4.0]);
        assert_eq!(b, vec![1.0, 2.0]);
    }

    #[test]
    fn dasum_sums_abs() {
        assert_eq!(dasum(&[-1.0, 2.0, -3.0]), 6.0);
    }
}
