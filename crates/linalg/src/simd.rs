//! Runtime-dispatched SIMD microkernels for the packed Level-3 BLAS.
//!
//! The packed [`crate::blas3`] loop nest is ISA-agnostic: all arithmetic
//! funnels through one `MR×NR` register microkernel operating on the
//! packed micro-panels. This module owns every implementation of that
//! microkernel — the portable scalar loop (the bit-exact oracle the
//! property tests compare against), an explicit AVX2+FMA kernel, and an
//! AVX-512F kernel — plus the **dispatch** that picks one at runtime.
//!
//! Dispatch is resolved **once per process** (cached in a [`OnceLock`])
//! from the `GREENLA_KERNEL` environment variable:
//!
//! | value                | effect |
//! |----------------------|--------|
//! | `auto` *(or unset)*  | best path the CPU supports (AVX-512F → AVX2+FMA → scalar) |
//! | `scalar`             | force the portable scalar microkernel |
//! | `avx2`               | force AVX2+FMA; **panics** if the CPU lacks it |
//! | `avx512`             | force AVX-512F; **panics** if the CPU lacks it |
//!
//! Forcing an unsupported path panics instead of silently falling back so
//! a CI matrix job that requests `avx2` can never green-light the scalar
//! path by accident. Every kernel is also reachable explicitly through
//! [`microkernel`] (used by `dgemm_blocked_path` and the cross-path
//! property tests), which performs the same support check.
//!
//! The `#[target_feature]` functions themselves are `unsafe fn`s private
//! to this module (greenla-lint GL006 enforces exactly that shape): the
//! only way to obtain one is through the dispatch functions here, which
//! verify CPU support first — that verification is the safety argument
//! the safe wrapper entries rely on.

use crate::tune::{MR, NR};
use std::fmt;
use std::sync::OnceLock;

/// A microkernel: `acc[j·MR + i] += Ap[p·MR + i] · Bp[p·NR + j]` over `kb`
/// packed sliver pairs. All implementations share this exact contract —
/// zero-padded partial panels included — so the surrounding loop nest
/// never branches on the active ISA.
pub type Microkernel = fn(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]);

/// A two-panel microkernel: consumes two *adjacent* packed `A`
/// micro-panels (`apan2[..kb·MR]` and `apan2[kb·MR..2·kb·MR]`) against one
/// `B` micro-panel, updating both accumulator tiles in a single pass over
/// the `B` sliver. On AVX-512 the 16×8 tile fits in 16 of the 32 `zmm`
/// registers and halves the `B`-broadcast traffic per flop, turning the
/// load-bound 8×8 kernel FMA-bound. Each element's FMA chain is identical
/// to the single-panel kernel's, so results are bit-identical to two
/// consecutive [`Microkernel`] calls on the same path.
pub type Microkernel2 = fn(
    kb: usize,
    apan2: &[f64],
    bpan: &[f64],
    acc0: &mut [f64; MR * NR],
    acc1: &mut [f64; MR * NR],
);

/// The kernels one dispatched path provides: the mandatory single-panel
/// microkernel plus an optional two-panel variant the loop nest prefers
/// for full panel pairs. Paths without a profitable pair variant (scalar —
/// LLVM already keeps the 8×8 tile in registers; AVX2 — 16 `ymm`s cannot
/// hold a 16×8 tile) leave it `None`.
#[derive(Clone, Copy)]
pub struct KernelSet {
    pub ukr: Microkernel,
    pub ukr2: Option<Microkernel2>,
}

/// The selectable microkernel implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Portable scalar loop; LLVM autovectorises it, and it is the
    /// bit-exact oracle (no FMA contraction) for the property tests.
    Scalar,
    /// Explicit AVX2 + FMA: the 8×8 tile as two 8×4 half-tiles of eight
    /// `ymm` accumulators each.
    Avx2,
    /// Explicit AVX-512F: eight `zmm` accumulators, one full column each.
    Avx512,
}

impl KernelPath {
    /// Stable lowercase label (`scalar` / `avx2` / `avx512`) — the same
    /// spelling `GREENLA_KERNEL` accepts and `BenchReport.kernel_path`
    /// records.
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Avx2 => "avx2",
            KernelPath::Avx512 => "avx512",
        }
    }

    /// Parse a label back into a path (`auto` is not a path; it is
    /// resolved by [`resolved`]).
    pub fn parse(s: &str) -> Option<KernelPath> {
        match s {
            "scalar" => Some(KernelPath::Scalar),
            "avx2" => Some(KernelPath::Avx2),
            "avx512" => Some(KernelPath::Avx512),
            _ => None,
        }
    }

    /// Does the executing CPU support this path?
    pub fn supported(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Is this a vector (non-scalar) path?
    pub fn is_simd(self) -> bool {
        self != KernelPath::Scalar
    }
}

impl fmt::Display for KernelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Best path the executing CPU supports (what `auto` resolves to).
pub fn best_supported() -> KernelPath {
    [KernelPath::Avx512, KernelPath::Avx2]
        .into_iter()
        .find(|p| p.supported())
        .unwrap_or(KernelPath::Scalar)
}

/// The dispatched kernel path for this process: `GREENLA_KERNEL` if set,
/// otherwise the best supported path. Resolved once and cached; a forced
/// path the CPU cannot execute panics with a diagnostic naming both.
pub fn resolved() -> KernelPath {
    static RESOLVED: OnceLock<KernelPath> = OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var("GREENLA_KERNEL") {
        Err(_) => best_supported(),
        Ok(v) if v == "auto" || v.is_empty() => best_supported(),
        Ok(v) => {
            let path = KernelPath::parse(&v).unwrap_or_else(|| {
                panic!("GREENLA_KERNEL must be scalar|avx2|avx512|auto, got `{v}`")
            });
            assert!(
                path.supported(),
                "GREENLA_KERNEL={v} forced, but this CPU does not support the {v} \
                 microkernel (use `auto` to pick the best supported path)"
            );
            path
        }
    })
}

/// The microkernel for `path`. Panics when the CPU cannot execute it —
/// this check is what makes the returned function pointer safe to call.
pub fn microkernel(path: KernelPath) -> Microkernel {
    assert!(
        path.supported(),
        "kernel path {path} is not supported by this CPU"
    );
    match path {
        KernelPath::Scalar => microkernel_scalar,
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => microkernel_avx2_entry,
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx512 => microkernel_avx512_entry,
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar paths are never supported off x86_64"),
    }
}

/// The microkernel the dispatcher picked for this process.
pub fn active_microkernel() -> Microkernel {
    microkernel(resolved())
}

/// The full kernel set for `path` (same support check as [`microkernel`]).
pub fn kernel_set(path: KernelPath) -> KernelSet {
    let ukr = microkernel(path);
    let ukr2 = match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx512 => Some(microkernel_avx512_x2_entry as Microkernel2),
        _ => None,
    };
    KernelSet { ukr, ukr2 }
}

/// The kernel set the dispatcher picked for this process.
pub fn active_kernel_set() -> KernelSet {
    kernel_set(resolved())
}

/// A CSR row-range SpMV kernel: for each local row `i`,
/// `y[i] = Σ values[k]·x[col_idx[k]]` over `k ∈ row_ptr[i]..row_ptr[i+1]`.
/// `row_ptr` holds `y.len() + 1` offsets indexing `col_idx`/`values`
/// directly, so a contiguous sub-range of a larger matrix is expressed by
/// slicing `row_ptr` alone and passing the full entry streams.
///
/// Unlike the dgemm microkernels (whose SIMD paths contract into FMA),
/// **every** SpMV path accumulates each row strictly left to right with
/// separate multiply and add, so all paths are bit-identical: the
/// non-scalar paths differ only in unrolling and software prefetch of the
/// irregular `x` gather stream, never in arithmetic order.
pub type SpmvKernel =
    fn(row_ptr: &[usize], col_idx: &[u32], values: &[f64], x: &[f64], y: &mut [f64]);

/// The SpMV row-range kernel for `path`. Panics when the CPU cannot
/// execute it — the same refused-dispatch contract as [`microkernel`]:
/// a CI job forcing `avx2` can never green-light the scalar loop.
pub fn spmv_kernel(path: KernelPath) -> SpmvKernel {
    assert!(
        path.supported(),
        "kernel path {path} is not supported by this CPU"
    );
    match path {
        KernelPath::Scalar => spmv_range_scalar,
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => spmv_range_avx2_entry,
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx512 => spmv_range_avx512_entry,
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar paths are never supported off x86_64"),
    }
}

/// The SpMV kernel the dispatcher picked for this process.
pub fn active_spmv_kernel() -> SpmvKernel {
    spmv_kernel(resolved())
}

/// The portable scalar SpMV row-range kernel — the bit-exact oracle the
/// property tests compare against (and, because no path contracts into
/// FMA, also the exact result of every other path).
pub fn spmv_range_scalar(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(row_ptr.len(), y.len() + 1, "row_ptr spans the output rows");
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += values[k] * x[col_idx[k] as usize];
        }
        *yi = acc;
    }
}

/// How many entries ahead of the current position the unrolled kernel
/// prefetches the gathered `x` operand. The stencil systems gather with
/// large strides (`±k` for a `k×k` grid), so the hardware prefetcher never
/// sees the pattern; 64 entries ≈ 8 cache lines of the value stream keeps
/// the gather line fetch ahead of the ~100 ns DRAM latency at memory-bound
/// throughput.
#[cfg(target_arch = "x86_64")]
const SPMV_PREFETCH_DIST: usize = 64;

/// Unrolled + software-prefetch SpMV body shared by the AVX2 and AVX-512
/// entries (the win is the prefetch of the irregular gather plus the
/// 4-way unroll, not ISA-specific arithmetic — the `#[target_feature]`
/// wrappers exist so the dispatch legs stay meaningful and LLVM may use
/// the wider encodings). Accumulation is strictly left to right, exactly
/// [`spmv_range_scalar`]'s order, so results are bit-identical to it.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn spmv_range_unrolled_body(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    assert_eq!(row_ptr.len(), y.len() + 1, "row_ptr spans the output rows");
    let last = row_ptr[y.len()].saturating_sub(1);
    for (i, yi) in y.iter_mut().enumerate() {
        let (s, e) = (row_ptr[i], row_ptr[i + 1]);
        let mut acc = 0.0;
        let mut k = s;
        while k + 4 <= e {
            let ahead = col_idx[(k + SPMV_PREFETCH_DIST).min(last)] as usize;
            // SAFETY: prefetch is a hint — it never dereferences
            // architecturally and cannot fault, and `wrapping_add` keeps
            // the address computation defined even if `ahead` were out of
            // bounds for `x` (it is in range for every valid CSR matrix;
            // the arithmetic below still bounds-checks the real loads).
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(x.as_ptr().wrapping_add(ahead) as *const i8);
            }
            acc += values[k] * x[col_idx[k] as usize];
            acc += values[k + 1] * x[col_idx[k + 1] as usize];
            acc += values[k + 2] * x[col_idx[k + 2] as usize];
            acc += values[k + 3] * x[col_idx[k + 3] as usize];
            k += 4;
        }
        while k < e {
            acc += values[k] * x[col_idx[k] as usize];
            k += 1;
        }
        *yi = acc;
    }
}

/// Safe entry for the AVX2 SpMV kernel, handed out only by
/// [`spmv_kernel`].
#[cfg(target_arch = "x86_64")]
fn spmv_range_avx2_entry(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert!(KernelPath::Avx2.supported());
    // SAFETY: this entry is only reachable through `spmv_kernel`, which
    // panics unless `is_x86_feature_detected!` confirmed avx2+fma; the
    // kernel body uses bounds-checked indexing throughout.
    unsafe { spmv_range_avx2(row_ptr, col_idx, values, x, y) }
}

/// Safe entry for the AVX-512F SpMV kernel, handed out only by
/// [`spmv_kernel`].
#[cfg(target_arch = "x86_64")]
fn spmv_range_avx512_entry(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert!(KernelPath::Avx512.supported());
    // SAFETY: this entry is only reachable through `spmv_kernel`, which
    // panics unless `is_x86_feature_detected!` confirmed avx512f; the
    // kernel body uses bounds-checked indexing throughout.
    unsafe { spmv_range_avx512(row_ptr, col_idx, values, x, y) }
}

/// AVX2-compiled unrolled + prefetch SpMV range kernel (see
/// [`spmv_range_unrolled_body`] — bit-identical to the scalar oracle).
///
/// # Safety
///
/// Dispatch contract: the caller must have verified `avx2` and `fma` via
/// `is_x86_feature_detected!` (the [`spmv_kernel`] dispatcher is the only
/// caller and does exactly that). All memory accesses in the body are
/// bounds-checked slice indexing; the only raw-pointer use is the
/// never-faulting prefetch hint.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmv_range_avx2(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    spmv_range_unrolled_body(row_ptr, col_idx, values, x, y);
}

/// AVX-512F-compiled unrolled + prefetch SpMV range kernel (see
/// [`spmv_range_unrolled_body`] — bit-identical to the scalar oracle).
///
/// # Safety
///
/// Dispatch contract: the caller must have verified `avx512f` via
/// `is_x86_feature_detected!` (the [`spmv_kernel`] dispatcher is the only
/// caller and does exactly that). All memory accesses in the body are
/// bounds-checked slice indexing; the only raw-pointer use is the
/// never-faulting prefetch hint.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn spmv_range_avx512(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    spmv_range_unrolled_body(row_ptr, col_idx, values, x, y);
}

/// The portable scalar microkernel: `MR`/`NR` are compile-time constants
/// and the panel rows are fixed-size arrays, so LLVM fully unrolls the
/// tile and vectorises the row dimension. Kept as the bit-exact oracle:
/// it performs separate multiply and add (no FMA contraction), so its
/// results are reproducible on every ISA and toolchain.
pub fn microkernel_scalar(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
    debug_assert!(apan.len() >= kb * MR && bpan.len() >= kb * NR);
    for p in 0..kb {
        let av: &[f64; MR] = apan[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f64; NR] = bpan[p * NR..p * NR + NR].try_into().unwrap();
        for j in 0..NR {
            let bj = bv[j];
            for i in 0..MR {
                acc[j * MR + i] += av[i] * bj;
            }
        }
    }
}

/// Safe entry for the AVX2 kernel, handed out only by [`microkernel`].
#[cfg(target_arch = "x86_64")]
fn microkernel_avx2_entry(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
    debug_assert!(KernelPath::Avx2.supported());
    // SAFETY: this entry is only reachable through `microkernel`, which
    // panics unless `is_x86_feature_detected!` confirmed avx2+fma; the
    // kernel's own slice-bounds contract is asserted inside.
    unsafe { microkernel_avx2(kb, apan, bpan, acc) }
}

/// Safe entry for the AVX-512F kernel, handed out only by [`microkernel`].
#[cfg(target_arch = "x86_64")]
fn microkernel_avx512_entry(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
    debug_assert!(KernelPath::Avx512.supported());
    // SAFETY: this entry is only reachable through `microkernel`, which
    // panics unless `is_x86_feature_detected!` confirmed avx512f; the
    // kernel's own slice-bounds contract is asserted inside.
    unsafe { microkernel_avx512(kb, apan, bpan, acc) }
}

/// Safe entry for the two-panel AVX-512F kernel, handed out only by
/// [`kernel_set`].
#[cfg(target_arch = "x86_64")]
fn microkernel_avx512_x2_entry(
    kb: usize,
    apan2: &[f64],
    bpan: &[f64],
    acc0: &mut [f64; MR * NR],
    acc1: &mut [f64; MR * NR],
) {
    debug_assert!(KernelPath::Avx512.supported());
    // SAFETY: this entry is only reachable through `kernel_set`, which
    // goes through `microkernel`'s support panic for the same path first;
    // the kernel's own slice-bounds contract is asserted inside.
    unsafe { microkernel_avx512_x2(kb, apan2, bpan, acc0, acc1) }
}

/// AVX2 + FMA microkernel. The 8×8 `f64` accumulator tile would need all
/// sixteen `ymm` registers by itself, starving the operand loads, so the
/// tile is computed as two 8×4 half-tiles: eight accumulator `ymm`s, two
/// `A`-sliver loads and one broadcast live at a time (11 of 16
/// registers), with the `A` panel re-read once per half from L1.
///
/// Unlike the scalar oracle this contracts multiply-add into FMA, so
/// results differ from [`microkernel_scalar`] by at most the documented
/// ulp tolerance (see `tests/kernel_dispatch.rs`), never bit-exactly.
///
/// # Safety
///
/// Dispatch contract: the caller must have verified `avx2` and `fma` via
/// `is_x86_feature_detected!` (the [`microkernel`] dispatcher is the only
/// caller and does exactly that). `apan`/`bpan` must hold at least
/// `kb·MR` / `kb·NR` elements — asserted below, so the raw loads stay in
/// bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
    use std::arch::x86_64::*;
    assert!(apan.len() >= kb * MR && bpan.len() >= kb * NR);
    // SAFETY: every pointer below stays inside `apan[..kb*MR]`,
    // `bpan[..kb*NR]` or `acc[..MR*NR]` (asserted above; `boff + j < NR`
    // and the store columns cover `(boff+j)*MR + 0..8` with
    // `boff + j ≤ 7`). Unaligned load/store intrinsics are used
    // throughout, so no alignment obligation exists.
    unsafe {
        let ap = apan.as_ptr();
        let bp = bpan.as_ptr();
        for half in 0..2 {
            let boff = half * 4;
            let mut cc = [_mm256_setzero_pd(); 8];
            for p in 0..kb {
                let a0 = _mm256_loadu_pd(ap.add(p * MR));
                let a1 = _mm256_loadu_pd(ap.add(p * MR + 4));
                for j in 0..4 {
                    let b = _mm256_broadcast_sd(&*bp.add(p * NR + boff + j));
                    cc[2 * j] = _mm256_fmadd_pd(a0, b, cc[2 * j]);
                    cc[2 * j + 1] = _mm256_fmadd_pd(a1, b, cc[2 * j + 1]);
                }
            }
            for j in 0..4 {
                let col = acc.as_mut_ptr().add((boff + j) * MR);
                _mm256_storeu_pd(col, _mm256_add_pd(_mm256_loadu_pd(col), cc[2 * j]));
                let hi = col.add(4);
                _mm256_storeu_pd(hi, _mm256_add_pd(_mm256_loadu_pd(hi), cc[2 * j + 1]));
            }
        }
    }
}

/// AVX-512F microkernel: one `zmm` register holds a full `MR = 8` column
/// of the accumulator tile, so the whole 8×8 tile is eight `zmm`
/// accumulators — eight independent FMA chains, enough to cover the FMA
/// latency on two 512-bit ports — plus one `A`-sliver load and one
/// broadcast per column update (10 of 32 registers).
///
/// Same FMA-contraction caveat as the AVX2 kernel: agreement with the
/// scalar oracle is within the documented ulp tolerance, not bit-exact.
///
/// # Safety
///
/// Dispatch contract: the caller must have verified `avx512f` via
/// `is_x86_feature_detected!` (the [`microkernel`] dispatcher is the only
/// caller and does exactly that). `apan`/`bpan` must hold at least
/// `kb·MR` / `kb·NR` elements — asserted below, so the raw loads stay in
/// bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(kb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
    use std::arch::x86_64::*;
    assert!(apan.len() >= kb * MR && bpan.len() >= kb * NR);
    // SAFETY: every pointer below stays inside `apan[..kb*MR]`,
    // `bpan[..kb*NR]` or `acc[..MR*NR]` (asserted above; `j < NR = 8` and
    // each store covers `j*MR + 0..8`). Unaligned load/store intrinsics
    // are used throughout, so no alignment obligation exists.
    unsafe {
        let ap = apan.as_ptr();
        let bp = bpan.as_ptr();
        let mut cc = [_mm512_setzero_pd(); NR];
        for p in 0..kb {
            let a = _mm512_loadu_pd(ap.add(p * MR));
            for (j, c) in cc.iter_mut().enumerate() {
                let b = _mm512_set1_pd(*bp.add(p * NR + j));
                *c = _mm512_fmadd_pd(a, b, *c);
            }
        }
        for (j, &c) in cc.iter().enumerate() {
            let col = acc.as_mut_ptr().add(j * MR);
            _mm512_storeu_pd(col, _mm512_add_pd(_mm512_loadu_pd(col), c));
        }
    }
}

/// Two-panel AVX-512F microkernel (see [`Microkernel2`]): a 16×8 tile as
/// sixteen `zmm` accumulators, fed by two `A`-sliver loads and eight
/// broadcasts per `p` — 16 FMAs per 10 loads, so the FMA ports rather than
/// the load ports bound throughput. Per element, the FMA chain order is
/// exactly [`microkernel_avx512`]'s, keeping the avx512 path's results
/// independent of whether the pair variant ran.
///
/// # Safety
///
/// Dispatch contract: the caller must have verified `avx512f` via
/// `is_x86_feature_detected!` (the [`kernel_set`] dispatcher is the only
/// caller and does exactly that). `apan2`/`bpan` must hold at least
/// `2·kb·MR` / `kb·NR` elements — asserted below, so the raw loads stay in
/// bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_x2(
    kb: usize,
    apan2: &[f64],
    bpan: &[f64],
    acc0: &mut [f64; MR * NR],
    acc1: &mut [f64; MR * NR],
) {
    use std::arch::x86_64::*;
    assert!(apan2.len() >= 2 * kb * MR && bpan.len() >= kb * NR);
    // SAFETY: every pointer below stays inside `apan2[..2·kb·MR]`,
    // `bpan[..kb·NR]` or the two accumulator tiles (asserted above;
    // `j < NR = 8` and each store covers `j*MR + 0..8`). Unaligned
    // load/store intrinsics are used throughout, so no alignment
    // obligation exists.
    unsafe {
        let ap0 = apan2.as_ptr();
        let ap1 = apan2.as_ptr().add(kb * MR);
        let bp = bpan.as_ptr();
        let mut c0 = [_mm512_setzero_pd(); NR];
        let mut c1 = [_mm512_setzero_pd(); NR];
        for p in 0..kb {
            let a0 = _mm512_loadu_pd(ap0.add(p * MR));
            let a1 = _mm512_loadu_pd(ap1.add(p * MR));
            for j in 0..NR {
                let b = _mm512_set1_pd(*bp.add(p * NR + j));
                c0[j] = _mm512_fmadd_pd(a0, b, c0[j]);
                c1[j] = _mm512_fmadd_pd(a1, b, c1[j]);
            }
        }
        for j in 0..NR {
            let col = acc0.as_mut_ptr().add(j * MR);
            _mm512_storeu_pd(col, _mm512_add_pd(_mm512_loadu_pd(col), c0[j]));
            let col = acc1.as_mut_ptr().add(j * MR);
            _mm512_storeu_pd(col, _mm512_add_pd(_mm512_loadu_pd(col), c1[j]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panels(kb: usize) -> (Vec<f64>, Vec<f64>) {
        let apan: Vec<f64> = (0..kb * MR).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let bpan: Vec<f64> = (0..kb * NR).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
        (apan, bpan)
    }

    fn run(path: KernelPath, kb: usize) -> [f64; MR * NR] {
        let (apan, bpan) = panels(kb);
        let mut acc = [0.0; MR * NR];
        microkernel(path)(kb, &apan, &bpan, &mut acc);
        acc
    }

    #[test]
    fn scalar_is_always_supported_and_correct() {
        let kb = 17;
        let (apan, bpan) = panels(kb);
        let acc = run(KernelPath::Scalar, kb);
        for j in 0..NR {
            for i in 0..MR {
                let want: f64 = (0..kb).map(|p| apan[p * MR + i] * bpan[p * NR + j]).sum();
                assert_eq!(acc[j * MR + i], want, "({i},{j})");
            }
        }
    }

    #[test]
    fn simd_paths_match_scalar_within_ulp_tolerance() {
        // Integer-valued panels: products and partial sums stay exactly
        // representable, so supported SIMD paths must agree exactly here;
        // the fractional-input ulp bound lives in tests/kernel_dispatch.rs.
        for kb in [1, 2, 7, 64] {
            let want = run(KernelPath::Scalar, kb);
            for path in [KernelPath::Avx2, KernelPath::Avx512] {
                if !path.supported() {
                    continue;
                }
                assert_eq!(run(path, kb), want, "{path} kb={kb}");
            }
        }
    }

    #[test]
    fn kb_zero_accumulates_nothing() {
        for path in [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx512] {
            if !path.supported() {
                continue;
            }
            let mut acc = [3.5; MR * NR];
            microkernel(path)(0, &[], &[], &mut acc);
            assert!(acc.iter().all(|&v| v == 3.5), "{path}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for path in [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx512] {
            assert_eq!(KernelPath::parse(path.label()), Some(path));
        }
        assert_eq!(KernelPath::parse("auto"), None);
        assert_eq!(KernelPath::parse("neon"), None);
    }

    #[test]
    fn resolved_is_a_supported_path() {
        let path = resolved();
        assert!(path.supported());
        // Cached: a second call answers identically.
        assert_eq!(resolved(), path);
    }

    /// A ragged CSR-shaped pattern: row `i` holds `i % 7` entries at
    /// pseudo-random columns — exercises empty rows, short tails and the
    /// unrolled body in one sweep.
    fn csr_pattern(rows: usize, n: usize) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            for e in 0..i % 7 {
                col_idx.push(((i * 31 + e * 17) % n) as u32);
                values.push(((i * 13 + e * 5) % 11) as f64 * 0.25 - 1.25);
            }
            row_ptr.push(col_idx.len());
        }
        (row_ptr, col_idx, values)
    }

    #[test]
    fn spmv_paths_are_bit_identical_to_the_scalar_oracle() {
        let (rows, n) = (123, 64);
        let (row_ptr, col_idx, values) = csr_pattern(rows, n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut want = vec![0.0; rows];
        spmv_range_scalar(&row_ptr, &col_idx, &values, &x, &mut want);
        for path in [KernelPath::Avx2, KernelPath::Avx512] {
            if !path.supported() {
                continue;
            }
            let mut got = vec![f64::NAN; rows];
            spmv_kernel(path)(&row_ptr, &col_idx, &values, &x, &mut got);
            assert_eq!(got, want, "{path}");
        }
    }

    #[test]
    fn spmv_kernel_handles_empty_ranges() {
        for path in [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx512] {
            if !path.supported() {
                continue;
            }
            let mut y: Vec<f64> = Vec::new();
            spmv_kernel(path)(&[0], &[], &[], &[], &mut y);
            assert!(y.is_empty(), "{path}");
        }
    }

    #[test]
    fn active_spmv_kernel_matches_the_resolved_path() {
        assert_eq!(
            active_spmv_kernel() as usize,
            spmv_kernel(resolved()) as usize
        );
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn requesting_an_unsupported_spmv_kernel_panics() {
        if KernelPath::Avx512.supported() {
            panic!("kernel path avx512 is not supported (skip: CPU has avx512f)");
        }
        spmv_kernel(KernelPath::Avx512);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn requesting_an_unsupported_kernel_panics() {
        // avx512 requires avx512f; when this CPU has it, fall back to
        // exercising the message through a pretend-unsupported arch path.
        if KernelPath::Avx512.supported() {
            panic!("kernel path avx512 is not supported (skip: CPU has avx512f)");
        }
        microkernel(KernelPath::Avx512);
    }
}
