//! Plain-text linear-system file format.
//!
//! The paper stresses that "the input linear system is not generated at
//! runtime but loaded from a file to ensure consistent input data for
//! repetitive measurements". This module provides that file format:
//!
//! ```text
//! # greenla linear system v1
//! n <order>
//! A               (n lines of n whitespace-separated f64, row by row)
//! ...
//! b               (one line of n f64)
//! [x_ref]         (optional one line of n f64)
//! ```
//!
//! Values round-trip exactly via hex-float-free `{:.17e}` formatting.

use crate::generate::LinearSystem;
use crate::matrix::Matrix;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "# greenla linear system v1";

/// Serialise a system into the text format.
pub fn to_string(sys: &LinearSystem) -> String {
    let n = sys.n();
    let mut out = String::with_capacity(n * n * 26 + 64);
    out.push_str(MAGIC);
    out.push('\n');
    let _ = writeln!(out, "n {n}");
    out.push_str("A\n");
    for i in 0..n {
        for j in 0..n {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{:.17e}", sys.a[(i, j)]);
        }
        out.push('\n');
    }
    out.push_str("b\n");
    for (j, v) in sys.b.iter().enumerate() {
        if j > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{v:.17e}");
    }
    out.push('\n');
    if let Some(xr) = &sys.x_ref {
        out.push_str("x_ref\n");
        for (j, v) in xr.iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v:.17e}");
        }
        out.push('\n');
    }
    out
}

/// Errors produced while parsing a system file.
#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Wrong magic line or malformed structure, with a human explanation.
    Format(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn parse_floats(line: &str, n: usize, what: &str) -> Result<Vec<f64>, ParseError> {
    let vals: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
    let vals = vals.map_err(|e| ParseError::Format(format!("bad float in {what}: {e}")))?;
    if vals.len() != n {
        return Err(ParseError::Format(format!(
            "{what}: expected {n} values, found {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Parse a system from any reader.
pub fn from_reader<R: Read>(r: R) -> Result<LinearSystem, ParseError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, ParseError> {
        loop {
            match lines.next() {
                Some(Ok(l)) => {
                    if !l.trim().is_empty() {
                        return Ok(l);
                    }
                }
                Some(Err(e)) => return Err(e.into()),
                None => return Err(ParseError::Format("unexpected end of file".into())),
            }
        }
    };
    let magic = next()?;
    if magic.trim() != MAGIC {
        return Err(ParseError::Format(format!("bad magic line {magic:?}")));
    }
    let nline = next()?;
    let n: usize = nline
        .strip_prefix("n ")
        .ok_or_else(|| ParseError::Format("expected `n <order>`".into()))?
        .trim()
        .parse()
        .map_err(|e| ParseError::Format(format!("bad order: {e}")))?;
    if n == 0 {
        return Err(ParseError::Format("order must be positive".into()));
    }
    if next()?.trim() != "A" {
        return Err(ParseError::Format("expected `A` section".into()));
    }
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let row = parse_floats(&next()?, n, &format!("A row {i}"))?;
        for (j, v) in row.into_iter().enumerate() {
            a[(i, j)] = v;
        }
    }
    if next()?.trim() != "b" {
        return Err(ParseError::Format("expected `b` section".into()));
    }
    let b = parse_floats(&next()?, n, "b")?;
    // Optional x_ref section.
    let mut x_ref = None;
    if let Some(Ok(l)) = lines.next() {
        if l.trim() == "x_ref" {
            let line = lines
                .next()
                .ok_or_else(|| ParseError::Format("missing x_ref values".into()))?
                .map_err(ParseError::Io)?;
            x_ref = Some(parse_floats(&line, n, "x_ref")?);
        }
    }
    Ok(LinearSystem { a, b, x_ref })
}

/// Parse a system from a string.
pub fn from_str(s: &str) -> Result<LinearSystem, ParseError> {
    from_reader(s.as_bytes())
}

/// Write a system to a file.
pub fn save(sys: &LinearSystem, path: &Path) -> Result<(), ParseError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_string(sys).as_bytes())?;
    Ok(())
}

/// Load a system from a file.
pub fn load(path: &Path) -> Result<LinearSystem, ParseError> {
    from_reader(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip_exact() {
        let sys = generate::diag_dominant(9, 11);
        let text = to_string(&sys);
        let back = from_str(&text).unwrap();
        assert_eq!(back.a, sys.a);
        assert_eq!(back.b, sys.b);
        assert_eq!(back.x_ref, sys.x_ref);
    }

    #[test]
    fn roundtrip_without_reference() {
        let mut sys = generate::diag_dominant(4, 1);
        sys.x_ref = None;
        let back = from_str(&to_string(&sys)).unwrap();
        assert!(back.x_ref.is_none());
        assert_eq!(back.a, sys.a);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_str("nope\n"), Err(ParseError::Format(_))));
    }

    #[test]
    fn rejects_truncated_matrix() {
        let sys = generate::diag_dominant(3, 2);
        let text = to_string(&sys);
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(from_str(&cut).is_err());
    }

    #[test]
    fn rejects_wrong_width_row() {
        let text = "# greenla linear system v1\nn 2\nA\n1.0 2.0 3.0\n4.0 5.0\nb\n1.0 2.0\n";
        assert!(matches!(from_str(text), Err(ParseError::Format(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("greenla_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sys.txt");
        let sys = generate::circuit_network(6, 4);
        save(&sys, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.a, sys.a);
        std::fs::remove_file(&path).ok();
    }
}
