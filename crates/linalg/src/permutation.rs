//! Pivot bookkeeping shared by the sequential and distributed LU codes.
//!
//! `ipiv` follows the LAPACK convention: `ipiv[k] = p` means rows `k` and
//! `p` (`p ≥ k`) were swapped at elimination step `k`.

/// Apply an LAPACK-style pivot sequence to a vector (forward direction, as
/// needed before the L-solve in `getrs`).
pub fn apply_ipiv_forward(ipiv: &[usize], x: &mut [f64]) {
    for (k, &p) in ipiv.iter().enumerate() {
        assert!(p >= k && p < x.len(), "invalid pivot {p} at step {k}");
        x.swap(k, p);
    }
}

/// Undo an LAPACK-style pivot sequence (reverse direction).
pub fn apply_ipiv_backward(ipiv: &[usize], x: &mut [f64]) {
    for (k, &p) in ipiv.iter().enumerate().rev() {
        assert!(p >= k && p < x.len(), "invalid pivot {p} at step {k}");
        x.swap(k, p);
    }
}

/// Expand an `ipiv` sequence into an explicit row permutation `perm`, where
/// `perm[i]` is the original index of the row that ends up at position `i`.
pub fn ipiv_to_permutation(ipiv: &[usize], n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for (k, &p) in ipiv.iter().enumerate() {
        perm.swap(k, p);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_then_backward_roundtrips() {
        let ipiv = vec![2, 3, 2, 3];
        let mut x = vec![0.0, 1.0, 2.0, 3.0];
        let orig = x.clone();
        apply_ipiv_forward(&ipiv, &mut x);
        assert_ne!(x, orig);
        apply_ipiv_backward(&ipiv, &mut x);
        assert_eq!(x, orig);
    }

    #[test]
    fn identity_pivots_are_noop() {
        let ipiv: Vec<usize> = (0..4).collect();
        let mut x = vec![9.0, 8.0, 7.0, 6.0];
        apply_ipiv_forward(&ipiv, &mut x);
        assert_eq!(x, vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn permutation_expansion_matches_application() {
        let ipiv = vec![1, 2, 2];
        let n = 3;
        let perm = ipiv_to_permutation(&ipiv, n);
        let mut x = vec![10.0, 20.0, 30.0];
        apply_ipiv_forward(&ipiv, &mut x);
        for i in 0..n {
            assert_eq!(x[i], (perm[i] as f64 + 1.0) * 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid pivot")]
    fn rejects_pivot_below_step() {
        let ipiv = vec![1, 0];
        let mut x = vec![1.0, 2.0];
        apply_ipiv_forward(&ipiv, &mut x);
    }
}
