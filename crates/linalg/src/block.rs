//! Borrowed column-major sub-matrix views.
//!
//! A [`BlockRef`]/[`BlockMut`] bundles the `(data, rows, cols, ld)` quadruple
//! that every level-2/3 BLAS routine needs, so kernel signatures carry one
//! argument per operand instead of three. Construction validates the
//! geometry once — `ld` must cover the row count and the slice must cover
//! the last column — after which kernels can index `data[i + j * ld]`
//! without re-checking.

/// Minimum slice length for an `rows × cols` block with leading dim `ld`.
fn span(rows: usize, cols: usize, ld: usize) -> usize {
    if cols == 0 || rows == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    }
}

fn check_geometry(len: usize, rows: usize, cols: usize, ld: usize) {
    assert!(ld >= rows.max(1), "leading dim {ld} < rows {rows}");
    assert!(
        len >= span(rows, cols, ld),
        "slice of {len} too short for a {rows}×{cols} block with ld {ld}"
    );
}

/// Shared view of an `rows × cols` column-major block inside a larger
/// buffer with leading dimension `ld`.
#[derive(Clone, Copy)]
pub struct BlockRef<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> BlockRef<'a> {
    pub fn new(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_geometry(data.len(), rows, cols, ld);
        BlockRef {
            data,
            rows,
            cols,
            ld,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn ld(&self) -> usize {
        self.ld
    }

    /// The backing slice; element `(i, j)` lives at `i + j * ld()`.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }
}

/// Exclusive view of an `rows × cols` column-major block inside a larger
/// buffer with leading dimension `ld`.
pub struct BlockMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> BlockMut<'a> {
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_geometry(data.len(), rows, cols, ld);
        BlockMut {
            data,
            rows,
            cols,
            ld,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn ld(&self) -> usize {
        self.ld
    }

    /// The backing slice; element `(i, j)` lives at `i + j * ld()`.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_exact_and_padded_buffers() {
        let buf = vec![0.0; 10];
        let b = BlockRef::new(&buf, 2, 3, 4); // spans 4*2+2 = 10
        assert_eq!((b.rows(), b.cols(), b.ld()), (2, 3, 4));
        BlockRef::new(&buf, 10, 1, 10);
        BlockRef::new(&buf, 0, 0, 1); // empty blocks are fine
        BlockRef::new(&[], 0, 5, 3);
    }

    #[test]
    #[should_panic(expected = "leading dim")]
    fn rejects_short_leading_dim() {
        let buf = vec![0.0; 12];
        BlockRef::new(&buf, 4, 3, 3);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_short_buffer() {
        let mut buf = vec![0.0; 9];
        BlockMut::new(&mut buf, 2, 3, 4); // needs 10
    }
}
