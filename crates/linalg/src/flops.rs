//! Closed-form floating-point operation counts for every kernel in this
//! crate, used by the solvers to charge virtual compute time on the
//! simulated cluster and by tests that verify the paper's complexity claims
//! (Gaussian elimination ≈ 2/3·n³, IMe ≈ 3/2·n³).
//!
//! Counts follow the usual LAPACK convention: one multiply-add pair counts
//! as two flops, divisions and square roots count as one.

/// Flops for `ddot` of length `n`.
pub fn ddot(n: usize) -> u64 {
    2 * n as u64
}

/// Flops for `daxpy` of length `n`.
pub fn daxpy(n: usize) -> u64 {
    2 * n as u64
}

/// Flops for `dscal` of length `n`.
pub fn dscal(n: usize) -> u64 {
    n as u64
}

/// Flops for `dgemv` on an `m × n` block.
pub fn dgemv(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (n as u64)
}

/// Flops for `dger` on an `m × n` block.
pub fn dger(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (n as u64)
}

/// Flops for `dgemm` with shape `(m, n, k)`.
pub fn dgemm(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops for a triangular solve with an `m × m` triangle and `n` right-hand
/// sides.
pub fn dtrsm(m: usize, n: usize) -> u64 {
    (m as u64) * (m as u64) * (n as u64)
}

/// Flops for LU factorisation of an `n × n` matrix with partial pivoting
/// (`dgetrf`): `2/3·n³ − 1/2·n² + 5/6·n`, rounded from the exact sum.
pub fn getrf(n: usize) -> u64 {
    let n = n as f64;
    ((2.0 / 3.0) * n * n * n - 0.5 * n * n + (5.0 / 6.0) * n)
        .round()
        .max(0.0) as u64
}

/// Flops for the two triangular solves of `dgetrs` with one right-hand side:
/// `2·n²` (n² for L-solve with unit diagonal, n² for U-solve incl. the
/// divisions).
pub fn getrs(n: usize) -> u64 {
    2 * (n as u64) * (n as u64)
}

/// Leading-order model of the Inhibition Method's arithmetic complexity as
/// stated by the paper: `3/2·n³ + O(n²)`.
pub fn ime_paper_model(n: usize) -> u64 {
    let n = n as f64;
    (1.5 * n * n * n).round() as u64
}

/// Leading-order model of Gaussian elimination as stated by the paper:
/// `2/3·n³ + O(n²)`.
pub fn ge_paper_model(n: usize) -> u64 {
    let n = n as f64;
    ((2.0 / 3.0) * n * n * n).round() as u64
}

/// Bytes touched by a kernel that streams `elems` doubles once.
pub fn bytes_f64(elems: usize) -> u64 {
    8 * elems as u64
}

/// Flops for a CSR SpMV with `nnz` stored entries: one multiply-add pair
/// per entry.
pub fn spmv(nnz: usize) -> u64 {
    2 * nnz as u64
}

/// DRAM traffic of one CSR SpMV (`y = A·x`) in bytes, for the layout
/// [`crate::sparse::CsrMatrix`] stores: `f64` values plus `u32` column
/// indices (12 bytes per stored entry), the `usize` row-pointer array
/// (8·(n+1)), one streaming read of `x` and one write of `y` (16·n).
/// The gather into `x` is counted as a single stream — the generators'
/// stencil and near-diagonal patterns keep it cache-resident, which is
/// what pins SpMV's arithmetic intensity at `2·nnz / spmv_csr_bytes`
/// ≈ 1/6 flop per byte, far left of every machine's ridge point.
pub fn spmv_csr_bytes(n: usize, nnz: usize) -> u64 {
    12 * nnz as u64 + 8 * (n as u64 + 1) + 16 * n as u64
}

/// DRAM-level traffic of the packed [`crate::blas3`] dgemm under `tune`
/// blocking, in bytes. Counts every packing round trip and `C` update round
/// at cache-line granularity, assuming the packed buffers themselves stay
/// cache-resident (that is the point of the blocking):
///
/// * `A` is packed once per `nc`-wide slab of `C` — `⌈n/nc⌉ · m·k` read
///   plus the same written into the packed buffer;
/// * `B` is packed exactly once — `k·n` read + written;
/// * `C` is read and written once per `kc`-deep panel — `⌈k/kc⌉ · 2·m·n`
///   (the `β` pass rides the first round).
///
/// The roofline model divides [`dgemm`] by this to get the kernel's
/// arithmetic intensity.
pub fn dgemm_packed_bytes(m: usize, n: usize, k: usize, tune: &crate::tune::Blocking) -> u64 {
    if m == 0 || n == 0 {
        return 0;
    }
    let (m, n, k) = (m as u64, n as u64, k as u64);
    let jc_slabs = n.div_ceil(tune.nc as u64);
    let pc_panels = k.div_ceil(tune.kc as u64).max(1);
    8 * (2 * m * k * jc_slabs + 2 * k * n + 2 * m * n * pc_panels)
}

/// DRAM-level traffic of [`crate::blas3::dgemm_reference`] (the unpacked
/// `BC = 64` blocked loop nest), in bytes. With each `BC³` working set
/// cache-resident, every element of `A` reaches DRAM once per `jc` slab,
/// every element of `B` once per `ic` slab, and `C` round-trips once per
/// `pc` slab.
pub fn dgemm_reference_bytes(m: usize, n: usize, k: usize) -> u64 {
    const BC: u64 = 64; // mirrors dgemm_reference's block size
    if m == 0 || n == 0 {
        return 0;
    }
    let (m, n, k) = (m as u64, n as u64, k as u64);
    8 * (m * k * n.div_ceil(BC) + k * n * m.div_ceil(BC) + 2 * m * n * k.div_ceil(BC).max(1))
}

/// Work profile of the blocked triangular solves in [`crate::blas3`],
/// split by the code class that executes each part — the roofline model
/// charges each class at a different in-core rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrsmProfile {
    /// Flops routed through the packed dgemm trailing updates (thin
    /// `k = TRSM_BLOCK` panels, microkernel path).
    pub dgemm_flops: u64,
    /// Flops in the scalar substitution over the diagonal blocks.
    pub subst_flops: u64,
    /// DRAM-level bytes for the whole solve (substitution traffic plus the
    /// packed traffic of every trailing update).
    pub bytes: u64,
}

/// Closed-form [`TrsmProfile`] for `dtrsm_left_lower_unit` /
/// `dtrsm_left_upper` on an `m × m` triangle with `n` right-hand sides,
/// mirroring the implementation's `TRSM_BLOCK` loop: both variants do the
/// same block sequence (forward vs backward), so one profile serves both.
pub fn dtrsm_packed_profile(m: usize, n: usize, tune: &crate::tune::Blocking) -> TrsmProfile {
    let tb = crate::blas3::TRSM_BLOCK;
    let mut p = TrsmProfile {
        dgemm_flops: 0,
        subst_flops: 0,
        bytes: 0,
    };
    let mut k0 = 0;
    while k0 < m {
        let kb = tb.min(m - k0);
        // kb² flops per column: kb(kb−1) multiply-adds + kb divisions (the
        // unit-diagonal solve skips the divisions but gains nothing else;
        // the difference is below the model's resolution).
        p.subst_flops += (kb * kb * n) as u64;
        // Substitution streams the B block twice (read + write) and the
        // diagonal half-triangle of A once.
        p.bytes += 8 * (2 * kb * n + kb * kb / 2) as u64;
        let rest = m - k0 - kb;
        if rest > 0 {
            p.dgemm_flops += dgemm(rest, n, kb);
            // Copy-out of the solved rows (read + write) feeds the update.
            p.bytes += 8 * (2 * kb * n) as u64 + dgemm_packed_bytes(rest, n, kb, tune);
        }
        k0 += kb;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_count() {
        assert_eq!(dgemm(2, 3, 4), 48);
    }

    #[test]
    fn getrf_leading_term() {
        // For large n the exact count approaches 2/3 n^3.
        let n = 1000usize;
        let exact = getrf(n) as f64;
        let model = ge_paper_model(n) as f64;
        assert!((exact - model).abs() / model < 0.01);
    }

    #[test]
    fn ime_model_is_2_25x_ge_model() {
        // 3/2 / (2/3) = 2.25: the paper's flop ratio between IMe and GE.
        let n = 512;
        let ratio = ime_paper_model(n) as f64 / ge_paper_model(n) as f64;
        assert!((ratio - 2.25).abs() < 1e-6);
    }

    #[test]
    fn zero_sizes_are_zero() {
        assert_eq!(dgemm(0, 5, 5), 0);
        assert_eq!(getrf(0), 0);
        assert_eq!(getrs(0), 0);
        let tune = crate::tune::Blocking::default_blocking();
        assert_eq!(dgemm_packed_bytes(0, 5, 5, &tune), 0);
        assert_eq!(dgemm_reference_bytes(5, 0, 5), 0);
    }

    #[test]
    fn packed_traffic_beats_reference_traffic_at_scale() {
        // The whole point of packing: far fewer DRAM round trips per flop.
        let tune = crate::tune::Blocking::default_blocking();
        let n = 1024;
        assert!(dgemm_packed_bytes(n, n, n, &tune) < dgemm_reference_bytes(n, n, n) / 4);
    }

    #[test]
    fn packed_bytes_single_slab_closed_form() {
        // m = n = k = 512 with default blocking {nc: 512, kc: 256}: one jc
        // slab, two pc panels. A read+write of packed A and B per panel
        // (2mk + 2kn, one slab each) plus a C read+write per panel
        // (2mn × ⌈k/kc⌉ = 2 panels) = 8·(2 + 2 + 4)·512² bytes.
        let tune = crate::tune::Blocking::default_blocking();
        let e = 512u64 * 512;
        assert_eq!(dgemm_packed_bytes(512, 512, 512, &tune), 8 * 8 * e);
    }

    #[test]
    fn trsm_profile_sums_to_m2n() {
        // dgemm + substitution flops must reproduce the m²n total the
        // LAPACK-convention dtrsm() count promises, exactly.
        let tune = crate::tune::Blocking::default_blocking();
        for (m, n) in [(512usize, 256usize), (192, 64), (64, 16), (37, 5)] {
            let p = dtrsm_packed_profile(m, n, &tune);
            assert_eq!(p.dgemm_flops + p.subst_flops, dtrsm(m, n), "m={m} n={n}");
            assert!(p.bytes > 0);
        }
    }

    #[test]
    fn spmv_intensity_is_memory_bound() {
        // 5-point stencil at k = 100: AI = 2·nnz / bytes ≈ 0.16 flop/byte,
        // an order of magnitude left of any x86 ridge point.
        let k = 100;
        let (n, nnz) = (k * k, 5 * k * k - 4 * k);
        let ai = spmv(nnz) as f64 / spmv_csr_bytes(n, nnz) as f64;
        assert!((0.1..0.2).contains(&ai), "AI {ai}");
    }

    #[test]
    fn trsm_flops_are_mostly_packed_dgemm() {
        // The blocked solve routes ~1 − TRSM_BLOCK/m of the work through
        // the microkernel; at m = 512 that is ~7/8.
        let tune = crate::tune::Blocking::default_blocking();
        let p = dtrsm_packed_profile(512, 256, &tune);
        let frac = p.dgemm_flops as f64 / (p.dgemm_flops + p.subst_flops) as f64;
        assert!((0.85..0.92).contains(&frac), "dgemm fraction {frac}");
    }
}
