//! Closed-form floating-point operation counts for every kernel in this
//! crate, used by the solvers to charge virtual compute time on the
//! simulated cluster and by tests that verify the paper's complexity claims
//! (Gaussian elimination ≈ 2/3·n³, IMe ≈ 3/2·n³).
//!
//! Counts follow the usual LAPACK convention: one multiply-add pair counts
//! as two flops, divisions and square roots count as one.

/// Flops for `ddot` of length `n`.
pub fn ddot(n: usize) -> u64 {
    2 * n as u64
}

/// Flops for `daxpy` of length `n`.
pub fn daxpy(n: usize) -> u64 {
    2 * n as u64
}

/// Flops for `dscal` of length `n`.
pub fn dscal(n: usize) -> u64 {
    n as u64
}

/// Flops for `dgemv` on an `m × n` block.
pub fn dgemv(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (n as u64)
}

/// Flops for `dger` on an `m × n` block.
pub fn dger(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (n as u64)
}

/// Flops for `dgemm` with shape `(m, n, k)`.
pub fn dgemm(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops for a triangular solve with an `m × m` triangle and `n` right-hand
/// sides.
pub fn dtrsm(m: usize, n: usize) -> u64 {
    (m as u64) * (m as u64) * (n as u64)
}

/// Flops for LU factorisation of an `n × n` matrix with partial pivoting
/// (`dgetrf`): `2/3·n³ − 1/2·n² + 5/6·n`, rounded from the exact sum.
pub fn getrf(n: usize) -> u64 {
    let n = n as f64;
    ((2.0 / 3.0) * n * n * n - 0.5 * n * n + (5.0 / 6.0) * n)
        .round()
        .max(0.0) as u64
}

/// Flops for the two triangular solves of `dgetrs` with one right-hand side:
/// `2·n²` (n² for L-solve with unit diagonal, n² for U-solve incl. the
/// divisions).
pub fn getrs(n: usize) -> u64 {
    2 * (n as u64) * (n as u64)
}

/// Leading-order model of the Inhibition Method's arithmetic complexity as
/// stated by the paper: `3/2·n³ + O(n²)`.
pub fn ime_paper_model(n: usize) -> u64 {
    let n = n as f64;
    (1.5 * n * n * n).round() as u64
}

/// Leading-order model of Gaussian elimination as stated by the paper:
/// `2/3·n³ + O(n²)`.
pub fn ge_paper_model(n: usize) -> u64 {
    let n = n as f64;
    ((2.0 / 3.0) * n * n * n).round() as u64
}

/// Bytes touched by a kernel that streams `elems` doubles once.
pub fn bytes_f64(elems: usize) -> u64 {
    8 * elems as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_count() {
        assert_eq!(dgemm(2, 3, 4), 48);
    }

    #[test]
    fn getrf_leading_term() {
        // For large n the exact count approaches 2/3 n^3.
        let n = 1000usize;
        let exact = getrf(n) as f64;
        let model = ge_paper_model(n) as f64;
        assert!((exact - model).abs() / model < 0.01);
    }

    #[test]
    fn ime_model_is_2_25x_ge_model() {
        // 3/2 / (2/3) = 2.25: the paper's flop ratio between IMe and GE.
        let n = 512;
        let ratio = ime_paper_model(n) as f64 / ge_paper_model(n) as f64;
        assert!((ratio - 2.25).abs() < 1e-6);
    }

    #[test]
    fn zero_sizes_are_zero() {
        assert_eq!(dgemm(0, 5, 5), 0);
        assert_eq!(getrf(0), 0);
        assert_eq!(getrs(0), 0);
    }
}
