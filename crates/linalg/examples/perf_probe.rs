//! Quick GFLOP/s probe: packed dgemm vs the scalar reference. Run with
//! `cargo run --release -p greenla-linalg --example perf_probe [n [mc nc kc]]`.
use greenla_linalg::blas3::{dgemm_blocked, dgemm_reference};
use greenla_linalg::tune::Blocking;
use greenla_linalg::Matrix;
use std::time::Instant;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let n = args.first().copied().unwrap_or(512);
    let mut tune = Blocking::default_blocking();
    if args.len() >= 4 {
        tune = Blocking {
            mc: args[1],
            nc: args[2],
            kc: args[3],
        };
    }
    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
    let flops = 2.0 * (n as f64).powi(3);
    let mut c = Matrix::zeros(n, n);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        dgemm_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune);
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!(
        "packed: {best:.3}s  {:.2} GFLOP/s  {tune:?}",
        flops / best / 1e9
    );
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        dgemm_reference(1.0, a.block(), b.block(), 0.0, c.block_mut());
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("scalar: {best:.3}s  {:.2} GFLOP/s", flops / best / 1e9);
}
