//! Per-run accounting of what was injected, what the runtime saw, and
//! what it recovered from.

use serde::{Deserialize, Serialize};

/// Counts of faults by kind. Used three ways in a [`FaultReport`]:
/// injected (the plan fired), observed (the runtime noticed), recovered
/// (the runtime absorbed it without failing the run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    pub msg_drop: u64,
    pub msg_dup: u64,
    pub msg_delay: u64,
    pub rank_crash: u64,
    pub counter: u64,
    pub monitor: u64,
    pub column_loss: u64,
}

impl FaultCounts {
    /// Total across all kinds.
    pub fn total(&self) -> u64 {
        self.msg_drop
            + self.msg_dup
            + self.msg_delay
            + self.rank_crash
            + self.counter
            + self.monitor
            + self.column_loss
    }

    fn merge(&mut self, other: &FaultCounts) {
        self.msg_drop += other.msg_drop;
        self.msg_dup += other.msg_dup;
        self.msg_delay += other.msg_delay;
        self.rank_crash += other.rank_crash;
        self.counter += other.counter;
        self.monitor += other.monitor;
        self.column_loss += other.column_loss;
    }
}

/// What one faulted run did with its plan. `injected` counts plan entries
/// that actually fired; `observed` counts faults the runtime noticed
/// (a duplicate discarded, a delayed envelope matched, a degraded node);
/// `recovered` counts faults absorbed without aborting the run.
/// `degraded_nodes` lists nodes the monitor protocol downgraded to
/// "unmeasured".
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    pub injected: FaultCounts,
    pub observed: FaultCounts,
    pub recovered: FaultCounts,
    #[serde(default = "Default::default")]
    pub degraded_nodes: Vec<usize>,
}

impl FaultReport {
    /// Did anything fire at all?
    pub fn is_empty(&self) -> bool {
        self.injected.total() == 0
            && self.observed.total() == 0
            && self.recovered.total() == 0
            && self.degraded_nodes.is_empty()
    }

    /// Fold another rank's (or node's) local report into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.injected.merge(&other.injected);
        self.observed.merge(&other.observed);
        self.recovered.merge(&other.recovered);
        self.degraded_nodes
            .extend(other.degraded_nodes.iter().copied());
        self.degraded_nodes.sort_unstable();
        self.degraded_nodes.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_dedups_nodes() {
        let mut a = FaultReport {
            injected: FaultCounts {
                msg_drop: 2,
                ..Default::default()
            },
            degraded_nodes: vec![1],
            ..Default::default()
        };
        let b = FaultReport {
            injected: FaultCounts {
                msg_drop: 1,
                monitor: 1,
                ..Default::default()
            },
            degraded_nodes: vec![1, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.injected.msg_drop, 3);
        assert_eq!(a.injected.monitor, 1);
        assert_eq!(a.degraded_nodes, vec![0, 1]);
        assert_eq!(a.injected.total(), 4);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = FaultReport::default();
        assert!(r.is_empty());
        let text = serde_json::to_string(&r).expect("serialise");
        let back: FaultReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(r, back);
    }
}
