//! The runtime-facing half: a shared sink the machine consults at its
//! injection points, plus a cheap per-rank handle.
//!
//! Mirrors the observer discipline of `greenla-trace` / `greenla-check`:
//! a disabled sink is a `None` behind an `Option<Arc<..>>`, so every hook
//! costs one branch and the virtual timeline of a fault-free build is
//! untouched. Per-rank state lives in [`RankFaults`] (no locking on the
//! hot path); local tallies are folded into the shared [`FaultReport`]
//! when the handle drops — which also happens during panic unwinding, so
//! crashed ranks still account for the faults they saw.

use std::sync::{Arc, Mutex};

use crate::plan::{CounterFault, CrashWhen, FaultPlan, MsgFault, MsgFaultKind};
use crate::report::FaultReport;

struct Shared {
    plan: FaultPlan,
    collected: Mutex<FaultReport>,
    /// One flag per plan counter fault: has it fired at least once?
    counter_fired: Mutex<Vec<bool>>,
}

/// Shared fault state for one machine run. Cloning is cheap (an `Arc`).
#[derive(Clone)]
pub struct FaultSink {
    shared: Option<Arc<Shared>>,
}

impl Default for FaultSink {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultSink {
    /// A sink that injects nothing and records nothing.
    pub fn disabled() -> FaultSink {
        FaultSink { shared: None }
    }

    /// A sink driven by `plan`.
    pub fn with_plan(plan: FaultPlan) -> FaultSink {
        let fired = vec![false; plan.counters.len()];
        FaultSink {
            shared: Some(Arc::new(Shared {
                plan,
                collected: Mutex::new(FaultReport::default()),
                counter_fired: Mutex::new(fired),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The plan this sink executes, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.shared.as_deref().map(|s| &s.plan)
    }

    /// Build the per-rank handle for `rank` living on node `node`.
    pub fn handle(&self, rank: usize, node: usize) -> RankFaults {
        let Some(shared) = &self.shared else {
            return RankFaults::disabled();
        };
        let mut msg_faults: Vec<MsgFault> = shared
            .plan
            .messages
            .iter()
            .copied()
            .filter(|m| m.src == rank)
            .collect();
        msg_faults.sort_by_key(|m| m.nth_send);
        let crash = shared
            .plan
            .crashes
            .iter()
            .find(|c| c.rank == rank)
            .map(|c| c.when);
        RankFaults {
            shared: Some(shared.clone()),
            rank,
            node,
            msg_faults,
            next_msg: 0,
            sends: 0,
            crash,
            calls: 0,
            local: FaultReport::default(),
        }
    }

    /// Look up the counter fault (if any) covering `(node, socket)` and
    /// mark it fired when the read time has reached its onset. Called by
    /// the RAPL simulator on every energy read; returns the kind and the
    /// onset time so the simulator can freeze / inflate from there.
    pub fn counter_fault(
        &self,
        node: usize,
        socket: usize,
        t_s: f64,
    ) -> Option<(crate::plan::CounterFaultKind, f64)> {
        let shared = self.shared.as_deref()?;
        let (i, fault): (usize, &CounterFault) = shared
            .plan
            .counters
            .iter()
            .enumerate()
            .find(|(_, c)| c.node == node && c.socket == socket)?;
        if t_s < fault.from_s {
            return None;
        }
        let mut fired = shared.counter_fired.lock().expect("counter_fired lock");
        if !fired[i] {
            fired[i] = true;
            let mut rep = shared.collected.lock().expect("fault report lock");
            rep.injected.counter += 1;
            rep.observed.counter += 1;
        }
        Some((fault.kind, fault.from_s))
    }

    /// Account for a duplicate envelope that was still sitting in a
    /// mailbox when the run finished (the receiver returned before
    /// pumping it). Called from the machine's finalisation audit so the
    /// observed-duplicate count is deterministic regardless of wall-clock
    /// arrival order.
    pub fn note_dup_discarded(&self) {
        if let Some(shared) = &self.shared {
            let mut rep = shared.collected.lock().expect("fault report lock");
            rep.observed.msg_dup += 1;
            rep.recovered.msg_dup += 1;
        }
    }

    /// The merged report across all ranks that have flushed (i.e. whose
    /// handles dropped). Call after the run completes.
    pub fn report(&self) -> FaultReport {
        match &self.shared {
            None => FaultReport::default(),
            Some(shared) => {
                let mut rep = shared.collected.lock().expect("fault report lock").clone();
                rep.degraded_nodes.sort_unstable();
                rep.degraded_nodes.dedup();
                rep
            }
        }
    }
}

/// Per-rank fault state: owned by the rank's context, consulted at every
/// injection point without locks. Flushes its tallies into the shared
/// report on drop.
pub struct RankFaults {
    shared: Option<Arc<Shared>>,
    rank: usize,
    node: usize,
    msg_faults: Vec<MsgFault>,
    next_msg: usize,
    sends: u64,
    crash: Option<CrashWhen>,
    calls: u64,
    local: FaultReport,
}

impl RankFaults {
    /// A handle that injects and records nothing.
    pub fn disabled() -> RankFaults {
        RankFaults {
            shared: None,
            rank: 0,
            node: 0,
            msg_faults: Vec::new(),
            next_msg: 0,
            sends: 0,
            crash: None,
            calls: 0,
            local: FaultReport::default(),
        }
    }

    /// One branch on the hot path: is there anything to do at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Advance the per-rank call counter and decide whether the planned
    /// crash fires now (`now` is the rank's virtual clock). Returns the
    /// panic message when due. Call only when [`enabled`](Self::enabled).
    pub fn crash_due(&mut self, now: f64) -> Option<String> {
        self.calls += 1;
        let due = match self.crash? {
            CrashWhen::AtTime { t_s } => now >= t_s,
            CrashWhen::AtCall { calls } => self.calls >= calls,
        };
        if !due {
            return None;
        }
        self.crash = None;
        self.local.injected.rank_crash += 1;
        self.local.observed.rank_crash += 1;
        Some(format!(
            "injected fault: rank {} crashed at virtual t={now:.6}s",
            self.rank
        ))
    }

    /// The fault (if any) attached to this rank's next logical send.
    /// Advances the send counter either way. Call only when
    /// [`enabled`](Self::enabled).
    pub fn next_send_fault(&mut self) -> Option<MsgFaultKind> {
        let idx = self.sends;
        self.sends += 1;
        while self.next_msg < self.msg_faults.len() && self.msg_faults[self.next_msg].nth_send < idx
        {
            self.next_msg += 1;
        }
        if self.next_msg < self.msg_faults.len() && self.msg_faults[self.next_msg].nth_send == idx {
            let kind = self.msg_faults[self.next_msg].kind;
            self.next_msg += 1;
            Some(kind)
        } else {
            None
        }
    }

    /// Is this rank's node scheduled for a monitoring-rank death? Records
    /// the injection when it is. Called once per run by the node's
    /// monitoring rank during protocol bring-up.
    pub fn monitor_death_due(&mut self) -> bool {
        let due = self
            .shared
            .as_deref()
            .is_some_and(|s| s.plan.monitor_deaths.contains(&self.node));
        if due {
            self.local.injected.monitor += 1;
        }
        due
    }

    /// The node recovered from a monitoring fault by downgrading itself
    /// to "unmeasured".
    pub fn note_degraded(&mut self) {
        self.local.observed.monitor += 1;
        self.local.recovered.monitor += 1;
        self.local.degraded_nodes.push(self.node);
    }

    /// The planned application-level column loss, if any (consumed by
    /// checksum-protected solvers).
    pub fn app_column_loss(&self) -> Option<(usize, usize)> {
        self.shared
            .as_deref()
            .and_then(|s| s.plan.column_loss)
            .map(|c| (c.level, c.column))
    }

    pub fn record_column_loss_injected(&mut self) {
        self.local.injected.column_loss += 1;
        self.local.observed.column_loss += 1;
    }

    pub fn record_column_loss_recovered(&mut self) {
        self.local.recovered.column_loss += 1;
    }

    /// `count` consecutive drops were injected on one send.
    pub fn record_drop_injected(&mut self, count: u64) {
        self.local.injected.msg_drop += count;
        self.local.observed.msg_drop += count;
    }

    /// The retry loop delivered the envelope despite the drops.
    pub fn record_drop_recovered(&mut self, count: u64) {
        self.local.recovered.msg_drop += count;
    }

    pub fn record_dup_injected(&mut self) {
        self.local.injected.msg_dup += 1;
    }

    /// The receiver noticed and discarded a duplicate envelope.
    pub fn record_dup_discarded(&mut self) {
        self.local.observed.msg_dup += 1;
        self.local.recovered.msg_dup += 1;
    }

    pub fn record_delay_injected(&mut self) {
        self.local.injected.msg_delay += 1;
    }

    /// The receiver matched an envelope marked as delayed.
    pub fn record_delay_observed(&mut self) {
        self.local.observed.msg_delay += 1;
        self.local.recovered.msg_delay += 1;
    }
}

impl Drop for RankFaults {
    fn drop(&mut self) {
        let Some(shared) = &self.shared else { return };
        if self.local.is_empty() {
            return;
        }
        let mut rep = shared.collected.lock().expect("fault report lock");
        rep.merge(&self.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ColumnLoss, CrashFault};

    #[test]
    fn disabled_sink_is_inert() {
        let sink = FaultSink::disabled();
        assert!(!sink.is_enabled());
        let mut h = sink.handle(3, 0);
        assert!(!h.enabled());
        assert!(h.next_send_fault().is_none());
        assert!(h.crash_due(1.0).is_none());
        assert!(!h.monitor_death_due());
        assert!(h.app_column_loss().is_none());
        assert!(sink.counter_fault(0, 0, 1.0).is_none());
        drop(h);
        assert!(sink.report().is_empty());
    }

    #[test]
    fn send_faults_fire_at_their_index_in_order() {
        let plan = FaultPlan {
            messages: vec![
                MsgFault {
                    src: 2,
                    nth_send: 3,
                    kind: MsgFaultKind::Duplicate,
                },
                MsgFault {
                    src: 2,
                    nth_send: 1,
                    kind: MsgFaultKind::Drop { count: 2 },
                },
                MsgFault {
                    src: 5,
                    nth_send: 0,
                    kind: MsgFaultKind::Duplicate,
                },
            ],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let mut h = sink.handle(2, 0);
        assert!(h.next_send_fault().is_none()); // send 0
        assert_eq!(h.next_send_fault(), Some(MsgFaultKind::Drop { count: 2 })); // send 1
        assert!(h.next_send_fault().is_none()); // send 2
        assert_eq!(h.next_send_fault(), Some(MsgFaultKind::Duplicate)); // send 3
        assert!(h.next_send_fault().is_none()); // send 4
    }

    #[test]
    fn crash_fires_once_and_is_reported() {
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                rank: 1,
                when: CrashWhen::AtTime { t_s: 0.5 },
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let mut h = sink.handle(1, 0);
        assert!(h.crash_due(0.1).is_none());
        let msg = h.crash_due(0.7).expect("crash due");
        assert!(msg.starts_with("injected fault: rank 1 crashed"));
        assert!(h.crash_due(0.9).is_none(), "crash fires exactly once");
        drop(h);
        let rep = sink.report();
        assert_eq!(rep.injected.rank_crash, 1);
    }

    #[test]
    fn counter_fault_counts_once_across_many_reads() {
        let plan = FaultPlan {
            counters: vec![CounterFault {
                node: 0,
                socket: 1,
                from_s: 0.25,
                kind: crate::plan::CounterFaultKind::Stuck,
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        assert!(sink.counter_fault(0, 1, 0.1).is_none(), "before onset");
        assert!(sink.counter_fault(0, 0, 0.5).is_none(), "other socket");
        for _ in 0..4 {
            let (kind, from) = sink.counter_fault(0, 1, 0.5).expect("fault active");
            assert_eq!(from, 0.25);
            assert!(matches!(kind, crate::plan::CounterFaultKind::Stuck));
        }
        let rep = sink.report();
        assert_eq!(rep.injected.counter, 1, "one fault, many reads");
        assert_eq!(rep.observed.counter, 1);
    }

    #[test]
    fn handles_flush_on_drop_and_merge() {
        let plan = FaultPlan {
            monitor_deaths: vec![1],
            column_loss: Some(ColumnLoss {
                level: 3,
                column: 7,
            }),
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let mut a = sink.handle(4, 1);
        assert!(a.monitor_death_due());
        a.note_degraded();
        let mut b = sink.handle(0, 0);
        assert_eq!(b.app_column_loss(), Some((3, 7)));
        b.record_column_loss_injected();
        b.record_column_loss_recovered();
        assert!(sink.report().is_empty(), "nothing flushed yet");
        drop(a);
        drop(b);
        let rep = sink.report();
        assert_eq!(rep.injected.monitor, 1);
        assert_eq!(rep.recovered.monitor, 1);
        assert_eq!(rep.degraded_nodes, vec![1]);
        assert_eq!(rep.injected.column_loss, 1);
        assert_eq!(rep.recovered.column_loss, 1);
    }
}
