#![forbid(unsafe_code)]
//! # greenla-faults — deterministic fault injection for the simulated runtime
//!
//! Energy campaigns on real clusters fight node dropouts, lost messages
//! and glitching RAPL counters mid-run. This crate turns those failure
//! modes into a *seeded, virtual-time-deterministic* [`FaultPlan`] that
//! the simulated MPI machine and its measurement stack consult at fixed
//! injection points:
//!
//! - **Messages** — drop (with bounded retry-and-virtual-backoff at the
//!   sender), duplicate (discarded at the receiver), and delay-by-virtual-
//!   time, on point-to-point traffic and therefore on every collective
//!   built on top of it.
//! - **Ranks** — panic-style death at a chosen virtual time or call
//!   count; the run aborts with a stable `injected fault:` diagnostic
//!   instead of hanging.
//! - **Measurement** — RAPL counter wrap storms, stuck counters, glitched
//!   (failing) reads, and monitoring-rank death mid-protocol; the monitor
//!   protocol degrades the affected node to "unmeasured" when asked to.
//! - **Application** — a runtime-driven single-column loss for checksum-
//!   protected solvers (IMe's fault-tolerant path).
//!
//! Every trigger is keyed on virtual time or deterministic per-rank
//! counters, never on wall clocks, so the same `(seed, plan)` pair yields
//! bit-identical virtual timings, traces and [`FaultReport`]s on both the
//! polling and the parked scheduler — and on both rank engines
//! (thread-per-rank and the event-driven fiber engine): a delay shifts a
//! message's *virtual* arrival, a drop re-charges *virtual* backoff, so
//! injection composes with task wakeups exactly as it does with thread
//! wakeups, with nothing engine-specific anywhere in this crate. A machine without a plan pays one
//! branch per hook ([`FaultSink::disabled`]) and is bit-identical in
//! virtual time to a build without this crate — the same zero-overhead
//! discipline as `greenla-trace` and `greenla-check`.
//!
//! The per-run outcome is a [`FaultReport`]: what the plan injected, what
//! the runtime observed, and what it recovered from, plus the list of
//! nodes degraded to "unmeasured".

mod plan;
mod report;
mod sink;

pub use plan::{
    retry_backoff_s, ColumnLoss, CounterFault, CounterFaultKind, CrashFault, CrashWhen, FaultPlan,
    MsgFault, MsgFaultKind, PlanShape, MAX_SEND_RETRIES,
};
pub use report::{FaultCounts, FaultReport};
pub use sink::{FaultSink, RankFaults};
