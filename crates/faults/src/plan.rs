//! Fault plans: what to break, where, and when — all in virtual time.
//!
//! A [`FaultPlan`] is a *pure description*. It never observes wall-clock
//! time or OS scheduling: every trigger is keyed on virtual time, a
//! per-rank call count, or a per-rank send index, so the same plan replayed
//! on the same program produces the same faults in the same places — on
//! the parked scheduler and the polling one alike.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How many times the point-to-point layer retries a dropped envelope
/// before declaring the message lost and aborting the run. A
/// [`MsgFaultKind::Drop`] with `count <= MAX_SEND_RETRIES` is therefore
/// always recovered; a larger burst is a fatal, diagnosed loss.
pub const MAX_SEND_RETRIES: u32 = 3;

/// Virtual-time backoff charged for retry `attempt` (0-based) of a dropped
/// send: exponential in the per-message overhead, so the retries are
/// visible in the virtual timeline but never depend on wall clocks.
pub fn retry_backoff_s(base_s: f64, attempt: u32) -> f64 {
    base_s * (1u64 << (attempt + 1)) as f64
}

/// What happens to one planned point-to-point send (collectives ride on
/// the same path, so they are covered too).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MsgFaultKind {
    /// The envelope is dropped `count` times; each drop costs the sender a
    /// virtual backoff before the retry. More than [`MAX_SEND_RETRIES`]
    /// drops turn into a diagnosed message loss (the sender aborts the
    /// run rather than letting the receiver hang).
    Drop { count: u32 },
    /// A second, marked copy of the envelope is delivered; the receiver
    /// must discard it.
    Duplicate,
    /// The envelope's virtual arrival is pushed `extra_s` seconds into the
    /// future.
    Delay { extra_s: f64 },
}

/// A fault attached to the `nth_send`-th point-to-point send issued by
/// global rank `src` (counting from 0, collective-internal sends
/// included).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MsgFault {
    pub src: usize,
    pub nth_send: u64,
    pub kind: MsgFaultKind,
}

/// When a planned rank crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CrashWhen {
    /// At the first fault hook where the rank's virtual clock has reached
    /// `t_s`.
    AtTime { t_s: f64 },
    /// At the rank's `calls`-th fault hook (compute / send entry points).
    AtCall { calls: u64 },
}

/// Panic-style death of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashFault {
    pub rank: usize,
    pub when: CrashWhen,
}

/// How a RAPL counter misbehaves from `from_s` onward.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CounterFaultKind {
    /// The counter accumulates an extra `extra_w` watts of phantom power,
    /// wrapping the 32-bit register many times between reads (the
    /// multi-wrap case `delta_joules_with_hint` reconstructs).
    WrapStorm { extra_w: f64 },
    /// The counter freezes at its value at `from_s`.
    Stuck,
    /// Reads fail outright (a dead powercap sysfs node); the monitor
    /// protocol degrades the node to "unmeasured" when degradation is
    /// enabled.
    Glitch,
}

/// A measurement fault on one `(node, socket)` energy counter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterFault {
    pub node: usize,
    pub socket: usize,
    pub from_s: f64,
    pub kind: CounterFaultKind,
}

/// A runtime-driven single-column loss for checksum-protected solvers
/// (IMe's `solve_imep_ft`): at `level` (counting down), the owner of table
/// column `column` loses that column's data. Plans are portable across
/// problem sizes: consumers reduce `level` / `column` into their own valid
/// range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColumnLoss {
    pub level: usize,
    pub column: usize,
}

/// A complete, serialisable fault plan. An empty plan injects nothing; a
/// machine with *no* plan attached pays one branch per hook and is
/// bit-identical in virtual time to a pre-fault-layer build.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Provenance: the seed this plan was generated from (0 for
    /// hand-written plans).
    #[serde(default = "Default::default")]
    pub seed: u64,
    #[serde(default = "Default::default")]
    pub messages: Vec<MsgFault>,
    #[serde(default = "Default::default")]
    pub crashes: Vec<CrashFault>,
    #[serde(default = "Default::default")]
    pub counters: Vec<CounterFault>,
    /// Nodes whose monitoring rank dies during the Figure-2 protocol.
    #[serde(default = "Default::default")]
    pub monitor_deaths: Vec<usize>,
    #[serde(default = "Default::default")]
    pub column_loss: Option<ColumnLoss>,
}

/// The dimensions a seeded plan generator scales its draws to.
#[derive(Clone, Copy, Debug)]
pub struct PlanShape {
    /// World size of the target run.
    pub ranks: usize,
    /// Nodes the run occupies.
    pub nodes: usize,
    /// Matrix dimension (bounds column-loss draws).
    pub n: usize,
}

impl FaultPlan {
    /// Does this plan inject anything at all?
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
            && self.crashes.is_empty()
            && self.counters.is_empty()
            && self.monitor_deaths.is_empty()
            && self.column_loss.is_none()
    }

    /// A seeded chaos plan: a mix of message, crash, measurement, monitor
    /// and column-loss faults. Some draws are fatal by design (crashes,
    /// drop bursts past the retry budget) — chaos batteries assert those
    /// runs abort with a stable diagnostic instead of hanging.
    pub fn seeded(seed: u64, shape: &PlanShape) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_7E57);
        let mut plan = Self::recoverable_draws(&mut rng, seed, shape);
        // Chaos extras: with moderate probability, add a genuinely fatal
        // fault so the abort path stays exercised.
        if rng.gen_bool(0.25) {
            plan.crashes.push(CrashFault {
                rank: rng.gen_range(0..shape.ranks),
                when: if rng.gen_bool(0.5) {
                    CrashWhen::AtTime {
                        t_s: rng.gen_range(0.0..0.02),
                    }
                } else {
                    CrashWhen::AtCall {
                        calls: rng.gen_range(1..400u64),
                    }
                },
            });
        }
        if rng.gen_bool(0.15) {
            plan.messages.push(MsgFault {
                src: rng.gen_range(0..shape.ranks),
                nth_send: rng.gen_range(0..50u64),
                kind: MsgFaultKind::Drop {
                    count: MAX_SEND_RETRIES + 1,
                },
            });
        }
        plan
    }

    /// A seeded plan containing only *recoverable* faults: every injected
    /// fault is absorbed by a retry, a discard, a degradation or a
    /// checksum recovery, so the run completes and produces a
    /// [`crate::FaultReport`]. Used by determinism tests, which compare
    /// completed runs bit for bit across schedulers.
    pub fn recoverable_seeded(seed: u64, shape: &PlanShape) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5AFE_5AFE);
        Self::recoverable_draws(&mut rng, seed, shape)
    }

    fn recoverable_draws(rng: &mut ChaCha8Rng, seed: u64, shape: &PlanShape) -> FaultPlan {
        let mut plan = FaultPlan {
            seed,
            ..Default::default()
        };
        // Early send indices so the faults reliably fire even on short
        // runs; small drop bursts stay inside the retry budget.
        for _ in 0..rng.gen_range(1..=4usize) {
            let kind = match rng.gen_range(0..3u32) {
                0 => MsgFaultKind::Drop {
                    count: rng.gen_range(1..=MAX_SEND_RETRIES),
                },
                1 => MsgFaultKind::Duplicate,
                _ => MsgFaultKind::Delay {
                    extra_s: rng.gen_range(1.0e-6..2.0e-3),
                },
            };
            plan.messages.push(MsgFault {
                src: rng.gen_range(0..shape.ranks),
                nth_send: rng.gen_range(0..40u64),
                kind,
            });
        }
        if rng.gen_bool(0.5) {
            let kind = match rng.gen_range(0..3u32) {
                0 => CounterFaultKind::WrapStorm {
                    extra_w: rng.gen_range(1.0e7..1.0e9),
                },
                1 => CounterFaultKind::Stuck,
                _ => CounterFaultKind::Glitch,
            };
            plan.counters.push(CounterFault {
                node: rng.gen_range(0..shape.nodes),
                socket: rng.gen_range(0..2usize),
                from_s: rng.gen_range(0.0..0.01),
                kind,
            });
        }
        // At most one monitoring rank dies, and only when more than one
        // node exists, so at least one node stays measured.
        if shape.nodes > 1 && rng.gen_bool(0.3) {
            plan.monitor_deaths.push(rng.gen_range(0..shape.nodes));
        }
        if shape.n > 0 && rng.gen_bool(0.4) {
            plan.column_loss = Some(ColumnLoss {
                level: rng.gen_range(0..shape.n),
                column: rng.gen_range(0..2 * shape.n),
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PlanShape {
        PlanShape {
            ranks: 16,
            nodes: 2,
            n: 64,
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..20 {
            assert_eq!(
                FaultPlan::seeded(seed, &shape()),
                FaultPlan::seeded(seed, &shape())
            );
            assert_eq!(
                FaultPlan::recoverable_seeded(seed, &shape()),
                FaultPlan::recoverable_seeded(seed, &shape())
            );
        }
    }

    #[test]
    fn recoverable_plans_have_no_fatal_faults() {
        for seed in 0..200 {
            let p = FaultPlan::recoverable_seeded(seed, &shape());
            assert!(p.crashes.is_empty(), "seed {seed}");
            for m in &p.messages {
                if let MsgFaultKind::Drop { count } = m.kind {
                    assert!(count <= MAX_SEND_RETRIES, "seed {seed}");
                }
            }
            assert!(p.monitor_deaths.len() < shape().nodes, "seed {seed}");
            assert!(!p.is_empty(), "seeded plans always inject something");
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = FaultPlan::seeded(11, &shape());
        let text = serde_json::to_string(&p).expect("serialise");
        let back: FaultPlan = serde_json::from_str(&text).expect("parse");
        assert_eq!(p, back);
        // An empty document is a valid (empty) plan.
        let empty: FaultPlan = serde_json::from_str("{}").expect("parse empty");
        assert!(empty.is_empty());
    }

    #[test]
    fn backoff_is_exponential_and_positive() {
        let base = 1.0e-6;
        assert!(retry_backoff_s(base, 0) > 0.0);
        assert_eq!(
            retry_backoff_s(base, 1) / retry_backoff_s(base, 0),
            2.0,
            "each retry doubles the backoff"
        );
    }
}
