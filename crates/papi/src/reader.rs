//! The Machine Specific Layer boundary: how the portable PAPI layer reaches
//! actual counters.

use greenla_rapl::{Domain, MsrError, RaplSim};
use std::sync::Arc;

/// Counter access for one node — what PAPI's machine-specific layer does.
/// Implemented for the simulated RAPL device; a mock implementation lives in
/// the tests.
pub trait EnergyReader {
    /// Sockets on the node.
    fn sockets(&self) -> usize;

    /// Does the platform expose RAPL-style energy counters at all?
    fn supports_energy(&self) -> bool;

    /// Cumulative energy of `(socket, domain)` in µJ at virtual time `t`.
    fn energy_uj(&self, socket: usize, domain: Domain, t: f64) -> Result<u64, MsrError>;

    /// Wrap range of the counter in µJ.
    fn max_energy_range_uj(&self, domain: Domain) -> u64;
}

/// An [`EnergyReader`] bound to one node of a simulated cluster.
#[derive(Clone)]
pub struct NodeRapl {
    sim: Arc<RaplSim>,
    node: usize,
}

impl NodeRapl {
    pub fn new(sim: Arc<RaplSim>, node: usize) -> Self {
        Self { sim, node }
    }

    pub fn node(&self) -> usize {
        self.node
    }
}

impl EnergyReader for NodeRapl {
    fn sockets(&self) -> usize {
        self.sim.sockets_per_node()
    }

    fn supports_energy(&self) -> bool {
        self.sim.cpu().supports_rapl()
    }

    fn energy_uj(&self, socket: usize, domain: Domain, t: f64) -> Result<u64, MsrError> {
        self.sim.energy_uj(self.node, socket, domain, t)
    }

    fn max_energy_range_uj(&self, domain: Domain) -> u64 {
        self.sim.max_energy_range_uj(domain)
    }
}
