//! PAPI error codes.
//!
//! Numeric values match the C library so diagnostics read identically.

use std::fmt;

/// PAPI return codes (negative values of the C API).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PapiError {
    /// `PAPI_EINVAL` (−1): invalid argument.
    InvalidArgument,
    /// `PAPI_ENOMEM` (−2): insufficient resources.
    NoMemory,
    /// `PAPI_ECMP` (−4): component error (e.g. RAPL read failed).
    Component,
    /// `PAPI_ENOEVNT` (−7): event does not exist.
    NoSuchEvent,
    /// `PAPI_ECNFLCT` (−8): event cannot be counted with others in the set.
    Conflict,
    /// `PAPI_ENOTRUN` (−9): event set is not running.
    NotRunning,
    /// `PAPI_EISRUN` (−10): event set is already running.
    IsRunning,
    /// `PAPI_ENOEVST` (−12): no such event set.
    NoSuchEventSet,
    /// `PAPI_ENOINIT` (−14): the library is not initialised.
    NotInitialized,
    /// `PAPI_EVERSION` (−25): version mismatch at `PAPI_library_init`.
    Version,
}

impl PapiError {
    /// The C API's numeric code.
    pub fn code(&self) -> i32 {
        match self {
            PapiError::InvalidArgument => -1,
            PapiError::NoMemory => -2,
            PapiError::Component => -4,
            PapiError::NoSuchEvent => -7,
            PapiError::Conflict => -8,
            PapiError::NotRunning => -9,
            PapiError::IsRunning => -10,
            PapiError::NoSuchEventSet => -12,
            PapiError::NotInitialized => -14,
            PapiError::Version => -25,
        }
    }

    /// `PAPI_strerror` equivalent.
    pub fn strerror(&self) -> &'static str {
        match self {
            PapiError::InvalidArgument => "Invalid argument",
            PapiError::NoMemory => "Insufficient memory",
            PapiError::Component => "Component error",
            PapiError::NoSuchEvent => "Event does not exist",
            PapiError::Conflict => "Event exists, but cannot be counted",
            PapiError::NotRunning => "EventSet is currently not running",
            PapiError::IsRunning => "EventSet is currently counting",
            PapiError::NoSuchEventSet => "No such EventSet available",
            PapiError::NotInitialized => "PAPI hasn't been initialized yet",
            PapiError::Version => "Version mismatch",
        }
    }
}

impl fmt::Display for PapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAPI error {}: {}", self.code(), self.strerror())
    }
}

impl std::error::Error for PapiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_c_library() {
        assert_eq!(PapiError::InvalidArgument.code(), -1);
        assert_eq!(PapiError::NoSuchEvent.code(), -7);
        assert_eq!(PapiError::NotRunning.code(), -9);
        assert_eq!(PapiError::IsRunning.code(), -10);
        assert_eq!(PapiError::NotInitialized.code(), -14);
    }

    #[test]
    fn display_is_strerror_like() {
        let s = format!("{}", PapiError::NoSuchEvent);
        assert!(s.contains("-7") && s.contains("Event does not exist"));
    }
}
