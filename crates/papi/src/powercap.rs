//! The powercap component: event enumeration.
//!
//! The paper's `papi_monitoring.h` keeps an `event_names` array holding
//! "all the powercap event set displayed by PAPI". This module produces that
//! enumeration for a node — what `PAPI_enum_cmp_event` would list.

use crate::events::{EventCode, EventKind};
use crate::reader::EnergyReader;
use greenla_rapl::Domain;

/// Enumerate every powercap event available on a node: for each socket, the
/// package, core and DRAM energies plus their wrap ranges.
pub fn enumerate_events<R: EnergyReader>(reader: &R) -> Vec<EventCode> {
    let mut out = Vec::new();
    if !reader.supports_energy() {
        return out;
    }
    for socket in 0..reader.sockets() {
        for domain in [Domain::Package, Domain::Pp0, Domain::Dram] {
            out.push(EventCode {
                kind: EventKind::EnergyUj,
                socket,
                domain,
            });
        }
    }
    for socket in 0..reader.sockets() {
        for domain in [Domain::Package, Domain::Pp0, Domain::Dram] {
            out.push(EventCode {
                kind: EventKind::MaxEnergyRangeUj,
                socket,
                domain,
            });
        }
    }
    out
}

/// The energy events the paper's framework monitors: "CPU packages 0 and 1,
/// as well as DRAM 0 and 1" — package and DRAM energies for every socket.
pub fn paper_event_names(sockets: usize) -> Vec<String> {
    let mut names = Vec::new();
    for socket in 0..sockets {
        names.push(
            EventCode {
                kind: EventKind::EnergyUj,
                socket,
                domain: Domain::Package,
            }
            .name(),
        );
    }
    for socket in 0..sockets {
        names.push(
            EventCode {
                kind: EventKind::EnergyUj,
                socket,
                domain: Domain::Dram,
            }
            .name(),
        );
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::low::test_support::MockReader;

    #[test]
    fn enumeration_covers_sockets_and_domains() {
        let r = MockReader {
            sockets: 2,
            supports: true,
        };
        let evs = enumerate_events(&r);
        assert_eq!(evs.len(), 12); // 2 sockets × 3 domains × 2 kinds
        assert!(evs
            .iter()
            .any(|e| e.socket == 1 && e.domain == Domain::Dram));
    }

    #[test]
    fn unsupported_platform_enumerates_nothing() {
        let r = MockReader {
            sockets: 2,
            supports: false,
        };
        assert!(enumerate_events(&r).is_empty());
    }

    #[test]
    fn paper_events_are_pkg01_dram01() {
        let names = paper_event_names(2);
        assert_eq!(
            names,
            vec![
                "powercap:::ENERGY_UJ:ZONE0",
                "powercap:::ENERGY_UJ:ZONE1",
                "powercap:::ENERGY_UJ:ZONE0_SUBZONE1",
                "powercap:::ENERGY_UJ:ZONE1_SUBZONE1",
            ]
        );
    }
}
