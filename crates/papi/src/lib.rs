#![forbid(unsafe_code)]
//! # greenla-papi
//!
//! A PAPI-like performance/energy counter API over the simulated RAPL
//! layer, reproducing the architecture of the paper's Figure 1:
//!
//! * a **Portable Layer** with the low-level API ([`low::Papi`]: library and
//!   thread initialisation, event sets, named-event translation,
//!   start/stop/read/reset with PAPI's state machine and error codes) and a
//!   **high-level API** ([`high::HighLevel`]) that wraps it for quick
//!   instrumentation;
//! * a **Machine Specific Layer** (the [`reader::EnergyReader`] trait plus
//!   the [`powercap`] component) that performs the actual counter access —
//!   in this workspace, reads of the simulated RAPL device.
//!
//! One deliberate deviation from the C API: because time in this workspace
//! is *virtual*, the operations that sample counters (`start`, `stop`,
//! `read`, `reset`) take the caller's current virtual time explicitly. The
//! paper's own wrappers (`PAPI_start_AND_time`) bundle time with counter
//! access in the same way.

pub mod error;
pub mod events;
pub mod high;
pub mod low;
pub mod powercap;
pub mod reader;
pub mod timer;

pub use error::PapiError;
pub use events::{EventCode, EventKind};
pub use low::{EventSetId, Papi, PAPI_VER_CURRENT};
pub use reader::EnergyReader;
