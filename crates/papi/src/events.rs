//! Event names and codes.
//!
//! The paper monitors "all the powercap event set displayed by PAPI" and
//! translates names to codes with `papi_event_name_to_code`. Event names
//! follow the powercap component's convention:
//!
//! ```text
//! powercap:::ENERGY_UJ:ZONE0            package 0 energy (µJ)
//! powercap:::ENERGY_UJ:ZONE1            package 1 energy
//! powercap:::ENERGY_UJ:ZONE0_SUBZONE0   package 0 core (PP0) energy
//! powercap:::ENERGY_UJ:ZONE0_SUBZONE1   package 0 DRAM energy
//! powercap:::MAX_ENERGY_RANGE_UJ:ZONE0  wrap range of the package-0 counter
//! ```

use crate::error::PapiError;
use greenla_rapl::Domain;

/// What an event measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Cumulative energy in microjoules.
    EnergyUj,
    /// Static counter range (reads as a constant).
    MaxEnergyRangeUj,
}

/// A decoded powercap event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventCode {
    pub kind: EventKind,
    pub socket: usize,
    pub domain: Domain,
}

/// Component id of the powercap component (arbitrary but stable).
pub const POWERCAP_COMPONENT: u32 = 0x0a;

impl EventCode {
    /// Pack into PAPI's `unsigned int` event-code space.
    pub fn to_raw(self) -> u32 {
        let kind = match self.kind {
            EventKind::EnergyUj => 0u32,
            EventKind::MaxEnergyRangeUj => 1,
        };
        let dom = match self.domain {
            Domain::Package => 0u32,
            Domain::Pp0 => 1,
            Domain::Dram => 2,
            Domain::Pp1 => 3,
        };
        (POWERCAP_COMPONENT << 24) | (kind << 16) | ((self.socket as u32) << 8) | dom
    }

    /// Unpack from a raw code.
    pub fn from_raw(raw: u32) -> Result<Self, PapiError> {
        if raw >> 24 != POWERCAP_COMPONENT {
            return Err(PapiError::NoSuchEvent);
        }
        let kind = match (raw >> 16) & 0xff {
            0 => EventKind::EnergyUj,
            1 => EventKind::MaxEnergyRangeUj,
            _ => return Err(PapiError::NoSuchEvent),
        };
        let socket = ((raw >> 8) & 0xff) as usize;
        let domain = match raw & 0xff {
            0 => Domain::Package,
            1 => Domain::Pp0,
            2 => Domain::Dram,
            3 => Domain::Pp1,
            _ => return Err(PapiError::NoSuchEvent),
        };
        Ok(Self {
            kind,
            socket,
            domain,
        })
    }

    /// The canonical event name.
    pub fn name(&self) -> String {
        let kind = match self.kind {
            EventKind::EnergyUj => "ENERGY_UJ",
            EventKind::MaxEnergyRangeUj => "MAX_ENERGY_RANGE_UJ",
        };
        let zone = match self.domain {
            Domain::Package => format!("ZONE{}", self.socket),
            Domain::Pp0 => format!("ZONE{}_SUBZONE0", self.socket),
            Domain::Dram => format!("ZONE{}_SUBZONE1", self.socket),
            Domain::Pp1 => format!("ZONE{}_SUBZONE2", self.socket),
        };
        format!("powercap:::{kind}:{zone}")
    }
}

/// `PAPI_event_name_to_code` for the powercap component.
pub fn event_name_to_code(name: &str) -> Result<EventCode, PapiError> {
    let rest = name
        .strip_prefix("powercap:::")
        .ok_or(PapiError::NoSuchEvent)?;
    let (kind_s, zone_s) = rest.split_once(':').ok_or(PapiError::NoSuchEvent)?;
    let kind = match kind_s {
        "ENERGY_UJ" => EventKind::EnergyUj,
        "MAX_ENERGY_RANGE_UJ" => EventKind::MaxEnergyRangeUj,
        _ => return Err(PapiError::NoSuchEvent),
    };
    let zone_rest = zone_s.strip_prefix("ZONE").ok_or(PapiError::NoSuchEvent)?;
    let (socket_s, sub) = match zone_rest.split_once("_SUBZONE") {
        Some((s, sub)) => (s, Some(sub)),
        None => (zone_rest, None),
    };
    let socket: usize = socket_s.parse().map_err(|_| PapiError::NoSuchEvent)?;
    let domain = match sub {
        None => Domain::Package,
        Some("0") => Domain::Pp0,
        Some("1") => Domain::Dram,
        Some("2") => Domain::Pp1,
        Some(_) => return Err(PapiError::NoSuchEvent),
    };
    Ok(EventCode {
        kind,
        socket,
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for socket in 0..2 {
            for domain in [Domain::Package, Domain::Pp0, Domain::Dram] {
                for kind in [EventKind::EnergyUj, EventKind::MaxEnergyRangeUj] {
                    let ev = EventCode {
                        kind,
                        socket,
                        domain,
                    };
                    let back = event_name_to_code(&ev.name()).unwrap();
                    assert_eq!(back, ev, "roundtrip failed for {}", ev.name());
                }
            }
        }
    }

    #[test]
    fn raw_roundtrip() {
        let ev = EventCode {
            kind: EventKind::EnergyUj,
            socket: 1,
            domain: Domain::Dram,
        };
        assert_eq!(EventCode::from_raw(ev.to_raw()).unwrap(), ev);
    }

    #[test]
    fn paper_event_names_parse() {
        let e = event_name_to_code("powercap:::ENERGY_UJ:ZONE0").unwrap();
        assert_eq!(e.domain, Domain::Package);
        assert_eq!(e.socket, 0);
        let e = event_name_to_code("powercap:::ENERGY_UJ:ZONE1_SUBZONE1").unwrap();
        assert_eq!(e.domain, Domain::Dram);
        assert_eq!(e.socket, 1);
    }

    #[test]
    fn garbage_names_rejected() {
        for bad in [
            "rapl:::ENERGY_UJ:ZONE0",
            "powercap:::WATTS:ZONE0",
            "powercap:::ENERGY_UJ:REGION0",
            "powercap:::ENERGY_UJ:ZONEx",
            "powercap:::ENERGY_UJ:ZONE0_SUBZONE9",
            "",
        ] {
            assert_eq!(
                event_name_to_code(bad),
                Err(PapiError::NoSuchEvent),
                "{bad}"
            );
        }
    }

    #[test]
    fn foreign_component_raw_code_rejected() {
        assert_eq!(EventCode::from_raw(0x0b000000), Err(PapiError::NoSuchEvent));
    }
}
