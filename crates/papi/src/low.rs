//! The low-level PAPI API: library/thread initialisation, event sets, and
//! the start/stop/read/reset state machine with the C library's error
//! behaviour.

use crate::error::PapiError;
use crate::events::{event_name_to_code, EventCode, EventKind};
use crate::reader::EnergyReader;
use greenla_rapl::Domain;

/// Current library version; `library_init` rejects anything else, as the C
/// API does.
pub const PAPI_VER_CURRENT: u32 = 0x07_01_00_00;

/// Handle to an event set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventSetId(usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetState {
    Stopped,
    Running,
}

struct EventSet {
    events: Vec<EventCode>,
    state: SetState,
    /// µJ values latched at `start`, same order as `events`.
    start_uj: Vec<u64>,
    start_time: f64,
}

/// An initialised PAPI library instance for one node, parameterised by its
/// machine-specific counter access.
pub struct Papi<R: EnergyReader> {
    reader: R,
    thread_inited: bool,
    sets: Vec<Option<EventSet>>,
}

impl<R: EnergyReader> Papi<R> {
    /// `PAPI_library_init`: checks the version and that the platform has a
    /// usable energy component.
    pub fn library_init(version: u32, reader: R) -> Result<Self, PapiError> {
        if version != PAPI_VER_CURRENT {
            return Err(PapiError::Version);
        }
        if !reader.supports_energy() {
            return Err(PapiError::Component);
        }
        Ok(Self {
            reader,
            thread_inited: false,
            sets: Vec::new(),
        })
    }

    /// `PAPI_thread_init`.
    pub fn thread_init(&mut self) -> Result<(), PapiError> {
        self.thread_inited = true;
        Ok(())
    }

    pub fn is_thread_inited(&self) -> bool {
        self.thread_inited
    }

    /// Access to the underlying reader (the component layer).
    pub fn reader(&self) -> &R {
        &self.reader
    }

    /// `PAPI_create_eventset`.
    pub fn create_eventset(&mut self) -> Result<EventSetId, PapiError> {
        let id = self.sets.len();
        self.sets.push(Some(EventSet {
            events: Vec::new(),
            state: SetState::Stopped,
            start_uj: Vec::new(),
            start_time: 0.0,
        }));
        Ok(EventSetId(id))
    }

    fn set_mut(&mut self, id: EventSetId) -> Result<&mut EventSet, PapiError> {
        self.sets
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(PapiError::NoSuchEventSet)
    }

    fn set_ref(&self, id: EventSetId) -> Result<&EventSet, PapiError> {
        self.sets
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(PapiError::NoSuchEventSet)
    }

    /// `PAPI_add_named_event`: translate and add. Fails on unknown names,
    /// events for sockets the node does not have, domains the CPU lacks,
    /// duplicates, and running sets.
    pub fn add_named_event(&mut self, id: EventSetId, name: &str) -> Result<(), PapiError> {
        let code = event_name_to_code(name)?;
        self.add_event(id, code)
    }

    /// `PAPI_add_event` by code.
    pub fn add_event(&mut self, id: EventSetId, code: EventCode) -> Result<(), PapiError> {
        if code.socket >= self.reader.sockets() {
            return Err(PapiError::NoSuchEvent);
        }
        if code.domain == Domain::Pp1 {
            // Server CPUs have no PP1 plane; the component rejects it.
            return Err(PapiError::NoSuchEvent);
        }
        let set = self.set_mut(id)?;
        if set.state == SetState::Running {
            return Err(PapiError::IsRunning);
        }
        if set.events.contains(&code) {
            return Err(PapiError::Conflict);
        }
        set.events.push(code);
        Ok(())
    }

    /// Number of events in a set.
    pub fn num_events(&self, id: EventSetId) -> Result<usize, PapiError> {
        Ok(self.set_ref(id)?.events.len())
    }

    /// Events in the set, in add order.
    pub fn events(&self, id: EventSetId) -> Result<Vec<EventCode>, PapiError> {
        Ok(self.set_ref(id)?.events.clone())
    }

    fn sample(&self, events: &[EventCode], t: f64) -> Result<Vec<u64>, PapiError> {
        events
            .iter()
            .map(|e| match e.kind {
                EventKind::EnergyUj => self
                    .reader
                    .energy_uj(e.socket, e.domain, t)
                    .map_err(|_| PapiError::Component),
                EventKind::MaxEnergyRangeUj => Ok(self.reader.max_energy_range_uj(e.domain)),
            })
            .collect()
    }

    /// `PAPI_start` at virtual time `t`.
    pub fn start(&mut self, id: EventSetId, t: f64) -> Result<(), PapiError> {
        let events = {
            let set = self.set_ref(id)?;
            if set.state == SetState::Running {
                return Err(PapiError::IsRunning);
            }
            if set.events.is_empty() {
                return Err(PapiError::InvalidArgument);
            }
            set.events.clone()
        };
        let baseline = self.sample(&events, t)?;
        let set = self.set_mut(id)?;
        set.start_uj = baseline;
        set.start_time = t;
        set.state = SetState::Running;
        Ok(())
    }

    fn counts_since_start(&self, set: &EventSet, t: f64) -> Result<Vec<i64>, PapiError> {
        let now = self.sample(&set.events, t)?;
        Ok(now
            .iter()
            .zip(&set.start_uj)
            .zip(&set.events)
            .map(|((&cur, &base), ev)| match ev.kind {
                // Energy counters accumulate since start.
                EventKind::EnergyUj => cur.wrapping_sub(base) as i64,
                // Static info events read as their absolute value.
                EventKind::MaxEnergyRangeUj => cur as i64,
            })
            .collect())
    }

    /// `PAPI_read` at virtual time `t`: counts accumulated since `start`.
    pub fn read(&self, id: EventSetId, t: f64) -> Result<Vec<i64>, PapiError> {
        let set = self.set_ref(id)?;
        if set.state != SetState::Running {
            return Err(PapiError::NotRunning);
        }
        self.counts_since_start(set, t)
    }

    /// `PAPI_reset`: re-baseline the running counters at `t`.
    pub fn reset(&mut self, id: EventSetId, t: f64) -> Result<(), PapiError> {
        let events = {
            let set = self.set_ref(id)?;
            if set.state != SetState::Running {
                return Err(PapiError::NotRunning);
            }
            set.events.clone()
        };
        let baseline = self.sample(&events, t)?;
        let set = self.set_mut(id)?;
        set.start_uj = baseline;
        set.start_time = t;
        Ok(())
    }

    /// `PAPI_stop` at virtual time `t`: final counts, set returns to
    /// stopped.
    pub fn stop(&mut self, id: EventSetId, t: f64) -> Result<Vec<i64>, PapiError> {
        let values = {
            let set = self.set_ref(id)?;
            if set.state != SetState::Running {
                return Err(PapiError::NotRunning);
            }
            self.counts_since_start(set, t)?
        };
        self.set_mut(id)?.state = SetState::Stopped;
        Ok(values)
    }

    /// `PAPI_cleanup_eventset`: remove all events (set must be stopped).
    pub fn cleanup_eventset(&mut self, id: EventSetId) -> Result<(), PapiError> {
        let set = self.set_mut(id)?;
        if set.state == SetState::Running {
            return Err(PapiError::IsRunning);
        }
        set.events.clear();
        set.start_uj.clear();
        Ok(())
    }

    /// `PAPI_destroy_eventset`: the handle becomes invalid.
    pub fn destroy_eventset(&mut self, id: EventSetId) -> Result<(), PapiError> {
        {
            let set = self.set_mut(id)?;
            if set.state == SetState::Running {
                return Err(PapiError::IsRunning);
            }
            if !set.events.is_empty() {
                return Err(PapiError::InvalidArgument); // must cleanup first
            }
        }
        self.sets[id.0] = None;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use greenla_rapl::MsrError;

    /// Linear-power mock: package draws `100·(socket+1)` W, DRAM 10 W.
    pub struct MockReader {
        pub sockets: usize,
        pub supports: bool,
    }

    impl EnergyReader for MockReader {
        fn sockets(&self) -> usize {
            self.sockets
        }

        fn supports_energy(&self) -> bool {
            self.supports
        }

        fn energy_uj(&self, socket: usize, domain: Domain, t: f64) -> Result<u64, MsrError> {
            if socket >= self.sockets {
                return Err(MsrError::NoSuchSocket(socket));
            }
            let w = match domain {
                Domain::Package => 100.0 * (socket + 1) as f64,
                Domain::Pp0 => 60.0,
                Domain::Dram => 10.0,
                Domain::Pp1 => return Err(MsrError::UnsupportedRegister(0x641)),
            };
            Ok((w * t * 1e6) as u64)
        }

        fn max_energy_range_uj(&self, _domain: Domain) -> u64 {
            262_143_328_850
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::MockReader;
    use super::*;

    fn papi() -> Papi<MockReader> {
        Papi::library_init(
            PAPI_VER_CURRENT,
            MockReader {
                sockets: 2,
                supports: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn init_rejects_wrong_version() {
        let r = Papi::library_init(
            0x06000000,
            MockReader {
                sockets: 2,
                supports: true,
            },
        );
        assert!(matches!(r, Err(PapiError::Version)));
    }

    #[test]
    fn init_rejects_unsupported_platform() {
        let r = Papi::library_init(
            PAPI_VER_CURRENT,
            MockReader {
                sockets: 2,
                supports: false,
            },
        );
        assert!(matches!(r, Err(PapiError::Component)));
    }

    #[test]
    fn full_lifecycle_measures_energy() {
        let mut p = papi();
        p.thread_init().unwrap();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE1")
            .unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0_SUBZONE1")
            .unwrap();
        p.start(set, 1.0).unwrap();
        let vals = p.stop(set, 3.0).unwrap();
        // 2 s at 100 W, 200 W, 10 W.
        assert_eq!(vals, vec![200_000_000, 400_000_000, 20_000_000]);
    }

    #[test]
    fn read_without_start_errors() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        assert_eq!(p.read(set, 1.0), Err(PapiError::NotRunning));
        assert_eq!(p.stop(set, 1.0), Err(PapiError::NotRunning));
    }

    #[test]
    fn double_start_errors() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        p.start(set, 0.0).unwrap();
        assert_eq!(p.start(set, 1.0), Err(PapiError::IsRunning));
    }

    #[test]
    fn add_while_running_errors() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        p.start(set, 0.0).unwrap();
        assert_eq!(
            p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE1"),
            Err(PapiError::IsRunning)
        );
    }

    #[test]
    fn duplicate_event_conflicts() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        assert_eq!(
            p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0"),
            Err(PapiError::Conflict)
        );
    }

    #[test]
    fn start_empty_set_is_invalid() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        assert_eq!(p.start(set, 0.0), Err(PapiError::InvalidArgument));
    }

    #[test]
    fn event_for_missing_socket_rejected() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        assert_eq!(
            p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE5"),
            Err(PapiError::NoSuchEvent)
        );
    }

    #[test]
    fn reset_rebaselines() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        p.start(set, 0.0).unwrap();
        p.reset(set, 10.0).unwrap();
        let vals = p.read(set, 11.0).unwrap();
        assert_eq!(vals, vec![100_000_000]); // only 1 s since reset
    }

    #[test]
    fn read_is_cumulative_and_monotone() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        p.start(set, 0.0).unwrap();
        let v1 = p.read(set, 1.0).unwrap()[0];
        let v2 = p.read(set, 2.0).unwrap()[0];
        assert!(v2 > v1);
    }

    #[test]
    fn destroy_requires_cleanup() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::ENERGY_UJ:ZONE0")
            .unwrap();
        assert_eq!(p.destroy_eventset(set), Err(PapiError::InvalidArgument));
        p.cleanup_eventset(set).unwrap();
        p.destroy_eventset(set).unwrap();
        assert_eq!(p.num_events(set), Err(PapiError::NoSuchEventSet));
    }

    #[test]
    fn max_range_event_reads_constant() {
        let mut p = papi();
        let set = p.create_eventset().unwrap();
        p.add_named_event(set, "powercap:::MAX_ENERGY_RANGE_UJ:ZONE0")
            .unwrap();
        p.start(set, 0.0).unwrap();
        let v = p.read(set, 5.0).unwrap();
        assert_eq!(v, vec![262_143_328_850]);
    }
}
