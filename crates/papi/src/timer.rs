//! PAPI timing helpers over virtual time (`PAPI_get_real_usec` /
//! `PAPI_get_real_nsec` equivalents).

/// Virtual seconds → whole microseconds, as `PAPI_get_real_usec` reports.
pub fn real_usec(t_s: f64) -> u64 {
    (t_s * 1e6) as u64
}

/// Virtual seconds → whole nanoseconds.
pub fn real_nsec(t_s: f64) -> u64 {
    (t_s * 1e9) as u64
}

/// Microseconds between two instants (the paper's `PAPI_start_AND_time` /
/// `PAPI_stop_AND_time` pair measures durations this way).
pub fn elapsed_usec(start_s: f64, end_s: f64) -> u64 {
    real_usec(end_s).saturating_sub(real_usec(start_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(real_usec(1.5), 1_500_000);
        assert_eq!(real_nsec(0.002), 2_000_000);
        assert_eq!(elapsed_usec(1.0, 3.5), 2_500_000);
        assert_eq!(elapsed_usec(3.0, 1.0), 0);
    }
}
