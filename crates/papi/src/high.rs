//! The PAPI High Level-API: "only a fraction of functions compared to the
//! PAPI Low Level-API … but enough to extract performance data using
//! pre-set events" (paper §2.3). One call starts a pre-set event list; one
//! call stops it and returns labelled values.

use crate::error::PapiError;
use crate::low::{EventSetId, Papi};
use crate::powercap;
use crate::reader::EnergyReader;

/// A running high-level measurement.
pub struct HighLevel {
    set: EventSetId,
    names: Vec<String>,
}

impl HighLevel {
    /// Start counting the paper's standard energy events (packages + DRAM
    /// for every socket) at virtual time `t`.
    pub fn start_energy<R: EnergyReader>(papi: &mut Papi<R>, t: f64) -> Result<Self, PapiError> {
        let names = powercap::paper_event_names(papi.reader().sockets());
        Self::start_named(papi, &names, t)
    }

    /// Start counting an explicit list of named events.
    pub fn start_named<R: EnergyReader>(
        papi: &mut Papi<R>,
        names: &[String],
        t: f64,
    ) -> Result<Self, PapiError> {
        let set = papi.create_eventset()?;
        for n in names {
            papi.add_named_event(set, n)?;
        }
        papi.start(set, t)?;
        Ok(Self {
            set,
            names: names.to_vec(),
        })
    }

    /// Read without stopping: `(name, value)` pairs.
    pub fn read<R: EnergyReader>(
        &self,
        papi: &Papi<R>,
        t: f64,
    ) -> Result<Vec<(String, i64)>, PapiError> {
        let vals = papi.read(self.set, t)?;
        Ok(self.names.iter().cloned().zip(vals).collect())
    }

    /// Stop and tear down, returning final `(name, value)` pairs.
    pub fn stop<R: EnergyReader>(
        self,
        papi: &mut Papi<R>,
        t: f64,
    ) -> Result<Vec<(String, i64)>, PapiError> {
        let vals = papi.stop(self.set, t)?;
        papi.cleanup_eventset(self.set)?;
        papi.destroy_eventset(self.set)?;
        Ok(self.names.into_iter().zip(vals).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::low::test_support::MockReader;
    use crate::low::PAPI_VER_CURRENT;

    #[test]
    fn high_level_energy_roundtrip() {
        let mut p = Papi::library_init(
            PAPI_VER_CURRENT,
            MockReader {
                sockets: 2,
                supports: true,
            },
        )
        .unwrap();
        let hl = HighLevel::start_energy(&mut p, 0.0).unwrap();
        let mid = hl.read(&p, 1.0).unwrap();
        assert_eq!(mid.len(), 4);
        assert_eq!(mid[0].0, "powercap:::ENERGY_UJ:ZONE0");
        assert_eq!(mid[0].1, 100_000_000);
        let fin = hl.stop(&mut p, 2.0).unwrap();
        assert_eq!(fin[1].1, 400_000_000); // package-1 at 200 W for 2 s
        assert_eq!(fin[3].1, 20_000_000); // dram-1 at 10 W for 2 s
    }

    #[test]
    fn bad_name_fails_cleanly() {
        let mut p = Papi::library_init(
            PAPI_VER_CURRENT,
            MockReader {
                sockets: 2,
                supports: true,
            },
        )
        .unwrap();
        let r = HighLevel::start_named(&mut p, &["bogus:::X:Y".to_string()], 0.0);
        assert!(matches!(r, Err(PapiError::NoSuchEvent)));
    }
}
