//! The broken-program battery: each mini-program violates exactly one
//! checker rule and must trip exactly that diagnostic, while a clean
//! program using every collective stays violation-free. Also asserts the
//! checker's zero-interference property: a checked run's virtual timings
//! are bit-identical to an unchecked run's.

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_mpi::{CheckSink, Machine, Rule};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn checked_machine(ranks: usize) -> Machine {
    // Nodes of 2×4 cores for big runs; a 2-core node for the 2-rank
    // mini-programs (FullLoad placement needs ranks % node size == 0).
    let per_socket = if ranks < 8 { ranks.div_ceil(2) } else { 4 };
    let spec = ClusterSpec::test_cluster(ranks.div_ceil(2 * per_socket), per_socket);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 7)
        .unwrap()
        .with_check(CheckSink::enabled())
}

/// The panic payload of an aborted run, as text.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast::<String>()
        .map(|s| *s)
        .or_else(|p| p.downcast::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_else(|_| "<non-string panic>".to_string())
}

#[test]
fn send_recv_cycle_aborts_with_dl001_instead_of_hanging() {
    let m = checked_machine(2);
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            // Classic head-to-head deadlock: both ranks receive first.
            let peer = 1 - ctx.rank();
            ctx.recv_f64(&world, peer, 3);
            ctx.send_f64(&world, peer, 3, &[1.0]);
        })
    }));
    let Err(payload) = r else {
        panic!("deadlocked run must abort, not hang");
    };
    let msg = panic_text(payload);
    assert!(msg.contains("deadlock"), "diagnostic missing: {msg}");
    assert!(
        msg.contains("cycle: 0 -> 1 -> 0") || msg.contains("cycle: 1 -> 0 -> 1"),
        "cycle must be spelled out: {msg}"
    );
    assert!(
        msg.contains("recv(src=1, comm=0, tag=3)"),
        "blocked receives must be named with src/comm/tag: {msg}"
    );
    let violations = m.check().violations();
    let dl: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::Deadlock)
        .collect();
    assert_eq!(dl.len(), 1, "exactly one DL001: {violations:#?}");
    assert_eq!(dl[0].ranks, vec![0, 1]);
    assert_eq!(dl[0].rule.id(), "DL001");
}

#[test]
fn skipped_barrier_names_the_finished_rank() {
    let m = checked_machine(2);
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            // Rank 0 forgets the barrier and finalizes early.
            if ctx.rank() == 1 {
                ctx.barrier(&world);
            }
        })
    }));
    let Err(payload) = r else {
        panic!("half-entered barrier must abort");
    };
    let msg = panic_text(payload);
    assert!(
        msg.contains("rank 1 waits on rank 0, which has already finished"),
        "diagnostic must name the finished rank: {msg}"
    );
    assert_eq!(
        m.check()
            .violations()
            .iter()
            .filter(|v| v.rule == Rule::Deadlock)
            .count(),
        1
    );
}

#[test]
fn mismatched_bcast_root_trips_coll001() {
    let m = checked_machine(2);
    m.run(|ctx| {
        let world = ctx.world();
        // Each rank believes IT is the broadcast root: the sends cross in
        // flight and nobody receives, so the run completes — silently wrong
        // without the checker.
        let mut buf = vec![ctx.rank() as f64];
        ctx.bcast_f64(&world, ctx.rank(), &mut buf);
    });
    let violations = m.check().violations();
    let coll: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::CollectiveMismatch)
        .collect();
    assert_eq!(coll.len(), 1, "exactly one COLL001: {violations:#?}");
    assert_eq!(coll[0].ranks, vec![0, 1]);
    assert!(
        coll[0].message.contains("root=0") && coll[0].message.contains("root=1"),
        "both roots must be named: {}",
        coll[0].message
    );
    // The crossed sends are also caught as mailbox residue at finalize.
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.rule == Rule::MessageLeak)
            .count(),
        2,
        "both undelivered broadcast messages leak: {violations:#?}"
    );
}

#[test]
fn unreceived_message_trips_msg001_with_src_dst_tag() {
    let m = checked_machine(2);
    m.run(|ctx| {
        let world = ctx.world();
        if ctx.rank() == 0 {
            ctx.send_f64(&world, 1, 42, &[1.0, 2.0]);
        }
        // Rank 1 never posts the matching receive.
        ctx.barrier(&world);
    });
    let violations = m.check().violations();
    assert_eq!(violations.len(), 1, "exactly one MSG001: {violations:#?}");
    let v = &violations[0];
    assert_eq!(v.rule, Rule::MessageLeak);
    assert_eq!(v.rule.id(), "MSG001");
    assert_eq!(v.ranks, vec![0, 1], "sender and receiver are both named");
    assert!(
        v.message.contains("from rank 0") && v.message.contains("tag 42"),
        "source and tag must be named: {}",
        v.message
    );
    assert!(!v.suggestion.is_empty(), "every rule carries a fix hint");
}

#[test]
fn clean_program_with_every_collective_is_violation_free() {
    let m = checked_machine(16);
    m.run(|ctx| {
        let world = ctx.world();
        ctx.compute(1_000_000 * (1 + ctx.rank() as u64), 128);
        ctx.barrier(&world);
        // Matched point-to-point ring.
        let next = (ctx.rank() + 1) % ctx.size();
        let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send_f64(&world, next, 9, &[ctx.rank() as f64]);
        ctx.recv_f64(&world, prev, 9);
        // Every collective the runtime offers.
        let mut buf = if ctx.rank() == 2 {
            vec![1.0; 64]
        } else {
            vec![]
        };
        ctx.bcast_f64(&world, 2, &mut buf);
        let mut big = if ctx.rank() == 0 {
            vec![2.0; 4096]
        } else {
            vec![]
        };
        ctx.bcast_pipelined_f64(&world, 0, &mut big, 256);
        ctx.reduce_sum_f64(&world, 1, &[ctx.rank() as f64]);
        ctx.allreduce_sum_f64(&world, &[1.0]);
        ctx.allreduce_maxloc_abs(&world, ctx.rank() as f64, ctx.rank() as u64);
        ctx.gather_f64(&world, 0, &[ctx.rank() as f64]);
        ctx.allgather_f64(&world, &[ctx.rank() as f64]);
        let node_comm = ctx.split_shared(&world);
        ctx.barrier(&node_comm);
        ctx.barrier(&world);
    });
    let violations = m.check().violations();
    assert!(
        violations.is_empty(),
        "clean program must produce no diagnostics: {violations:#?}"
    );
}

#[test]
fn checked_run_timings_are_bit_identical_to_unchecked() {
    let program = |ctx: &mut greenla_mpi::RankCtx| {
        let world = ctx.world();
        ctx.compute(10_000_000 * (1 + ctx.rank() as u64 % 3), 512);
        ctx.barrier(&world);
        let mut buf = if ctx.rank() == 0 {
            vec![1.5; 2048]
        } else {
            vec![]
        };
        ctx.bcast_pipelined_f64(&world, 0, &mut buf, 128);
        ctx.allreduce_sum_f64(&world, &[ctx.rank() as f64]);
        ctx.now()
    };
    let run = |check: bool| {
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
        let mut m = Machine::new(spec, placement, PowerModel::deterministic(), 7).unwrap();
        if check {
            m.set_check(CheckSink::enabled());
        }
        let out = m.run(program);
        assert!(m.check().violations().is_empty());
        (out.makespan, out.results)
    };
    let (makespan_checked, clocks_checked) = run(true);
    let (makespan_plain, clocks_plain) = run(false);
    assert_eq!(
        makespan_checked.to_bits(),
        makespan_plain.to_bits(),
        "checking must not perturb the virtual clock"
    );
    for (a, b) in clocks_checked.iter().zip(&clocks_plain) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
