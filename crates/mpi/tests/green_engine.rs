//! The event-driven engine, end to end: parity with thread-per-rank on
//! real programs, exact deadlock detection without timed polls, and
//! abort/orphan behaviour at world sizes the thread engine can't reach.
//!
//! The fiber switch is hand-written x86_64 assembly, so the whole file is
//! gated on that architecture (other targets fall back to thread-per-rank
//! and never construct the engine).
#![cfg(target_arch = "x86_64")]

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_mpi::{
    CheckSink, CrashFault, CrashWhen, FaultPlan, FaultSink, Machine, MsgFault, MsgFaultKind, Rule,
    SchedulerKind,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn machine(ranks: usize, kind: SchedulerKind) -> Machine {
    let nodes = ranks.div_ceil(8).max(1);
    let spec = ClusterSpec::test_cluster(nodes, 4); // 2×4 cores per node
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 42)
        .unwrap()
        .with_scheduler(kind)
}

/// A rank program that exercises every blocking path: compute, matched
/// sends/receives around a ring, barriers, and the registry split, plus
/// reductions that take the tree or ring path depending on size.
fn workout(ctx: &mut greenla_mpi::RankCtx) -> (f64, Vec<f64>) {
    let world = ctx.world();
    let r = ctx.rank();
    let p = ctx.size();
    ctx.compute(1_000_000 * (r as u64 % 7 + 1), 4096);
    ctx.barrier(&world);
    // Ring shift: send to the right, receive from the left.
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    if r % 2 == 0 {
        ctx.send_f64(&world, right, 5, &[r as f64]);
        let got = ctx.recv_f64(&world, left, 5);
        assert_eq!(got, vec![left as f64]);
    } else {
        let got = ctx.recv_f64(&world, left, 5);
        assert_eq!(got, vec![left as f64]);
        ctx.send_f64(&world, right, 5, &[r as f64]);
    }
    let node_comm = ctx.split_shared(&world);
    ctx.barrier(&node_comm);
    let sums = ctx.allreduce_sum_f64(&world, &[1.0, r as f64]);
    ctx.barrier(&world);
    (ctx.now(), sums)
}

#[test]
fn engines_agree_bit_for_bit_on_a_full_workout() {
    let p = 64;
    let thread = machine(p, SchedulerKind::ThreadPerRank).run(workout);
    let event = machine(p, SchedulerKind::EventDriven).run(workout);
    assert_eq!(thread.makespan.to_bits(), event.makespan.to_bits());
    for r in 0..p {
        assert_eq!(
            thread.final_clocks[r].to_bits(),
            event.final_clocks[r].to_bits(),
            "rank {r} clock diverged"
        );
        assert_eq!(thread.results[r].1, event.results[r].1, "rank {r} sums");
    }
    assert_eq!(thread.traffic.msgs, event.traffic.msgs);
    assert_eq!(thread.traffic.bytes, event.traffic.bytes);
}

#[test]
fn checked_thousand_rank_run_is_clean() {
    let sink = CheckSink::enabled();
    let m = machine(1000, SchedulerKind::EventDriven).with_check(sink.clone());
    let out = m.run(|ctx| {
        let world = ctx.world();
        ctx.compute(100_000, 0);
        ctx.barrier(&world);
        let s = ctx.allreduce_sum_f64(&world, &[1.0]);
        ctx.barrier(&world);
        s[0]
    });
    assert!(out.results.iter().all(|&s| s == 1000.0));
    assert!(
        sink.violations().is_empty(),
        "clean program must check clean: {:?}",
        sink.violations()
    );
}

#[test]
fn recv_deadlock_aborts_exactly_with_the_cycle_named() {
    // Ranks 0 and 1 wait on each other; everyone else blocks in a world
    // barrier the pair never joins. No 25 ms poll, no grace timer: the
    // scheduler's quiescence signal runs the probe the moment the last
    // task blocks.
    let sink = CheckSink::enabled();
    let m = machine(1000, SchedulerKind::EventDriven).with_check(sink.clone());
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.recv_f64(&world, 1, 7);
                }
                1 => {
                    ctx.recv_f64(&world, 0, 9);
                }
                _ => ctx.barrier(&world),
            }
        })
    }));
    let payload = match r {
        Err(p) => p,
        Ok(_) => panic!("deadlocked run must abort"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock") || msg.contains("simulated MPI run aborted"),
        "unstable diagnostic: {msg}"
    );
    let v = sink.violations();
    let dl: Vec<_> = v.iter().filter(|v| v.rule == Rule::Deadlock).collect();
    assert_eq!(dl.len(), 1, "exactly one DL001: {v:?}");
    assert!(
        dl[0].message.contains("cycle: 0 -> 1 -> 0")
            || dl[0].message.contains("cycle: 1 -> 0 -> 1"),
        "cycle must be named: {}",
        dl[0].message
    );
}

#[test]
fn unchecked_deadlock_aborts_instead_of_hanging() {
    // Same shape without the checker: the thread engine would hang here
    // (nothing polls), but quiescence is exact under the event engine,
    // so the run aborts with a generic diagnostic.
    let m = machine(64, SchedulerKind::EventDriven);
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.recv_f64(&world, 1, 7);
                }
                1 => {
                    ctx.recv_f64(&world, 0, 9);
                }
                _ => ctx.barrier(&world),
            }
        })
    }));
    let payload = match r {
        Err(p) => p,
        Ok(_) => panic!("deadlocked run must abort"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock") || msg.contains("simulated MPI run aborted"),
        "unstable diagnostic: {msg}"
    );
}

#[test]
fn rank_panic_unblocks_fibers_in_recv_and_barrier() {
    let m = machine(64, SchedulerKind::EventDriven);
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => panic!("injected fault"),
                1 => {
                    ctx.recv_f64(&world, 0, 1);
                }
                _ => ctx.barrier(&world),
            }
        })
    }));
    let payload = match r {
        Err(p) => p,
        Ok(_) => panic!("peer failure must abort the run"),
    };
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("injected fault"),
        "root cause must win over casualties: {msg}"
    );
}

#[test]
fn orphaned_receiver_aborts_with_all_peers_gone() {
    // Rank 1 waits on a message nobody will ever send while everyone
    // else returns: the scheduler's orphan signal replaces the channel
    // disconnect (the thread engine would hang — rank 1's own sender
    // handle keeps its channel alive).
    let m = machine(64, SchedulerKind::EventDriven);
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            if ctx.rank() == 1 {
                ctx.recv_f64(&world, 0, 1);
            }
        })
    }));
    let payload = match r {
        Err(p) => p,
        Ok(_) => panic!("orphaned receiver must abort"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("all peers gone") || msg.contains("simulated MPI run aborted"),
        "unstable diagnostic: {msg}"
    );
}

#[test]
fn iprobe_respects_virtual_causality_on_fibers() {
    let m = machine(8, SchedulerKind::EventDriven);
    let out = m.run(|ctx| {
        let world = ctx.world();
        match ctx.rank() {
            0 => {
                ctx.compute(100_000_000, 0); // send late in virtual time
                ctx.send_f64(&world, 1, 5, &[1.0]);
                true
            }
            1 => {
                // A second message on another tag orders the wall clock
                // so rank 0's payload may already be physically in
                // flight; at our *early* virtual clock it must still be
                // invisible.
                ctx.recv_f64(&world, 2, 6);
                let early = ctx.iprobe(&world, 0, 5);
                ctx.compute(200_000_000, 0); // advance past the arrival
                let mut late = ctx.iprobe(&world, 0, 5);
                while !late {
                    // Spinning holds this fiber's worker, but rank 0
                    // lives on the other worker of the (≥2) pool, so it
                    // still reaches its send.
                    std::thread::yield_now();
                    late = ctx.iprobe(&world, 0, 5);
                }
                ctx.recv_f64(&world, 0, 5);
                !early && late
            }
            2 => {
                ctx.send_f64(&world, 1, 6, &[0.0]);
                true
            }
            _ => true,
        }
    });
    assert!(out.results[1], "iprobe must see the message after arrival");
}

#[test]
fn fault_reports_and_clocks_match_across_engines() {
    let plan = || FaultPlan {
        messages: vec![
            MsgFault {
                src: 0,
                nth_send: 0,
                kind: MsgFaultKind::Drop { count: 2 },
            },
            MsgFault {
                src: 2,
                nth_send: 0,
                kind: MsgFaultKind::Delay { extra_s: 0.25 },
            },
            MsgFault {
                src: 3,
                nth_send: 0,
                kind: MsgFaultKind::Duplicate,
            },
        ],
        ..Default::default()
    };
    let program = |ctx: &mut greenla_mpi::RankCtx| {
        let world = ctx.world();
        let r = ctx.rank();
        let p = ctx.size();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        if r % 2 == 0 {
            ctx.send_f64(&world, right, 3, &[r as f64]);
            ctx.recv_f64(&world, left, 3);
        } else {
            ctx.recv_f64(&world, left, 3);
            ctx.send_f64(&world, right, 3, &[r as f64]);
        }
        ctx.barrier(&world);
        ctx.now()
    };
    let run = |kind: SchedulerKind| {
        let sink = FaultSink::with_plan(plan());
        let m = machine(16, kind).with_faults(sink.clone());
        let out = m.run(program);
        (out.results.clone(), sink.report())
    };
    let (clocks_t, rep_t) = run(SchedulerKind::ThreadPerRank);
    let (clocks_e, rep_e) = run(SchedulerKind::EventDriven);
    for (a, b) in clocks_t.iter().zip(&clocks_e) {
        assert_eq!(a.to_bits(), b.to_bits(), "faulted clocks diverged");
    }
    assert_eq!(rep_t.injected, rep_e.injected);
    assert_eq!(rep_t.recovered, rep_e.recovered);
    assert_eq!(rep_t.observed, rep_e.observed);
}

#[test]
fn planned_crash_aborts_checked_event_runs() {
    for checked in [false, true] {
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                rank: 3,
                when: CrashWhen::AtCall { calls: 2 },
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let mut m = machine(64, SchedulerKind::EventDriven).with_faults(sink.clone());
        if checked {
            m = m.with_check(CheckSink::enabled());
        }
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                ctx.compute(1_000, 0);
                ctx.compute(1_000, 0);
                ctx.barrier(&world);
            })
        }));
        let payload = match r {
            Err(p) => p,
            Ok(_) => panic!("planned crash must abort (checked={checked})"),
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.starts_with("injected fault: rank 3 crashed")
                || msg.contains("simulated MPI run aborted"),
            "checked={checked}: unstable diagnostic: {msg}"
        );
        assert_eq!(sink.report().injected.rank_crash, 1, "checked={checked}");
    }
}

#[test]
fn ten_thousand_rank_smoke_spins_up_and_synchronises() {
    // The tentpole capability: a world size the thread engine cannot
    // reach (10k OS threads would exhaust default process limits).
    // Spin-up, a barrier storm, one bcast, and an allreduce — then
    // verify everyone agrees.
    let p = 10_000;
    let m = machine(p, SchedulerKind::EventDriven).with_sched_workers(4);
    let out = m.run(|ctx| {
        let world = ctx.world();
        for _ in 0..3 {
            ctx.barrier(&world);
        }
        let mut root_word = if ctx.rank() == 0 {
            vec![42.0]
        } else {
            Vec::new()
        };
        ctx.bcast_f64(&world, 0, &mut root_word);
        let total = ctx.allreduce_sum_f64(&world, &[1.0]);
        ctx.barrier(&world); // aligns every clock to the same release time
        (root_word[0], total[0])
    });
    assert_eq!(out.results.len(), p);
    assert!(out.results.iter().all(|&(w, t)| w == 42.0 && t == p as f64));
    let clock0 = out.final_clocks[0];
    assert!(out.final_clocks.iter().all(|&c| (c - clock0).abs() < 1e-9));
}
