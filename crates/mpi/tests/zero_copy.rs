//! Proof that the shared-payload collectives never copy a buffer: the
//! process-global `copy_audit` counter (bumped only when `expect_*` has to
//! clone a still-shared allocation) stays at zero across broadcast
//! fan-out, pipelined streaming, gathers and the ring allgather, and the
//! returned handles are pointer-identical across ranks.
//!
//! Everything lives in ONE test function: the audit counter is global to
//! the process, so concurrently running `#[test]`s would see each other's
//! copies.

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_mpi::{copy_audit, Machine};
use std::sync::Arc;

fn machine(ranks: usize) -> Machine {
    let spec = ClusterSpec::test_cluster(ranks.div_ceil(8), 4);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 5).unwrap()
}

#[test]
fn shared_collectives_never_copy_a_payload() {
    const P: usize = 8;

    // --- binomial broadcast fan-out: one allocation for all P ranks ---
    copy_audit::reset();
    let out = machine(P).run(|ctx| {
        let world = ctx.world();
        let data = (ctx.rank() == 2).then(|| vec![0.5; 10_000]);
        ctx.bcast_shared_f64(&world, 2, data)
    });
    assert_eq!(
        copy_audit::count(),
        0,
        "broadcast fan-out must not copy the payload"
    );
    let root = &out.results[2];
    for (r, got) in out.results.iter().enumerate() {
        assert!(
            Arc::ptr_eq(root, got),
            "rank {r} must hold the root's allocation, not a copy"
        );
        assert_eq!(got.len(), 10_000);
    }

    // --- pipelined broadcast: chunks stream as borrows + Arc bumps ---
    copy_audit::reset();
    let out = machine(P).run(|ctx| {
        let world = ctx.world();
        let mut buf = if ctx.rank() == 0 {
            (0..4096).map(|i| i as f64).collect()
        } else {
            Vec::new()
        };
        ctx.bcast_pipelined_f64(&world, 0, &mut buf, 512);
        buf
    });
    assert_eq!(
        copy_audit::count(),
        0,
        "pipelined chunks must be appended from borrows and forwarded shared"
    );
    for got in &out.results {
        assert_eq!(got.len(), 4096);
        assert_eq!(got[4095], 4095.0);
    }

    // --- gather: the root borrows every sender's allocation ---
    copy_audit::reset();
    machine(P).run(|ctx| {
        let world = ctx.world();
        let mine = vec![ctx.rank() as f64; 100 * (1 + ctx.rank() % 3)];
        if let Some(chunks) = ctx.gather_shared_f64(&world, 1, &mine) {
            for (src, c) in chunks.iter().enumerate() {
                assert!(c.iter().all(|&v| v == src as f64));
            }
        }
    });
    assert_eq!(copy_audit::count(), 0, "gather must hand over, not copy");

    // --- ring allgather: every rank ends up holding every originator's
    // allocation (the same Arc travelled the whole ring) ---
    copy_audit::reset();
    let out = machine(P).run(|ctx| {
        let world = ctx.world();
        let mine = vec![ctx.rank() as f64; 2000];
        ctx.allgather_shared_f64(&world, &mine)
    });
    assert_eq!(
        copy_audit::count(),
        0,
        "ring forwarding must be an Arc bump per hop"
    );
    for j in 0..P {
        let origin = &out.results[j][j];
        for (r, res) in out.results.iter().enumerate() {
            assert!(
                Arc::ptr_eq(origin, &res[j]),
                "rank {r}'s chunk {j} must share the originator's allocation"
            );
        }
    }

    // --- control: unwrapping a still-shared payload IS counted, so the
    // zero assertions above actually prove something ---
    copy_audit::reset();
    let p = greenla_mpi::Payload::f64(vec![1.0; 8]);
    let q = p.clone();
    assert_eq!(q.expect_f64(), vec![1.0; 8]);
    drop(p);
    assert_eq!(copy_audit::count(), 1, "the audit counter must be live");
}
