//! Rendezvous machinery for synchronising collectives.
//!
//! Barriers and communicator splits need *exact* max-of-clocks semantics
//! (every participant leaves at the same virtual instant), which a
//! tree-of-messages implementation only approximates. The registry gives
//! each collective call site a rendezvous cell keyed by
//! `(communicator id, per-communicator sequence number)`; the last arrival
//! computes the outcome and wakes the rest. Sequence numbers stay consistent
//! because MPI programs must issue collectives in the same order on every
//! member — the same invariant real MPI relies on.
//!
//! The registry is also the abort channel: when any rank panics, the machine
//! poisons it so blocked peers fail fast instead of deadlocking.

use crate::envelope::Envelope;
use crate::mailbox::EventMailboxes;
use crate::sched::{self, WakeReason};
use crossbeam_channel::Sender;
use greenla_check::CheckSink;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of a communicator split for one rank.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    pub comm_id: u64,
    pub members: Arc<Vec<usize>>,
    pub my_index: usize,
    /// Virtual time at which the collective completes.
    pub release_t: f64,
}

/// One rank's entry into a communicator split: which call site it joins
/// (`parent_id`, `seq`), its identity and ordering inputs, and its timing
/// contribution.
#[derive(Clone, Copy, Debug)]
pub struct SplitEntry {
    /// Communicator being split.
    pub parent_id: u64,
    /// Per-communicator sequence number of the call site.
    pub seq: u64,
    /// Number of members expected at this call site.
    pub expected: usize,
    /// This rank's global rank.
    pub grank: usize,
    /// Partition this rank chose.
    pub color: u64,
    /// Ordering key within the partition (ties broken by global rank).
    pub key: u64,
    /// This rank's arrival time (virtual seconds).
    pub t: f64,
    /// This rank's estimate of the collective's cost; the largest entry
    /// wins.
    pub cost: f64,
}

struct BarrierState {
    expected: usize,
    arrived: usize,
    max_t: f64,
    cost: f64,
    release_t: Option<f64>,
    left: usize,
    /// Event-engine task ids parked on this cell; the completing arrival
    /// (or poison) wakes them. Thread-engine waiters use the condvar
    /// instead and never register here.
    waiters: Vec<usize>,
}

struct SplitState {
    expected: usize,
    /// (global rank, color, key, arrival time)
    entries: Vec<(usize, u64, u64, f64)>,
    cost: f64,
    outcome: Option<HashMap<usize, SplitOutcome>>,
    left: usize,
    /// See [`BarrierState::waiters`].
    waiters: Vec<usize>,
}

/// Shared rendezvous state for one machine run.
pub struct Registry {
    next_comm_id: AtomicU64,
    poisoned: AtomicBool,
    barriers: Mutex<HashMap<(u64, u64), BarrierState>>,
    barrier_cv: Condvar,
    splits: Mutex<HashMap<(u64, u64), SplitState>>,
    split_cv: Condvar,
    /// Checking sink of the owning machine (disabled by default). Under
    /// the thread engine, enabling it makes waiters fall back to timed
    /// waits so they can run its deadlock probe periodically; otherwise
    /// they park on the condvars and consume no CPU until notified. The
    /// event engine never polls — its quiescence detection is exact, and
    /// it runs the grace-free probe the instant the machine stalls.
    check: CheckSink,
    /// How [`Registry::poison`] reaches ranks parked in a blocking
    /// receive (condvar notification only reaches registry waiters), and
    /// how collective completions wake event-engine waiters.
    wakers: Mutex<Wakers>,
}

/// Engine-specific wake plumbing, set once by the machine before ranks
/// start.
enum Wakers {
    None,
    /// Thread engine: one sender per rank mailbox; poison posts an abort
    /// control message to each.
    Thread(Vec<Sender<Envelope>>),
    /// Event engine: the shared inbox table (poison broadcasts control
    /// messages and wakes every task) and, through it, the engine handle
    /// used to wake collective waiters.
    Event(Arc<EventMailboxes>),
}

/// Poll period for *checked thread-engine* runs only: how often blocked
/// waiters wake to run the deadlock probe. Unchecked runs never poll, and
/// the event engine detects deadlock exactly instead of polling (see
/// `crate::sched`).
const POLL: Duration = Duration::from_millis(25);

impl Registry {
    pub fn new() -> Self {
        Self {
            next_comm_id: AtomicU64::new(1), // 0 is the world
            poisoned: AtomicBool::new(false),
            barriers: Mutex::new(HashMap::new()),
            barrier_cv: Condvar::new(),
            splits: Mutex::new(HashMap::new()),
            split_cv: Condvar::new(),
            check: CheckSink::disabled(),
            wakers: Mutex::new(Wakers::None),
        }
    }

    /// Attach the machine's checking sink (builder style).
    pub fn with_check(mut self, check: CheckSink) -> Self {
        self.check = check;
        self
    }

    /// Register the rank mailboxes poison should wake (called once by the
    /// machine before spawning rank threads).
    pub fn set_wakers(&self, txs: &[Sender<Envelope>]) {
        *self.wakers.lock() = Wakers::Thread(txs.to_vec());
    }

    /// Event-engine counterpart of [`Registry::set_wakers`] (called once
    /// by the machine before seeding tasks).
    pub(crate) fn set_event(&self, shared: Arc<EventMailboxes>) {
        *self.wakers.lock() = Wakers::Event(shared);
    }

    /// The shared event-engine state, when this run uses it.
    fn event(&self) -> Option<Arc<EventMailboxes>> {
        match &*self.wakers.lock() {
            Wakers::Event(s) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// Mark the run as failed; every blocked rank will panic out. Ranks
    /// parked on the registry condvars are notified directly; ranks parked
    /// in a blocking mailbox receive get an abort control message.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Notify while holding each map's lock: an untimed waiter either
        // observed the flag under the lock (and is about to panic) or is
        // already parked in `wait` and receives this notification — the
        // lost-wakeup window between the check and the wait is closed.
        {
            let _g = self.barriers.lock();
            self.barrier_cv.notify_all();
        }
        {
            let _g = self.splits.lock();
            self.split_cv.notify_all();
        }
        match &*self.wakers.lock() {
            Wakers::None => {}
            Wakers::Thread(txs) => {
                for tx in txs {
                    // A closed mailbox means that rank is already gone — fine.
                    let _ = tx.send(Envelope::control_abort());
                }
            }
            Wakers::Event(shared) => shared.poison_broadcast(),
        }
    }

    /// Has the run been poisoned by a peer's failure?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("{}", self.check.abort_message());
        }
    }

    /// One iteration of a checked waiter's poll loop: abort on poison, and
    /// report a deadlock if the probe finds one. The caller must drop its
    /// state-map guard and call [`Registry::poison`] before panicking with
    /// the returned message — `poison` notifies under the map locks, so
    /// poisoning while holding one self-deadlocks.
    #[must_use]
    fn poll_waiter(&self) -> Option<String> {
        self.check_poison();
        self.check.probe_deadlock()
    }

    /// The event engine detected machine-wide quiescence while this rank
    /// waited on something that can never complete. Report it (with the
    /// grace-free probe's wait-for diagnostic when checking is on),
    /// poison the run, and die. Must not hold a state-map guard.
    pub(crate) fn report_quiescent_deadlock(&self) -> ! {
        let msg = self.check.probe_deadlock_quiescent().unwrap_or_else(|| {
            "deadlock: every rank is blocked and none can be woken; run with \
             greenla-check attached for the wait-for cycle"
                .to_string()
        });
        self.poison();
        panic!("{msg}");
    }

    /// Enter a barrier on `(comm_id, seq)` with `expected` participants at
    /// virtual time `t`; returns the common release time `max(t_i) + cost`.
    pub fn barrier(&self, comm_id: u64, seq: u64, expected: usize, t: f64, cost: f64) -> f64 {
        let event = self.event();
        let key = (comm_id, seq);
        let mut map = self.barriers.lock();
        let st = map.entry(key).or_insert(BarrierState {
            expected,
            arrived: 0,
            max_t: f64::NEG_INFINITY,
            cost,
            release_t: None,
            left: 0,
            waiters: Vec::new(),
        });
        assert_eq!(
            st.expected, expected,
            "barrier participant mismatch on {key:?}"
        );
        st.arrived += 1;
        st.max_t = st.max_t.max(t);
        st.cost = st.cost.max(cost);
        if st.arrived == st.expected {
            st.release_t = Some(st.max_t + st.cost);
            self.barrier_cv.notify_all();
            if let Some(ev) = &event {
                for tid in st.waiters.drain(..) {
                    ev.engine().wake(tid);
                }
            }
        }
        loop {
            let st = map.get_mut(&key).expect("barrier state vanished");
            if let Some(rt) = st.release_t {
                st.left += 1;
                if st.left == st.expected {
                    map.remove(&key);
                }
                return rt;
            }
            if let Some(ev) = &event {
                // Event engine: register on the cell and yield the worker.
                // Poison wakes every task (not just registered waiters),
                // so the poison check after a wake cannot be missed.
                let tid = sched::current_task().expect("event-engine rank outside a task");
                st.waiters.push(tid);
                drop(map);
                self.check_poison();
                match ev.engine().block_current() {
                    WakeReason::Woken => {}
                    WakeReason::Quiescent => self.report_quiescent_deadlock(),
                }
                self.check_poison();
                map = self.barriers.lock();
            } else if self.check.is_enabled() {
                if let Some(msg) = self.poll_waiter() {
                    drop(map);
                    self.poison();
                    panic!("{msg}");
                }
                self.barrier_cv.wait_for(&mut map, POLL);
            } else {
                self.check_poison();
                self.barrier_cv.wait(&mut map);
            }
        }
    }

    /// Enter a split call site with this rank's [`SplitEntry`]; blocks
    /// until all expected members arrive and returns this rank's new
    /// communicator.
    pub fn split(&self, entry: SplitEntry) -> SplitOutcome {
        let SplitEntry {
            parent_id,
            seq,
            expected,
            grank,
            color,
            key,
            t,
            cost,
        } = entry;
        let event = self.event();
        let map_key = (parent_id, seq);
        let mut map = self.splits.lock();
        let st = map.entry(map_key).or_insert(SplitState {
            expected,
            entries: Vec::new(),
            cost,
            outcome: None,
            left: 0,
            waiters: Vec::new(),
        });
        assert_eq!(
            st.expected, expected,
            "split participant mismatch on {map_key:?}"
        );
        st.entries.push((grank, color, key, t));
        st.cost = st.cost.max(cost);
        if st.entries.len() == st.expected {
            let release_t = st
                .entries
                .iter()
                .map(|e| e.3)
                .fold(f64::NEG_INFINITY, f64::max)
                + st.cost;
            // Group by color, order by (key, global rank).
            let mut by_color: HashMap<u64, Vec<(u64, usize)>> = HashMap::new();
            for &(g, c, k, _) in &st.entries {
                by_color.entry(c).or_default().push((k, g));
            }
            let mut outcome = HashMap::with_capacity(st.expected);
            // Deterministic comm-id assignment: colors in ascending order.
            let mut colors: Vec<u64> = by_color.keys().copied().collect();
            colors.sort_unstable();
            for color in colors {
                let mut group = by_color.remove(&color).unwrap();
                group.sort_unstable();
                let members: Arc<Vec<usize>> = Arc::new(group.iter().map(|&(_, g)| g).collect());
                let comm_id = self.next_comm_id.fetch_add(1, Ordering::Relaxed);
                for (idx, &(_, g)) in group.iter().enumerate() {
                    outcome.insert(
                        g,
                        SplitOutcome {
                            comm_id,
                            members: Arc::clone(&members),
                            my_index: idx,
                            release_t,
                        },
                    );
                }
            }
            st.outcome = Some(outcome);
            self.split_cv.notify_all();
            if let Some(ev) = &event {
                for tid in st.waiters.drain(..) {
                    ev.engine().wake(tid);
                }
            }
        }
        loop {
            let st = map.get_mut(&map_key).expect("split state vanished");
            if let Some(out) = &st.outcome {
                let mine = out
                    .get(&grank)
                    .expect("rank missing from split outcome")
                    .clone();
                st.left += 1;
                if st.left == st.expected {
                    map.remove(&map_key);
                }
                return mine;
            }
            if let Some(ev) = &event {
                // See the identical arm in `barrier` for the wake/poison
                // ordering argument.
                let tid = sched::current_task().expect("event-engine rank outside a task");
                st.waiters.push(tid);
                drop(map);
                self.check_poison();
                match ev.engine().block_current() {
                    WakeReason::Woken => {}
                    WakeReason::Quiescent => self.report_quiescent_deadlock(),
                }
                self.check_poison();
                map = self.splits.lock();
            } else if self.check.is_enabled() {
                if let Some(msg) = self.poll_waiter() {
                    drop(map);
                    self.poison();
                    panic!("{msg}");
                }
                self.split_cv.wait_for(&mut map, POLL);
            } else {
                self.check_poison();
                self.split_cv.wait(&mut map);
            }
        }
    }

    /// Allocate a fresh communicator id (used by dup-style operations).
    pub fn fresh_comm_id(&self) -> u64 {
        self.next_comm_id.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn barrier_releases_at_max_plus_cost() {
        let reg = Arc::new(Registry::new());
        let times = [1.0, 5.0, 3.0];
        let handles: Vec<_> = times
            .iter()
            .map(|&t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.barrier(0, 0, 3, t, 0.5))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5.5);
        }
    }

    #[test]
    fn barrier_state_cleaned_up_for_reuse() {
        let reg = Arc::new(Registry::new());
        for seq in 0..3 {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let reg = Arc::clone(&reg);
                    thread::spawn(move || reg.barrier(7, seq, 2, i as f64, 0.0))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 1.0);
            }
        }
        assert!(reg.barriers.lock().is_empty());
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let reg = Arc::new(Registry::new());
        // 4 ranks: colors 0,0,1,1; keys reversed within color 0.
        let plan = [(0usize, 0u64, 9u64), (1, 0, 1), (2, 1, 0), (3, 1, 5)];
        let handles: Vec<_> = plan
            .iter()
            .map(|&(g, c, k)| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    (
                        g,
                        reg.split(SplitEntry {
                            parent_id: 0,
                            seq: 0,
                            expected: 4,
                            grank: g,
                            color: c,
                            key: k,
                            t: 0.0,
                            cost: 0.1,
                        }),
                    )
                })
            })
            .collect();
        let mut results: Vec<(usize, SplitOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|r| r.0);
        // color 0: keys 9 (rank0), 1 (rank1) → order [1, 0]
        assert_eq!(*results[0].1.members, vec![1, 0]);
        assert_eq!(results[0].1.my_index, 1);
        assert_eq!(results[1].1.my_index, 0);
        // color 1: order [2, 3]
        assert_eq!(*results[2].1.members, vec![2, 3]);
        // distinct communicators, shared release time.
        assert_ne!(results[0].1.comm_id, results[2].1.comm_id);
        assert_eq!(results[0].1.release_t, results[2].1.release_t);
        assert_eq!(results[0].1.release_t, 0.1);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let reg = Arc::new(Registry::new());
        let r2 = Arc::clone(&reg);
        let h = thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                r2.barrier(0, 0, 2, 0.0, 0.0)
            }));
            result.is_err()
        });
        std::thread::sleep(Duration::from_millis(30));
        reg.poison();
        assert!(h.join().unwrap(), "waiter should have panicked out");
    }
}
