//! Message-count and volume accounting.
//!
//! The paper characterises IMeP by its total number of messages `M` and
//! volume `V` (in floating-point elements); these counters let tests compare
//! a real simulated run against those closed forms. Counters are updated by
//! every point-to-point send — collectives are trees of sends, so a
//! broadcast over `P` ranks counts `P − 1` messages, matching the paper's
//! accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cluster-wide traffic counters (lock-free; relaxed ordering is fine for
/// statistics that are only read after the run joins).
#[derive(Default)]
pub struct Traffic {
    msgs: AtomicU64,
    bytes: AtomicU64,
    intra_node_msgs: AtomicU64,
    intra_node_bytes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Total point-to-point messages.
    pub msgs: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Messages that stayed within a node.
    pub intra_node_msgs: u64,
    /// Bytes that stayed within a node.
    pub intra_node_bytes: u64,
}

impl TrafficSnapshot {
    /// Volume in f64 elements, the unit the paper uses.
    pub fn volume_elems(&self) -> u64 {
        self.bytes / 8
    }

    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs: self.msgs - earlier.msgs,
            bytes: self.bytes - earlier.bytes,
            intra_node_msgs: self.intra_node_msgs - earlier.intra_node_msgs,
            intra_node_bytes: self.intra_node_bytes - earlier.intra_node_bytes,
        }
    }
}

impl Traffic {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` payload bytes.
    pub fn record(&self, bytes: u64, intra_node: bool) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if intra_node {
            self.intra_node_msgs.fetch_add(1, Ordering::Relaxed);
            self.intra_node_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            intra_node_msgs: self.intra_node_msgs.load(Ordering::Relaxed),
            intra_node_bytes: self.intra_node_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_splits_by_locality() {
        let t = Traffic::new();
        t.record(100, true);
        t.record(50, false);
        let s = t.snapshot();
        assert_eq!(s.msgs, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.intra_node_msgs, 1);
        assert_eq!(s.intra_node_bytes, 100);
    }

    #[test]
    fn volume_in_elements() {
        let t = Traffic::new();
        t.record(80, false);
        assert_eq!(t.snapshot().volume_elems(), 10);
    }

    #[test]
    fn since_subtracts() {
        let t = Traffic::new();
        t.record(8, false);
        let early = t.snapshot();
        t.record(16, true);
        let diff = t.snapshot().since(&early);
        assert_eq!(diff.msgs, 1);
        assert_eq!(diff.bytes, 16);
    }
}
