//! Data-moving collectives built over the point-to-point layer so their
//! timing and traffic emerge from the same α + β·size model as everything
//! else.
//!
//! Two algorithm families coexist, selected by payload size exactly as
//! production MPI does:
//!
//! * **Trees** (binomial broadcast/reduce, linear gather) for small
//!   payloads, where latency dominates and `α·log P` depth wins. A tree
//!   broadcast over `P` ranks performs `P − 1` sends — the count the
//!   paper's closed-form message formulas assume.
//! * **Recursive doubling** (allreduce) and a **ring** (allgather) for
//!   larger payloads, replacing the old reduce-to-0-then-broadcast and
//!   gather-then-broadcast compositions: the critical path drops from
//!   `O((α + β·s)·log P + root serialization)` to the standard
//!   `α·log P + β·s` (allreduce) and `(P−1)·(α + β·s/P)` (allgather)
//!   bandwidth-optimal bounds.
//!
//! The switch point is [`COLL_SMALL_BYTES`]. The scalar max/maxloc
//! allreduces carry fixed 8–16 byte payloads, permanently below the
//! threshold, so for them the selection rule resolves to the trees at
//! compile time — which also keeps the paper's closed-form per-column
//! message counts (one reduce tree + one broadcast tree per pivot)
//! intact. Payload fan-out everywhere shares one `Arc` allocation per
//! buffer — see [`crate::envelope::Payload`].

use crate::comm::Comm;
use crate::context::{RankCtx, COLL_TAG};
use crate::envelope::Payload;
use crate::error::CollContractError;
use greenla_check::tagspace;
use greenla_check::{CollEvent, CollKind};
use std::sync::Arc;

/// Marker chunk id for unchunked collective messages (keeps plain and
/// pipelined tags disjoint under one sequence number).
const PLAIN_CHUNK: u64 = 0xfffff;
/// Chunk id of the pipelined-broadcast header message.
const HEADER_CHUNK: u64 = 0xffffe;

/// Payloads at or below this many bytes take the latency-optimized tree
/// algorithms; larger ones take recursive doubling / the ring. 512 B is
/// where the α and β terms cross for the simulated network (α ≈ 1.8 µs,
/// β ≈ 1/12.5 GB/s: β·512 ≈ 41 ns ≪ α, so halving byte volume cannot pay
/// for even one extra latency on the critical path below this size).
/// `model::comm` mirrors this constant for its closed-form predictions.
pub const COLL_SMALL_BYTES: u64 = 512;

/// Pack a collective message tag: the `COLL_TAG` bit, a 43-bit
/// per-communicator sequence number, and a 20-bit chunk id. The fields
/// must not overflow into each other — a campaign long enough to exhaust
/// 2^43 collectives per communicator, or a pipelined payload cut into
/// more than 2^20 − 2 chunks, would silently alias unrelated messages.
pub(crate) fn compose_coll_tag(seq: u64, chunk: u64) -> u64 {
    debug_assert!(
        tagspace::chunk_fits(chunk),
        "collective chunk id {chunk} overflows its {}-bit field",
        tagspace::CHUNK_BITS
    );
    debug_assert!(
        tagspace::seq_fits(seq),
        "collective sequence number {seq} overflows into the COLL_TAG bit"
    );
    COLL_TAG | (seq << tagspace::CHUNK_BITS) | chunk
}

/// Largest power of two not exceeding `p`.
fn prev_pow2(p: usize) -> usize {
    debug_assert!(p >= 1);
    if p.is_power_of_two() {
        p
    } else {
        p.next_power_of_two() / 2
    }
}

/// Map a recursive-doubling participant id back to its communicator rank
/// (inverse of the non-power-of-two fold: the first `2r` ranks fold into
/// `r` odd survivors, ranks `≥ 2r` keep their position shifted by `r`).
fn rd_participant_rank(newrank: usize, r: usize) -> usize {
    if newrank < r {
        2 * newrank + 1
    } else {
        newrank + r
    }
}

fn sum_op(a: &mut [f64], b: &[f64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

impl<'m> RankCtx<'m> {
    /// Allocate this collective's sequence number and record its lockstep
    /// signature with the checker.
    fn coll_site(&mut self, comm: &Comm, kind: CollKind, root: Option<usize>, elems: u64) -> u64 {
        let seq = self.next_seq(comm.id());
        self.check_enter_coll(
            CollEvent {
                comm: comm.id(),
                seq,
                kind,
                root,
                elems,
            },
            comm.members(),
        );
        seq
    }

    /// Abort the run with the stable collective-contract diagnostic when a
    /// peer's reduction buffer does not match ours.
    fn check_reduce_len(&self, comm: &Comm, got: usize, expected: usize) {
        if got != expected {
            panic!(
                "{}",
                CollContractError::ReduceLengthMismatch {
                    comm: comm.id(),
                    rank: self.rank(),
                    got,
                    expected,
                }
            );
        }
    }

    /// Binomial-tree broadcast of an arbitrary payload from `root`. Every
    /// hop forwards the same shared buffer (an `Arc` bump, never a copy).
    fn bcast_payload(&mut self, comm: &Comm, root: usize, payload: Option<Payload>) -> Payload {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Bcast, Some(root), 0);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        if p == 1 {
            return payload.expect("root must supply the broadcast payload");
        }
        let me = comm.rank();
        let rel = (me + p - root) % p;
        let mut data: Option<Payload> = if rel == 0 {
            Some(payload.expect("root must supply the broadcast payload"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src_index = (rel - mask + root) % p;
                data = Some(self.recv_payload(comm, src_index, tag));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst_index = (rel + mask + root) % p;
                let d = data
                    .as_ref()
                    .expect("broadcast data must exist before fan-out");
                self.send_payload(comm, dst_index, tag, d.clone());
            }
            mask >>= 1;
        }
        data.expect("broadcast produced no data")
    }

    /// `MPI_Bcast` of doubles: `buf` is the payload at the root and is
    /// overwritten (and resized) everywhere else. Receivers that only read
    /// the result should prefer [`RankCtx::bcast_shared_f64`], which skips
    /// the copy-on-unwrap of a buffer still shared with in-flight sends.
    pub fn bcast_f64(&mut self, comm: &Comm, root: usize, buf: &mut Vec<f64>) {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::f64(std::mem::take(buf)))
        } else {
            None
        };
        *buf = self.bcast_payload(comm, root, payload).expect_f64();
        self.trace_end("coll", "bcast");
    }

    /// Zero-copy `MPI_Bcast` of doubles for read-only consumers: the root
    /// passes `Some(data)`, everyone gets back a handle to one shared
    /// allocation per delivery chain — no per-hop clone, no unwrap copy.
    pub fn bcast_shared_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> Arc<Vec<f64>> {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::f64(data.expect("root must supply the payload")))
        } else {
            None
        };
        let out = self.bcast_payload(comm, root, payload).into_shared_f64();
        self.trace_end("coll", "bcast");
        out
    }

    /// Zero-copy `MPI_Bcast` of u64 values for read-only consumers.
    pub fn bcast_shared_u64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Option<Vec<u64>>,
    ) -> Arc<Vec<u64>> {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::u64(data.expect("root must supply the payload")))
        } else {
            None
        };
        let out = self.bcast_payload(comm, root, payload).into_shared_u64();
        self.trace_end("coll", "bcast");
        out
    }

    /// Pipelined large-message broadcast: a binary tree over the
    /// communicator with the payload cut into `chunk_elems`-sized pieces
    /// that stream down the tree, so the critical path is
    /// `O(α·log P + β·size)` instead of the binomial tree's
    /// `O((α + β·size)·log P)` — what production MPI switches to above a
    /// few kilobytes. Falls back to the binomial tree for payloads of at
    /// most one chunk. Interior ranks forward each chunk to both subtrees
    /// as the same shared buffer.
    pub fn bcast_pipelined_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        buf: &mut Vec<f64>,
        chunk_elems: usize,
    ) {
        assert!(chunk_elems > 0, "chunk size must be positive");
        self.trace_begin("coll", "bcast_pipelined");
        let p = comm.size();
        let me = comm.rank();
        let seq = self.coll_site(
            comm,
            CollKind::BcastPipelined,
            Some(root),
            chunk_elems as u64,
        );
        if p == 1 {
            self.trace_end("coll", "bcast_pipelined");
            return;
        }
        let tag = |chunk: u64| compose_coll_tag(seq, chunk);
        let rel = (me + p - root) % p;
        let parent = if rel == 0 {
            None
        } else {
            Some(((rel - 1) / 2 + root) % p)
        };
        let kids: Vec<usize> = [2 * rel + 1, 2 * rel + 2]
            .into_iter()
            .filter(|&c| c < p)
            .map(|c| (c + root) % p)
            .collect();
        // Header: total length (receivers cannot know it otherwise).
        let mut header = if rel == 0 {
            vec![buf.len() as u64]
        } else {
            Vec::new()
        };
        if let Some(par) = parent {
            header = self.recv_payload_u64(comm, par, tag(HEADER_CHUNK));
        }
        for &k in &kids {
            self.send_payload_u64(comm, k, tag(HEADER_CHUNK), &header);
        }
        let total = header[0] as usize;
        let nchunks = total.div_ceil(chunk_elems).max(1);
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.coll_tag_space(seq, nchunks as u64, t);
        }
        let mut out: Vec<f64> = if rel == 0 {
            std::mem::take(buf)
        } else {
            Vec::with_capacity(total)
        };
        for c in 0..nchunks {
            let lo = c * chunk_elems;
            let hi = total.min(lo + chunk_elems);
            // The root materialises each chunk once; everyone downstream
            // appends from a borrow and forwards the same allocation.
            let piece: Payload = if rel == 0 {
                Payload::f64(out[lo..hi].to_vec())
            } else {
                let got =
                    self.recv_payload(comm, parent.expect("non-root has parent"), tag(c as u64));
                out.extend_from_slice(got.as_f64());
                got
            };
            for &k in &kids {
                self.send_payload(comm, k, tag(c as u64), piece.clone());
            }
        }
        *buf = out;
        self.trace_end("coll", "bcast_pipelined");
    }

    fn recv_payload_u64(&mut self, comm: &Comm, src_index: usize, tag: u64) -> Vec<u64> {
        self.recv_payload(comm, src_index, tag).expect_u64()
    }

    fn send_payload_u64(&mut self, comm: &Comm, dst_index: usize, tag: u64, data: &[u64]) {
        self.send_payload(comm, dst_index, tag, Payload::u64(data.to_vec()));
    }

    /// `MPI_Bcast` of u64 values.
    pub fn bcast_u64(&mut self, comm: &Comm, root: usize, buf: &mut Vec<u64>) {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::u64(std::mem::take(buf)))
        } else {
            None
        };
        *buf = self.bcast_payload(comm, root, payload).expect_u64();
        self.trace_end("coll", "bcast");
    }

    /// Binomial-tree reduction of f64 vectors toward `root` with a custom
    /// element-wise combiner. Returns `Some(result)` at the root, `None`
    /// elsewhere.
    pub fn reduce_f64_with(
        &mut self,
        comm: &Comm,
        root: usize,
        acc: Vec<f64>,
        op: impl Fn(&mut [f64], &[f64]),
    ) -> Option<Vec<f64>> {
        self.trace_begin("coll", "reduce");
        let out = self.reduce_f64_with_impl(comm, root, acc, op);
        self.trace_end("coll", "reduce");
        out
    }

    fn reduce_f64_with_impl(
        &mut self,
        comm: &Comm,
        root: usize,
        mut acc: Vec<f64>,
        op: impl Fn(&mut [f64], &[f64]),
    ) -> Option<Vec<f64>> {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Reduce, Some(root), acc.len() as u64);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        if p == 1 {
            return Some(acc);
        }
        let me = comm.rank();
        let rel = (me + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < p {
                    let src_index = (src_rel + root) % p;
                    let other = self.recv_payload(comm, src_index, tag);
                    self.check_reduce_len(comm, other.as_f64().len(), acc.len());
                    op(&mut acc, other.as_f64());
                }
            } else {
                let dst_index = (rel - mask + root) % p;
                self.send_payload(comm, dst_index, tag, Payload::f64(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// `MPI_Reduce(MPI_SUM)` of f64 vectors.
    pub fn reduce_sum_f64(&mut self, comm: &Comm, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        self.reduce_sum_owned_f64(comm, root, data.to_vec())
    }

    /// `MPI_Reduce(MPI_SUM)` taking ownership of the contribution: callers
    /// that already own the buffer skip the `to_vec` the slice API pays.
    pub fn reduce_sum_owned_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
    ) -> Option<Vec<f64>> {
        self.reduce_f64_with(comm, root, data, sum_op)
    }

    /// Recursive-doubling allreduce of an owned vector with a commutative
    /// element-wise combiner: `⌈log₂ P⌉` exchange rounds, every rank busy
    /// every round, no root bottleneck. Non-power-of-two sizes fold the
    /// first `2r` ranks (where `r = P − 2^⌊log₂P⌋`) into `r` survivors
    /// before the butterfly and unfold after, per the standard MPICH
    /// scheme.
    ///
    /// Every rank applies the combiner over the same pairing tree (only
    /// operand order differs), so for a *commutative* op — IEEE addition
    /// and max/maxloc selection both qualify — all ranks produce
    /// bit-identical results.
    fn allreduce_rd(
        &mut self,
        comm: &Comm,
        mut acc: Vec<f64>,
        op: impl Fn(&mut [f64], &[f64]),
    ) -> Vec<f64> {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Allreduce, None, acc.len() as u64);
        if p == 1 {
            return acc;
        }
        let me = comm.rank();
        let p2 = prev_pow2(p);
        let r = p - p2;
        let steps = p2.trailing_zeros() as u64;
        if self.checker.enabled() {
            // Tag chunks: 0 = fold, 1..=steps = butterfly rounds,
            // steps+1 = unfold.
            let t = self.clock;
            self.checker.coll_tag_space(seq, steps + 2, t);
        }
        let tag = |chunk: u64| compose_coll_tag(seq, chunk);
        // Fold phase: even ranks below 2r contribute to their odd
        // neighbour and sit out the butterfly.
        let newrank: Option<usize> = if me < 2 * r {
            if me & 1 == 0 {
                let contrib = std::mem::take(&mut acc);
                self.send_payload(comm, me + 1, tag(0), Payload::f64(contrib));
                None
            } else {
                let other = self.recv_payload(comm, me - 1, tag(0));
                self.check_reduce_len(comm, other.as_f64().len(), acc.len());
                op(&mut acc, other.as_f64());
                Some(me / 2)
            }
        } else {
            Some(me - r)
        };
        if let Some(nr) = newrank {
            for s in 0..steps {
                let partner_nr = nr ^ (1usize << s);
                let partner = rd_participant_rank(partner_nr, r);
                self.send_payload(comm, partner, tag(1 + s), Payload::f64(acc.clone()));
                let other = self.recv_payload(comm, partner, tag(1 + s));
                self.check_reduce_len(comm, other.as_f64().len(), acc.len());
                op(&mut acc, other.as_f64());
            }
        }
        // Unfold phase: odd survivors hand the result back to their even
        // neighbour.
        if me < 2 * r {
            if me & 1 == 0 {
                acc = self.recv_payload(comm, me + 1, tag(1 + steps)).expect_f64();
            } else {
                self.send_payload(comm, me - 1, tag(1 + steps), Payload::f64(acc.clone()));
            }
        }
        acc
    }

    /// `MPI_Allreduce(MPI_SUM)` of f64 vectors: recursive doubling above
    /// [`COLL_SMALL_BYTES`], the legacy reduce-then-broadcast tree pair at
    /// or below it (latency dominates tiny payloads, and the tree pair is
    /// what the paper's per-block formulas count).
    pub fn allreduce_sum_f64(&mut self, comm: &Comm, data: &[f64]) -> Vec<f64> {
        self.allreduce_sum_owned_f64(comm, data.to_vec())
    }

    /// Owned-input [`RankCtx::allreduce_sum_f64`]: callers that already own
    /// the contribution skip the copy.
    pub fn allreduce_sum_owned_f64(&mut self, comm: &Comm, data: Vec<f64>) -> Vec<f64> {
        if 8 * data.len() as u64 <= COLL_SMALL_BYTES {
            self.trace_begin("coll", "allreduce");
            let reduced = self.reduce_f64_with(comm, 0, data, sum_op);
            let mut buf = reduced.unwrap_or_default();
            self.bcast_f64(comm, 0, &mut buf);
            self.trace_end("coll", "allreduce");
            buf
        } else {
            self.trace_begin("coll", "allreduce_rd");
            let out = self.allreduce_rd(comm, data, sum_op);
            self.trace_end("coll", "allreduce_rd");
            out
        }
    }

    /// `MPI_Allreduce(MPI_MAX)` of a scalar. An 8-byte payload is always
    /// below [`COLL_SMALL_BYTES`], so the size rule resolves statically to
    /// the reduce-then-broadcast tree pair.
    pub fn allreduce_max_f64(&mut self, comm: &Comm, v: f64) -> f64 {
        self.trace_begin("coll", "allreduce");
        let reduced = self.reduce_f64_with(comm, 0, vec![v], |a, b| {
            if b[0] > a[0] {
                a[0] = b[0];
            }
        });
        let mut buf = reduced.unwrap_or_default();
        self.bcast_f64(comm, 0, &mut buf);
        self.trace_end("coll", "allreduce");
        buf[0]
    }

    /// `MPI_Allreduce(MPI_MAXLOC)`: the maximum of `|v|` ties broken by the
    /// smaller `loc`; returns `(winning value, winning loc)`. The pivot
    /// search of distributed LU is built on this. Its fixed 16-byte
    /// payload is always below [`COLL_SMALL_BYTES`], so the size rule
    /// resolves statically to the tree pair — which is also what the
    /// paper's per-column message formulas count.
    pub fn allreduce_maxloc_abs(&mut self, comm: &Comm, v: f64, loc: u64) -> (f64, u64) {
        self.trace_begin("coll", "allreduce_maxloc");
        let reduced = self.reduce_f64_with(comm, 0, vec![v, loc as f64], |a, b| {
            let better = b[0].abs() > a[0].abs() || (b[0].abs() == a[0].abs() && b[1] < a[1]);
            if better {
                a[0] = b[0];
                a[1] = b[1];
            }
        });
        let mut buf = reduced.unwrap_or_default();
        self.bcast_f64(comm, 0, &mut buf);
        self.trace_end("coll", "allreduce_maxloc");
        (buf[0], buf[1] as u64)
    }

    /// Gather every member's payload at the root, receiving in completion
    /// order (earliest virtual arrival first) and slotting by source —
    /// never head-of-line blocking on a slow low rank while faster high
    /// ranks sit fully arrived.
    fn gather_payloads(&mut self, comm: &Comm, root: usize, own: Payload) -> Option<Vec<Payload>> {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Gather, Some(root), 0);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        let me = comm.rank();
        if me == root {
            let srcs: Vec<usize> = (0..p).filter(|&i| i != me).collect();
            let mut payloads = self.recv_payload_set(comm, &srcs, tag).into_iter();
            let mut out: Vec<Payload> = Vec::with_capacity(p);
            for i in 0..p {
                if i == me {
                    out.push(own.clone());
                } else {
                    out.push(payloads.next().expect("one payload per source"));
                }
            }
            Some(out)
        } else {
            self.send_payload(comm, root, tag, own);
            None
        }
    }

    /// `MPI_Gather` of variable-length f64 chunks: the root receives every
    /// member's chunk (its own included), ordered by communicator rank.
    pub fn gather_f64(&mut self, comm: &Comm, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.trace_begin("coll", "gather");
        let result = self
            .gather_payloads(comm, root, Payload::f64(data.to_vec()))
            .map(|chunks| chunks.into_iter().map(Payload::expect_f64).collect());
        self.trace_end("coll", "gather");
        result
    }

    /// Zero-copy `MPI_Gather` for read-only roots: each received chunk is
    /// handed over as the sender's own allocation.
    pub fn gather_shared_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[f64],
    ) -> Option<Vec<Arc<Vec<f64>>>> {
        self.trace_begin("coll", "gather");
        let result = self
            .gather_payloads(comm, root, Payload::f64(data.to_vec()))
            .map(|chunks| chunks.into_iter().map(Payload::into_shared_f64).collect());
        self.trace_end("coll", "gather");
        result
    }

    /// Ring allgather core: step `s` sends chunk `(me − s) mod p` to the
    /// right neighbour and receives chunk `(me − 1 − s) mod p` from the
    /// left, so after `p − 1` steps everyone holds every chunk. Forwarded
    /// chunks travel as the originator's shared allocation (an `Arc` bump
    /// per hop). Handles variable-length (including empty) chunks
    /// natively, which the old gather-then-broadcast needed a counts
    /// round-trip for.
    fn allgather_ring(&mut self, comm: &Comm, data: &[f64]) -> Vec<Payload> {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Allgather, None, 0);
        let me = comm.rank();
        let mut chunks: Vec<Option<Payload>> = (0..p).map(|_| None).collect();
        chunks[me] = Some(Payload::f64(data.to_vec()));
        if p > 1 {
            if self.checker.enabled() {
                let t = self.clock;
                self.checker.coll_tag_space(seq, (p - 1) as u64, t);
            }
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            for s in 0..p - 1 {
                let send_idx = (me + p - s) % p;
                let recv_idx = (me + p - 1 - s) % p;
                let tag = compose_coll_tag(seq, s as u64);
                let outgoing = chunks[send_idx]
                    .as_ref()
                    .expect("ring invariant: chunk present before step")
                    .clone();
                self.send_payload(comm, right, tag, outgoing);
                chunks[recv_idx] = Some(self.recv_payload(comm, left, tag));
            }
        }
        chunks
            .into_iter()
            .map(|c| c.expect("ring complete"))
            .collect()
    }

    /// `MPI_Allgather` of variable-length f64 chunks via the ring
    /// algorithm. Read-only consumers should prefer
    /// [`RankCtx::allgather_shared_f64`], which skips materialising owned
    /// copies of chunks still shared with in-flight forwards.
    pub fn allgather_f64(&mut self, comm: &Comm, data: &[f64]) -> Vec<Vec<f64>> {
        self.trace_begin("coll", "allgather_ring");
        let out = self
            .allgather_ring(comm, data)
            .into_iter()
            .map(Payload::expect_f64)
            .collect();
        self.trace_end("coll", "allgather_ring");
        out
    }

    /// Zero-copy ring allgather: every chunk comes back as its
    /// originator's shared allocation.
    pub fn allgather_shared_f64(&mut self, comm: &Comm, data: &[f64]) -> Vec<Arc<Vec<f64>>> {
        self.trace_begin("coll", "allgather_ring");
        let out = self
            .allgather_ring(comm, data)
            .into_iter()
            .map(Payload::into_shared_f64)
            .collect();
        self.trace_end("coll", "allgather_ring");
        out
    }

    /// Size-adaptive allgather for callers that know the combined element
    /// count up front (the hint must be communicator-uniform, like
    /// `expected_len` in `pdgetrf::bcast_sized` — ranks switching
    /// algorithms independently would deadlock, since per-rank chunk sizes
    /// legitimately differ, including empty chunks on non-contributing
    /// ranks). At or below [`COLL_SMALL_BYTES`] total, the latency-bound
    /// tree composition wins; above it, the ring.
    pub fn allgather_sized_f64(
        &mut self,
        comm: &Comm,
        data: &[f64],
        total_elems: usize,
    ) -> Vec<Vec<f64>> {
        if 8 * total_elems as u64 <= COLL_SMALL_BYTES {
            self.allgather_f64_tree(comm, data)
        } else {
            self.allgather_f64(comm, data)
        }
    }

    /// The legacy allgather composition — gather to rank 0, then broadcast
    /// counts and the flattened payload. Kept as the small-payload
    /// fallback of [`RankCtx::allgather_sized_f64`] and as the reference
    /// algorithm the bench suite measures the ring against.
    pub fn allgather_f64_tree(&mut self, comm: &Comm, data: &[f64]) -> Vec<Vec<f64>> {
        self.trace_begin("coll", "allgather_tree");
        let gathered = self.gather_f64(comm, 0, data);
        let (mut counts, mut flat) = match gathered {
            Some(chunks) => {
                let counts: Vec<u64> = chunks.iter().map(|c| c.len() as u64).collect();
                let flat: Vec<f64> = chunks.into_iter().flatten().collect();
                (counts, flat)
            }
            None => (Vec::new(), Vec::new()),
        };
        self.bcast_u64(comm, 0, &mut counts);
        self.bcast_f64(comm, 0, &mut flat);
        let mut out = Vec::with_capacity(counts.len());
        let mut off = 0usize;
        for c in counts {
            let c = c as usize;
            out.push(flat[off..off + c].to_vec());
            off += c;
        }
        self.trace_end("coll", "allgather_tree");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tag_fields_are_disjoint() {
        // Neighbouring (seq, chunk) pairs must never alias: each field lives
        // in its own bit range below the COLL_TAG marker.
        let a = compose_coll_tag(1, 0);
        let b = compose_coll_tag(0, 1);
        let c = compose_coll_tag(1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a & COLL_TAG, COLL_TAG);
        // seq and chunk decode back out of the packed tag.
        assert_eq!((a >> tagspace::CHUNK_BITS) & tagspace::MAX_SEQ, 1);
        assert_eq!(c & tagspace::MAX_CHUNK, 1);
    }

    #[test]
    fn coll_tag_saturates_exactly_at_the_field_boundaries() {
        // The largest legal (seq, chunk) fills every bit without carrying
        // into a neighbouring field.
        assert_eq!(
            compose_coll_tag(tagspace::MAX_SEQ, tagspace::MAX_CHUNK),
            u64::MAX
        );
        // The reserved marker chunks sit inside the chunk field.
        assert!(tagspace::chunk_fits(PLAIN_CHUNK));
        assert!(tagspace::chunk_fits(HEADER_CHUNK));
        assert_eq!(tagspace::MAX_PIPELINE_CHUNKS, HEADER_CHUNK);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows into the COLL_TAG bit")]
    fn coll_tag_rejects_seq_overflow() {
        compose_coll_tag(tagspace::MAX_SEQ + 1, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows its 20-bit field")]
    fn coll_tag_rejects_chunk_overflow() {
        compose_coll_tag(0, tagspace::MAX_CHUNK + 1);
    }

    #[test]
    fn rd_fold_mapping_is_a_bijection_onto_participants() {
        // For every communicator size, the newrank → rank mapping must hit
        // each butterfly participant exactly once, and the fold must pair
        // every even sitter-out with an odd survivor.
        for p in 1..=40usize {
            let p2 = prev_pow2(p);
            let r = p - p2;
            let mut seen = vec![false; p];
            for nr in 0..p2 {
                let rank = rd_participant_rank(nr, r);
                assert!(rank < p, "p={p}: participant {nr} maps to {rank}");
                assert!(!seen[rank], "p={p}: rank {rank} mapped twice");
                seen[rank] = true;
            }
            for (rank, active) in seen.iter().enumerate() {
                let folded_out = rank < 2 * r && rank % 2 == 0;
                assert_eq!(
                    *active, !folded_out,
                    "p={p}: rank {rank} participation is wrong"
                );
            }
        }
    }

    #[test]
    fn small_threshold_matches_the_model_crate_contract() {
        // 64 f64 elements sit exactly on the switch boundary: the last
        // payload served by the trees.
        assert_eq!(COLL_SMALL_BYTES, 512);
        assert_eq!(8 * 64, COLL_SMALL_BYTES);
    }
}
