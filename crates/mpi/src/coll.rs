//! Data-moving collectives, implemented as binomial trees over the
//! point-to-point layer so their timing and traffic emerge from the same
//! α + β·size model as everything else.
//!
//! A tree broadcast over `P` ranks performs `P − 1` sends — the same count
//! the paper's closed-form message formulas assume for master-to-slaves
//! broadcasts — while achieving `O(log P)` depth, as production MPI does.

use crate::comm::Comm;
use crate::context::{RankCtx, COLL_TAG};
use crate::envelope::Payload;
use greenla_check::tagspace;
use greenla_check::{CollEvent, CollKind};

/// Marker chunk id for unchunked collective messages (keeps plain and
/// pipelined tags disjoint under one sequence number).
const PLAIN_CHUNK: u64 = 0xfffff;
/// Chunk id of the pipelined-broadcast header message.
const HEADER_CHUNK: u64 = 0xffffe;

/// Pack a collective message tag: the `COLL_TAG` bit, a 43-bit
/// per-communicator sequence number, and a 20-bit chunk id. The fields
/// must not overflow into each other — a campaign long enough to exhaust
/// 2^43 collectives per communicator, or a pipelined payload cut into
/// more than 2^20 − 2 chunks, would silently alias unrelated messages.
pub(crate) fn compose_coll_tag(seq: u64, chunk: u64) -> u64 {
    debug_assert!(
        tagspace::chunk_fits(chunk),
        "collective chunk id {chunk} overflows its {}-bit field",
        tagspace::CHUNK_BITS
    );
    debug_assert!(
        tagspace::seq_fits(seq),
        "collective sequence number {seq} overflows into the COLL_TAG bit"
    );
    COLL_TAG | (seq << tagspace::CHUNK_BITS) | chunk
}

impl<'m> RankCtx<'m> {
    /// Allocate this collective's sequence number and record its lockstep
    /// signature with the checker.
    fn coll_site(&mut self, comm: &Comm, kind: CollKind, root: Option<usize>, elems: u64) -> u64 {
        let seq = self.next_seq(comm.id());
        self.check_enter_coll(
            CollEvent {
                comm: comm.id(),
                seq,
                kind,
                root,
                elems,
            },
            comm.members(),
        );
        seq
    }

    /// Binomial-tree broadcast of an arbitrary payload from `root`.
    fn bcast_payload(&mut self, comm: &Comm, root: usize, payload: Option<Payload>) -> Payload {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Bcast, Some(root), 0);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        if p == 1 {
            return payload.expect("root must supply the broadcast payload");
        }
        let me = comm.rank();
        let rel = (me + p - root) % p;
        let mut data: Option<Payload> = if rel == 0 {
            Some(payload.expect("root must supply the broadcast payload"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src_index = (rel - mask + root) % p;
                data = Some(self.recv_payload(comm, src_index, tag));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst_index = (rel + mask + root) % p;
                let d = data
                    .as_ref()
                    .expect("broadcast data must exist before fan-out");
                self.send_payload(comm, dst_index, tag, d.clone());
            }
            mask >>= 1;
        }
        data.expect("broadcast produced no data")
    }

    /// `MPI_Bcast` of doubles: `buf` is the payload at the root and is
    /// overwritten (and resized) everywhere else.
    pub fn bcast_f64(&mut self, comm: &Comm, root: usize, buf: &mut Vec<f64>) {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::F64(std::mem::take(buf)))
        } else {
            None
        };
        *buf = self.bcast_payload(comm, root, payload).expect_f64();
        self.trace_end("coll", "bcast");
    }

    /// Pipelined large-message broadcast: a binary tree over the
    /// communicator with the payload cut into `chunk_elems`-sized pieces
    /// that stream down the tree, so the critical path is
    /// `O(α·log P + β·size)` instead of the binomial tree's
    /// `O((α + β·size)·log P)` — what production MPI switches to above a
    /// few kilobytes. Falls back to the binomial tree for payloads of at
    /// most one chunk.
    pub fn bcast_pipelined_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        buf: &mut Vec<f64>,
        chunk_elems: usize,
    ) {
        assert!(chunk_elems > 0, "chunk size must be positive");
        self.trace_begin("coll", "bcast_pipelined");
        let p = comm.size();
        let me = comm.rank();
        let seq = self.coll_site(
            comm,
            CollKind::BcastPipelined,
            Some(root),
            chunk_elems as u64,
        );
        if p == 1 {
            self.trace_end("coll", "bcast_pipelined");
            return;
        }
        let tag = |chunk: u64| compose_coll_tag(seq, chunk);
        let rel = (me + p - root) % p;
        let parent = if rel == 0 {
            None
        } else {
            Some(((rel - 1) / 2 + root) % p)
        };
        let kids: Vec<usize> = [2 * rel + 1, 2 * rel + 2]
            .into_iter()
            .filter(|&c| c < p)
            .map(|c| (c + root) % p)
            .collect();
        // Header: total length (receivers cannot know it otherwise).
        let mut header = if rel == 0 {
            vec![buf.len() as u64]
        } else {
            Vec::new()
        };
        if let Some(par) = parent {
            header = self.recv_payload_u64(comm, par, tag(HEADER_CHUNK));
        }
        for &k in &kids {
            self.send_payload_u64(comm, k, tag(HEADER_CHUNK), &header);
        }
        let total = header[0] as usize;
        let nchunks = total.div_ceil(chunk_elems).max(1);
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.coll_tag_space(seq, nchunks as u64, t);
        }
        let mut out: Vec<f64> = if rel == 0 {
            std::mem::take(buf)
        } else {
            Vec::with_capacity(total)
        };
        for c in 0..nchunks {
            let lo = c * chunk_elems;
            let hi = total.min(lo + chunk_elems);
            let piece: Vec<f64> = if rel == 0 {
                out[lo..hi].to_vec()
            } else {
                let got = self
                    .recv_payload(comm, parent.expect("non-root has parent"), tag(c as u64))
                    .expect_f64();
                out.extend_from_slice(&got);
                got
            };
            for &k in &kids {
                self.send_payload(comm, k, tag(c as u64), Payload::F64(piece.clone()));
            }
        }
        *buf = out;
        self.trace_end("coll", "bcast_pipelined");
    }

    fn recv_payload_u64(&mut self, comm: &Comm, src_index: usize, tag: u64) -> Vec<u64> {
        self.recv_payload(comm, src_index, tag).expect_u64()
    }

    fn send_payload_u64(&mut self, comm: &Comm, dst_index: usize, tag: u64, data: &[u64]) {
        self.send_payload(comm, dst_index, tag, Payload::U64(data.to_vec()));
    }

    /// `MPI_Bcast` of u64 values.
    pub fn bcast_u64(&mut self, comm: &Comm, root: usize, buf: &mut Vec<u64>) {
        self.trace_begin("coll", "bcast");
        let payload = if comm.rank() == root {
            Some(Payload::U64(std::mem::take(buf)))
        } else {
            None
        };
        *buf = self.bcast_payload(comm, root, payload).expect_u64();
        self.trace_end("coll", "bcast");
    }

    /// Binomial-tree reduction of f64 vectors toward `root` with a custom
    /// element-wise combiner. Returns `Some(result)` at the root, `None`
    /// elsewhere.
    pub fn reduce_f64_with(
        &mut self,
        comm: &Comm,
        root: usize,
        acc: Vec<f64>,
        op: impl Fn(&mut [f64], &[f64]),
    ) -> Option<Vec<f64>> {
        self.trace_begin("coll", "reduce");
        let out = self.reduce_f64_with_impl(comm, root, acc, op);
        self.trace_end("coll", "reduce");
        out
    }

    fn reduce_f64_with_impl(
        &mut self,
        comm: &Comm,
        root: usize,
        mut acc: Vec<f64>,
        op: impl Fn(&mut [f64], &[f64]),
    ) -> Option<Vec<f64>> {
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Reduce, Some(root), acc.len() as u64);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        if p == 1 {
            return Some(acc);
        }
        let me = comm.rank();
        let rel = (me + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < p {
                    let src_index = (src_rel + root) % p;
                    let other = self.recv_payload(comm, src_index, tag).expect_f64();
                    assert_eq!(other.len(), acc.len(), "reduce length mismatch");
                    op(&mut acc, &other);
                }
            } else {
                let dst_index = (rel - mask + root) % p;
                self.send_payload(comm, dst_index, tag, Payload::F64(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// `MPI_Reduce(MPI_SUM)` of f64 vectors.
    pub fn reduce_sum_f64(&mut self, comm: &Comm, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        self.reduce_f64_with(comm, root, data.to_vec(), |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        })
    }

    /// `MPI_Allreduce(MPI_SUM)` of f64 vectors (reduce to 0, then bcast).
    pub fn allreduce_sum_f64(&mut self, comm: &Comm, data: &[f64]) -> Vec<f64> {
        self.trace_begin("coll", "allreduce");
        let reduced = self.reduce_sum_f64(comm, 0, data);
        let mut buf = reduced.unwrap_or_default();
        self.bcast_f64(comm, 0, &mut buf);
        self.trace_end("coll", "allreduce");
        buf
    }

    /// `MPI_Allreduce(MPI_MAX)` of a scalar.
    pub fn allreduce_max_f64(&mut self, comm: &Comm, v: f64) -> f64 {
        self.trace_begin("coll", "allreduce");
        let reduced = self.reduce_f64_with(comm, 0, vec![v], |a, b| {
            if b[0] > a[0] {
                a[0] = b[0];
            }
        });
        let mut buf = reduced.unwrap_or_default();
        self.bcast_f64(comm, 0, &mut buf);
        self.trace_end("coll", "allreduce");
        buf[0]
    }

    /// `MPI_Allreduce(MPI_MAXLOC)`: the maximum of `|v|` ties broken by the
    /// smaller `loc`; returns `(winning value, winning loc)`. The pivot
    /// search of distributed LU is built on this.
    pub fn allreduce_maxloc_abs(&mut self, comm: &Comm, v: f64, loc: u64) -> (f64, u64) {
        self.trace_begin("coll", "allreduce_maxloc");
        let reduced = self.reduce_f64_with(comm, 0, vec![v, loc as f64], |a, b| {
            let better = b[0].abs() > a[0].abs() || (b[0].abs() == a[0].abs() && b[1] < a[1]);
            if better {
                a[0] = b[0];
                a[1] = b[1];
            }
        });
        let mut buf = reduced.unwrap_or_default();
        self.bcast_f64(comm, 0, &mut buf);
        self.trace_end("coll", "allreduce_maxloc");
        (buf[0], buf[1] as u64)
    }

    /// `MPI_Gather` of variable-length f64 chunks: the root receives every
    /// member's chunk in communicator order (its own included).
    pub fn gather_f64(&mut self, comm: &Comm, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.trace_begin("coll", "gather");
        let p = comm.size();
        let seq = self.coll_site(comm, CollKind::Gather, Some(root), 0);
        let tag = compose_coll_tag(seq, PLAIN_CHUNK);
        let me = comm.rank();
        let result = if me == root {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(p);
            for i in 0..p {
                if i == me {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_payload(comm, i, tag).expect_f64());
                }
            }
            Some(out)
        } else {
            self.send_payload(comm, root, tag, Payload::F64(data.to_vec()));
            None
        };
        self.trace_end("coll", "gather");
        result
    }

    /// `MPI_Allgather` of variable-length f64 chunks: gather to rank 0 and
    /// re-broadcast (counts first, then the flattened payload).
    pub fn allgather_f64(&mut self, comm: &Comm, data: &[f64]) -> Vec<Vec<f64>> {
        self.trace_begin("coll", "allgather");
        let gathered = self.gather_f64(comm, 0, data);
        let (mut counts, mut flat) = match gathered {
            Some(chunks) => {
                let counts: Vec<u64> = chunks.iter().map(|c| c.len() as u64).collect();
                let flat: Vec<f64> = chunks.into_iter().flatten().collect();
                (counts, flat)
            }
            None => (Vec::new(), Vec::new()),
        };
        self.bcast_u64(comm, 0, &mut counts);
        self.bcast_f64(comm, 0, &mut flat);
        let mut out = Vec::with_capacity(counts.len());
        let mut off = 0usize;
        for c in counts {
            let c = c as usize;
            out.push(flat[off..off + c].to_vec());
            off += c;
        }
        self.trace_end("coll", "allgather");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tag_fields_are_disjoint() {
        // Neighbouring (seq, chunk) pairs must never alias: each field lives
        // in its own bit range below the COLL_TAG marker.
        let a = compose_coll_tag(1, 0);
        let b = compose_coll_tag(0, 1);
        let c = compose_coll_tag(1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a & COLL_TAG, COLL_TAG);
        // seq and chunk decode back out of the packed tag.
        assert_eq!((a >> tagspace::CHUNK_BITS) & tagspace::MAX_SEQ, 1);
        assert_eq!(c & tagspace::MAX_CHUNK, 1);
    }

    #[test]
    fn coll_tag_saturates_exactly_at_the_field_boundaries() {
        // The largest legal (seq, chunk) fills every bit without carrying
        // into a neighbouring field.
        assert_eq!(
            compose_coll_tag(tagspace::MAX_SEQ, tagspace::MAX_CHUNK),
            u64::MAX
        );
        // The reserved marker chunks sit inside the chunk field.
        assert!(tagspace::chunk_fits(PLAIN_CHUNK));
        assert!(tagspace::chunk_fits(HEADER_CHUNK));
        assert_eq!(tagspace::MAX_PIPELINE_CHUNKS, HEADER_CHUNK);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows into the COLL_TAG bit")]
    fn coll_tag_rejects_seq_overflow() {
        compose_coll_tag(tagspace::MAX_SEQ + 1, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows its 20-bit field")]
    fn coll_tag_rejects_chunk_overflow() {
        compose_coll_tag(0, tagspace::MAX_CHUNK + 1);
    }
}
