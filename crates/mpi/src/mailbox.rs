//! Per-rank mailboxes, abstracted over the scheduling engine.
//!
//! Under the thread-per-rank engine a mailbox is a crossbeam channel:
//! blocking receives park the OS thread. Under the event-driven engine it
//! is an engine-owned `VecDeque` guarded by a mutex, and a post *wakes*
//! the destination task — blocking is the scheduler's job
//! ([`crate::sched::Engine::block_current`]), not the channel's. Keeping
//! the queues engine-owned (rather than inside each fiber) lets the
//! machine drain every inbox after the run for the MSG001 leak audit and
//! the duplicate accounting, exactly as it drains the channels today.

use crate::envelope::Envelope;
use crate::sched::Engine;
use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// All ranks' inboxes under the event-driven engine, plus the engine
/// handle a post needs to wake the destination.
pub(crate) struct EventMailboxes {
    inboxes: Vec<Mutex<VecDeque<Envelope>>>,
    engine: Arc<Engine>,
}

impl EventMailboxes {
    pub(crate) fn new(n: usize, engine: Arc<Engine>) -> Self {
        assert_eq!(engine.ntasks(), n, "one inbox per task");
        EventMailboxes {
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            engine,
        }
    }

    pub(crate) fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Deliver `env` to rank `dst` and wake it.
    pub(crate) fn post(&self, dst: usize, env: Envelope) {
        self.inboxes[dst].lock().push_back(env);
        self.engine.wake(dst);
    }

    /// Pop the next queued envelope for `rank`, if any.
    pub(crate) fn try_pop(&self, rank: usize) -> Option<Envelope> {
        self.inboxes[rank].lock().pop_front()
    }

    /// Post the abort control message to every inbox and wake everyone:
    /// the event-engine arm of [`crate::registry::Registry::poison`].
    pub(crate) fn poison_broadcast(&self) {
        for inbox in &self.inboxes {
            inbox.lock().push_back(Envelope::control_abort());
        }
        self.engine.wake_all();
    }
}

/// The receive half of one rank's mailbox.
pub(crate) enum MailboxRx {
    /// Thread-per-rank: a crossbeam receiver (blocking receives park the
    /// thread; the registry's abort control message wakes it).
    Thread(Receiver<Envelope>),
    /// Event-driven: this rank's slot in the shared inbox table.
    Event {
        rank: usize,
        shared: Arc<EventMailboxes>,
    },
}

impl MailboxRx {
    /// Non-blocking receive; used by `iprobe` drains and the finalize
    /// audit. Blocking receives live in `RankCtx::pump_mailbox`, which
    /// needs engine-specific wait logic around this.
    pub(crate) fn try_recv(&self) -> Option<Envelope> {
        match self {
            MailboxRx::Thread(rx) => rx.try_recv().ok(),
            MailboxRx::Event { rank, shared } => shared.try_pop(*rank),
        }
    }
}

/// The send half: one handle reaches every rank.
pub(crate) enum MailboxTx {
    Thread(Arc<Vec<Sender<Envelope>>>),
    Event(Arc<EventMailboxes>),
}

impl MailboxTx {
    /// Deliver `env` to rank `dst` (and, under the event engine, wake it).
    pub(crate) fn post(&self, dst: usize, env: Envelope) {
        match self {
            MailboxTx::Thread(txs) => txs[dst].send(env).expect("destination mailbox closed"),
            MailboxTx::Event(shared) => shared.post(dst, env),
        }
    }
}
