//! Per-rank execution context: the API rank code programs against.

use crate::comm::{Comm, WORLD_ID};
use crate::envelope::{Envelope, Payload};
use crate::mailbox::{MailboxRx, MailboxTx};
use crate::registry::{Registry, SplitEntry};
use crate::sched::WakeReason;
use crate::traffic::Traffic;
use crossbeam_channel::RecvTimeoutError;
use greenla_check::{CollEvent, CollKind, RankChecker};
use greenla_cluster::ledger::{ActivityKind, Interval, Ledger};
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::topology::CoreId;
use greenla_cluster::PowerModel;
use greenla_faults::{retry_backoff_s, MsgFaultKind, RankFaults, MAX_SEND_RETRIES};
use greenla_trace::RankTracer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Poll period for checked runs under the *thread-per-rank* engine only:
/// how often a blocked receiver wakes to run the deadlock probe. Unchecked
/// thread-engine runs park in a blocking receive and consume no CPU until a
/// message (or the registry's abort control message) arrives. The
/// event-driven engine never polls at all — blocked ranks yield their
/// worker, and the scheduler's quiescence signal runs the probe exactly
/// once, at the moment a deadlock becomes certain.
const POLL: Duration = Duration::from_millis(25);

/// Tag bit reserved for collective-internal messages; user tags must stay
/// below it.
pub const COLL_TAG: u64 = 1 << 63;

/// Execution context handed to each rank's closure by
/// [`crate::Machine::run`]. All communication and virtual-time charging
/// goes through this handle.
pub struct RankCtx<'m> {
    pub(crate) rank: usize,
    pub(crate) nranks: usize,
    pub(crate) core: CoreId,
    pub(crate) clock: f64,
    pub(crate) spec: &'m ClusterSpec,
    pub(crate) power: &'m PowerModel,
    pub(crate) seed: u64,
    pub(crate) perf_mult: f64,
    pub(crate) ledger: &'m Ledger,
    pub(crate) traffic: &'m Traffic,
    pub(crate) registry: &'m Registry,
    pub(crate) placement: &'m Placement,
    pub(crate) rx: MailboxRx,
    pub(crate) txs: MailboxTx,
    pub(crate) pending: Vec<Envelope>,
    /// Per-communicator collective sequence numbers (barrier/split/bcast/…
    /// all consume from the same stream, so ordering is consistent as long
    /// as ranks issue collectives in the same order — the MPI contract).
    pub(crate) seqs: HashMap<u64, u64>,
    pub(crate) world_members: Arc<Vec<usize>>,
    /// Event recorder for this rank; a no-op unless the machine has an
    /// enabled [`greenla_trace::TraceSink`] attached.
    pub(crate) tracer: RankTracer,
    /// Correctness-checker hooks for this rank; a no-op unless the machine
    /// has an enabled [`greenla_check::CheckSink`] attached. Hooks only
    /// observe the virtual clocks, never advance them.
    pub(crate) checker: RankChecker,
    /// Planned-fault state for this rank; a no-op unless the machine has
    /// an enabled [`greenla_faults::FaultSink`] attached. Unlike the
    /// observers above, active faults *do* perturb virtual time (that is
    /// their point) — but a disabled handle costs one branch per hook and
    /// leaves the timeline untouched.
    pub(crate) faults: RankFaults,
}

impl<'m> RankCtx<'m> {
    /// Global rank (index in the world communicator).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        Comm::new(WORLD_ID, Arc::clone(&self.world_members), self.rank)
    }

    /// Physical core this rank is pinned to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Node index of this rank.
    pub fn node(&self) -> usize {
        self.core.node
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Cluster specification.
    pub fn cluster(&self) -> &ClusterSpec {
        self.spec
    }

    /// Power model of the machine (monitoring layers read energies through
    /// RAPL, but the model itself is public for ground-truth comparisons).
    pub fn power_model(&self) -> &PowerModel {
        self.power
    }

    /// Run seed (selects node jitter draws).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Activity ledger (read-only use; the context itself records).
    pub fn ledger(&self) -> &Ledger {
        self.ledger
    }

    /// Rank placement for the run.
    pub fn placement(&self) -> &Placement {
        self.placement
    }

    // ----- event tracing ---------------------------------------------------------

    /// Is event tracing active for this run? Workloads can skip building
    /// span labels when it is not.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Open a trace span at the current virtual time. Spans on one rank
    /// must nest (close in LIFO order). No-op when tracing is disabled.
    pub fn trace_begin(&mut self, cat: &'static str, name: &str) {
        let t = self.clock;
        self.tracer.begin(cat, name, t);
    }

    /// Close the innermost open span with this name at the current virtual
    /// time.
    pub fn trace_end(&mut self, cat: &'static str, name: &str) {
        let t = self.clock;
        self.tracer.end(cat, name, t);
    }

    /// Record a zero-duration marker at the current virtual time.
    pub fn trace_instant(&mut self, name: &str) {
        let t = self.clock;
        self.tracer.instant(name, t);
    }

    // ----- fault injection -------------------------------------------------------

    /// Is fault injection active for this run?
    pub fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// This rank's fault handle (plan queries and recovery accounting for
    /// higher layers — the monitor protocol and checksum-protected
    /// solvers).
    pub fn faults_mut(&mut self) -> &mut RankFaults {
        &mut self.faults
    }

    /// Shorthand for the mid-protocol checks higher layers make.
    pub fn faults(&self) -> &RankFaults {
        &self.faults
    }

    /// An injection point: every compute and send entry passes through
    /// here, advancing the per-rank call counter and firing a planned
    /// crash when due. The rank dies by panic; the machine poisons the
    /// run so every peer unblocks with a stable diagnostic instead of
    /// hanging.
    fn fault_point(&mut self) {
        if !self.faults.enabled() {
            return;
        }
        if let Some(msg) = self.faults.crash_due(self.clock) {
            let t = self.clock;
            self.tracer.instant("fault:crash", t);
            panic!("{msg}");
        }
    }

    // ----- virtual-time charging -------------------------------------------------

    /// Record a busy interval of `dt` seconds starting at the current clock
    /// and advance the clock.
    fn busy(&mut self, dt: f64, kind: ActivityKind, flops: u64) {
        debug_assert!(dt >= 0.0, "negative busy time {dt}");
        if dt <= 0.0 && flops == 0 {
            return;
        }
        let start = self.clock;
        let end = start + dt;
        self.ledger.record(
            self.core,
            Interval {
                start,
                end,
                kind,
                flops,
            },
        );
        self.clock = end;
    }

    /// Advance to an absolute time `t`, recording the elapsed span as busy
    /// communication (spin-waiting, as blocking MPI calls do).
    fn busy_until(&mut self, t: f64, kind: ActivityKind) {
        if t > self.clock {
            let start = self.clock;
            self.ledger.record(
                self.core,
                Interval {
                    start,
                    end: t,
                    kind,
                    flops: 0,
                },
            );
            self.clock = t;
        }
    }

    /// Charge `flops` floating-point operations touching `dram_bytes` bytes
    /// of memory. Virtual time advances by the larger of the flop time (at
    /// the node's jittered sustained rate) and the memory time (at this
    /// core's share of socket DRAM bandwidth).
    pub fn compute(&mut self, flops: u64, dram_bytes: u64) {
        self.fault_point();
        let rate = self.spec.node.cpu.sustained_flops_per_core * self.perf_mult;
        let t_flops = flops as f64 / rate;
        let per_core_bw =
            self.spec.node.dram_bw_bytes_per_s / self.spec.node.cpu.cores_per_socket as f64;
        let t_mem = dram_bytes as f64 / per_core_bw;
        if dram_bytes > 0 {
            self.ledger
                .record_dram(self.core.node, self.core.socket, self.clock, dram_bytes);
        }
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer.begin_with_args(
                "compute",
                "compute",
                t,
                &[("flops", flops as f64), ("dram_bytes", dram_bytes as f64)],
            );
        }
        let t0 = self.clock;
        self.busy(t_flops.max(t_mem), ActivityKind::Compute, flops);
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer.end("compute", "compute", t);
        }
        if self.checker.enabled() {
            let t1 = self.clock;
            self.checker.compute(t0, t1);
        }
    }

    /// Charge a pure memory operation (allocation, initialisation, copies)
    /// with no arithmetic — the paper monitors the allocation phase
    /// separately from the computation phase.
    pub fn touch_memory(&mut self, dram_bytes: u64) {
        self.compute(0, dram_bytes);
    }

    /// Advance virtual time without recording activity (idle sleep).
    pub fn sleep(&mut self, dt: f64) {
        assert!(dt >= 0.0);
        self.clock += dt;
    }

    // ----- point-to-point --------------------------------------------------------

    pub(crate) fn send_payload(
        &mut self,
        comm: &Comm,
        dst_index: usize,
        tag: u64,
        payload: Payload,
    ) {
        self.fault_point();
        let fault = if self.faults.enabled() {
            self.faults.next_send_fault()
        } else {
            None
        };
        let dst = comm.global_rank(dst_index);
        assert!(dst != self.rank, "self-send on comm {}", comm.id());
        let bytes = payload.size_bytes();
        let same_node = self.placement.node_of(dst) == self.core.node;
        let o = self.spec.net.per_message_overhead_s;
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer.begin_with_args(
                "comm",
                "send",
                t,
                &[("bytes", bytes as f64), ("dst", dst as f64)],
            );
        }
        self.busy(o, ActivityKind::Comm, 0);
        if let Some(MsgFaultKind::Drop { count }) = fault {
            // Sender-side retry with exponential virtual backoff: each
            // dropped attempt costs busy time, so faults leave a visible,
            // deterministic footprint in the timeline.
            self.faults.record_drop_injected(count as u64);
            let t = self.clock;
            self.tracer.instant("fault:drop", t);
            for attempt in 0..count.min(MAX_SEND_RETRIES + 1) {
                self.busy(retry_backoff_s(o, attempt), ActivityKind::Comm, 0);
            }
            if count > MAX_SEND_RETRIES {
                if self.tracer.enabled() {
                    let t = self.clock;
                    self.tracer.end("comm", "send", t);
                }
                panic!(
                    "injected fault: rank {} lost message to rank {dst} after \
                     {MAX_SEND_RETRIES} retries (comm {}, tag {tag})",
                    self.rank,
                    comm.id()
                );
            }
            self.faults.record_drop_recovered(count as u64);
        }
        let mut arrival = self.clock + self.spec.net.message_time(bytes, same_node);
        let mut delayed = false;
        if let Some(MsgFaultKind::Delay { extra_s }) = fault {
            arrival += extra_s;
            delayed = true;
            self.faults.record_delay_injected();
            let t = self.clock;
            self.tracer.instant("fault:delay", t);
        }
        let duplicate = matches!(fault, Some(MsgFaultKind::Duplicate));
        self.traffic.record(bytes, same_node);
        if duplicate {
            // The phantom copy crosses the wire too; the receiver discards
            // it on sight.
            self.faults.record_dup_injected();
            let t = self.clock;
            self.tracer.instant("fault:dup", t);
            self.traffic.record(bytes, same_node);
            self.txs.post(
                dst,
                Envelope {
                    src: self.rank,
                    comm_id: comm.id(),
                    tag,
                    arrival,
                    payload: payload.clone(),
                    dup: true,
                    delayed: false,
                },
            );
        }
        self.txs.post(
            dst,
            Envelope {
                src: self.rank,
                comm_id: comm.id(),
                tag,
                arrival,
                payload,
                dup: false,
                delayed,
            },
        );
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer.end("comm", "send", t);
        }
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.sent(dst, comm.id(), tag, t);
        }
    }

    /// Move the next wire envelope into the pending queue, blocking until
    /// one arrives. How "blocking" waits is the engine's business:
    ///
    /// * Thread-per-rank, unchecked: park the OS thread (zero CPU while
    ///   blocked) and rely on [`crate::registry::Registry::poison`]'s
    ///   abort control message to wake it on a peer failure.
    /// * Thread-per-rank, checked: a timed wait so the deadlock probe
    ///   keeps running.
    /// * Event-driven: yield the worker; a post, poison broadcast, or the
    ///   scheduler's quiescence/orphan signal wakes the task. No polling
    ///   in either checked or unchecked runs.
    ///
    /// Only wall-clock behaviour differs — the virtual clocks never see
    /// the difference.
    fn pump_mailbox(&mut self, src: usize, tag: u64) {
        let env = match &self.rx {
            MailboxRx::Thread(rx) => {
                if self.checker.enabled() {
                    match rx.recv_timeout(POLL) {
                        Ok(env) => env,
                        Err(RecvTimeoutError::Timeout) => {
                            if let Some(msg) = self.checker.probe_deadlock() {
                                self.registry.poison();
                                panic!("{msg}");
                            }
                            if self.registry.is_poisoned() {
                                panic!("{}", self.checker.abort_message());
                            }
                            return;
                        }
                        Err(RecvTimeoutError::Disconnected) => panic!(
                            "all peers gone while rank {} waits for ({src}, {tag})",
                            self.rank
                        ),
                    }
                } else {
                    match rx.recv() {
                        Ok(env) => env,
                        Err(_) => panic!(
                            "all peers gone while rank {} waits for ({src}, {tag})",
                            self.rank
                        ),
                    }
                }
            }
            MailboxRx::Event { rank, shared } => loop {
                if let Some(env) = shared.try_pop(*rank) {
                    break env;
                }
                if self.registry.is_poisoned() {
                    panic!("{}", self.checker.abort_message());
                }
                if shared.engine().orphaned() {
                    // Every runnable task finished and nobody can wake
                    // us: the event-engine analogue of the channel
                    // disconnect above — except that with checking on,
                    // the probe can name the wait-for cycle exactly.
                    if self.checker.enabled() {
                        self.registry.report_quiescent_deadlock();
                    }
                    panic!(
                        "all peers gone while rank {} waits for ({src}, {tag})",
                        self.rank
                    );
                }
                match shared.engine().block_current() {
                    WakeReason::Woken => {}
                    WakeReason::Quiescent => self.registry.report_quiescent_deadlock(),
                }
            },
        };
        if env.is_control() {
            panic!("{}", self.checker.abort_message());
        }
        if env.dup {
            // Injected duplicate: discard on sight — it never reaches the
            // pending queue, so matching logic and the checker never see it.
            self.faults.record_dup_discarded();
            let t = self.clock;
            self.tracer.instant("fault:dup_discarded", t);
            return;
        }
        self.pending.push(env);
    }

    pub(crate) fn recv_payload(&mut self, comm: &Comm, src_index: usize, tag: u64) -> Payload {
        let src = comm.global_rank(src_index);
        assert!(src != self.rank, "self-receive on comm {}", comm.id());
        let cid = comm.id();
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer
                .begin_with_args("comm", "recv", t, &[("src", src as f64)]);
        }
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.block_recv(src, cid, tag, t);
        }
        loop {
            if let Some(pos) = self
                .pending
                .iter()
                .position(|e| e.src == src && e.comm_id == cid && e.tag == tag)
            {
                let env = self.pending.remove(pos);
                if env.delayed {
                    self.faults.record_delay_observed();
                }
                let o = self.spec.net.per_message_overhead_s;
                let done = (self.clock + o).max(env.arrival + o);
                self.busy_until(done, ActivityKind::Comm);
                if self.tracer.enabled() {
                    let t = self.clock;
                    self.tracer.end("comm", "recv", t);
                }
                if self.checker.enabled() {
                    let t = self.clock;
                    self.checker.unblock_recv(env.arrival, t);
                }
                return env.payload;
            }
            self.pump_mailbox(src, tag);
        }
    }

    /// Receive one message with `tag` from *every* rank in `srcs`
    /// (communicator indices), in completion order rather than list order.
    /// The caller gets payloads back aligned with `srcs`, but the receive
    /// cost is charged as the messages complete, not in rank order — a
    /// gather root no longer head-of-line blocks on rank 1 while ranks
    /// 2..p sit fully arrived in the queue.
    ///
    /// Determinism: envelopes are first *collected* (wall-clock order,
    /// which may differ run to run) and only then *charged* in sorted
    /// `(arrival, src)` order, so the virtual timeline depends only on the
    /// virtual arrival times, never on OS scheduling.
    pub(crate) fn recv_payload_set(
        &mut self,
        comm: &Comm,
        srcs: &[usize],
        tag: u64,
    ) -> Vec<Payload> {
        let cid = comm.id();
        let srcs_g: Vec<usize> = srcs.iter().map(|&s| comm.global_rank(s)).collect();
        debug_assert!(
            srcs_g.iter().all(|&s| s != self.rank),
            "self-receive in set"
        );
        if srcs_g.is_empty() {
            return Vec::new();
        }
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer
                .begin_with_args("comm", "recv_set", t, &[("count", srcs_g.len() as f64)]);
        }
        if self.checker.enabled() {
            // One wait-for edge toward a representative source keeps the
            // deadlock probe sound: if this rank can never be satisfied,
            // the whole system is still blocked and the probe fires.
            let t = self.clock;
            self.checker.block_recv(srcs_g[0], cid, tag, t);
        }
        let mut got: Vec<Envelope> = Vec::with_capacity(srcs_g.len());
        while got.len() < srcs_g.len() {
            while let Some(pos) = self
                .pending
                .iter()
                .position(|e| e.comm_id == cid && e.tag == tag && srcs_g.contains(&e.src))
            {
                got.push(self.pending.remove(pos));
            }
            if got.len() < srcs_g.len() {
                self.pump_mailbox(srcs_g[0], tag);
            }
        }
        // Charge deterministically: earliest virtual arrival first, ties
        // broken by source rank.
        got.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("finite arrivals")
                .then(a.src.cmp(&b.src))
        });
        let o = self.spec.net.per_message_overhead_s;
        let mut max_arrival: f64 = 0.0;
        for env in &got {
            if env.delayed {
                self.faults.record_delay_observed();
            }
            if self.tracer.enabled() {
                let t = self.clock;
                self.tracer
                    .begin_with_args("comm", "recv", t, &[("src", env.src as f64)]);
            }
            let done = (self.clock + o).max(env.arrival + o);
            self.busy_until(done, ActivityKind::Comm);
            if self.tracer.enabled() {
                let t = self.clock;
                self.tracer.end("comm", "recv", t);
            }
            max_arrival = max_arrival.max(env.arrival);
        }
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.unblock_recv(max_arrival, t);
        }
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer.end("comm", "recv_set", t);
        }
        // Hand payloads back aligned with the caller's source list.
        let mut out: Vec<Option<Payload>> = (0..srcs_g.len()).map(|_| None).collect();
        for env in got {
            let slot = srcs_g
                .iter()
                .position(|&s| s == env.src)
                .expect("envelope matched the set");
            assert!(
                out[slot].is_none(),
                "duplicate message from rank {} (comm {cid}, tag {tag})",
                env.src
            );
            out[slot] = Some(env.payload);
        }
        out.into_iter()
            .map(|p| p.expect("all slots filled"))
            .collect()
    }

    /// Non-blocking probe (`MPI_Iprobe`): has a message from `src` with
    /// `tag` on `comm` *arrived by this rank's current virtual time*?
    /// Drains the wire into the pending queue without blocking. A message
    /// whose arrival timestamp lies in this rank's future is not yet
    /// visible — exactly the semantics a causally-correct simulation needs.
    pub fn iprobe(&mut self, comm: &Comm, src_index: usize, tag: u64) -> bool {
        let src = comm.global_rank(src_index);
        let cid = comm.id();
        while let Some(env) = self.rx.try_recv() {
            if env.is_control() {
                panic!("{}", self.checker.abort_message());
            }
            if env.dup {
                self.faults.record_dup_discarded();
                let t = self.clock;
                self.tracer.instant("fault:dup_discarded", t);
                continue;
            }
            self.pending.push(env);
        }
        self.pending
            .iter()
            .any(|e| e.src == src && e.comm_id == cid && e.tag == tag && e.arrival <= self.clock)
    }

    /// Blocking receive that waits *idle* instead of spinning: the waiting
    /// span is not recorded as busy time (models a process sleeping in an
    /// OS-blocking receive — e.g. a monitoring daemon between events — as
    /// opposed to an MPI busy-poll). The clock still advances to the
    /// message's arrival.
    pub fn recv_f64_idle(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<f64> {
        assert!(tag < COLL_TAG, "user tag too large");
        let src_g = comm.global_rank(src);
        let cid = comm.id();
        if self.tracer.enabled() {
            let t = self.clock;
            self.tracer
                .begin_with_args("comm", "recv_idle", t, &[("src", src_g as f64)]);
        }
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.block_recv(src_g, cid, tag, t);
        }
        loop {
            if let Some(pos) = self
                .pending
                .iter()
                .position(|e| e.src == src_g && e.comm_id == cid && e.tag == tag)
            {
                let env = self.pending.remove(pos);
                if env.delayed {
                    self.faults.record_delay_observed();
                }
                // Advance without recording a busy interval, then charge
                // only the wake-up/copy overhead.
                let o = self.spec.net.per_message_overhead_s;
                if env.arrival > self.clock {
                    self.clock = env.arrival;
                }
                self.busy(o, ActivityKind::Comm, 0);
                if self.tracer.enabled() {
                    let t = self.clock;
                    self.tracer.end("comm", "recv_idle", t);
                }
                if self.checker.enabled() {
                    let t = self.clock;
                    self.checker.unblock_recv(env.arrival, t);
                }
                return env.payload.expect_f64();
            }
            self.pump_mailbox(src_g, tag);
        }
    }

    /// Send a slice of doubles to `dst` (communicator index) with `tag`.
    pub fn send_f64(&mut self, comm: &Comm, dst: usize, tag: u64, data: &[f64]) {
        assert!(tag < COLL_TAG, "user tag too large");
        self.send_payload(comm, dst, tag, Payload::f64(data.to_vec()));
    }

    /// Receive doubles from `src` (communicator index) with `tag`.
    pub fn recv_f64(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<f64> {
        assert!(tag < COLL_TAG, "user tag too large");
        self.recv_payload(comm, src, tag).expect_f64()
    }

    /// Send unsigned 64-bit values.
    pub fn send_u64(&mut self, comm: &Comm, dst: usize, tag: u64, data: &[u64]) {
        assert!(tag < COLL_TAG, "user tag too large");
        self.send_payload(comm, dst, tag, Payload::u64(data.to_vec()));
    }

    /// Receive unsigned 64-bit values.
    pub fn recv_u64(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<u64> {
        assert!(tag < COLL_TAG, "user tag too large");
        self.recv_payload(comm, src, tag).expect_u64()
    }

    // ----- synchronising collectives (registry-based) ----------------------------

    pub(crate) fn next_seq(&mut self, comm_id: u64) -> u64 {
        let seq = self.seqs.entry(comm_id).or_insert(0);
        let out = *seq;
        *seq += 1;
        out
    }

    /// Latency parameter for a collective over this communicator: network
    /// latency if it spans nodes, shared-memory latency otherwise.
    pub(crate) fn coll_alpha(&self, comm: &Comm) -> f64 {
        let first_node = self.placement.node_of(comm.global_rank(0));
        let spans = comm
            .members()
            .iter()
            .any(|&g| self.placement.node_of(g) != first_node);
        if spans {
            self.spec.net.latency_s
        } else {
            self.spec.net.intra_latency_s
        }
    }

    /// `MPI_Barrier`: blocks until every member arrives; all leave at
    /// `max(arrival) + α·⌈log₂ P⌉`.
    /// Record a collective entry with the checker (no-op when checking is
    /// disabled).
    pub(crate) fn check_enter_coll(&mut self, ev: CollEvent, members: &[usize]) {
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.coll_tag_space(ev.seq, 0, t);
            self.checker.enter_coll(ev, members, t);
        }
    }

    pub fn barrier(&mut self, comm: &Comm) {
        self.trace_begin("coll", "barrier");
        let p = comm.size();
        let seq = self.next_seq(comm.id());
        self.check_enter_coll(
            CollEvent {
                comm: comm.id(),
                seq,
                kind: CollKind::Barrier,
                root: None,
                elems: 0,
            },
            comm.members(),
        );
        if p > 1 {
            let cost = self.coll_alpha(comm) * (p as f64).log2().ceil()
                + self.spec.net.per_message_overhead_s;
            let release = self.registry.barrier(comm.id(), seq, p, self.clock, cost);
            self.busy_until(release, ActivityKind::Comm);
        }
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.coll_done(t);
        }
        self.trace_end("coll", "barrier");
    }

    /// `MPI_Comm_split`: partition `comm` by `color`, ordering each new
    /// communicator by `(key, global rank)`.
    pub fn split(&mut self, comm: &Comm, color: u64, key: u64) -> Comm {
        self.trace_begin("coll", "comm_split");
        let p = comm.size();
        let cost = self.coll_alpha(comm) * (p as f64).log2().ceil().max(1.0)
            + self.spec.net.per_message_overhead_s;
        let seq = self.next_seq(comm.id());
        self.check_enter_coll(
            CollEvent {
                comm: comm.id(),
                seq,
                kind: CollKind::Split,
                root: None,
                elems: 0,
            },
            comm.members(),
        );
        let out = self.registry.split(SplitEntry {
            parent_id: comm.id(),
            seq,
            expected: p,
            grank: self.rank,
            color,
            key,
            t: self.clock,
            cost,
        });
        self.busy_until(out.release_t, ActivityKind::Comm);
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.coll_done(t);
        }
        self.trace_end("coll", "comm_split");
        Comm::new(out.comm_id, out.members, out.my_index)
    }

    /// `MPI_Comm_split_type(MPI_COMm_TYPE_SHARED)`: one communicator per
    /// node, members ordered by global rank — so the "highest rank on the
    /// node" designation used by the monitoring framework is well defined.
    pub fn split_shared(&mut self, comm: &Comm) -> Comm {
        self.split(comm, self.core.node as u64, self.rank as u64)
    }

    // ----- correctness checking --------------------------------------------------

    /// Is correctness checking active for this run?
    pub fn check_enabled(&self) -> bool {
        self.checker.enabled()
    }

    /// Tell the checker which communicator is this rank's node
    /// communicator in the Figure-2 monitoring choreography. Called by the
    /// monitoring layer right after `split_shared`.
    pub fn check_monitor_node_comm(&mut self, node_comm: &Comm) {
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.monitor_node_comm(node_comm.id(), t);
        }
    }

    /// Tell the checker `start_monitoring` ran on this rank (MON001: the
    /// designated monitoring rank is the node's highest rank).
    pub fn check_monitor_start(&mut self) {
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.monitor_start(t);
        }
    }

    /// Tell the checker `end_monitoring` ran on this rank
    /// (MON002/MON003/MON004: start before end, node barrier immediately
    /// before, no work straddling the window).
    pub fn check_monitor_end(&mut self) {
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.monitor_end(t);
        }
    }

    /// Mark this rank finished for the wait-for graph (called by the
    /// machine when the rank's closure returns).
    pub(crate) fn check_finished(&mut self) {
        if self.checker.enabled() {
            let t = self.clock;
            self.checker.rank_finished(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::COLL_TAG;

    #[test]
    fn coll_tag_bit_matches_checker_tagspace() {
        // The checker describes tags and audits overflow against its own
        // copy of the bit layout; the two must agree.
        assert_eq!(COLL_TAG, greenla_check::tagspace::COLL_TAG_BIT);
    }
}
