//! Message payloads and in-flight envelopes.

use std::sync::Arc;

/// Global audit of deep payload-buffer copies (see [`Payload`]). The
/// collectives are designed so that fan-out — a binomial tree re-sending
/// one broadcast buffer to several children, the pipelined broadcast
/// streaming a chunk down two subtrees, a ring allgather forwarding a
/// neighbour's chunk, a fault-injected duplicate crossing the wire twice —
/// shares a single allocation. The only place a buffer may be duplicated
/// is [`Payload::expect_f64`]-style unwrapping of a payload that is still
/// shared, and tests pin the hot paths to zero such copies.
pub mod copy_audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    static COPIES: AtomicU64 = AtomicU64::new(0);

    /// Record one deep copy of a payload buffer.
    pub(crate) fn note() {
        COPIES.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset the global copy counter (tests only; the counter is
    /// process-global, so tests asserting exact counts must run in their
    /// own process — see `crates/mpi/tests/zero_copy.rs`).
    pub fn reset() {
        COPIES.store(0, Ordering::Relaxed);
    }

    /// Deep payload copies since the last [`reset`].
    pub fn count() -> u64 {
        COPIES.load(Ordering::Relaxed)
    }
}

/// Typed message payload. The solvers exchange `f64` matrix data and `u64`
/// index/pivot metadata; raw bytes cover everything else.
///
/// Buffers are `Arc`-shared: cloning a payload (tree fan-out, duplicate
/// faults, retries) bumps a reference count instead of copying the data.
/// `Arc<Vec<T>>` rather than `Arc<[T]>` so that a *uniquely held* payload
/// unwraps back into its `Vec` for free (`Arc::try_unwrap`) — the common
/// point-to-point case pays exactly the copies it paid before the sharing
/// existed, and only receivers of a still-shared buffer that need ownership
/// pay a copy-on-unwrap. Read-only consumers use the borrowing accessors
/// ([`Payload::as_f64`] and friends) and never copy at all.
#[derive(Clone, Debug)]
pub enum Payload {
    F64(Arc<Vec<f64>>),
    U64(Arc<Vec<u64>>),
    Bytes(Arc<Vec<u8>>),
}

impl Payload {
    /// Wrap an owned buffer (no copy: the `Vec` moves into the `Arc`).
    pub fn f64(v: Vec<f64>) -> Self {
        Payload::F64(Arc::new(v))
    }

    /// Wrap an owned buffer (no copy).
    pub fn u64(v: Vec<u64>) -> Self {
        Payload::U64(Arc::new(v))
    }

    /// Wrap an owned buffer (no copy).
    pub fn bytes(v: Vec<u8>) -> Self {
        Payload::Bytes(Arc::new(v))
    }

    /// Wrap an already-shared buffer (no copy, shares the allocation).
    pub fn shared_f64(v: Arc<Vec<f64>>) -> Self {
        Payload::F64(v)
    }

    /// Wrap an already-shared buffer (no copy, shares the allocation).
    pub fn shared_u64(v: Arc<Vec<u64>>) -> Self {
        Payload::U64(v)
    }

    /// Payload size in bytes (what the network transfers).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
            Payload::Bytes(v) => v.len() as u64,
        }
    }

    /// Borrow the payload data without copying (read-only consumers).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Borrow the payload data without copying (read-only consumers).
    pub fn as_u64(&self) -> &[u64] {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Take the shared buffer without copying (keeps the allocation
    /// shared with any in-flight clones).
    pub fn into_shared_f64(self) -> Arc<Vec<f64>> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Take the shared buffer without copying.
    pub fn into_shared_u64(self) -> Arc<Vec<u64>> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwrap into an owned `Vec`, copying only if the buffer is still
    /// shared (copy-on-unwrap). Receivers that mutate use this; read-only
    /// receivers should borrow via [`Payload::as_f64`] instead.
    pub fn expect_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => Arc::try_unwrap(v).unwrap_or_else(|shared| {
                copy_audit::note();
                shared.as_ref().clone()
            }),
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwrap into an owned `Vec`, copying only if the buffer is shared.
    pub fn expect_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => Arc::try_unwrap(v).unwrap_or_else(|shared| {
                copy_audit::note();
                shared.as_ref().clone()
            }),
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwrap into an owned `Vec`, copying only if the buffer is shared.
    pub fn expect_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => Arc::try_unwrap(v).unwrap_or_else(|shared| {
                copy_audit::note();
                shared.as_ref().clone()
            }),
            other => panic!("expected Bytes payload, got {other:?}"),
        }
    }
}

/// Communicator id reserved for runtime control messages. Real ids are
/// allocated upward from 0 (the world), so they can never collide with it.
pub const CONTROL_COMM: u64 = u64::MAX;

/// A message travelling between ranks.
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Communicator the message was sent on.
    pub comm_id: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival: f64,
    pub payload: Payload,
    /// Injected-fault marker: this envelope is a spurious duplicate of one
    /// already delivered; the receiver must discard it.
    pub dup: bool,
    /// Injected-fault marker: this envelope's arrival was pushed into the
    /// future by a planned delay (receivers record the observation).
    pub delayed: bool,
}

impl Envelope {
    /// The abort control message the registry posts to every mailbox on
    /// poison, so ranks parked in a blocking receive wake up and fail fast
    /// instead of waiting on a message that will never come.
    pub fn control_abort() -> Self {
        Envelope {
            src: usize::MAX,
            comm_id: CONTROL_COMM,
            tag: 0,
            arrival: f64::INFINITY,
            payload: Payload::bytes(Vec::new()),
            dup: false,
            delayed: false,
        }
    }

    /// Is this a runtime control message (not rank traffic)?
    pub fn is_control(&self) -> bool {
        self.comm_id == CONTROL_COMM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Payload::f64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::u64(vec![0; 2]).size_bytes(), 16);
        assert_eq!(Payload::bytes(vec![0; 5]).size_bytes(), 5);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn type_confusion_panics() {
        Payload::bytes(vec![]).expect_f64();
    }

    #[test]
    fn unique_payload_unwraps_without_copy() {
        // A fresh payload round-trips its Vec through the Arc untouched.
        let p = Payload::f64(vec![1.0, 2.0]);
        assert_eq!(p.expect_f64(), vec![1.0, 2.0]);
    }

    #[test]
    fn clone_shares_the_allocation() {
        let p = Payload::f64(vec![7.0; 64]);
        let q = p.clone();
        let (a, b) = match (&p, &q) {
            (Payload::F64(a), Payload::F64(b)) => (Arc::as_ptr(a), Arc::as_ptr(b)),
            _ => unreachable!(),
        };
        assert_eq!(a, b, "clone must share, not copy");
        // Unwrapping the shared handle copies; the original stays intact.
        assert_eq!(q.expect_f64(), vec![7.0; 64]);
        assert_eq!(p.as_f64(), &[7.0; 64][..]);
    }
}
