//! Message payloads and in-flight envelopes.

/// Typed message payload. The solvers exchange `f64` matrix data and `u64`
/// index/pivot metadata; raw bytes cover everything else.
#[derive(Clone, Debug)]
pub enum Payload {
    F64(Vec<f64>),
    U64(Vec<u64>),
    Bytes(Vec<u8>),
}

impl Payload {
    /// Payload size in bytes (what the network transfers).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
            Payload::Bytes(v) => v.len() as u64,
        }
    }

    pub fn expect_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    pub fn expect_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    pub fn expect_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {other:?}"),
        }
    }
}

/// Communicator id reserved for runtime control messages. Real ids are
/// allocated upward from 0 (the world), so they can never collide with it.
pub const CONTROL_COMM: u64 = u64::MAX;

/// A message travelling between ranks.
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Communicator the message was sent on.
    pub comm_id: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival: f64,
    pub payload: Payload,
    /// Injected-fault marker: this envelope is a spurious duplicate of one
    /// already delivered; the receiver must discard it.
    pub dup: bool,
    /// Injected-fault marker: this envelope's arrival was pushed into the
    /// future by a planned delay (receivers record the observation).
    pub delayed: bool,
}

impl Envelope {
    /// The abort control message the registry posts to every mailbox on
    /// poison, so ranks parked in a blocking receive wake up and fail fast
    /// instead of waiting on a message that will never come.
    pub fn control_abort() -> Self {
        Envelope {
            src: usize::MAX,
            comm_id: CONTROL_COMM,
            tag: 0,
            arrival: f64::INFINITY,
            payload: Payload::Bytes(Vec::new()),
            dup: false,
            delayed: false,
        }
    }

    /// Is this a runtime control message (not rank traffic)?
    pub fn is_control(&self) -> bool {
        self.comm_id == CONTROL_COMM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Payload::F64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::U64(vec![0; 2]).size_bytes(), 16);
        assert_eq!(Payload::Bytes(vec![0; 5]).size_bytes(), 5);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn type_confusion_panics() {
        Payload::Bytes(vec![]).expect_f64();
    }
}
