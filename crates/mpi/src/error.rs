//! Machine construction and run-time errors.

use std::fmt;

/// Why a [`crate::Machine`] could not be constructed or run.
#[derive(Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The placement uses more nodes than the cluster provides.
    PlacementTooLarge { needed: usize, available: usize },
    /// The placement was built for a different node shape than the cluster.
    NodeShapeMismatch,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::PlacementTooLarge { needed, available } => {
                write!(f, "placement needs {needed} nodes, cluster has {available}")
            }
            MachineError::NodeShapeMismatch => {
                write!(f, "placement node shape differs from cluster node shape")
            }
        }
    }
}

impl std::error::Error for MachineError {}
