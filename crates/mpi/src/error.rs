//! Machine construction and run-time errors.

use std::fmt;

/// Why a [`crate::Machine`] could not be constructed or run.
#[derive(Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The placement uses more nodes than the cluster provides.
    PlacementTooLarge { needed: usize, available: usize },
    /// The placement was built for a different node shape than the cluster.
    NodeShapeMismatch,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::PlacementTooLarge { needed, available } => {
                write!(f, "placement needs {needed} nodes, cluster has {available}")
            }
            MachineError::NodeShapeMismatch => {
                write!(f, "placement node shape differs from cluster node shape")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A rank broke a collective's calling contract (e.g. contributed a
/// reduce buffer of the wrong length). The runtime aborts the run with
/// this diagnostic instead of a bare assert, so the chaos battery's
/// stable abort-set contract covers malformed collectives: every panic
/// message rendered from this type starts with
/// `"collective contract violated"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollContractError {
    /// Two ranks contributed different element counts to one reduction.
    ReduceLengthMismatch {
        comm: u64,
        rank: usize,
        got: usize,
        expected: usize,
    },
}

impl fmt::Display for CollContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollContractError::ReduceLengthMismatch {
                comm,
                rank,
                got,
                expected,
            } => write!(
                f,
                "collective contract violated: reduce length mismatch on comm {comm} \
                 (rank {rank} combined {got} elems into a {expected}-elem accumulator)"
            ),
        }
    }
}

impl std::error::Error for CollContractError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_errors_render_the_stable_prefix() {
        // The chaos battery matches abort messages against a fixed set of
        // prefixes; this one must never drift.
        let e = CollContractError::ReduceLengthMismatch {
            comm: 0,
            rank: 3,
            got: 7,
            expected: 8,
        };
        assert!(e.to_string().starts_with("collective contract violated"));
    }
}
