//! Communicator handles.

use std::sync::Arc;

/// The world communicator's id.
pub const WORLD_ID: u64 = 0;

/// A communicator: an ordered group of global ranks plus this rank's index
/// within it. Cheap to clone (the member list is shared).
#[derive(Clone, Debug)]
pub struct Comm {
    id: u64,
    members: Arc<Vec<usize>>,
    my_index: usize,
}

impl Comm {
    pub(crate) fn new(id: u64, members: Arc<Vec<usize>>, my_index: usize) -> Self {
        debug_assert!(my_index < members.len());
        Self {
            id,
            members,
            my_index,
        }
    }

    /// Unique communicator id (0 = world).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This rank's index within the communicator (its "rank" in MPI terms).
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Translate a communicator index to a global (world) rank.
    pub fn global_rank(&self, index: usize) -> usize {
        self.members[index]
    }

    /// All members as global ranks, in communicator order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Does this rank hold the highest index in the communicator? (The
    /// paper designates the highest rank of each node communicator as the
    /// monitoring rank.)
    pub fn is_highest(&self) -> bool {
        self.my_index + 1 == self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation() {
        let c = Comm::new(3, Arc::new(vec![4, 7, 9]), 1);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.global_rank(2), 9);
        assert!(!c.is_highest());
        let top = Comm::new(3, Arc::new(vec![4, 7, 9]), 2);
        assert!(top.is_highest());
    }
}
