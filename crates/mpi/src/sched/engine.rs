//! The M:N engine: rank fibers multiplexed over a fixed worker pool.
//!
//! Shape (after the dytor runtime): every task has a *home worker*; wakes
//! push the task onto its home worker's run queue and only that worker
//! ever resumes it. Task state lives in a slab indexed by task id (== the
//! MPI rank), stacks come from one pooled allocation, and workers are
//! `thread::scope` threads that park on a condvar when their queue drains.
//!
//! Home pinning is the memory-safety linchpin: a task mid-way through
//! switching *out* (state already `Ready` again after a racing wake, but
//! registers not yet parked) can only be resumed by the worker it is
//! switching out *on*, which by construction pops the queue only after
//! the switch completes. It also keeps worker-thread-locals (the linalg
//! pack scratch) coherent for any given rank.
//!
//! ## Quiescence is exact
//!
//! `active` counts tasks that are runnable (`Ready`/`Running`/
//! `Notified`). Every wake originates from a running task — senders,
//! registry completions, and poison broadcasts all execute on some rank's
//! fiber — so when a blocking task decrements `active` to zero there is
//! provably no wake in flight: the whole machine is deadlocked *now*.
//! [`Engine::block_current`] reports that as [`WakeReason::Quiescent`]
//! instead of parking forever, which is what lets checked runs probe the
//! wait-for graph with no grace timer and unchecked runs abort instead of
//! hanging. The dual case — the last runnable task *finishing* while
//! blocked peers remain — sets the orphan flag and wakes everyone so
//! receivers can fail fast with the peers-gone diagnostic.

use super::fiber::{self, Context};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why `Engine::block_current` (the crate-internal yield point every
/// blocking wait funnels through) returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeReason {
    /// A peer woke this task (message posted, collective completed,
    /// poison broadcast). Re-check the condition and block again if it
    /// still does not hold.
    Woken,
    /// No other task is runnable and none can become runnable: the task
    /// did *not* yield, and the caller owns reporting the deadlock.
    Quiescent,
}

/// Value written at the low end of every fiber stack; checked on each
/// block and at completion as a (best-effort) overflow tripwire — fiber
/// stacks have no OS guard page.
const CANARY: u64 = 0x6e65_6572_6c61_6721; // "greenla!" minus a vowel

enum TaskState {
    /// Queued (or about to be queued) on the home worker.
    Ready,
    /// Executing on its home worker.
    Running,
    /// Running, and a wake arrived meanwhile; the next block consumes the
    /// notification instead of yielding (no lost wakeups).
    Notified,
    /// Parked; registers live in `ctx`, waiting for a wake.
    Blocked,
    /// Finished; never scheduled again.
    Done,
}

/// One task's slab entry: scheduling state plus the two execution
/// contexts (its own, and the home worker's while the task runs).
struct TaskSlot {
    id: usize,
    home: usize,
    state: Mutex<TaskState>,
    /// The task's parked context (valid while `Ready`/`Blocked`).
    ctx: UnsafeCell<Context>,
    /// The home worker's context while the task runs (valid while
    /// `Running`/`Notified`).
    ret: UnsafeCell<Context>,
    body: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    engine: Cell<*const Engine>,
    canary: Cell<*mut u64>,
}

// SAFETY: `ctx`/`ret` are only touched by the home worker (resume/yield
// are strictly alternating on one thread thanks to home pinning); `body`
// and `state` are mutex-guarded; `engine`/`canary` are written once
// before workers start.
unsafe impl Send for TaskSlot {}
// SAFETY: shared access is sound for the same reasons as `Send` above —
// home pinning serialises the unsynchronised cells, mutexes guard the
// rest.
unsafe impl Sync for TaskSlot {}

/// All fiber stacks in one allocation: 10k ranks × 512 KiB is ~5 GiB of
/// *virtual* address space in a single mapping (the untouched pages cost
/// nothing resident, and one mapping sidesteps `vm.max_map_count`).
struct StackPool {
    /// Owns the allocation; only ever read through `base`-derived raw
    /// pointers.
    _mem: Vec<u8>,
    base: usize,
    stack_bytes: usize,
}

impl StackPool {
    fn new(ntasks: usize, stack_bytes: usize) -> Self {
        let stack_bytes = (stack_bytes + 15) & !15;
        let mut mem = Vec::with_capacity(ntasks * stack_bytes + 16);
        let base = ((mem.as_mut_ptr() as usize) + 15) & !15;
        StackPool {
            _mem: mem,
            base,
            stack_bytes,
        }
    }

    fn top(&self, i: usize) -> *mut u8 {
        (self.base + (i + 1) * self.stack_bytes) as *mut u8
    }

    fn bottom(&self, i: usize) -> *mut u64 {
        (self.base + i * self.stack_bytes) as *mut u64
    }
}

struct WorkerQueue {
    q: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

/// The event-driven scheduler for one machine run. Public so runtime
/// internals (mailboxes, the registry) can wake tasks; rank code never
/// touches it directly.
pub struct Engine {
    tasks: Vec<TaskSlot>,
    workers: Vec<WorkerQueue>,
    /// Tasks in `Ready`/`Running`/`Notified` (see module docs).
    active: AtomicUsize,
    done: AtomicUsize,
    orphaned: AtomicBool,
    pool: StackPool,
}

// SAFETY: raw pointers inside are derived from owned, pinned-by-Arc
// storage; all cross-thread access is synchronised as described on
// `TaskSlot`.
unsafe impl Send for Engine {}
// SAFETY: as for `Send` — the stack pool is only carved into disjoint
// per-task regions, and every `TaskSlot` synchronises its own state.
unsafe impl Sync for Engine {}

thread_local! {
    /// (engine, task id) of the fiber executing on this worker thread.
    static CURRENT: Cell<Option<(*const Engine, usize)>> = const { Cell::new(None) };
}

/// Task id of the fiber running on the current thread, if any. `None`
/// when called from an ordinary thread (e.g. under the thread-per-rank
/// engine) — callers use this to pick a blocking strategy.
pub(crate) fn current_task() -> Option<usize> {
    CURRENT.with(|c| c.get().map(|(_, t)| t))
}

impl Engine {
    /// Build an engine for `ntasks` tasks on `workers` worker threads
    /// with `stack_bytes` of stack per task.
    pub(crate) fn new(ntasks: usize, workers: usize, stack_bytes: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            fiber::supported(),
            "the event-driven scheduler requires x86_64; use SchedulerKind::ThreadPerRank"
        );
        let workers = workers.min(ntasks.max(1));
        let tasks = (0..ntasks)
            .map(|id| TaskSlot {
                id,
                home: id % workers,
                state: Mutex::new(TaskState::Ready),
                ctx: UnsafeCell::new(Context::empty()),
                ret: UnsafeCell::new(Context::empty()),
                body: Mutex::new(None),
                engine: Cell::new(std::ptr::null()),
                canary: Cell::new(std::ptr::null_mut()),
            })
            .collect();
        Engine {
            tasks,
            workers: (0..workers)
                .map(|_| WorkerQueue {
                    q: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            active: AtomicUsize::new(ntasks),
            done: AtomicUsize::new(0),
            orphaned: AtomicBool::new(false),
            pool: StackPool::new(ntasks, stack_bytes),
        }
    }

    pub(crate) fn ntasks(&self) -> usize {
        self.tasks.len()
    }

    /// Did the last runnable task finish while blocked peers remained?
    /// Woken receivers consult this to die with the peers-gone diagnostic
    /// instead of re-blocking.
    pub(crate) fn orphaned(&self) -> bool {
        self.orphaned.load(Ordering::SeqCst)
    }

    /// Run every task to completion on the worker pool. Blocks the
    /// calling thread until all tasks are `Done`.
    pub(crate) fn run<'scope>(self: &Arc<Self>, bodies: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        assert_eq!(bodies.len(), self.tasks.len(), "one body per task");
        if self.tasks.is_empty() {
            return;
        }
        for (i, body) in bodies.into_iter().enumerate() {
            // SAFETY: lifetime erasure to 'static, sound for the same
            // reason scoped threads are: `run` does not return until every
            // task is `Done`, so no body (or anything it borrows) outlives
            // this call.
            let body: Box<dyn FnOnce() + Send> = unsafe { std::mem::transmute(body) };
            let slot = &self.tasks[i];
            *slot.body.lock() = Some(body);
            slot.engine.set(Arc::as_ptr(self));
            let canary = self.pool.bottom(i);
            // SAFETY: slot `i` of the pool is exclusively this task's.
            unsafe {
                canary.write(CANARY);
                *slot.ctx.get() = fiber::prepare(
                    self.pool.top(i),
                    fiber_entry,
                    slot as *const TaskSlot as *mut u8,
                );
            }
            slot.canary.set(canary);
        }
        // Seed each task on its home worker in ascending id order.
        for slot in &self.tasks {
            self.workers[slot.home].q.lock().push_back(slot.id);
        }
        std::thread::scope(|scope| {
            for w in 0..self.workers.len() {
                let engine = Arc::clone(self);
                scope.spawn(move || engine.worker_loop(w));
            }
        });
        assert_eq!(
            self.done.load(Ordering::SeqCst),
            self.tasks.len(),
            "workers exited with unfinished tasks"
        );
    }

    fn worker_loop(self: Arc<Self>, me: usize) {
        let n = self.tasks.len();
        loop {
            let tid = {
                let w = &self.workers[me];
                let mut q = w.q.lock();
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if self.done.load(Ordering::SeqCst) == n {
                        break None;
                    }
                    w.cv.wait(&mut q);
                }
            };
            match tid {
                Some(t) => self.resume(t),
                None => return,
            }
        }
    }

    /// Switch the home worker into task `tid` until it yields or
    /// finishes.
    fn resume(self: &Arc<Self>, tid: usize) {
        let slot = &self.tasks[tid];
        {
            let mut s = slot.state.lock();
            match *s {
                TaskState::Ready => *s = TaskState::Running,
                // Stale queue entry (task already resumed and progressed);
                // skip.
                _ => return,
            }
        }
        CURRENT.with(|c| c.set(Some((Arc::as_ptr(self), tid))));
        // SAFETY: `ctx` holds a prepared or parked context; home pinning
        // guarantees no other worker touches this slot concurrently.
        unsafe { fiber::switch(slot.ret.get(), slot.ctx.get()) };
        CURRENT.with(|c| c.set(None));
    }

    /// Park the calling task until a wake arrives. Must be called from a
    /// fiber of this engine. Returns [`WakeReason::Quiescent`] — *without*
    /// yielding — when no wake can ever arrive; the caller then owns
    /// diagnosing and aborting the run.
    pub(crate) fn block_current(&self) -> WakeReason {
        let (eng, tid) = CURRENT
            .with(|c| c.get())
            .expect("block_current called outside an event-driven task");
        debug_assert!(std::ptr::eq(eng, self), "task blocked on a foreign engine");
        let slot = &self.tasks[tid];
        self.check_canary(slot);
        {
            let mut s = slot.state.lock();
            match *s {
                // A wake raced in while we were running: consume it
                // instead of yielding.
                TaskState::Notified => {
                    *s = TaskState::Running;
                    return WakeReason::Woken;
                }
                TaskState::Running => *s = TaskState::Blocked,
                _ => unreachable!("blocking task not in Running state"),
            }
        }
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1
            && self.done.load(Ordering::SeqCst) < self.tasks.len()
        {
            // We were the only runnable task, so no wake targeting us can
            // be in flight (wakes originate from runnable tasks) and none
            // ever will: true quiescence. Un-block and report instead of
            // parking forever.
            self.active.fetch_add(1, Ordering::SeqCst);
            *slot.state.lock() = TaskState::Running;
            return WakeReason::Quiescent;
        }
        // SAFETY: home pinning — the worker under us is the only thread
        // that can resume this slot, and it only pops its queue after this
        // switch lands back in `worker_loop`.
        unsafe { fiber::switch(slot.ctx.get(), slot.ret.get()) };
        WakeReason::Woken
    }

    /// Make task `tid` runnable if it is blocked. Running tasks are
    /// flagged `Notified` so the wake cannot be lost; `Ready`/`Done`
    /// tasks are left alone.
    pub fn wake(&self, tid: usize) {
        let slot = &self.tasks[tid];
        let mut s = slot.state.lock();
        match *s {
            TaskState::Blocked => {
                *s = TaskState::Ready;
                drop(s);
                // Count the task runnable *before* it becomes poppable so
                // a racing blocker can never observe a spurious zero.
                self.active.fetch_add(1, Ordering::SeqCst);
                let w = &self.workers[slot.home];
                w.q.lock().push_back(tid);
                w.cv.notify_one();
            }
            TaskState::Running => *s = TaskState::Notified,
            TaskState::Ready | TaskState::Notified | TaskState::Done => {}
        }
    }

    /// Wake every blocked task (poison/orphan broadcast).
    pub fn wake_all(&self) {
        for tid in 0..self.tasks.len() {
            self.wake(tid);
        }
    }

    fn check_canary(&self, slot: &TaskSlot) {
        let canary = slot.canary.get();
        if !canary.is_null() {
            // SAFETY: points at the low word of this task's pool slot.
            let v = unsafe { canary.read() };
            assert!(
                v == CANARY,
                "fiber stack overflow on task {} (canary clobbered); raise \
                 GREENLA_STACK_KB or use SchedulerKind::ThreadPerRank",
                slot.id
            );
        }
    }

    /// Completion path, running on the finished task's fiber. Never
    /// returns: switches back to the home worker for good.
    fn finish(&self, slot: &TaskSlot) -> ! {
        self.check_canary(slot);
        *slot.state.lock() = TaskState::Done;
        let n = self.tasks.len();
        let all_done = self.done.fetch_add(1, Ordering::SeqCst) + 1 == n;
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 && self.done.load(Ordering::SeqCst) < n {
            // Last runnable task gone while blocked peers remain: they
            // wait for messages nobody will send. Wake them all so they
            // abort with the peers-gone diagnostic instead of hanging.
            self.orphaned.store(true, Ordering::SeqCst);
            self.wake_all();
        }
        if all_done {
            for w in &self.workers {
                let _q = w.q.lock();
                w.cv.notify_all();
            }
        }
        // SAFETY: final switch out; the slot is `Done` and never resumed.
        unsafe { fiber::switch(slot.ctx.get(), slot.ret.get()) };
        unreachable!("finished fiber was resumed");
    }
}

/// First (and only) frame of every task fiber.
extern "C" fn fiber_entry(arg: *mut u8) -> ! {
    // SAFETY: `arg` is the `TaskSlot` this fiber was prepared with; the
    // engine outlives all fibers (workers join before `run` returns).
    let slot = unsafe { &*(arg as *const TaskSlot) };
    // SAFETY: `engine` was set to the owning `Arc`'s pointer in `run`
    // before any fiber started, and `run` keeps that Arc alive until
    // every task is Done.
    let engine = unsafe { &*slot.engine.get() };
    let body = slot
        .body
        .lock()
        .take()
        .expect("fiber entered without a body");
    // Backstop only: rank bodies wrap user code in their own
    // catch_unwind and record the panic with the machine. Letting a panic
    // cross the fiber boot frame (which has no unwind info) would abort
    // the process.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    engine.finish(slot);
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    fn run_engine(n: usize, workers: usize, f: impl Fn(usize, &Arc<Engine>) + Sync) {
        let engine = Arc::new(Engine::new(n, workers, 64 * 1024));
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let f = &f;
                Box::new(move || f(i, &engine)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        engine.run(bodies);
    }

    #[test]
    fn all_tasks_run_to_completion() {
        let hits = (0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        run_engine(100, 3, |i, _| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn block_and_wake_ping_pong() {
        // Task 0 blocks until task 1 wakes it; flag proves ordering.
        let flag = AtomicBool::new(false);
        run_engine(2, 2, |i, engine| {
            if i == 0 {
                while !flag.load(Ordering::SeqCst) {
                    assert_eq!(engine.block_current(), WakeReason::Woken);
                }
            } else {
                flag.store(true, Ordering::SeqCst);
                engine.wake(0);
            }
        });
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn notified_state_absorbs_racing_wakes() {
        // A wake delivered while the target runs must be consumed by the
        // target's *next* block, not lost. Task 0 is provably Running
        // when the wake lands (it signals `started` and spins), so the
        // wake takes the Notified path; were the notification lost, task
        // 0 would park with nobody left to wake it and see Quiescent.
        let started = AtomicBool::new(false);
        let flag = AtomicBool::new(false);
        run_engine(2, 2, |i, engine| {
            if i == 0 {
                started.store(true, Ordering::SeqCst);
                while !flag.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                assert_eq!(engine.block_current(), WakeReason::Woken);
            } else {
                while !started.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                engine.wake(0);
                flag.store(true, Ordering::SeqCst);
            }
        });
    }

    #[test]
    fn sole_blocker_observes_quiescence() {
        // 4 tasks all block with nobody left to wake them; exactly the
        // last one to park must see Quiescent, and its wake_all releases
        // the rest.
        let quiescent = AtomicUsize::new(0);
        run_engine(4, 2, |_, engine| match engine.block_current() {
            WakeReason::Quiescent => {
                quiescent.fetch_add(1, Ordering::SeqCst);
                engine.wake_all();
            }
            WakeReason::Woken => {}
        });
        assert_eq!(quiescent.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn orphan_flag_raised_when_last_runnable_finishes() {
        // One worker serialises the interleaving: task 0 parks, task 1
        // wakes it and parks forever, task 0 finishes — the last runnable
        // task is gone while task 1 is still blocked, so the engine must
        // raise the orphan flag and wake task 1 to terminate the run.
        let saw_orphan = AtomicBool::new(false);
        run_engine(2, 1, |i, engine| {
            if i == 0 {
                assert_eq!(engine.block_current(), WakeReason::Woken);
            } else {
                engine.wake(0);
                assert_eq!(engine.block_current(), WakeReason::Woken);
                assert!(engine.orphaned(), "woken without a wake source");
                saw_orphan.store(true, Ordering::SeqCst);
            }
        });
        assert!(saw_orphan.load(Ordering::SeqCst));
    }

    #[test]
    fn ten_thousand_tasks_spin_up_and_finish() {
        let count = AtomicUsize::new(0);
        run_engine(10_000, 4, |_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10_000);
    }
}
