//! Rank scheduling engines.
//!
//! The machine can execute a simulated MPI program under two engines that
//! are — by contract — indistinguishable in virtual time:
//!
//! * **Thread-per-rank** ([`SchedulerKind::ThreadPerRank`], the default):
//!   every rank is an OS thread. Simple, debuggable with ordinary tools,
//!   and each rank gets a full 8 MiB kernel-managed stack — but the OS
//!   caps practical world sizes at a few thousand ranks.
//! * **Event-driven M:N** ([`SchedulerKind::EventDriven`]): every rank is
//!   a stackful fiber multiplexed onto a fixed worker pool. A rank
//!   blocking in `recv`/`barrier`/a collective yields its worker instead
//!   of parking a thread, and the paths that used to notify threads
//!   (registry completions, poison/abort control envelopes,
//!   fault-injected wakeups) become task wakes. This is what makes
//!   10k–100k-rank simulations tractable — and it makes deadlock
//!   detection *exact*: the engine knows the precise moment every task is
//!   blocked (see [`engine::WakeReason::Quiescent`]), so checked runs
//!   need no grace timer and unchecked runs abort instead of hanging.
//!
//! # The scheduler-invariance contract
//!
//! Virtual-time outcomes must be **bit-identical** across engines: traces,
//! per-rank final clocks, violations, and fault reports. This holds by
//! construction because every timing decision is a function of virtual
//! clocks carried in envelopes and registry cells, never of wall-clock
//! scheduling — e.g. multi-source receives charge in sorted
//! `(arrival, src)` order regardless of delivery order, and fault delays
//! shift virtual arrival times rather than sleeping. The
//! `scheduler_invariance` harness test suite enforces the contract,
//! including under active fault plans and checked runs.

pub(crate) mod engine;
pub(crate) mod fiber;

pub(crate) use engine::current_task;
pub use engine::{Engine, WakeReason};

/// Which engine [`crate::Machine::run`] uses to execute ranks.
///
/// Selecting an engine changes *only* wall-clock execution: how many OS
/// threads exist and how blocked ranks wait. Everything observable in
/// virtual time is identical (see the module docs for the contract).
///
/// ```
/// use greenla_cluster::placement::{LoadLayout, Placement};
/// use greenla_cluster::spec::ClusterSpec;
/// use greenla_cluster::PowerModel;
/// use greenla_mpi::{Machine, SchedulerKind};
///
/// let spec = ClusterSpec::test_cluster(1, 4);
/// let placement = Placement::layout(&spec.node, 8, LoadLayout::FullLoad).unwrap();
/// let machine = Machine::new(spec, placement, PowerModel::deterministic(), 1)
///     .unwrap()
///     .with_scheduler(SchedulerKind::EventDriven);
///
/// let out = machine.run(|ctx| {
///     let world = ctx.world();
///     ctx.barrier(&world);
///     ctx.allreduce_sum_f64(&world, &[1.0])[0]
/// });
/// assert!(out.results.iter().all(|&r| r == 8.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// One OS thread per rank (the default). Checked runs poll the
    /// deadlock probe on a 25 ms timer while blocked.
    #[default]
    ThreadPerRank,
    /// Green-task M:N engine: fibers over a small worker pool, exact
    /// event-driven deadlock detection, world sizes of 10k+ ranks.
    /// Requires x86_64 (the fiber switch is hand-written assembly).
    EventDriven,
}

impl SchedulerKind {
    /// Parse a CLI-style name: `thread` | `event`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "thread" | "thread-per-rank" => Some(SchedulerKind::ThreadPerRank),
            "event" | "event-driven" => Some(SchedulerKind::EventDriven),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedulerKind::ThreadPerRank => "thread",
            SchedulerKind::EventDriven => "event",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        for kind in [SchedulerKind::ThreadPerRank, SchedulerKind::EventDriven] {
            assert_eq!(SchedulerKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("fifo"), None);
    }

    #[test]
    fn serde_names_are_stable() {
        // RunConfig serialises the scheduler; renaming variants would
        // silently invalidate saved campaign configs.
        let j = serde_json::to_string(&SchedulerKind::EventDriven).unwrap();
        assert_eq!(j, "\"EventDriven\"");
        let k: SchedulerKind = serde_json::from_str("\"ThreadPerRank\"").unwrap();
        assert_eq!(k, SchedulerKind::ThreadPerRank);
    }
}
