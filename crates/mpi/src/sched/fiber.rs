//! Stackful-fiber context switching: the primitive under the event-driven
//! engine.
//!
//! A fiber is an execution context — a stack plus the callee-saved register
//! state the System V ABI requires a function call to preserve. Switching
//! fibers is a plain function call from the compiler's point of view, so
//! only `rsp` and the six callee-saved registers need to move; everything
//! else is dead across a call boundary. The switch itself is ~12
//! instructions and touches one cache line of saved state, which is what
//! makes parking a *rank* (a fiber) cheap enough to do tens of thousands
//! of times where parking a *thread* would involve the kernel.
//!
//! Only `x86_64` is implemented; [`supported`] reports availability so
//! callers can fall back to the thread-per-rank engine elsewhere.

/// Is the fiber switch implemented for the current target architecture?
pub fn supported() -> bool {
    cfg!(target_arch = "x86_64")
}

/// A fiber's saved execution context. Everything except the stack pointer
/// lives *on* the fiber's stack (the switch pushes the callee-saved
/// registers before saving `rsp`), so the context itself is one word.
#[repr(C)]
pub(crate) struct Context {
    sp: *mut u8,
}

impl Context {
    /// A placeholder context; overwritten by the first switch that saves
    /// into it.
    pub(crate) fn empty() -> Self {
        Context {
            sp: std::ptr::null_mut(),
        }
    }
}

/// Entry signature for a new fiber. Must never return (returning would
/// fall off the hand-built initial frame); finished fibers switch back to
/// the context that resumed them instead.
pub(crate) type Entry = extern "C" fn(*mut u8) -> !;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::{Context, Entry};

    // The switch saves the System V callee-saved registers on the current
    // stack, parks `rsp` in `*save`, and resumes from `*load` by popping
    // the same frame in reverse. `ret` then continues wherever the loaded
    // context last called `greenla_fiber_switch` — or, for a fresh fiber,
    // jumps to `greenla_fiber_boot` via the hand-built frame from
    // `prepare`.
    //
    // `greenla_fiber_boot` receives a fresh fiber's entry point in `r14`
    // and its argument in `r15` (planted by `prepare`), realigns the
    // stack, and makes an ordinary ABI-conformant call. The entry function
    // never returns; `ud2` traps if it somehow does.
    std::arch::global_asm!(
        r#"
        .p2align 4
        .globl greenla_fiber_switch
greenla_fiber_switch:
        push rbp
        push rbx
        push r12
        push r13
        push r14
        push r15
        mov [rdi], rsp
        mov rsp, [rsi]
        pop r15
        pop r14
        pop r13
        pop r12
        pop rbx
        pop rbp
        ret

        .p2align 4
        .globl greenla_fiber_boot
greenla_fiber_boot:
        mov rdi, r15
        and rsp, -16
        call r14
        ud2
"#
    );

    extern "C" {
        fn greenla_fiber_switch(save: *mut Context, load: *mut Context);
        // Never called from Rust; only its address is planted in fresh
        // fibers' initial frames.
        fn greenla_fiber_boot();
    }

    /// Save the current context into `*save` and resume `*load`.
    ///
    /// # Safety
    /// `load` must hold a context built by [`prepare`] or saved by a
    /// previous `switch`, whose stack is live and not currently executing
    /// on any thread. `save` must stay valid until something switches back
    /// into it.
    pub(crate) unsafe fn switch(save: *mut Context, load: *mut Context) {
        // SAFETY: the caller upholds the contract above; the asm routine
        // only reads `*load`, writes `*save`, and swaps stacks.
        unsafe { greenla_fiber_switch(save, load) };
    }

    /// Build the initial context for a fresh fiber on the stack ending
    /// (exclusively) at `stack_top`, so that the first switch into it
    /// calls `entry(arg)`.
    ///
    /// # Safety
    /// `stack_top` must point one-past-the-end of a writable stack region
    /// large enough for the fiber's execution.
    pub(crate) unsafe fn prepare(stack_top: *mut u8, entry: Entry, arg: *mut u8) -> Context {
        let top = (stack_top as usize) & !0xF;
        // Frame popped by the first switch in, ascending from `sp`:
        // r15 (arg), r14 (entry), r13, r12, rbx, rbp, return address
        // (greenla_fiber_boot), padding keeping `top` the logical base.
        let frame = (top - 8 * 8) as *mut u64;
        // SAFETY: the caller guarantees a writable stack ending at
        // `stack_top`; all eight slots lie strictly below the (aligned)
        // top, inside that region.
        unsafe {
            frame.add(0).write(arg as u64); // → r15
            frame.add(1).write(entry as usize as u64); // → r14
            for i in 2..6 {
                frame.add(i).write(0); // r13, r12, rbx, rbp
            }
            frame
                .add(6)
                .write(greenla_fiber_boot as *const () as usize as u64);
            frame.add(7).write(0);
        }
        Context {
            sp: frame as *mut u8,
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use super::{Context, Entry};

    /// # Safety
    /// Never dereferences its arguments: this stub exists only so the
    /// crate still compiles on non-x86_64 targets, and it diverges before
    /// touching anything. The signature stays `unsafe` to mirror the real
    /// implementation.
    pub(crate) unsafe fn switch(_save: *mut Context, _load: *mut Context) {
        unreachable!("fiber switching is only implemented on x86_64");
    }

    /// # Safety
    /// Never dereferences its arguments; diverges immediately (see
    /// [`switch`]). `unsafe` only to mirror the x86_64 signature.
    pub(crate) unsafe fn prepare(_stack_top: *mut u8, _entry: Entry, _arg: *mut u8) -> Context {
        panic!(
            "the event-driven scheduler requires x86_64 (no fiber switch for this \
             architecture); use SchedulerKind::ThreadPerRank"
        );
    }
}

pub(crate) use imp::{prepare, switch};

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    /// Shared cell a test fiber and its resumer ping-pong through.
    struct PingPong {
        host: Context,
        fiber: Context,
        log: Vec<u32>,
    }

    extern "C" fn pingpong_entry(arg: *mut u8) -> ! {
        // SAFETY: `arg` is the Boxed `PingPong` the test prepared; the
        // host keeps it alive for the whole ping-pong.
        let pp = unsafe { &mut *(arg as *mut PingPong) };
        pp.log.push(1);
        // SAFETY: both contexts were built by `prepare`/saved by `switch`
        // and only one side executes at a time.
        unsafe { switch(&mut pp.fiber, &mut pp.host) };
        // SAFETY: re-borrow after the host ran; same Box, still alive.
        let pp = unsafe { &mut *(arg as *mut PingPong) };
        pp.log.push(3);
        // SAFETY: as above — final yield back to the host.
        unsafe { switch(&mut pp.fiber, &mut pp.host) };
        unreachable!("fiber resumed after its final yield");
    }

    #[test]
    fn switch_round_trips_preserve_control_flow() {
        let mut stack = vec![0u8; 64 * 1024];
        // SAFETY: one-past-the-end of the live Vec allocation.
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut pp = Box::new(PingPong {
            host: Context::empty(),
            fiber: Context::empty(),
            log: Vec::new(),
        });
        let arg = &mut *pp as *mut PingPong as *mut u8;
        // SAFETY: `top` bounds a writable 64 KiB stack owned by this test.
        pp.fiber = unsafe { prepare(top, pingpong_entry, arg) };
        // SAFETY: `fiber` was just prepared; `host` is saved into.
        unsafe { switch(&mut pp.host, &mut pp.fiber) };
        pp.log.push(2);
        // SAFETY: `fiber` parked itself at its first yield; resume it.
        unsafe { switch(&mut pp.host, &mut pp.fiber) };
        pp.log.push(4);
        assert_eq!(pp.log, vec![1, 2, 3, 4]);
    }

    #[test]
    fn many_fibers_interleave_on_one_stack_pool() {
        // Round-robin 8 fibers a few times each; every fiber keeps private
        // state in locals across yields.
        struct Slot {
            host: Context,
            fiber: Context,
            sum: u64,
        }
        extern "C" fn acc_entry(arg: *mut u8) -> ! {
            // SAFETY: `arg` is this fiber's Boxed `Slot`, kept alive by
            // the test for the whole round-robin.
            let s = unsafe { &mut *(arg as *mut Slot) };
            let mut local = 0u64;
            for step in 1..=3u64 {
                local += step;
                s.sum = local;
                // SAFETY: yield back to the host that resumed us.
                unsafe { switch(&mut s.fiber, &mut s.host) };
            }
            // SAFETY: re-borrow after the host ran; same Box, still alive.
            let s = unsafe { &mut *(arg as *mut Slot) };
            loop {
                // SAFETY: park forever; the host stops resuming us.
                unsafe { switch(&mut s.fiber, &mut s.host) };
            }
        }
        const K: usize = 8;
        const STACK: usize = 32 * 1024;
        let mut pool = vec![0u8; K * STACK + 16];
        let base = ((pool.as_mut_ptr() as usize) + 15) & !15;
        let mut slots: Vec<Box<Slot>> = (0..K)
            .map(|_| {
                Box::new(Slot {
                    host: Context::empty(),
                    fiber: Context::empty(),
                    sum: 0,
                })
            })
            .collect();
        for (i, s) in slots.iter_mut().enumerate() {
            let top = (base + (i + 1) * STACK) as *mut u8;
            let arg = &mut **s as *mut Slot as *mut u8;
            // SAFETY: slot `i` owns bytes `[base + i*STACK, top)` of the
            // live pool allocation; stacks do not overlap.
            s.fiber = unsafe { prepare(top, acc_entry, arg) };
        }
        for _round in 0..3 {
            for s in slots.iter_mut() {
                // SAFETY: each fiber is parked (prepared or mid-yield);
                // resume strictly one at a time from the host.
                unsafe { switch(&mut s.host, &mut s.fiber) };
            }
        }
        for s in &slots {
            assert_eq!(s.sum, 1 + 2 + 3);
        }
    }
}
