//! The machine: runs a program with one rank per placement slot, under
//! either scheduling engine (thread-per-rank or event-driven M:N — see
//! [`crate::sched`]).

use crate::context::RankCtx;
use crate::envelope::Envelope;
use crate::error::MachineError;
use crate::mailbox::{EventMailboxes, MailboxRx, MailboxTx};
use crate::registry::Registry;
use crate::sched::{Engine, SchedulerKind};
use crate::traffic::{Traffic, TrafficSnapshot};
use crossbeam_channel::unbounded;
use greenla_check::CheckSink;
use greenla_cluster::ledger::Ledger;
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_faults::FaultSink;
use greenla_trace::TraceSink;
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A configured simulated machine, ready to run MPI programs.
pub struct Machine {
    spec: ClusterSpec,
    placement: Placement,
    power: PowerModel,
    seed: u64,
    ledger: Arc<Ledger>,
    traffic: Arc<Traffic>,
    trace: TraceSink,
    check: CheckSink,
    faults: FaultSink,
    scheduler: SchedulerKind,
    sched_workers: Option<usize>,
}

/// Event-engine worker-pool size when the machine doesn't pin one:
/// the host's parallelism, clamped to a small pool (the workers mostly
/// shuffle fibers, and past a handful they just contend on the queues).
fn default_sched_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Per-fiber stack size for the event engine. Rank closures in this
/// codebase are shallow (solver frames plus the runtime), so the default
/// 512 KiB is generous; pages are only committed on touch, so 10k ranks
/// cost virtual address space, not resident memory. Override with the
/// `GREENLA_STACK_KB` environment variable (floor 64 KiB).
fn sched_stack_bytes() -> usize {
    let kb = std::env::var("GREENLA_STACK_KB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(512);
    kb.max(64) * 1024
}

/// What a completed run produced.
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by global rank.
    pub results: Vec<R>,
    /// Final virtual clock of each rank.
    pub final_clocks: Vec<f64>,
    /// Virtual makespan: the latest final clock.
    pub makespan: f64,
    /// Total traffic of the run.
    pub traffic: TrafficSnapshot,
}

impl Machine {
    /// Build a machine. The placement must have been generated for the same
    /// node shape and must fit within the cluster's node count.
    pub fn new(
        spec: ClusterSpec,
        placement: Placement,
        power: PowerModel,
        seed: u64,
    ) -> Result<Self, MachineError> {
        if placement.node_spec() != &spec.node {
            return Err(MachineError::NodeShapeMismatch);
        }
        if placement.nodes_used() > spec.nodes {
            return Err(MachineError::PlacementTooLarge {
                needed: placement.nodes_used(),
                available: spec.nodes,
            });
        }
        let ledger = Arc::new(Ledger::new(spec.node.clone(), placement.nodes_used()));
        Ok(Self {
            spec,
            placement,
            power,
            seed,
            ledger,
            traffic: Arc::new(Traffic::new()),
            trace: TraceSink::disabled(),
            check: CheckSink::disabled(),
            faults: FaultSink::disabled(),
            scheduler: SchedulerKind::default(),
            sched_workers: None,
        })
    }

    /// Select the rank-scheduling engine (see [`SchedulerKind`]). The
    /// engine changes only wall-clock execution; virtual-time outcomes
    /// are bit-identical by the scheduler-invariance contract
    /// ([`crate::sched`] module docs).
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.scheduler = kind;
    }

    /// Builder-style [`Machine::set_scheduler`].
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// The selected scheduling engine.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Pin the event engine's worker-pool size instead of deriving it
    /// from the host's parallelism. Benchmarks pin this so wall-clock
    /// numbers are comparable across machines; virtual-time results
    /// never depend on it. Ignored by the thread-per-rank engine.
    pub fn set_sched_workers(&mut self, workers: usize) {
        assert!(workers >= 1, "need at least one worker");
        self.sched_workers = Some(workers);
    }

    /// Builder-style [`Machine::set_sched_workers`].
    pub fn with_sched_workers(mut self, workers: usize) -> Self {
        self.set_sched_workers(workers);
        self
    }

    /// Attach an event-trace sink. Tracing only observes the virtual
    /// clocks — it never advances them — so a traced run produces
    /// bit-identical timings to an untraced one.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Builder-style [`Machine::set_trace`].
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The attached trace sink (disabled by default).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Attach a correctness-checking sink. Like tracing, checking only
    /// observes the virtual clocks — it never advances them — so a checked
    /// run produces bit-identical timings to an unchecked one.
    pub fn set_check(&mut self, sink: CheckSink) {
        self.check = sink;
    }

    /// Builder-style [`Machine::set_check`].
    pub fn with_check(mut self, sink: CheckSink) -> Self {
        self.check = sink;
        self
    }

    /// The attached checking sink (disabled by default).
    pub fn check(&self) -> &CheckSink {
        &self.check
    }

    /// Attach a fault-injection sink. Unlike tracing and checking, an
    /// *active* plan perturbs virtual time on purpose; a disabled sink
    /// (the default) costs one branch per injection point and leaves the
    /// timeline bit-identical to a build without the fault layer.
    pub fn set_faults(&mut self, sink: FaultSink) {
        self.faults = sink;
    }

    /// Builder-style [`Machine::set_faults`].
    pub fn with_faults(mut self, sink: FaultSink) -> Self {
        self.faults = sink;
        self
    }

    /// The attached fault sink (disabled by default).
    pub fn faults(&self) -> &FaultSink {
        &self.faults
    }

    /// The activity ledger (shared; energy layers read it during and after
    /// the run).
    pub fn ledger(&self) -> Arc<Ledger> {
        Arc::clone(&self.ledger)
    }

    /// Traffic counters.
    pub fn traffic(&self) -> Arc<Traffic> {
        Arc::clone(&self.traffic)
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Run `f` on every rank and collect results.
    ///
    /// How ranks execute depends on the selected [`SchedulerKind`]:
    /// thread-per-rank spawns one OS thread per rank under
    /// [`std::thread::scope`]; the event-driven engine multiplexes
    /// rank fibers over a small worker pool. Either way this call blocks
    /// until every rank has finished, and all virtual-time outputs are
    /// bit-identical across engines.
    ///
    /// Panics if any rank panics (after poisoning the run so the remaining
    /// ranks unblock), propagating the first rank's panic payload.
    ///
    /// # Example
    ///
    /// ```
    /// use greenla_cluster::placement::{LoadLayout, Placement};
    /// use greenla_cluster::spec::ClusterSpec;
    /// use greenla_cluster::PowerModel;
    /// use greenla_mpi::Machine;
    ///
    /// let spec = ClusterSpec::test_cluster(1, 4); // one node, 2×4 cores
    /// let placement = Placement::layout(&spec.node, 8, LoadLayout::FullLoad).unwrap();
    /// let machine = Machine::new(spec, placement, PowerModel::deterministic(), 1).unwrap();
    ///
    /// let out = machine.run(|ctx| {
    ///     let world = ctx.world();
    ///     ctx.compute(1_000_000, 0); // charge virtual time for 1 Mflop
    ///     ctx.allreduce_sum_f64(&world, &[1.0])[0]
    /// });
    ///
    /// assert!(out.results.iter().all(|&r| r == 8.0));
    /// assert!(out.makespan > 0.0); // virtual seconds, not wall time
    /// ```
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let n = self.placement.ntasks();
        self.check
            .begin_run((0..n).map(|r| self.placement.core_of(r).node).collect());
        let registry = Registry::new().with_check(self.check.clone());
        let world_members: Arc<Vec<usize>> = Arc::new((0..n).collect());
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let clocks: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Each finished rank parks its mailbox here so the message-hygiene
        // audit can run after *every* rank has stopped sending — draining
        // inside the rank body would race a slower peer's late send.
        type Mailbox = (MailboxRx, Vec<Envelope>);
        let mailboxes: Vec<Mutex<Option<Mailbox>>> = (0..n).map(|_| Mutex::new(None)).collect();

        // One rank's whole life, engine-agnostic: build the context, run
        // the closure, bank the outputs. Each engine decides only *where*
        // this body executes (an OS thread vs a fiber) and which mailbox
        // flavour it hands in.
        let run_rank = |rank: usize, rx: MailboxRx, txs: MailboxTx| {
            let core = self.placement.core_of(rank);
            let perf_mult = self.power.perf_multiplier(self.seed, core.node);
            let mut ctx = RankCtx {
                rank,
                nranks: n,
                core,
                clock: 0.0,
                spec: &self.spec,
                power: &self.power,
                seed: self.seed,
                perf_mult,
                ledger: &self.ledger,
                traffic: &self.traffic,
                registry: &registry,
                placement: &self.placement,
                rx,
                txs,
                pending: Vec::new(),
                seqs: Default::default(),
                world_members: Arc::clone(&world_members),
                tracer: self.trace.tracer(rank, core.node),
                checker: self.check.checker(rank, core.node),
                faults: self.faults.handle(rank, core.node),
            };
            match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                Ok(r) => {
                    *results[rank].lock() = Some(r);
                    *clocks[rank].lock() = ctx.clock;
                    ctx.check_finished();
                    let pending = std::mem::take(&mut ctx.pending);
                    *mailboxes[rank].lock() = Some((ctx.rx, pending));
                }
                Err(payload) => {
                    // Record the payload BEFORE poisoning: cascade
                    // panics ("a peer rank failed") only start once
                    // the registry is poisoned, so this order
                    // guarantees the run aborts with the root
                    // cause's diagnostic, not a casualty's.
                    {
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    registry.poison();
                }
            }
        };

        match self.scheduler {
            SchedulerKind::ThreadPerRank => {
                let mut txs = Vec::with_capacity(n);
                let mut rxs = Vec::with_capacity(n);
                for _ in 0..n {
                    let (tx, rx) = unbounded::<Envelope>();
                    txs.push(tx);
                    rxs.push(rx);
                }
                registry.set_wakers(&txs);
                let txs = Arc::new(txs);
                std::thread::scope(|scope| {
                    for (rank, rx) in rxs.into_iter().enumerate() {
                        let txs = Arc::clone(&txs);
                        let run_rank = &run_rank;
                        scope.spawn(move || {
                            run_rank(rank, MailboxRx::Thread(rx), MailboxTx::Thread(txs));
                        });
                    }
                });
            }
            SchedulerKind::EventDriven => {
                let workers = self.sched_workers.unwrap_or_else(default_sched_workers);
                let engine = Arc::new(Engine::new(n, workers, sched_stack_bytes()));
                let shared = Arc::new(EventMailboxes::new(n, Arc::clone(&engine)));
                registry.set_event(Arc::clone(&shared));
                let run_rank = &run_rank;
                let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
                    .map(|rank| {
                        let shared = Arc::clone(&shared);
                        Box::new(move || {
                            let rx = MailboxRx::Event {
                                rank,
                                shared: Arc::clone(&shared),
                            };
                            run_rank(rank, rx, MailboxTx::Event(shared));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                engine.run(bodies);
            }
        }

        if let Some(payload) = first_panic.into_inner() {
            resume_unwind(payload);
        }
        if self.check.is_enabled() || self.faults.is_enabled() {
            // Message hygiene: anything still sitting in a mailbox at
            // finalize was sent but never received (MSG001). Injected
            // duplicates a receiver finished before pumping are accounted
            // here instead — whether a duplicate is discarded mid-run or at
            // finalize is a wall-clock accident, but the total observed
            // count is deterministic.
            for (rank, slot) in mailboxes.iter().enumerate() {
                if let Some((rx, pending)) = slot.lock().take() {
                    // Abort control messages are runtime plumbing, not rank
                    // traffic — never report them as leaks.
                    let mut leaked: Vec<(usize, u64, u64, f64)> = Vec::new();
                    let mut audit = |e: &Envelope| {
                        if e.is_control() {
                            return;
                        }
                        if e.dup {
                            self.faults.note_dup_discarded();
                        } else {
                            leaked.push((e.src, e.comm_id, e.tag, e.arrival));
                        }
                    };
                    pending.iter().for_each(&mut audit);
                    while let Some(e) = rx.try_recv() {
                        audit(&e);
                    }
                    if !leaked.is_empty() && self.check.is_enabled() {
                        self.check.report_residue(rank, &leaked);
                    }
                }
            }
        }
        let results: Vec<R> = results
            .into_iter()
            .map(|m| m.into_inner().expect("rank produced no result"))
            .collect();
        let final_clocks: Vec<f64> = clocks.into_iter().map(|m| m.into_inner()).collect();
        let makespan = final_clocks.iter().fold(0.0f64, |a, &b| a.max(b));
        RunOutput {
            results,
            final_clocks,
            makespan,
            traffic: self.traffic.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::LoadLayout;

    fn machine(ranks: usize) -> Machine {
        let spec = ClusterSpec::test_cluster(8, 4); // 8 nodes × 2×4 cores
        let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
        Machine::new(spec, placement, PowerModel::deterministic(), 42).unwrap()
    }

    #[test]
    fn ranks_see_identity() {
        let m = machine(8);
        let out = m.run(|ctx| (ctx.rank(), ctx.size(), ctx.node()));
        for (r, &(rank, size, node)) in out.results.iter().enumerate() {
            assert_eq!(rank, r);
            assert_eq!(size, 8);
            assert_eq!(node, r / 8); // 8 ranks per full-load test node
        }
    }

    #[test]
    fn compute_advances_clock_deterministically() {
        let m = machine(8);
        let out = m.run(|ctx| {
            ctx.compute(1_000_000, 0);
            ctx.now()
        });
        for &t in &out.results {
            assert!(t > 0.0);
        }
        // Same node → same jitter → same time; all ranks did identical work.
        assert_eq!(out.results[0], out.results[1]);
        // Two runs are bit-identical.
        let m2 = machine(8);
        let out2 = m2.run(|ctx| {
            ctx.compute(1_000_000, 0);
            ctx.now()
        });
        assert_eq!(out.results, out2.results);
    }

    #[test]
    fn send_recv_pair_respects_causality() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.compute(50_000_000, 0); // delay the sender
                ctx.send_f64(&world, 1, 7, &[1.5, 2.5]);
                ctx.now()
            } else if ctx.rank() == 1 {
                let data = ctx.recv_f64(&world, 0, 7);
                assert_eq!(data, vec![1.5, 2.5]);
                ctx.now()
            } else {
                0.0
            }
        });
        // Receiver finishes after sender started the message.
        assert!(
            out.results[1] > out.results[0] * 0.9,
            "{:?}",
            &out.results[..2]
        );
        assert!(out.results[1] > 0.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let m = machine(8);
        let out = m.run(|ctx| {
            // Rank-dependent work before the barrier.
            ctx.compute(1_000_000 * (ctx.rank() as u64 + 1), 0);
            let world = ctx.world();
            ctx.barrier(&world);
            ctx.now()
        });
        let t0 = out.results[0];
        for &t in &out.results {
            assert!((t - t0).abs() < 1e-12, "clocks diverged: {:?}", out.results);
        }
        // Barrier time ≥ slowest rank's work.
        assert!(t0 >= out.results[7] * 0.999);
    }

    #[test]
    fn split_shared_groups_by_node() {
        let m = machine(16); // 2 nodes × 8
        let out = m.run(|ctx| {
            let world = ctx.world();
            let node_comm = ctx.split_shared(&world);
            (node_comm.size(), node_comm.rank(), node_comm.is_highest())
        });
        for (r, &(size, idx, highest)) in out.results.iter().enumerate() {
            assert_eq!(size, 8);
            assert_eq!(idx, r % 8);
            assert_eq!(highest, r % 8 == 7, "rank {r}");
        }
    }

    #[test]
    fn bcast_delivers_to_all() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mut buf = if ctx.rank() == 3 {
                vec![9.0, 8.0, 7.0]
            } else {
                Vec::new()
            };
            ctx.bcast_f64(&world, 3, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, vec![9.0, 8.0, 7.0]);
        }
    }

    #[test]
    fn bcast_traffic_is_p_minus_1_messages() {
        let m = machine(8);
        let before = m.traffic().snapshot();
        m.run(|ctx| {
            let world = ctx.world();
            let mut buf = if ctx.rank() == 0 {
                vec![0.0; 100]
            } else {
                Vec::new()
            };
            ctx.bcast_f64(&world, 0, &mut buf);
        });
        let diff = m.traffic().snapshot().since(&before);
        assert_eq!(diff.msgs, 7, "binomial bcast must send P-1 messages");
        assert_eq!(diff.volume_elems(), 700);
    }

    #[test]
    fn pipelined_bcast_delivers_identically() {
        let m = machine(16);
        let payload: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let expected = payload.clone();
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mut buf = if ctx.rank() == 2 {
                payload.clone()
            } else {
                Vec::new()
            };
            ctx.bcast_pipelined_f64(&world, 2, &mut buf, 128);
            buf
        });
        for r in out.results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn pipelined_bcast_beats_binomial_on_large_payloads() {
        // Critical path O(α·logP + β·n) vs O((α + β·n)·logP).
        let payload = vec![1.0f64; 2_000_000];
        let run = |pipelined: bool| {
            let m = machine(16);
            let p2 = payload.clone();
            let out = m.run(move |ctx| {
                let world = ctx.world();
                let mut buf = if ctx.rank() == 0 {
                    p2.clone()
                } else {
                    Vec::new()
                };
                if pipelined {
                    ctx.bcast_pipelined_f64(&world, 0, &mut buf, 64 * 1024);
                } else {
                    ctx.bcast_f64(&world, 0, &mut buf);
                }
                ctx.now()
            });
            out.results.iter().fold(0.0f64, |a, &b| a.max(b))
        };
        let t_pipe = run(true);
        let t_tree = run(false);
        assert!(
            t_pipe < t_tree * 0.7,
            "pipelined {t_pipe} should clearly beat binomial {t_tree}"
        );
    }

    #[test]
    fn pipelined_bcast_empty_and_tiny_payloads() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mut small = if ctx.rank() == 0 {
                vec![42.0]
            } else {
                Vec::new()
            };
            ctx.bcast_pipelined_f64(&world, 0, &mut small, 1000);
            let mut empty = if ctx.rank() == 0 {
                Vec::new()
            } else {
                vec![9.9]
            };
            ctx.bcast_pipelined_f64(&world, 0, &mut empty, 4);
            (small, empty)
        });
        for (small, empty) in out.results {
            assert_eq!(small, vec![42.0]);
            assert!(empty.is_empty());
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mine = vec![ctx.rank() as f64, 1.0];
            let root_sum = ctx.reduce_sum_f64(&world, 2, &mine);
            let all_sum = ctx.allreduce_sum_f64(&world, &mine);
            (root_sum, all_sum)
        });
        for (r, (root_sum, all_sum)) in out.results.into_iter().enumerate() {
            assert_eq!(all_sum, vec![28.0, 8.0]);
            if r == 2 {
                assert_eq!(root_sum.unwrap(), vec![28.0, 8.0]);
            } else {
                assert!(root_sum.is_none());
            }
        }
    }

    #[test]
    fn maxloc_finds_global_pivot() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            // Rank 5 holds the largest |value|.
            let v = if ctx.rank() == 5 {
                -100.0
            } else {
                ctx.rank() as f64
            };
            ctx.allreduce_maxloc_abs(&world, v, ctx.rank() as u64)
        });
        for (v, loc) in out.results {
            assert_eq!(v, -100.0);
            assert_eq!(loc, 5);
        }
    }

    #[test]
    fn gather_preserves_order_and_lengths() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mine: Vec<f64> = (0..=ctx.rank()).map(|i| i as f64).collect();
            ctx.gather_f64(&world, 0, &mine)
        });
        let chunks = out.results[0].clone().unwrap();
        assert_eq!(chunks.len(), 8);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.len(), i + 1);
        }
        assert!(out.results[1].is_none());
    }

    #[test]
    fn mismatched_reduce_lengths_abort_with_the_stable_diagnostic() {
        // A malformed collective must surface as the documented
        // `CollContractError` message (the chaos battery's abort-set
        // depends on the prefix), not as a bare slice-length assert.
        let m = machine(8);
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                let len = if ctx.rank() == 5 { 3 } else { 2 };
                ctx.reduce_sum_f64(&world, 0, &vec![1.0; len]);
            })
        }));
        let payload = match r {
            Err(p) => p,
            Ok(_) => panic!("mismatched lengths must abort"),
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("collective contract violated: reduce length mismatch"),
            "diagnostic drifted: {msg}"
        );
    }

    #[test]
    fn gather_charges_receives_in_completion_order() {
        // All 8 ranks sit on one node, so permuting the senders'
        // pre-gather compute times permutes the arrival times without
        // changing their multiset. A root that receives in completion
        // order finishes at the same virtual time either way; the old
        // rank-ordered receive loop stalled on slow low ranks while
        // arrived high ranks waited (head-of-line blocking), making the
        // end time permutation-dependent.
        let run = |weights: [u64; 8]| {
            let out = machine(8).run(move |ctx| {
                let world = ctx.world();
                ctx.compute(weights[ctx.rank()] * 1_000_000, 0);
                ctx.gather_f64(&world, 0, &[ctx.rank() as f64])
            });
            let chunks = out.results[0].clone().unwrap();
            let flat: Vec<f64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..8).map(f64::from).collect::<Vec<_>>());
            out.final_clocks[0]
        };
        // The root (rank 0) keeps the same weight in both runs; the other
        // seven are reversed.
        let ascending = run([0, 1, 2, 3, 4, 5, 6, 7]);
        let descending = run([0, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(
            ascending.to_bits(),
            descending.to_bits(),
            "completion-order gather must be invariant to arrival permutation"
        );
    }

    #[test]
    fn allgather_everyone_gets_everything() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            ctx.allgather_f64(&world, &[ctx.rank() as f64 * 10.0])
        });
        let expected: Vec<Vec<f64>> = (0..8).map(|r| vec![r as f64 * 10.0]).collect();
        for r in out.results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn iprobe_respects_virtual_causality() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.compute(100_000_000, 0); // send late in virtual time
                    ctx.send_f64(&world, 1, 5, &[1.0]);
                    true
                }
                1 => {
                    // Synchronise so the message is physically in flight…
                    let t_sent = {
                        // wait until clock surpasses sender's send time via
                        // a second message on another tag
                        ctx.recv_f64(&world, 2, 6);
                        ctx.now()
                    };
                    let _ = t_sent;
                    // …then probe: at our *early* virtual time the rank-0
                    // message may not have virtually arrived yet.
                    let early = ctx.iprobe(&world, 0, 5);
                    // Advance past the arrival and probe again.
                    ctx.compute(200_000_000, 0);
                    // Give the OS a moment so the envelope is physically
                    // queued (spin on the probe; terminates because the
                    // payload was sent before rank 0 exited).
                    let mut late = ctx.iprobe(&world, 0, 5);
                    while !late {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        late = ctx.iprobe(&world, 0, 5);
                    }
                    // Consume it so nothing dangles.
                    ctx.recv_f64(&world, 0, 5);
                    !early && late
                }
                2 => {
                    ctx.send_f64(&world, 1, 6, &[0.0]);
                    true
                }
                _ => true,
            }
        });
        assert!(
            out.results[1],
            "iprobe must observe messages only after their virtual arrival"
        );
    }

    #[test]
    fn recv_idle_advances_clock_without_busy_time() {
        let m = machine(8);
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.compute(100_000_000, 0);
                    ctx.send_f64(&world, 1, 9, &[3.0]);
                    0.0
                }
                1 => {
                    let v = ctx.recv_f64_idle(&world, 0, 9);
                    assert_eq!(v, vec![3.0]);
                    ctx.now()
                }
                _ => 0.0,
            }
        });
        // Receiver's clock advanced past the sender's work…
        assert!(out.results[1] > 0.04);
        // …but its core shows (almost) no busy time: only the wake-up o.
        let busy = m.ledger().core_busy_until(
            m.placement().core_of(1),
            greenla_cluster::ledger::ActivityKind::Comm,
            f64::INFINITY,
        );
        assert!(
            busy < 1e-6,
            "idle wait must not record busy time, got {busy}"
        );
    }

    #[test]
    fn rank_panic_propagates_without_deadlock() {
        let m = machine(8);
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                if ctx.rank() == 3 {
                    panic!("injected fault");
                }
                // Everyone else blocks in a barrier rank 3 never joins.
                ctx.barrier(&world);
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rank_panic_unblocks_blocking_receivers() {
        // Ranks 1..7 park in a blocking receive on a message rank 0 never
        // sends; the abort control message posted by poison() must wake
        // them (no timeout polling exists on the unchecked path).
        let m = machine(8);
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                if ctx.rank() == 0 {
                    panic!("injected fault");
                }
                ctx.recv_f64(&world, 0, 1);
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rank_panic_unblocks_checked_receivers() {
        // Same shape with the checker attached: the timed-wait path must
        // also observe the poison and fail the run rather than hang.
        let m = machine(8).with_check(greenla_check::CheckSink::enabled());
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                if ctx.rank() == 0 {
                    panic!("injected fault");
                }
                ctx.recv_f64(&world, 0, 1);
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn dropped_send_recovers_with_backoff_and_is_reported() {
        use greenla_faults::{FaultPlan, FaultSink, MsgFault, MsgFaultKind};
        let plan = FaultPlan {
            messages: vec![MsgFault {
                src: 0,
                nth_send: 0,
                kind: MsgFaultKind::Drop { count: 2 },
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let m = machine(8).with_faults(sink.clone());
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.send_f64(&world, 1, 7, &[1.0]);
                    ctx.now()
                }
                1 => {
                    assert_eq!(ctx.recv_f64(&world, 0, 7), vec![1.0]);
                    ctx.now()
                }
                _ => 0.0,
            }
        });
        // The two dropped attempts cost the sender backoff busy time.
        let clean = machine(8).run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.send_f64(&world, 1, 7, &[1.0]);
                    ctx.now()
                }
                1 => {
                    ctx.recv_f64(&world, 0, 7);
                    ctx.now()
                }
                _ => 0.0,
            }
        });
        assert!(
            out.results[0] > clean.results[0],
            "retries must be visible in virtual time"
        );
        let rep = sink.report();
        assert_eq!(rep.injected.msg_drop, 2);
        assert_eq!(rep.recovered.msg_drop, 2);
    }

    #[test]
    fn drop_burst_past_retry_budget_aborts_with_diagnostic() {
        use greenla_faults::{FaultPlan, FaultSink, MsgFault, MsgFaultKind, MAX_SEND_RETRIES};
        let plan = FaultPlan {
            messages: vec![MsgFault {
                src: 0,
                nth_send: 0,
                kind: MsgFaultKind::Drop {
                    count: MAX_SEND_RETRIES + 1,
                },
            }],
            ..Default::default()
        };
        let m = machine(8).with_faults(FaultSink::with_plan(plan));
        let r = catch_unwind(AssertUnwindSafe(|| {
            m.run(|ctx| {
                let world = ctx.world();
                if ctx.rank() == 0 {
                    ctx.send_f64(&world, 1, 7, &[1.0]);
                } else if ctx.rank() == 1 {
                    ctx.recv_f64(&world, 0, 7);
                }
            })
        }));
        let payload = match r {
            Err(p) => p,
            Ok(_) => panic!("lost message must abort the run"),
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.starts_with("injected fault:")
                || msg.contains("simulated MPI run aborted")
                || msg.contains("all peers gone"),
            "unstable diagnostic: {msg}"
        );
    }

    #[test]
    fn duplicate_envelope_is_discarded_and_counted() {
        use greenla_faults::{FaultPlan, FaultSink, MsgFault, MsgFaultKind};
        let plan = FaultPlan {
            messages: vec![MsgFault {
                src: 0,
                nth_send: 0,
                kind: MsgFaultKind::Duplicate,
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let m = machine(8).with_faults(sink.clone());
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.send_f64(&world, 1, 7, &[2.0]);
                    Vec::new()
                }
                1 => ctx.recv_f64(&world, 0, 7),
                _ => Vec::new(),
            }
        });
        assert_eq!(out.results[1], vec![2.0], "payload delivered exactly once");
        let rep = sink.report();
        assert_eq!(rep.injected.msg_dup, 1);
        assert_eq!(
            rep.observed.msg_dup, 1,
            "duplicate accounted whether pumped or audited at finalize"
        );
    }

    #[test]
    fn delayed_envelope_shifts_arrival_and_is_observed() {
        use greenla_faults::{FaultPlan, FaultSink, MsgFault, MsgFaultKind};
        let extra = 0.5;
        let plan = FaultPlan {
            messages: vec![MsgFault {
                src: 0,
                nth_send: 0,
                kind: MsgFaultKind::Delay { extra_s: extra },
            }],
            ..Default::default()
        };
        let sink = FaultSink::with_plan(plan);
        let m = machine(8).with_faults(sink.clone());
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.send_f64(&world, 1, 7, &[3.0]);
                    0.0
                }
                1 => {
                    ctx.recv_f64(&world, 0, 7);
                    ctx.now()
                }
                _ => 0.0,
            }
        });
        assert!(
            out.results[1] >= extra,
            "receiver must wait out the injected delay, got {}",
            out.results[1]
        );
        let rep = sink.report();
        assert_eq!(rep.injected.msg_delay, 1);
        assert_eq!(rep.observed.msg_delay, 1);
    }

    #[test]
    fn planned_crash_aborts_both_schedulers() {
        use greenla_faults::{CrashFault, CrashWhen, FaultPlan, FaultSink};
        for checked in [false, true] {
            let plan = FaultPlan {
                crashes: vec![CrashFault {
                    rank: 3,
                    when: CrashWhen::AtCall { calls: 2 },
                }],
                ..Default::default()
            };
            let sink = FaultSink::with_plan(plan);
            let mut m = machine(8).with_faults(sink.clone());
            if checked {
                m = m.with_check(greenla_check::CheckSink::enabled());
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                m.run(|ctx| {
                    let world = ctx.world();
                    ctx.compute(1_000, 0);
                    ctx.compute(1_000, 0);
                    ctx.barrier(&world);
                })
            }));
            let payload = match r {
                Err(p) => p,
                Ok(_) => panic!("planned crash must abort (checked={checked})"),
            };
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.starts_with("injected fault: rank 3 crashed")
                    || msg.contains("simulated MPI run aborted"),
                "checked={checked}: unstable diagnostic: {msg}"
            );
            let rep = sink.report();
            assert_eq!(rep.injected.rank_crash, 1, "checked={checked}");
        }
    }

    #[test]
    fn disabled_faults_leave_virtual_time_untouched() {
        use greenla_faults::FaultSink;
        let base = machine(8).run(|ctx| {
            let world = ctx.world();
            ctx.compute(1_000_000, 64);
            ctx.barrier(&world);
            ctx.now()
        });
        let with_sink = machine(8).with_faults(FaultSink::disabled()).run(|ctx| {
            let world = ctx.world();
            ctx.compute(1_000_000, 64);
            ctx.barrier(&world);
            ctx.now()
        });
        for (a, b) in base.results.iter().zip(&with_sink.results) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn placement_bigger_than_cluster_rejected() {
        let spec = ClusterSpec::test_cluster(1, 4);
        let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
        assert!(matches!(
            Machine::new(spec, placement, PowerModel::deterministic(), 0),
            Err(MachineError::PlacementTooLarge { .. })
        ));
    }

    #[test]
    fn ledger_records_compute_activity() {
        let m = machine(8);
        m.run(|ctx| ctx.compute(1000, 512));
        assert_eq!(m.ledger().total_flops(), 8 * 1000);
        assert!(m.ledger().dram_bytes_until(0, 0, f64::INFINITY) > 0);
    }

    #[test]
    fn intra_vs_inter_node_message_cost() {
        let m = machine(16); // ranks 0..8 node 0, 8..16 node 1
        let out = m.run(|ctx| {
            let world = ctx.world();
            match ctx.rank() {
                0 => {
                    ctx.send_f64(&world, 1, 1, &vec![0.0; 10000]); // same node
                    0.0
                }
                1 => {
                    ctx.recv_f64(&world, 0, 1);
                    ctx.now()
                }
                2 => {
                    ctx.send_f64(&world, 8, 2, &vec![0.0; 10000]); // cross node
                    0.0
                }
                8 => {
                    ctx.recv_f64(&world, 2, 2);
                    ctx.now()
                }
                _ => 0.0,
            }
        });
        assert!(
            out.results[8] > out.results[1],
            "cross-node message should be slower: {} vs {}",
            out.results[8],
            out.results[1]
        );
    }
}
