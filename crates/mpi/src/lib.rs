//! # greenla-mpi
//!
//! A simulated MPI runtime with **virtual time**. Each MPI rank is either
//! an OS thread (the default) or a green task multiplexed onto a small
//! worker pool (see [`sched::SchedulerKind`] — the event-driven engine
//! makes 10k–100k-rank worlds tractable); either way the rank is pinned
//! (logically) to one core of the simulated cluster, and every
//! rank carries its own virtual clock which advances when the rank computes
//! (`compute`), sends or receives messages, or synchronises in collectives.
//! Message timing follows a LogGP-style α + β·size model with distinct
//! intra-node and inter-node parameters; collectives are implemented as
//! binomial trees over point-to-point messages, so their cost emerges from
//! the same model. Clock causality is conservative: a receive completes no
//! earlier than the message's arrival time, and barriers align every
//! participant to the latest arrival — the same guarantees real MPI gives,
//! minus wall-clock nondeterminism.
//!
//! While ranks run, the engine records every busy interval into the
//! [`greenla_cluster::Ledger`], which the simulated RAPL layer integrates
//! into energy counters. Message counts and volumes are tallied in
//! [`traffic::Traffic`] so the paper's closed-form communication formulas
//! can be checked against actual runs.
//!
//! The API mirrors the MPI subset the paper's framework uses:
//! `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)` → [`RankCtx::split_shared`],
//! `MPI_Barrier` → [`RankCtx::barrier`], plus broadcast/reduce/gather and
//! matched-pair send/recv.
//!
//! The runtime is instrumented with [`greenla_trace`] spans (compute,
//! point-to-point, every collective). Attach a sink with
//! [`Machine::with_trace`] to record them; tracing only *observes* the
//! virtual clocks, so traced and untraced runs have identical timings.
//!
//! The same hooks feed [`greenla_check`], a MUST-style dynamic correctness
//! checker: attach a sink with [`Machine::with_check`] and the runtime
//! reports deadlocks (with the wait-for cycle, instead of hanging),
//! collective lockstep mismatches, leaked messages at finalize, monitor
//! protocol breaches, and clock-causality bugs as structured
//! [`Violation`]s. Checking, like tracing, never advances a clock: a
//! checked run is bit-identical in timing to an unchecked one.

pub mod coll;
pub mod comm;
pub mod context;
pub mod envelope;
pub mod error;
pub mod machine;
pub(crate) mod mailbox;
pub mod registry;
pub mod sched;
pub mod traffic;

pub use comm::Comm;
pub use context::RankCtx;
pub use envelope::{copy_audit, Payload};
pub use error::{CollContractError, MachineError};
pub use greenla_check::{CheckSink, CollEvent, CollKind, Rule, Violation};
pub use greenla_faults::{
    ColumnLoss, CounterFault, CounterFaultKind, CrashFault, CrashWhen, FaultPlan, FaultReport,
    FaultSink, MsgFault, MsgFaultKind, PlanShape, RankFaults,
};
pub use greenla_trace::{EventKind, TraceEvent, TraceSink};
pub use machine::{Machine, RunOutput};
pub use sched::SchedulerKind;
pub use traffic::{Traffic, TrafficSnapshot};
