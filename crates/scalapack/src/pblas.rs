//! Minimal PBLAS: distributed matrix-vector product with a replicated
//! vector — the building block of distributed residual computation
//! (iterative refinement, solution certification).

use crate::distribute::DistMatrix;
use crate::grid::ProcessGrid;
use greenla_linalg::flops;
use greenla_mpi::RankCtx;

/// `y = A·x` for a block-cyclically distributed `A` and a replicated `x`;
/// every process returns the full (replicated) `y`. Collective over the
/// grid.
pub fn pdgemv_replicated(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    a: &DistMatrix,
    x: &[f64],
) -> Vec<f64> {
    let d = a.desc;
    assert_eq!(x.len(), d.n, "vector length mismatch");
    let mut partial = vec![0.0; d.m];
    for lj in 0..a.local.cols() {
        let gj = d.gcol(lj, a.mycol);
        let xj = x[gj];
        if xj == 0.0 {
            continue;
        }
        let col = a.local.col(lj);
        for (li, &v) in col.iter().enumerate() {
            let gi = d.grow(li, a.myrow);
            partial[gi] += v * xj;
        }
    }
    ctx.compute(
        flops::dgemv(a.local.rows(), a.local.cols()),
        flops::bytes_f64(a.local.rows() * a.local.cols()),
    );
    ctx.allreduce_sum_owned_f64(grid.all(), partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::BlockDesc;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_linalg::Matrix;
    use greenla_mpi::Machine;

    #[test]
    fn distributed_matvec_matches_dense() {
        let n = 17;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 11) as f64 - 5.0);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let expected = a.matvec(&x);
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::packed(&spec.node, 6).unwrap();
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), 1).unwrap();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 3);
            let desc = BlockDesc::square(n, 4, 2, 3);
            let dm = DistMatrix::from_global(ctx, &grid, desc, &a);
            pdgemv_replicated(ctx, &grid, &dm, &x)
        });
        for y in out.results {
            for (a, b) in y.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }
}
