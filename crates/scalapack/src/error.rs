//! Factorisation errors.

use std::fmt;

/// LU factorisation failure, mirroring LAPACK's `INFO > 0` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// `U(col, col)` is exactly zero: the matrix is singular to working
    /// precision and the solve cannot proceed.
    Singular { col: usize },
    /// Cholesky hit a non-positive diagonal pivot: the matrix is not
    /// positive definite (LAPACK `dpotrf`'s `INFO > 0`).
    NotPositiveDefinite { col: usize },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::Singular { col } => {
                write!(f, "matrix is singular: zero pivot at column {col}")
            }
            LuError::NotPositiveDefinite { col } => {
                write!(
                    f,
                    "matrix is not positive definite: non-positive pivot at column {col}"
                )
            }
        }
    }
}

impl std::error::Error for LuError {}
