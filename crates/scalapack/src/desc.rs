//! Block-cyclic array descriptors (the `DESC` of ScaLAPACK) and the index
//! arithmetic (`numroc`, global↔local maps) everything else builds on.

/// Descriptor of a block-cyclically distributed `m × n` matrix with block
/// size `mb × nb` on a `nprow × npcol` grid, with the first block owned by
/// grid position (0, 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDesc {
    pub m: usize,
    pub n: usize,
    pub mb: usize,
    pub nb: usize,
    pub nprow: usize,
    pub npcol: usize,
}

/// `NUMROC`: number of rows/columns of a dimension of size `n`, blocked by
/// `nb`, owned by process `iproc` out of `nprocs`.
pub fn numroc(n: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    assert!(nb > 0 && nprocs > 0 && iproc < nprocs);
    let nblocks = n / nb;
    let mut count = (nblocks / nprocs) * nb;
    let extra = nblocks % nprocs;
    if iproc < extra {
        count += nb;
    } else if iproc == extra {
        count += n % nb;
    }
    count
}

/// Number of global indices `< g` owned by `iproc` — i.e. the local index
/// at which the range `g..` starts on that process. (Identical to `numroc`
/// applied to a dimension of size `g`.)
pub fn numroc_below(g: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    numroc(g, nb, iproc, nprocs)
}

/// Owning process of global index `g` (one dimension).
pub fn owner(g: usize, nb: usize, nprocs: usize) -> usize {
    (g / nb) % nprocs
}

/// Local index of global index `g` on its owner.
pub fn g2l(g: usize, nb: usize, nprocs: usize) -> usize {
    (g / (nb * nprocs)) * nb + g % nb
}

/// Global index of local index `l` on process `iproc`.
pub fn l2g(l: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    (l / nb) * nb * nprocs + iproc * nb + l % nb
}

impl BlockDesc {
    /// Square matrix with square blocks.
    pub fn square(n: usize, nb: usize, nprow: usize, npcol: usize) -> Self {
        Self {
            m: n,
            n,
            mb: nb,
            nb,
            nprow,
            npcol,
        }
    }

    /// Local row count for grid row `myrow`.
    pub fn local_rows(&self, myrow: usize) -> usize {
        numroc(self.m, self.mb, myrow, self.nprow)
    }

    /// Local column count for grid column `mycol`.
    pub fn local_cols(&self, mycol: usize) -> usize {
        numroc(self.n, self.nb, mycol, self.npcol)
    }

    /// Grid row owning global row `i`.
    pub fn row_owner(&self, i: usize) -> usize {
        owner(i, self.mb, self.nprow)
    }

    /// Grid column owning global column `j`.
    pub fn col_owner(&self, j: usize) -> usize {
        owner(j, self.nb, self.npcol)
    }

    /// Local row index of global row `i` (valid on its owner).
    pub fn lrow(&self, i: usize) -> usize {
        g2l(i, self.mb, self.nprow)
    }

    /// Local column index of global column `j` (valid on its owner).
    pub fn lcol(&self, j: usize) -> usize {
        g2l(j, self.nb, self.npcol)
    }

    /// Global row of local row `l` on grid row `myrow`.
    pub fn grow(&self, l: usize, myrow: usize) -> usize {
        l2g(l, self.mb, myrow, self.nprow)
    }

    /// Global column of local column `l` on grid column `mycol`.
    pub fn gcol(&self, l: usize, mycol: usize) -> usize {
        l2g(l, self.nb, mycol, self.npcol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numroc_partitions_exactly() {
        for (n, nb, p) in [(10, 2, 3), (100, 7, 4), (5, 8, 2), (64, 4, 8), (33, 5, 6)] {
            let total: usize = (0..p).map(|i| numroc(n, nb, i, p)).sum();
            assert_eq!(total, n, "numroc must partition n={n} nb={nb} p={p}");
        }
    }

    #[test]
    fn numroc_matches_reference_values() {
        // n=10, nb=2, p=3: blocks [0,1][2,3][4,5][6,7][8,9] → procs 0,1,2,0,1.
        assert_eq!(numroc(10, 2, 0, 3), 4);
        assert_eq!(numroc(10, 2, 1, 3), 4);
        assert_eq!(numroc(10, 2, 2, 3), 2);
    }

    #[test]
    fn global_local_roundtrip() {
        let nb = 3;
        let p = 4;
        for g in 0..50 {
            let o = owner(g, nb, p);
            let l = g2l(g, nb, p);
            assert_eq!(l2g(l, nb, o, p), g);
        }
    }

    #[test]
    fn local_indices_are_dense_per_owner() {
        let nb = 3;
        let p = 4;
        for proc in 0..p {
            let mut locals: Vec<usize> = (0..60)
                .filter(|&g| owner(g, nb, p) == proc)
                .map(|g| g2l(g, nb, p))
                .collect();
            locals.sort_unstable();
            for (expect, l) in locals.into_iter().enumerate() {
                assert_eq!(l, expect, "holes in local index space of proc {proc}");
            }
        }
    }

    #[test]
    fn desc_helpers_consistent() {
        let d = BlockDesc::square(29, 4, 2, 3);
        for i in 0..29 {
            let o = d.row_owner(i);
            assert_eq!(d.grow(d.lrow(i), o), i);
        }
        for j in 0..29 {
            let o = d.col_owner(j);
            assert_eq!(d.gcol(d.lcol(j), o), j);
        }
        let rows: usize = (0..2).map(|r| d.local_rows(r)).sum();
        let cols: usize = (0..3).map(|c| d.local_cols(c)).sum();
        assert_eq!(rows, 29);
        assert_eq!(cols, 29);
    }
}
