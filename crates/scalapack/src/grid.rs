//! BLACS-style 2-D process grid over a simulated MPI communicator.

use greenla_mpi::{Comm, RankCtx};

/// A `nprow × npcol` process grid with row-major rank ordering (BLACS
/// default): grid position of communicator index `r` is
/// `(r / npcol, r % npcol)`.
pub struct ProcessGrid {
    nprow: usize,
    npcol: usize,
    myrow: usize,
    mycol: usize,
    /// All processes with my grid row (ordered by column).
    row_comm: Comm,
    /// All processes with my grid column (ordered by row).
    col_comm: Comm,
    /// The full grid.
    all: Comm,
}

impl ProcessGrid {
    /// Build a grid over `comm`; `comm.size()` must equal
    /// `nprow × npcol`. Collective over `comm`.
    pub fn new(ctx: &mut RankCtx, comm: &Comm, nprow: usize, npcol: usize) -> Self {
        assert_eq!(comm.size(), nprow * npcol, "grid shape mismatch");
        let me = comm.rank();
        let myrow = me / npcol;
        let mycol = me % npcol;
        let row_comm = ctx.split(comm, myrow as u64, mycol as u64);
        let col_comm = ctx.split(comm, (nprow as u64) + mycol as u64, myrow as u64);
        Self {
            nprow,
            npcol,
            myrow,
            mycol,
            row_comm,
            col_comm,
            all: comm.clone(),
        }
    }

    /// Most-square factorisation `nprow × npcol = p` with `nprow ≤ npcol`
    /// (ScaLAPACK's usual recommendation).
    pub fn square_shape(p: usize) -> (usize, usize) {
        assert!(p > 0);
        let mut best = (1, p);
        let mut r = 1;
        while r * r <= p {
            if p.is_multiple_of(r) {
                best = (r, p / r);
            }
            r += 1;
        }
        best
    }

    pub fn nprow(&self) -> usize {
        self.nprow
    }

    pub fn npcol(&self) -> usize {
        self.npcol
    }

    pub fn myrow(&self) -> usize {
        self.myrow
    }

    pub fn mycol(&self) -> usize {
        self.mycol
    }

    /// Communicator spanning my grid row (size `npcol`, my index `mycol`).
    pub fn row_comm(&self) -> &Comm {
        &self.row_comm
    }

    /// Communicator spanning my grid column (size `nprow`, my index
    /// `myrow`).
    pub fn col_comm(&self) -> &Comm {
        &self.col_comm
    }

    /// The whole-grid communicator.
    pub fn all(&self) -> &Comm {
        &self.all
    }

    /// Grid coordinates of a communicator index.
    pub fn coords_of(&self, index: usize) -> (usize, usize) {
        (index / self.npcol, index % self.npcol)
    }

    /// Communicator index of grid coordinates.
    pub fn index_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.nprow && col < self.npcol);
        row * self.npcol + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::Machine;

    #[test]
    fn square_shapes() {
        assert_eq!(ProcessGrid::square_shape(1), (1, 1));
        assert_eq!(ProcessGrid::square_shape(4), (2, 2));
        assert_eq!(ProcessGrid::square_shape(6), (2, 3));
        assert_eq!(ProcessGrid::square_shape(7), (1, 7));
        assert_eq!(ProcessGrid::square_shape(144), (12, 12));
        assert_eq!(ProcessGrid::square_shape(1296), (36, 36));
    }

    #[test]
    fn grid_communicators_have_right_shape() {
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::packed(&spec.node, 8).unwrap();
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), 1).unwrap();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 4);
            (
                grid.myrow(),
                grid.mycol(),
                grid.row_comm().size(),
                grid.row_comm().rank(),
                grid.col_comm().size(),
                grid.col_comm().rank(),
            )
        });
        for (r, &(myrow, mycol, rsz, rrk, csz, crk)) in out.results.iter().enumerate() {
            assert_eq!(myrow, r / 4);
            assert_eq!(mycol, r % 4);
            assert_eq!(rsz, 4);
            assert_eq!(rrk, mycol);
            assert_eq!(csz, 2);
            assert_eq!(crk, myrow);
        }
    }
}
