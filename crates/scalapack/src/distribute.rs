//! Block-cyclic local storage and (re)distribution.

use crate::desc::BlockDesc;
use crate::grid::ProcessGrid;
use greenla_linalg::Matrix;
use greenla_mpi::RankCtx;

/// The local part of a block-cyclically distributed matrix on one process.
pub struct DistMatrix {
    pub desc: BlockDesc,
    pub myrow: usize,
    pub mycol: usize,
    /// `local_rows × local_cols` column-major block.
    pub local: Matrix,
}

impl DistMatrix {
    /// Allocate an all-zero local part.
    pub fn zeros(grid: &ProcessGrid, desc: BlockDesc) -> Self {
        let myrow = grid.myrow();
        let mycol = grid.mycol();
        Self {
            desc,
            myrow,
            mycol,
            local: Matrix::zeros(desc.local_rows(myrow), desc.local_cols(mycol)),
        }
    }

    /// Fill the local part from a replicated global matrix (the paper loads
    /// the input system from a file visible to every rank, so distribution
    /// is a local copy). Charges the allocation-phase memory traffic.
    pub fn from_global(ctx: &mut RankCtx, grid: &ProcessGrid, desc: BlockDesc, a: &Matrix) -> Self {
        assert_eq!(
            (a.rows(), a.cols()),
            (desc.m, desc.n),
            "global shape mismatch"
        );
        let mut dm = Self::zeros(grid, desc);
        for lj in 0..dm.local.cols() {
            let gj = desc.gcol(lj, dm.mycol);
            for li in 0..dm.local.rows() {
                let gi = desc.grow(li, dm.myrow);
                dm.local[(li, lj)] = a[(gi, gj)];
            }
        }
        // Allocation phase: the local block is written once, the source read
        // once.
        ctx.touch_memory(2 * 8 * (dm.local.rows() * dm.local.cols()) as u64);
        dm
    }

    /// Number of my local rows whose global index is `< g`.
    pub fn local_rows_below(&self, g: usize) -> usize {
        crate::desc::numroc_below(g, self.desc.mb, self.myrow, self.desc.nprow)
    }

    /// Number of my local columns whose global index is `< g`.
    pub fn local_cols_below(&self, g: usize) -> usize {
        crate::desc::numroc_below(g, self.desc.nb, self.mycol, self.desc.npcol)
    }

    /// Value at global coordinates (must be owned by this process).
    pub fn at_global(&self, gi: usize, gj: usize) -> f64 {
        debug_assert_eq!(self.desc.row_owner(gi), self.myrow);
        debug_assert_eq!(self.desc.col_owner(gj), self.mycol);
        self.local[(self.desc.lrow(gi), self.desc.lcol(gj))]
    }

    /// Gather the distributed matrix to the grid's rank 0 (communicator
    /// index 0 of `grid.all()`), which returns the assembled global matrix.
    pub fn gather_to_root(&self, ctx: &mut RankCtx, grid: &ProcessGrid) -> Option<Matrix> {
        // The root only reads each chunk while scattering it into the
        // assembled matrix, so it borrows the senders' allocations.
        let chunks = ctx.gather_shared_f64(grid.all(), 0, self.local.as_slice())?;
        let desc = self.desc;
        let mut out = Matrix::zeros(desc.m, desc.n);
        for (idx, chunk) in chunks.iter().enumerate() {
            let (prow, pcol) = grid.coords_of(idx);
            let lr = desc.local_rows(prow);
            let lc = desc.local_cols(pcol);
            assert_eq!(chunk.len(), lr * lc, "chunk shape from grid index {idx}");
            for lj in 0..lc {
                let gj = desc.gcol(lj, pcol);
                for li in 0..lr {
                    let gi = desc.grow(li, prow);
                    out[(gi, gj)] = chunk[li + lj * lr];
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::Machine;

    fn run_on(ranks: usize, f: impl Fn(&mut RankCtx) -> bool + Sync) {
        let spec = ClusterSpec::test_cluster(4, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), 3).unwrap();
        let out = machine.run(f);
        assert!(out.results.into_iter().all(|ok| ok));
    }

    #[test]
    fn distribute_then_gather_roundtrips() {
        run_on(8, |ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 4);
            let a = Matrix::from_fn(13, 13, |i, j| (i * 100 + j) as f64);
            let desc = BlockDesc::square(13, 3, 2, 4);
            let dm = DistMatrix::from_global(ctx, &grid, desc, &a);
            match dm.gather_to_root(ctx, &grid) {
                Some(back) => back == a,
                None => true,
            }
        });
    }

    #[test]
    fn local_shapes_partition_global() {
        run_on(4, |ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 2);
            let desc = BlockDesc::square(10, 3, 2, 2);
            let dm = DistMatrix::zeros(&grid, desc);
            let rows_total = ctx.allreduce_sum_f64(grid.col_comm(), &[dm.local.rows() as f64]);
            let cols_total = ctx.allreduce_sum_f64(grid.row_comm(), &[dm.local.cols() as f64]);
            rows_total[0] as usize == 10 && cols_total[0] as usize == 10
        });
    }

    #[test]
    fn local_rows_below_counts_correctly() {
        run_on(4, |ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 2);
            let desc = BlockDesc::square(12, 2, 2, 2);
            let dm = DistMatrix::zeros(&grid, desc);
            // Count by brute force and compare.
            (0..=12).all(|g| {
                let brute = (0..g).filter(|&gi| desc.row_owner(gi) == dm.myrow).count();
                dm.local_rows_below(g) == brute
            })
        });
    }
}
