//! Sequential triangular solves after `getrf` (`dgetrs`) for one
//! right-hand side.

use greenla_linalg::blas2::{dtrsv_lower_unit, dtrsv_upper};
use greenla_linalg::permutation::apply_ipiv_forward;
use greenla_linalg::Matrix;

/// Solve `A·x = b` given the factorisation produced by
/// [`crate::getrf::getrf`]; `b` is overwritten with `x`.
pub fn getrs(lu: &Matrix, ipiv: &[usize], b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(ipiv.len(), n, "ipiv length mismatch");
    apply_ipiv_forward(ipiv, b);
    dtrsv_lower_unit(n, lu.as_slice(), lu.ld(), b);
    dtrsv_upper(n, lu.as_slice(), lu.ld(), b);
}

/// Convenience: factor and solve in one call (LAPACK `dgesv`).
pub fn gesv(a: &Matrix, b: &[f64], nb: usize) -> Result<Vec<f64>, crate::error::LuError> {
    let mut lu = a.clone();
    let ipiv = crate::getrf::getrf(&mut lu, nb)?;
    let mut x = b.to_vec();
    getrs(&lu, &ipiv, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_linalg::generate;

    #[test]
    fn gesv_end_to_end() {
        for (n, seed) in [(10, 1), (37, 2), (64, 3)] {
            let sys = generate::diag_dominant(n, seed);
            let x = gesv(&sys.a, &sys.b, 16).unwrap();
            assert!(sys.residual(&x) < 1e-12);
        }
    }

    #[test]
    fn gesv_on_poisson_grid() {
        let sys = generate::poisson2d(7, 0);
        let x = gesv(&sys.a, &sys.b, 8).unwrap();
        assert!(sys.residual(&x) < 1e-13);
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(5);
        let b = vec![5.0, -1.0, 0.5, 2.0, 3.0];
        let x = gesv(&a, &b, 2).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn mismatched_rhs_panics() {
        let a = Matrix::identity(3);
        let mut lu = a.clone();
        let ipiv = crate::getrf::getrf(&mut lu, 2).unwrap();
        let mut b = vec![1.0; 2];
        getrs(&lu, &ipiv, &mut b);
    }
}
