#![forbid(unsafe_code)]
//! # greenla-scalapack
//!
//! A from-scratch "ScaLAPACK-lite": dense LU factorisation with partial
//! pivoting and the matching triangular solves, in both sequential blocked
//! form (`getrf`/`getrs`, the LAPACK layer) and distributed form over a
//! BLACS-style 2-D process grid with block-cyclic data distribution
//! (`pdgetrf`/`pdgetrs`/`pdgesv`), running on the `greenla-mpi` simulated
//! runtime.
//!
//! The distributed algorithm is the textbook right-looking ScaLAPACK
//! formulation: per panel, pivot search via MAXLOC reductions down the
//! process column, row swaps, panel broadcast along the process row, row
//! interchanges on the trailing matrix, a triangular solve for the U block
//! row broadcast down process columns, and a local GEMM trailing update —
//! so its communication volume, message count and critical path reproduce
//! the real library's behaviour on the simulated interconnect.

pub mod desc;
pub mod distribute;
pub mod error;
pub mod getrf;
pub mod getrs;
pub mod grid;
pub mod pblas;
pub mod pdgesv;
pub mod pdgetrf;
pub mod pdgetrs;
pub mod pdpotrf;
pub mod potrf;

pub use desc::BlockDesc;
pub use error::LuError;
pub use grid::ProcessGrid;
