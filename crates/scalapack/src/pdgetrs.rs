//! Distributed triangular solves after [`crate::pdgetrf::pdgetrf`]
//! (`pdgetrs`) for one right-hand side.
//!
//! The right-hand side is replicated on every process (it is `O(n)` data
//! against the `O(n²/P)` matrix). Block rows are solved in sequence: the
//! owning grid row forms its partial sums locally, combines them with an
//! allreduce along the process row, the diagonal-block owner finishes the
//! small triangular solve, and the solved block is re-broadcast to every
//! grid row — the same dataflow as the reference `pdtrsm`-based solve.

use crate::distribute::DistMatrix;
use crate::grid::ProcessGrid;
use greenla_linalg::flops;
use greenla_linalg::permutation::apply_ipiv_forward;
use greenla_mpi::RankCtx;

/// Solve `A·x = b` given distributed LU factors and the replicated pivot
/// vector; `b` (replicated) is overwritten with `x` on every process.
pub fn pdgetrs(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    a: &DistMatrix,
    ipiv: &[usize],
    b: &mut [f64],
) {
    let d = a.desc;
    let n = d.n;
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(ipiv.len(), n, "ipiv length mismatch");
    let myrow = grid.myrow();
    let mycol = grid.mycol();
    let nb = d.nb;
    let nblocks = n.div_ceil(nb);

    apply_ipiv_forward(ipiv, b);

    // ----- forward solve: L·y = P·b (unit lower) -----
    for bk in 0..nblocks {
        let r0 = bk * nb;
        let r1 = n.min(r0 + nb);
        let kb = r1 - r0;
        let prow_bk = d.row_owner(r0);
        let pcol_bk = d.col_owner(r0);
        if myrow == prow_bk {
            let lr0 = d.lrow(r0);
            // Partial sums over my columns strictly left of the block.
            let lc_end = a.local_cols_below(r0);
            let mut partial = vec![0.0; kb];
            for lj in 0..lc_end {
                let gj = d.gcol(lj, mycol);
                let yj = b[gj];
                if yj != 0.0 {
                    for (i, p) in partial.iter_mut().enumerate() {
                        *p += a.local[(lr0 + i, lj)] * yj;
                    }
                }
            }
            ctx.compute(flops::dgemv(kb, lc_end), flops::bytes_f64(kb * lc_end));
            let row_comm = grid.row_comm().clone();
            let summed = ctx.allreduce_sum_f64(&row_comm, &partial);
            let mut z: Vec<f64> = (0..kb).map(|i| b[r0 + i] - summed[i]).collect();
            if mycol == pcol_bk {
                // Unit-lower solve on the diagonal block.
                let lc0 = d.lcol(r0);
                for jj in 0..kb {
                    let zj = z[jj];
                    if zj != 0.0 {
                        for (ii, zi) in z.iter_mut().enumerate().skip(jj + 1) {
                            *zi -= a.local[(lr0 + ii, lc0 + jj)] * zj;
                        }
                    }
                }
                ctx.compute(flops::dtrsm(kb, 1), 0);
            }
            ctx.bcast_f64(&row_comm, pcol_bk, &mut z);
            b[r0..r1].copy_from_slice(&z);
        }
        // Propagate the solved block to every grid row.
        let col_comm = grid.col_comm().clone();
        let mut zz = if myrow == prow_bk {
            b[r0..r1].to_vec()
        } else {
            Vec::new()
        };
        ctx.bcast_f64(&col_comm, prow_bk, &mut zz);
        if myrow != prow_bk {
            b[r0..r1].copy_from_slice(&zz);
        }
    }

    // ----- backward solve: U·x = y (non-unit upper) -----
    for bk in (0..nblocks).rev() {
        let r0 = bk * nb;
        let r1 = n.min(r0 + nb);
        let kb = r1 - r0;
        let prow_bk = d.row_owner(r0);
        let pcol_bk = d.col_owner(r0);
        if myrow == prow_bk {
            let lr0 = d.lrow(r0);
            // Partial sums over my columns strictly right of the block.
            let lc_start = a.local_cols_below(r1);
            let ncols = a.local.cols() - lc_start;
            let mut partial = vec![0.0; kb];
            for lj in lc_start..a.local.cols() {
                let gj = d.gcol(lj, mycol);
                let yj = b[gj];
                if yj != 0.0 {
                    for (i, p) in partial.iter_mut().enumerate() {
                        *p += a.local[(lr0 + i, lj)] * yj;
                    }
                }
            }
            ctx.compute(flops::dgemv(kb, ncols), flops::bytes_f64(kb * ncols));
            let row_comm = grid.row_comm().clone();
            let summed = ctx.allreduce_sum_f64(&row_comm, &partial);
            let mut z: Vec<f64> = (0..kb).map(|i| b[r0 + i] - summed[i]).collect();
            if mycol == pcol_bk {
                // Non-unit upper solve on the diagonal block.
                let lc0 = d.lcol(r0);
                for jj in (0..kb).rev() {
                    let diag = a.local[(lr0 + jj, lc0 + jj)];
                    assert!(
                        diag != 0.0,
                        "zero diagonal slipped past pdgetrf at {}",
                        r0 + jj
                    );
                    z[jj] /= diag;
                    let zj = z[jj];
                    for (ii, zi) in z.iter_mut().enumerate().take(jj) {
                        *zi -= a.local[(lr0 + ii, lc0 + jj)] * zj;
                    }
                }
                ctx.compute(flops::dtrsm(kb, 1), 0);
            }
            ctx.bcast_f64(&row_comm, pcol_bk, &mut z);
            b[r0..r1].copy_from_slice(&z);
        }
        let col_comm = grid.col_comm().clone();
        let mut zz = if myrow == prow_bk {
            b[r0..r1].to_vec()
        } else {
            Vec::new()
        };
        ctx.bcast_f64(&col_comm, prow_bk, &mut zz);
        if myrow != prow_bk {
            b[r0..r1].copy_from_slice(&zz);
        }
    }
}
