//! Sequential blocked LU factorisation with partial pivoting (`dgetrf`).
//!
//! Right-looking algorithm: factor an `nb`-wide panel with unblocked
//! eliminations and immediate full-row swaps, then a triangular solve for
//! the U block row and a GEMM trailing update. Identical pivot choices to
//! LAPACK (first maximal |entry|), so results are comparable element-wise
//! against any reference.

use crate::error::LuError;
use greenla_linalg::blas1::idamax;
use greenla_linalg::blas3::{dgemm, dtrsm_left_lower_unit};
use greenla_linalg::{BlockMut, BlockRef, Matrix};

/// Default panel width.
pub const DEFAULT_NB: usize = 64;

/// Factor `A = P·L·U` in place. On success `a` holds L (unit lower, below
/// the diagonal) and U (upper); returns the LAPACK-style pivot vector
/// `ipiv` (`ipiv[k] = p` means rows `k` and `p` were swapped at step `k`).
pub fn getrf(a: &mut Matrix, nb: usize) -> Result<Vec<usize>, LuError> {
    assert!(a.is_square(), "LU needs a square matrix");
    assert!(nb > 0, "panel width must be positive");
    let n = a.rows();
    let ld = a.ld();
    let mut ipiv = vec![0usize; n];

    for k in (0..n).step_by(nb) {
        let kb = nb.min(n - k);
        // --- panel factorisation (columns k .. k+kb), unblocked ---
        for j in k..k + kb {
            let p = {
                let col = a.col(j);
                j + idamax(&col[j..n])
            };
            if a[(p, j)] == 0.0 {
                return Err(LuError::Singular { col: j });
            }
            ipiv[j] = p;
            a.swap_rows(j, p, 0, n);
            let piv = a[(j, j)];
            // scale multipliers and rank-1 update within the panel
            for i in j + 1..n {
                a[(i, j)] /= piv;
            }
            for jj in j + 1..k + kb {
                let ajj = a[(j, jj)];
                if ajj != 0.0 {
                    for i in j + 1..n {
                        let lij = a[(i, j)];
                        a[(i, jj)] -= lij * ajj;
                    }
                }
            }
        }
        let rest = k + kb;
        if rest < n {
            // --- U block row: A[k..k+kb, rest..n] ← L11⁻¹ · A12 ---
            let l11: Vec<f64> = {
                let mut buf = vec![0.0; kb * kb];
                for j in 0..kb {
                    for i in 0..kb {
                        buf[i + j * kb] = a[(k + i, k + j)];
                    }
                }
                buf
            };
            {
                // Columns rest..n, rows k..k+kb live at offset k + rest*ld.
                let s = a.as_mut_slice();
                let sub = &mut s[k + rest * ld..];
                dtrsm_left_lower_unit(kb, n - rest, &l11, kb, sub, ld);
            }
            // --- trailing update: A22 -= L21 · U12 ---
            let m2 = n - rest;
            let l21: Vec<f64> = {
                let mut buf = vec![0.0; m2 * kb];
                for j in 0..kb {
                    for i in 0..m2 {
                        buf[i + j * m2] = a[(rest + i, k + j)];
                    }
                }
                buf
            };
            let u12: Vec<f64> = {
                let mut buf = vec![0.0; kb * m2];
                for j in 0..m2 {
                    for i in 0..kb {
                        buf[i + j * kb] = a[(k + i, rest + j)];
                    }
                }
                buf
            };
            let s = a.as_mut_slice();
            let sub = &mut s[rest + rest * ld..];
            dgemm(
                -1.0,
                BlockRef::new(&l21, m2, kb, m2),
                BlockRef::new(&u12, kb, m2, kb),
                1.0,
                BlockMut::new(sub, m2, m2, ld),
            );
        }
    }
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getrs::getrs;
    use greenla_linalg::generate;

    fn check_solution(n: usize, seed: u64, nb: usize) {
        let sys = generate::diag_dominant(n, seed);
        let mut lu = sys.a.clone();
        let ipiv = getrf(&mut lu, nb).unwrap();
        let mut x = sys.b.clone();
        getrs(&lu, &ipiv, &mut x);
        assert!(
            sys.residual(&x) < 1e-12,
            "residual {} for n={n} nb={nb}",
            sys.residual(&x)
        );
        assert!(sys.error_vs_ref(&x).unwrap() < 1e-8);
    }

    #[test]
    fn solves_small_systems() {
        for n in [1, 2, 3, 5, 8] {
            check_solution(n, 7, 4);
        }
    }

    #[test]
    fn solves_across_block_sizes() {
        for nb in [1, 2, 3, 8, 17, 64, 200] {
            check_solution(50, 3, nb);
        }
    }

    #[test]
    fn solves_medium_system() {
        check_solution(150, 11, 32);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // A = [[0, 1], [1, 0]] is perfectly solvable with pivoting.
        let mut a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ipiv = getrf(&mut a, 2).unwrap();
        assert_eq!(ipiv[0], 1, "must have pivoted row 0 with row 1");
    }

    #[test]
    fn detects_singular_matrix() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(getrf(&mut a, 2), Err(LuError::Singular { col: 1 }));
    }

    #[test]
    fn pivot_choice_matches_unblocked_reference() {
        // Blocked and nb=1 unblocked factorizations must agree exactly.
        let sys = generate::circuit_network(40, 5);
        let mut a1 = sys.a.clone();
        let mut a2 = sys.a.clone();
        let p1 = getrf(&mut a1, 1).unwrap();
        let p2 = getrf(&mut a2, 16).unwrap();
        assert_eq!(p1, p2);
        for j in 0..40 {
            for i in 0..40 {
                assert!(
                    (a1[(i, j)] - a2[(i, j)]).abs() < 1e-10,
                    "LU factors diverge at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn lu_reconstructs_permuted_matrix() {
        let sys = generate::spd(12, 9);
        let mut lu = sys.a.clone();
        let ipiv = getrf(&mut lu, 4).unwrap();
        // Build P·A by applying recorded swaps to a copy of A.
        let mut pa = sys.a.clone();
        for (k, &p) in ipiv.iter().enumerate() {
            pa.swap_rows(k, p, 0, 12);
        }
        // Multiply L·U and compare.
        for i in 0..12 {
            for j in 0..12 {
                // (L·U)(i,j) = Σ_{k ≤ min(i,j)} L(i,k)·U(k,j), L unit-diagonal.
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let lik = if k == i { 1.0 } else { lu[(i, k)] };
                    s += lik * lu[(k, j)];
                }
                assert!(
                    (s - pa[(i, j)]).abs() < 1e-9 * (1.0 + pa[(i, j)].abs()),
                    "PA ≠ LU at ({i},{j}): {s} vs {}",
                    pa[(i, j)]
                );
            }
        }
    }
}
