//! Distributed Cholesky factorisation and solve (`pdpotrf`/`pdpotrs`,
//! lower variant) over the 2-D block-cyclic layout.
//!
//! Right-looking and pivot-free: per panel, the diagonal-block owner
//! factors `L11` locally and broadcasts it down its process column; the
//! panel column computes `L21 = A21·L11⁻ᵀ`; the panel is then replicated
//! (each grid row's slice gathered and re-broadcast) so every process can
//! apply the symmetric trailing update `A22 −= L21·L21ᵀ` to its local
//! block. No pivot search means no per-column synchronisation — the
//! structural reason Cholesky scales better than LU, visible directly in
//! the simulator's virtual times.

use crate::desc::BlockDesc;
use crate::distribute::DistMatrix;
use crate::error::LuError;
use crate::grid::ProcessGrid;
use greenla_linalg::blas3::dgemm;
use greenla_linalg::flops;
use greenla_linalg::generate::LinearSystem;
use greenla_linalg::{BlockMut, BlockRef};
use greenla_mpi::{Comm, RankCtx};

/// Factor the distributed SPD matrix in place (lower triangle).
pub fn pdpotrf(ctx: &mut RankCtx, grid: &ProcessGrid, a: &mut DistMatrix) -> Result<(), LuError> {
    let d: BlockDesc = a.desc;
    assert_eq!(d.m, d.n, "pdpotrf needs a square matrix");
    assert_eq!(d.mb, d.nb, "pdpotrf needs square blocks");
    let n = d.n;
    let nb = d.nb;
    let myrow = grid.myrow();
    let mycol = grid.mycol();

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        let pcol_k = d.col_owner(k);
        let prow_k = d.row_owner(k);

        // ----- diagonal block: local Cholesky on its owner -----
        let mut l11 = vec![0.0; kb * kb + 1]; // slot 0 = status flag
        if myrow == prow_k && mycol == pcol_k {
            let (lr0, lc0) = (d.lrow(k), d.lcol(k));
            let mut blk =
                greenla_linalg::Matrix::from_fn(kb, kb, |i, j| a.local[(lr0 + i, lc0 + j)]);
            match crate::potrf::potrf(&mut blk) {
                Ok(()) => {
                    l11[0] = -1.0; // ok marker
                    for j in 0..kb {
                        for i in 0..kb {
                            l11[1 + i + j * kb] = blk[(i, j)];
                            if i >= j {
                                a.local[(lr0 + i, lc0 + j)] = blk[(i, j)];
                            }
                        }
                    }
                    ctx.compute(
                        (kb * kb * kb) as u64 / 3 + (kb * kb) as u64,
                        flops::bytes_f64(kb * kb),
                    );
                }
                Err(LuError::NotPositiveDefinite { col }) => l11[0] = (k + col) as f64,
                Err(_) => unreachable!("potrf only reports definiteness"),
            }
        }
        // Broadcast L11 (with status) down the panel's process column, then
        // along rows so every rank learns about failure coherently.
        if mycol == pcol_k {
            let col_comm = grid.col_comm().clone();
            ctx.bcast_f64(&col_comm, prow_k, &mut l11);
        }
        let row_comm = grid.row_comm().clone();
        ctx.bcast_f64(&row_comm, pcol_k, &mut l11);
        if l11[0] >= 0.0 {
            return Err(LuError::NotPositiveDefinite {
                col: l11[0] as usize,
            });
        }
        let l11 = &l11[1..];

        // ----- panel: L21 = A21 · L11⁻ᵀ on the panel's process column -----
        let rest = k + kb;
        if mycol == pcol_k {
            let lr_start = a.local_rows_below(rest);
            let m2 = a.local.rows() - lr_start;
            if m2 > 0 {
                // Row i of L21 solves L11 · (L21 row)ᵀ = (A21 row)ᵀ.
                for li in lr_start..a.local.rows() {
                    for j in 0..kb {
                        let lj = d.lcol(k + j);
                        let mut s = a.local[(li, lj)];
                        for t in 0..j {
                            s -= a.local[(li, d.lcol(k + t))] * l11[j + t * kb];
                        }
                        a.local[(li, lj)] = s / l11[j + j * kb];
                    }
                }
                ctx.compute(flops::dtrsm(kb, m2), flops::bytes_f64(m2 * kb));
            }
        }

        if rest < n {
            // ----- replicate the panel: every process needs L21 rows for
            // both its local rows (left operand) and the global indices of
            // its local columns (right, transposed operand) -----
            let my_slice: Vec<f64> = if mycol == pcol_k {
                let lr_start = a.local_rows_below(rest);
                let mut v = Vec::with_capacity((a.local.rows() - lr_start) * kb);
                for li in lr_start..a.local.rows() {
                    for j in 0..kb {
                        v.push(a.local[(li, d.lcol(k + j))]);
                    }
                }
                v
            } else {
                Vec::new()
            };
            // Combined size is communicator-uniform (every rank can compute
            // it), so the allgather may switch algorithms by payload size.
            let all = ctx.allgather_sized_f64(grid.all(), &my_slice, (n - rest) * kb);
            // Assemble L21 by global row: chunk from grid position
            // (r, pcol_k) holds grid-row r's rows ≥ rest in local order.
            let mut l21_by_global = vec![0.0; (n - rest) * kb];
            for (idx, chunk) in all.iter().enumerate() {
                let (prow, pcol) = grid.coords_of(idx);
                if pcol != pcol_k || chunk.is_empty() {
                    continue;
                }
                let mut t = 0;
                for li in 0..d.local_rows(prow) {
                    let g = d.grow(li, prow);
                    if g < rest {
                        continue;
                    }
                    for j in 0..kb {
                        l21_by_global[(g - rest) * kb + j] = chunk[t * kb + j];
                    }
                    t += 1;
                }
            }

            // ----- symmetric trailing update: A22 −= L21 · L21ᵀ, lower
            // triangle only (global row ≥ global column), per local
            // column with its own row cutoff -----
            let lc_start = a.local_cols_below(rest);
            let mut charged_flops = 0u64;
            let mut charged_elems = 0usize;
            for lj in lc_start..a.local.cols() {
                let gj = d.gcol(lj, mycol);
                let lr_cut = a.local_rows_below(gj); // my rows with global ≥ gj
                let mj = a.local.rows() - lr_cut;
                if mj == 0 {
                    continue;
                }
                // Left operand: my rows' L21 slice from the cutoff (mj × kb).
                let mut lrows = vec![0.0; mj * kb];
                for (t, li) in (lr_cut..a.local.rows()).enumerate() {
                    let g = d.grow(li, myrow) - rest;
                    for j in 0..kb {
                        lrows[t + j * mj] = l21_by_global[g * kb + j];
                    }
                }
                // Right operand: this column's L21 row as a kb × 1 block.
                let gjr = gj - rest;
                let lcol: Vec<f64> = (0..kb).map(|j| l21_by_global[gjr * kb + j]).collect();
                let ld = a.local.ld();
                let s = a.local.as_mut_slice();
                let sub = &mut s[lr_cut + lj * ld..];
                dgemm(
                    -1.0,
                    BlockRef::new(&lrows, mj, kb, mj),
                    BlockRef::new(&lcol, kb, 1, kb),
                    1.0,
                    BlockMut::new(sub, mj, 1, ld),
                );
                charged_flops += flops::dgemm(mj, 1, kb);
                charged_elems += mj * kb + kb + mj;
            }
            if charged_flops > 0 {
                ctx.compute(
                    charged_flops,
                    flops::bytes_f64(charged_elems) / crate::pdgetrf::GEMM_CACHE_REUSE,
                );
            }
        }
        k += kb;
    }
    Ok(())
}

/// Solve `A·x = b` from the distributed lower Cholesky factor; `b`
/// (replicated) is overwritten with `x` on every process.
pub fn pdpotrs(ctx: &mut RankCtx, grid: &ProcessGrid, a: &DistMatrix, b: &mut [f64]) {
    let d = a.desc;
    let n = d.n;
    assert_eq!(b.len(), n, "rhs length mismatch");
    let myrow = grid.myrow();
    let mycol = grid.mycol();
    let nb = d.nb;
    let nblocks = n.div_ceil(nb);

    // ----- forward: L·y = b (non-unit diagonal), row-oriented like pdgetrs -----
    for bk in 0..nblocks {
        let r0 = bk * nb;
        let r1 = n.min(r0 + nb);
        let kb = r1 - r0;
        let prow_bk = d.row_owner(r0);
        let pcol_bk = d.col_owner(r0);
        if myrow == prow_bk {
            let lr0 = d.lrow(r0);
            let lc_end = a.local_cols_below(r0);
            let mut partial = vec![0.0; kb];
            for lj in 0..lc_end {
                let gj = d.gcol(lj, mycol);
                let yj = b[gj];
                if yj != 0.0 {
                    for (i, p) in partial.iter_mut().enumerate() {
                        *p += a.local[(lr0 + i, lj)] * yj;
                    }
                }
            }
            ctx.compute(flops::dgemv(kb, lc_end), flops::bytes_f64(kb * lc_end));
            let row_comm = grid.row_comm().clone();
            let summed = ctx.allreduce_sum_f64(&row_comm, &partial);
            let mut z: Vec<f64> = (0..kb).map(|i| b[r0 + i] - summed[i]).collect();
            if mycol == pcol_bk {
                let lc0 = d.lcol(r0);
                for jj in 0..kb {
                    z[jj] /= a.local[(lr0 + jj, lc0 + jj)];
                    let zj = z[jj];
                    for (ii, zi) in z.iter_mut().enumerate().skip(jj + 1) {
                        *zi -= a.local[(lr0 + ii, lc0 + jj)] * zj;
                    }
                }
                ctx.compute(flops::dtrsm(kb, 1), 0);
            }
            ctx.bcast_f64(&row_comm, pcol_bk, &mut z);
            b[r0..r1].copy_from_slice(&z);
        }
        let col_comm = grid.col_comm().clone();
        let mut zz = if myrow == prow_bk {
            b[r0..r1].to_vec()
        } else {
            Vec::new()
        };
        ctx.bcast_f64(&col_comm, prow_bk, &mut zz);
        if myrow != prow_bk {
            b[r0..r1].copy_from_slice(&zz);
        }
    }

    // ----- backward: Lᵀ·x = y — column-oriented (Lᵀ's rows are L's
    // columns, so the partials run over my local ROWS below the block and
    // reduce down process COLUMNS) -----
    for bk in (0..nblocks).rev() {
        let r0 = bk * nb;
        let r1 = n.min(r0 + nb);
        let kb = r1 - r0;
        let prow_bk = d.row_owner(r0);
        let pcol_bk = d.col_owner(r0);
        if mycol == pcol_bk {
            let lc0 = d.lcol(r0);
            let lr_start = a.local_rows_below(r1);
            let nrows = a.local.rows() - lr_start;
            let mut partial = vec![0.0; kb];
            for li in lr_start..a.local.rows() {
                let gi = d.grow(li, myrow);
                let xi = b[gi];
                if xi != 0.0 {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += a.local[(li, lc0 + j)] * xi;
                    }
                }
            }
            ctx.compute(flops::dgemv(kb, nrows), flops::bytes_f64(kb * nrows));
            let col_comm = grid.col_comm().clone();
            let summed = ctx.allreduce_sum_f64(&col_comm, &partial);
            let mut z: Vec<f64> = (0..kb).map(|j| b[r0 + j] - summed[j]).collect();
            if myrow == prow_bk {
                let lr0 = d.lrow(r0);
                for jj in (0..kb).rev() {
                    z[jj] /= a.local[(lr0 + jj, lc0 + jj)];
                    let zj = z[jj];
                    for (ii, zi) in z.iter_mut().enumerate().take(jj) {
                        *zi -= a.local[(lr0 + jj, lc0 + ii)] * zj;
                    }
                }
                ctx.compute(flops::dtrsm(kb, 1), 0);
            }
            ctx.bcast_f64(&col_comm, prow_bk, &mut z);
            b[r0..r1].copy_from_slice(&z);
        }
        let row_comm = grid.row_comm().clone();
        let mut zz = if mycol == pcol_bk {
            b[r0..r1].to_vec()
        } else {
            Vec::new()
        };
        ctx.bcast_f64(&row_comm, pcol_bk, &mut zz);
        if mycol != pcol_bk {
            b[r0..r1].copy_from_slice(&zz);
        }
    }
}

/// Distributed factor-and-solve for SPD systems (`pdposv`).
pub fn pdposv(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    nb: usize,
) -> Result<Vec<f64>, LuError> {
    let (nprow, npcol) = ProcessGrid::square_shape(comm.size());
    let grid = ProcessGrid::new(ctx, comm, nprow, npcol);
    let n = sys.n();
    let nb = nb.max(1).min(n);
    let desc = BlockDesc::square(n, nb, grid.nprow(), grid.npcol());
    let mut a = DistMatrix::from_global(ctx, &grid, desc, &sys.a);
    pdpotrf(ctx, &grid, &mut a)?;
    let mut x = sys.b.clone();
    pdpotrs(ctx, &grid, &a, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_linalg::generate;
    use greenla_mpi::Machine;

    fn machine(ranks: usize) -> Machine {
        let spec = ClusterSpec::test_cluster(8, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        Machine::new(spec, placement, PowerModel::deterministic(), 6).unwrap()
    }

    fn solve_and_check(ranks: usize, n: usize, nb: usize, seed: u64) {
        let sys = generate::spd(n, seed);
        let m = machine(ranks);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdposv(ctx, &world, &sys, nb).unwrap()
        });
        for x in &out.results {
            let r = sys.residual(x);
            assert!(r < 1e-11, "residual {r} for ranks={ranks} n={n} nb={nb}");
            assert_eq!(x, &out.results[0], "solution must be replicated");
        }
    }

    #[test]
    fn single_rank() {
        solve_and_check(1, 20, 4, 1);
    }

    #[test]
    fn various_grids_and_blocks() {
        solve_and_check(4, 26, 4, 2);
        solve_and_check(6, 33, 5, 3);
        solve_and_check(9, 40, 8, 4);
    }

    #[test]
    fn matches_sequential_cholesky() {
        let n = 24;
        let sys = generate::spd(n, 9);
        let x_seq = crate::potrf::posv(&sys.a, &sys.b).unwrap();
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdposv(ctx, &world, &sys, 4).unwrap()
        });
        for (a, b) in out.results[0].iter().zip(&x_seq) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn indefinite_matrix_rejected_on_all_ranks() {
        let mut sys = generate::spd(12, 10);
        sys.a[(5, 5)] = -100.0; // break definiteness
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdposv(ctx, &world, &sys, 4)
        });
        for r in out.results {
            assert!(
                matches!(r, Err(LuError::NotPositiveDefinite { .. })),
                "got {r:?}"
            );
        }
    }

    #[test]
    fn cholesky_charges_fewer_flops_than_lu() {
        // ~n³/3 vs ~2n³/3: the energy advantage SPD structure buys.
        let n = 48;
        let sys = generate::spd(n, 11);
        let chol = machine(4);
        chol.run(|ctx| {
            let world = ctx.world();
            pdposv(ctx, &world, &sys, 8).unwrap()
        });
        let lu = machine(4);
        lu.run(|ctx| {
            let world = ctx.world();
            crate::pdgesv::pdgesv(ctx, &world, &sys, 8).unwrap()
        });
        let fc = chol.ledger().total_flops() as f64;
        let fl = lu.ledger().total_flops() as f64;
        assert!(fc < 0.75 * fl, "Cholesky {fc} vs LU {fl}");
    }

    #[test]
    fn cholesky_is_faster_than_lu_in_virtual_time() {
        // No pivot synchronisation per column → shorter critical path.
        let n = 64;
        let sys = generate::spd(n, 12);
        let chol = machine(8);
        chol.run(|ctx| {
            let world = ctx.world();
            pdposv(ctx, &world, &sys, 8).unwrap()
        });
        let lu = machine(8);
        lu.run(|ctx| {
            let world = ctx.world();
            crate::pdgesv::pdgesv(ctx, &world, &sys, 8).unwrap()
        });
        assert!(
            chol.ledger().max_time() < lu.ledger().max_time(),
            "chol {} vs lu {}",
            chol.ledger().max_time(),
            lu.ledger().max_time()
        );
    }
}
