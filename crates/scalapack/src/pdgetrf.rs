//! Distributed LU factorisation with partial pivoting (`pdgetrf`):
//! right-looking over a 2-D block-cyclic layout.
//!
//! Per panel: MAXLOC pivot reductions down the panel's process column,
//! immediate swaps inside the panel, panel+pivot broadcast along process
//! rows, row interchanges on the rest of the matrix, a local triangular
//! solve for the U block row broadcast down process columns, and a local
//! GEMM trailing update. Pivot choices equal the sequential
//! [`crate::getrf::getrf`] exactly, which the tests exploit.

use crate::desc::BlockDesc;
use crate::distribute::DistMatrix;
use crate::error::LuError;
use crate::grid::ProcessGrid;
use greenla_linalg::blas3::{dgemm, dtrsm_left_lower_unit};
use greenla_linalg::flops;
use greenla_linalg::{BlockMut, BlockRef};
use greenla_mpi::RankCtx;

/// Tag base for the row-interchange point-to-point exchanges.
const SWAP_TAG: u64 = 1 << 20;

/// Payload size (f64 elements) above which broadcasts switch to the
/// pipelined algorithm, as production MPI does.
const PIPELINE_THRESHOLD: usize = 4096;

/// DRAM-traffic model of the trailing GEMM: with LLC blocking the trailing
/// matrix's panels are substantially cache-resident between the A/B reads
/// and the C update, so only ~1/4 of the naive stream-everything-per-panel
/// traffic reaches DRAM (a conservative figure for Skylake-class LLCs).
pub const GEMM_CACHE_REUSE: u64 = 4;
/// Pipeline chunk: 8 KiB.
const PIPELINE_CHUNK: usize = 1024;

/// Broadcast that picks the binomial or pipelined algorithm by size
/// (consistent across the communicator because every member computes the
/// same `expected_len`).
fn bcast_sized(
    ctx: &mut RankCtx,
    comm: &greenla_mpi::Comm,
    root: usize,
    buf: &mut Vec<f64>,
    expected_len: usize,
) {
    if expected_len > PIPELINE_THRESHOLD {
        ctx.bcast_pipelined_f64(comm, root, buf, PIPELINE_CHUNK);
    } else {
        ctx.bcast_f64(comm, root, buf);
    }
}

/// Swap global rows `j` and `p` across a set of local columns. Both rows'
/// owners exchange their segments over the process-column communicator;
/// other processes are untouched. `cols` yields *local* column indices.
fn swap_rows_local_cols(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    a: &mut DistMatrix,
    j: usize,
    p: usize,
    cols: &[usize],
    tag: u64,
) {
    if j == p || cols.is_empty() {
        return;
    }
    let d = a.desc;
    let o1 = d.row_owner(j);
    let o2 = d.row_owner(p);
    let myrow = grid.myrow();
    if o1 == o2 {
        if myrow == o1 {
            let (l1, l2) = (d.lrow(j), d.lrow(p));
            for &lj in cols {
                let t = a.local[(l1, lj)];
                a.local[(l1, lj)] = a.local[(l2, lj)];
                a.local[(l2, lj)] = t;
            }
        }
        return;
    }
    if myrow == o1 || myrow == o2 {
        let (mine, theirs) = if myrow == o1 { (j, o2) } else { (p, o1) };
        let lr = d.lrow(mine);
        let seg: Vec<f64> = cols.iter().map(|&lj| a.local[(lr, lj)]).collect();
        let col_comm = grid.col_comm().clone();
        ctx.send_f64(&col_comm, theirs, SWAP_TAG + tag, &seg);
        let other = ctx.recv_f64(&col_comm, theirs, SWAP_TAG + tag);
        for (&lj, v) in cols.iter().zip(other) {
            a.local[(lr, lj)] = v;
        }
    }
}

/// Factor the distributed matrix in place; returns the global pivot vector
/// (replicated on every process).
pub fn pdgetrf(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    a: &mut DistMatrix,
) -> Result<Vec<usize>, LuError> {
    let d: BlockDesc = a.desc;
    assert_eq!(d.m, d.n, "pdgetrf needs a square matrix");
    assert_eq!(d.mb, d.nb, "pdgetrf needs square blocks");
    let n = d.n;
    let nb = d.nb;
    let myrow = grid.myrow();
    let mycol = grid.mycol();
    let mut ipiv = vec![0usize; n];
    let mut singular: Option<usize> = None;

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        let pcol_k = d.col_owner(k);
        let prow_k = d.row_owner(k);
        let mut panel_piv = vec![0u64; kb];

        // ----- phase A: panel factorisation (process column pcol_k) -----
        if mycol == pcol_k && singular.is_none() {
            let panel_lcols: Vec<usize> = (k..k + kb).map(|g| d.lcol(g)).collect();
            for (jj, j) in (k..k + kb).enumerate() {
                let lj = d.lcol(j);
                // Local pivot candidate among my rows with global index ≥ j.
                let lstart = a.local_rows_below(j);
                let mut lv = 0.0f64;
                let mut lg = u64::MAX;
                for li in lstart..a.local.rows() {
                    let v = a.local[(li, lj)];
                    if lg == u64::MAX || v.abs() > lv.abs() {
                        lv = v;
                        lg = d.grow(li, myrow) as u64;
                    }
                }
                ctx.compute(flops::ddot(a.local.rows() - lstart) / 2, 0);
                let col_comm = grid.col_comm().clone();
                let (pv, pg) = ctx.allreduce_maxloc_abs(&col_comm, lv, lg);
                if pv == 0.0 {
                    singular = Some(j);
                    break;
                }
                panel_piv[jj] = pg;
                // Swap rows j ↔ pg inside the panel columns only.
                swap_rows_local_cols(ctx, grid, a, j, pg as usize, &panel_lcols, j as u64);
                // Broadcast the (post-swap) pivot row segment a[j, j..k+kb];
                // it is only read below, so every rank works off the one
                // shared replica.
                let ow = d.row_owner(j);
                let seg: Option<Vec<f64>> = (myrow == ow).then(|| {
                    let lr = d.lrow(j);
                    (j..k + kb).map(|g| a.local[(lr, d.lcol(g))]).collect()
                });
                let rowseg = ctx.bcast_shared_f64(&col_comm, ow, seg);
                let piv = rowseg[0];
                // Scale multipliers and rank-1 update inside the panel.
                let lbelow = a.local_rows_below(j + 1);
                let mloc = a.local.rows() - lbelow;
                for li in lbelow..a.local.rows() {
                    let m = a.local[(li, lj)] / piv;
                    a.local[(li, lj)] = m;
                    for (t, g) in (j + 1..k + kb).enumerate() {
                        a.local[(li, d.lcol(g))] -= m * rowseg[t + 1];
                    }
                }
                let width = k + kb - j;
                ctx.compute(
                    (mloc * (1 + 2 * (width - 1))) as u64,
                    flops::bytes_f64(mloc * width),
                );
            }
        }

        // ----- phase B: publish panel outcome along process rows -----
        let meta_own: Option<Vec<u64>> = (mycol == pcol_k).then(|| {
            let mut v = Vec::with_capacity(kb + 2);
            v.push(singular.is_some() as u64);
            v.push(singular.unwrap_or(0) as u64);
            v.extend_from_slice(&panel_piv);
            v
        });
        let row_comm = grid.row_comm().clone();
        let meta = ctx.bcast_shared_u64(&row_comm, pcol_k, meta_own);
        if meta[0] != 0 {
            return Err(LuError::Singular {
                col: meta[1] as usize,
            });
        }
        for (jj, j) in (k..k + kb).enumerate() {
            ipiv[j] = meta[2 + jj] as usize;
        }
        // Panel data: my grid row's local slice of columns k..k+kb.
        let lrows = a.local.rows();
        let mut panel: Vec<f64> = if mycol == pcol_k {
            let mut v = Vec::with_capacity(lrows * kb);
            for g in k..k + kb {
                let lj = d.lcol(g);
                v.extend_from_slice(a.local.col(lj));
            }
            v
        } else {
            Vec::new()
        };
        bcast_sized(ctx, &row_comm, pcol_k, &mut panel, lrows * kb);
        assert_eq!(panel.len(), lrows * kb);

        // ----- phase C: row interchanges outside the panel -----
        let other_lcols: Vec<usize> = (0..a.local.cols())
            .filter(|&lj| {
                let gj = d.gcol(lj, mycol);
                !(mycol == pcol_k && (k..k + kb).contains(&gj))
            })
            .collect();
        for (j, &piv) in ipiv.iter().enumerate().skip(k).take(kb) {
            swap_rows_local_cols(ctx, grid, a, j, piv, &other_lcols, (j + n) as u64);
        }

        let rest = k + kb;
        if rest < n {
            // ----- phase D: U block row = L11⁻¹ · A12, on grid row prow_k -----
            let lc_start = a.local_cols_below(rest);
            let n2_loc = a.local.cols() - lc_start;
            let mut u12: Vec<f64> = Vec::new();
            if myrow == prow_k {
                // L11 sits in the broadcast panel at my local rows of k..k+kb.
                let lr0 = d.lrow(k);
                let mut l11 = vec![0.0; kb * kb];
                for jj in 0..kb {
                    for ii in 0..kb {
                        l11[ii + jj * kb] = panel[(lr0 + ii) + jj * lrows];
                    }
                }
                // A12: my local rows lr0..lr0+kb × local cols lc_start.. .
                let mut a12 = vec![0.0; kb * n2_loc];
                for (t, lj) in (lc_start..a.local.cols()).enumerate() {
                    for ii in 0..kb {
                        a12[ii + t * kb] = a.local[(lr0 + ii, lj)];
                    }
                }
                dtrsm_left_lower_unit(kb, n2_loc, &l11, kb, &mut a12, kb);
                ctx.compute(flops::dtrsm(kb, n2_loc), flops::bytes_f64(kb * n2_loc));
                for (t, lj) in (lc_start..a.local.cols()).enumerate() {
                    for ii in 0..kb {
                        a.local[(lr0 + ii, lj)] = a12[ii + t * kb];
                    }
                }
                u12 = a12;
            }
            let col_comm = grid.col_comm().clone();
            bcast_sized(ctx, &col_comm, prow_k, &mut u12, kb * n2_loc);
            assert_eq!(u12.len(), kb * n2_loc);

            // ----- phase E: local trailing update A22 −= L21 · U12 -----
            let lr_start = a.local_rows_below(rest);
            let m2_loc = a.local.rows() - lr_start;
            if m2_loc > 0 && n2_loc > 0 {
                // L21: broadcast panel rows lr_start.. .
                let mut l21 = vec![0.0; m2_loc * kb];
                for jj in 0..kb {
                    for ii in 0..m2_loc {
                        l21[ii + jj * m2_loc] = panel[(lr_start + ii) + jj * lrows];
                    }
                }
                let ld = a.local.ld();
                let s = a.local.as_mut_slice();
                let sub = &mut s[lr_start + lc_start * ld..];
                dgemm(
                    -1.0,
                    BlockRef::new(&l21, m2_loc, kb, m2_loc),
                    BlockRef::new(&u12, kb, n2_loc, kb),
                    1.0,
                    BlockMut::new(sub, m2_loc, n2_loc, ld),
                );
                ctx.compute(
                    flops::dgemm(m2_loc, n2_loc, kb),
                    flops::bytes_f64(m2_loc * kb + kb * n2_loc + m2_loc * n2_loc)
                        / GEMM_CACHE_REUSE,
                );
            }
        }
        k += kb;
    }
    Ok(ipiv)
}
