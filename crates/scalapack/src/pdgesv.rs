//! Driver: distribute, factor, solve (`pdgesv`) — the routine the paper
//! benchmarks as "Gaussian Elimination by ScaLAPACK".

use crate::desc::BlockDesc;
use crate::distribute::DistMatrix;
use crate::error::LuError;
use crate::grid::ProcessGrid;
use crate::pdgetrf::pdgetrf;
use crate::pdgetrs::pdgetrs;
use greenla_linalg::generate::LinearSystem;
use greenla_mpi::{Comm, RankCtx};

/// Default ScaLAPACK block size.
pub const DEFAULT_NB: usize = 64;

/// Solve a replicated linear system over all ranks of `comm` using a 2-D
/// block-cyclic LU with partial pivoting. Returns the solution (replicated
/// on every rank).
///
/// Collective over `comm`; every rank must pass the same system.
pub fn pdgesv(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    nb: usize,
) -> Result<Vec<f64>, LuError> {
    let p = comm.size();
    let (nprow, npcol) = ProcessGrid::square_shape(p);
    let grid = ProcessGrid::new(ctx, comm, nprow, npcol);
    pdgesv_on_grid(ctx, &grid, sys, nb)
}

/// Result of a refined solve.
#[derive(Clone, Debug)]
pub struct RefinedSolve {
    pub x: Vec<f64>,
    /// Refinement iterations actually performed.
    pub iterations: usize,
    /// ∞-norm of the final residual `b − A·x`.
    pub residual_inf: f64,
}

/// `pdgesv` followed by classical iterative refinement: factor once, then
/// repeat `r = b − A·x; A·d = r; x += d` (reusing the factors) until the
/// residual stops improving or `max_iters` is hit. Squeezes the last
/// correct digits out of an ill-conditioned system at `O(n²)` per sweep —
/// the standard companion to LU in production solvers.
pub fn pdgesv_refined(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    nb: usize,
    max_iters: usize,
) -> Result<RefinedSolve, LuError> {
    let p = comm.size();
    let (nprow, npcol) = ProcessGrid::square_shape(p);
    let grid = ProcessGrid::new(ctx, comm, nprow, npcol);
    let n = sys.n();
    let nb = nb.max(1).min(n);
    let desc = BlockDesc::square(n, nb, grid.nprow(), grid.npcol());
    // Keep a pristine copy of A for residuals; factor the distributed one.
    let a_orig = DistMatrix::from_global(ctx, &grid, desc, &sys.a);
    let mut lu = DistMatrix::from_global(ctx, &grid, desc, &sys.a);
    let ipiv = pdgetrf(ctx, &grid, &mut lu)?;
    let mut x = sys.b.clone();
    pdgetrs(ctx, &grid, &lu, &ipiv, &mut x);

    let inf = |v: &[f64]| v.iter().fold(0.0f64, |m, &y| m.max(y.abs()));
    let mut best = f64::INFINITY;
    let mut iterations = 0;
    for _ in 0..max_iters {
        let ax = crate::pblas::pdgemv_replicated(ctx, &grid, &a_orig, &x);
        let r: Vec<f64> = sys.b.iter().zip(&ax).map(|(b, y)| b - y).collect();
        let rn = inf(&r);
        if !rn.is_finite() || rn >= best {
            break; // converged to roundoff (or diverging): stop.
        }
        best = rn;
        if rn == 0.0 {
            break;
        }
        let mut d = r;
        pdgetrs(ctx, &grid, &lu, &ipiv, &mut d);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        iterations += 1;
    }
    let ax = crate::pblas::pdgemv_replicated(ctx, &grid, &a_orig, &x);
    let residual_inf = inf(&sys
        .b
        .iter()
        .zip(&ax)
        .map(|(b, y)| b - y)
        .collect::<Vec<_>>());
    Ok(RefinedSolve {
        x,
        iterations,
        residual_inf,
    })
}

/// As [`pdgesv`] but over an existing grid (lets benchmarks control the
/// grid shape).
pub fn pdgesv_on_grid(
    ctx: &mut RankCtx,
    grid: &ProcessGrid,
    sys: &LinearSystem,
    nb: usize,
) -> Result<Vec<f64>, LuError> {
    let n = sys.n();
    let nb = nb.max(1).min(n);
    let desc = BlockDesc::square(n, nb, grid.nprow(), grid.npcol());
    let mut a = DistMatrix::from_global(ctx, grid, desc, &sys.a);
    let ipiv = pdgetrf(ctx, grid, &mut a)?;
    let mut x = sys.b.clone();
    pdgetrs(ctx, grid, &a, &ipiv, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_linalg::generate;
    use greenla_mpi::Machine;

    fn machine(ranks: usize) -> Machine {
        let spec = ClusterSpec::test_cluster(8, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        Machine::new(spec, placement, PowerModel::deterministic(), 5).unwrap()
    }

    fn solve_and_check(ranks: usize, n: usize, nb: usize, seed: u64) {
        let sys = generate::diag_dominant(n, seed);
        let m = machine(ranks);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdgesv(ctx, &world, &sys, nb).unwrap()
        });
        for x in &out.results {
            let r = sys.residual(x);
            assert!(r < 1e-11, "residual {r} for ranks={ranks} n={n} nb={nb}");
        }
        // Replicated results are identical across ranks.
        for x in &out.results[1..] {
            assert_eq!(x, &out.results[0]);
        }
    }

    #[test]
    fn single_rank_grid() {
        solve_and_check(1, 24, 4, 1);
    }

    #[test]
    fn various_grids_and_blocks() {
        solve_and_check(4, 30, 4, 2); // 2×2
        solve_and_check(8, 33, 5, 3); // 2×4, ragged blocks
        solve_and_check(16, 40, 8, 4); // 4×4
    }

    #[test]
    fn block_bigger_than_matrix() {
        solve_and_check(4, 10, 64, 5);
    }

    #[test]
    fn matches_sequential_pivots_and_factors() {
        let n = 26;
        let sys = generate::circuit_network(n, 8);
        // Sequential reference.
        let mut seq = sys.a.clone();
        let ipiv_seq = crate::getrf::getrf(&mut seq, 4).unwrap();
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 2);
            let desc = BlockDesc::square(n, 4, 2, 2);
            let mut a = DistMatrix::from_global(ctx, &grid, desc, &sys.a);
            let ipiv = pdgetrf(ctx, &grid, &mut a).unwrap();
            let gathered = a.gather_to_root(ctx, &grid);
            (ipiv, gathered)
        });
        let (ipiv, gathered) = &out.results[0];
        assert_eq!(ipiv, &ipiv_seq, "pivot sequences must match LAPACK exactly");
        let g = gathered.as_ref().unwrap();
        for j in 0..n {
            for i in 0..n {
                assert!(
                    (g[(i, j)] - seq[(i, j)]).abs() < 1e-9,
                    "factor mismatch at ({i},{j}): {} vs {}",
                    g[(i, j)],
                    seq[(i, j)]
                );
            }
        }
    }

    #[test]
    fn singular_matrix_detected_on_all_ranks() {
        use greenla_linalg::Matrix;
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        // Rank-deficient: two identical columns.
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 5 + j * 3) % 7) as f64;
            }
        }
        for i in 0..n {
            let v = a[(i, 2)];
            a[(i, 5)] = v;
        }
        let sys = generate::LinearSystem {
            a,
            b: vec![1.0; n],
            x_ref: None,
        };
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdgesv(ctx, &world, &sys, 2)
        });
        for r in out.results {
            assert!(matches!(r, Err(LuError::Singular { .. })), "got {r:?}");
        }
    }

    #[test]
    fn non_square_grid_shapes() {
        let sys = generate::spd(21, 6);
        let m = machine(6);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let grid = ProcessGrid::new(ctx, &world, 2, 3);
            pdgesv_on_grid(ctx, &grid, &sys, 4).unwrap()
        });
        for x in out.results {
            assert!(sys.residual(&x) < 1e-11);
        }
    }

    #[test]
    fn refinement_improves_or_matches_plain_solve() {
        // A moderately conditioned system (SPD with clustered spectrum).
        let sys = generate::spd(32, 10);
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let plain = pdgesv(ctx, &world, &sys, 4).unwrap();
            let refined = pdgesv_refined(ctx, &world, &sys, 4, 5).unwrap();
            (plain, refined.x, refined.iterations, refined.residual_inf)
        });
        let (plain, refined, iters, rnorm) = &out.results[0];
        let r_plain = sys.residual(plain);
        let r_refined = sys.residual(refined);
        assert!(
            r_refined <= r_plain * 1.01,
            "refined {r_refined} vs plain {r_plain}"
        );
        assert!(*iters <= 5);
        assert!(rnorm.is_finite() && *rnorm >= 0.0);
    }

    #[test]
    fn refinement_safe_on_ill_conditioned_systems() {
        // LU with partial pivoting is backward stable, so even on an
        // ill-conditioned system the plain residual already sits at
        // roundoff; fixed-precision refinement must not make it worse and
        // must terminate (it stops as soon as the residual stalls).
        let sys = generate::ill_conditioned(28, 0.75, 3);
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            let plain = pdgesv(ctx, &world, &sys, 4).unwrap();
            let refined = pdgesv_refined(ctx, &world, &sys, 4, 8).unwrap();
            (
                sys.residual(&plain),
                sys.residual(&refined.x),
                refined.iterations,
            )
        });
        let (r_plain, r_refined, iters) = out.results[0];
        assert!(
            r_refined <= (r_plain * 5.0).max(1e-14),
            "refined {r_refined} vs plain {r_plain}"
        );
        assert!(r_refined < 1e-13, "refined residual {r_refined}");
        assert!(iters < 8, "refinement must stop once the residual stalls");
    }

    #[test]
    fn refinement_converges_in_few_sweeps_on_well_conditioned_systems() {
        let sys = generate::diag_dominant(24, 11);
        let m = machine(4);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdgesv_refined(ctx, &world, &sys, 4, 10).unwrap().iterations
        });
        assert!(out.results[0] <= 3, "took {} sweeps", out.results[0]);
    }

    #[test]
    fn poisson_system_solves() {
        let sys = generate::poisson2d(6, 0); // n = 36
        let m = machine(9);
        let out = m.run(|ctx| {
            let world = ctx.world();
            pdgesv(ctx, &world, &sys, 4).unwrap()
        });
        assert!(sys.residual(&out.results[0]) < 1e-12);
    }
}
