//! Sequential Cholesky factorisation and solve (`dpotrf`/`dpotrs`, lower
//! variant) for symmetric positive-definite systems — the pivoting-free
//! half of ScaLAPACK's dense-solver capability the paper describes
//! ("solving dense and banded linear systems, least squares problems, …").

use crate::error::LuError;
use greenla_linalg::Matrix;

/// Factor `A = L·Lᵀ` in place (lower triangle; the strict upper triangle is
/// left untouched and never read). Errors with the failing column when `A`
/// is not positive definite.
pub fn potrf(a: &mut Matrix) -> Result<(), LuError> {
    assert!(a.is_square(), "Cholesky needs a square matrix");
    let n = a.rows();
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            let l = a[(j, k)];
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LuError::NotPositiveDefinite { col: j });
        }
        let ljj = d.sqrt();
        a[(j, j)] = ljj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / ljj;
        }
    }
    Ok(())
}

/// Solve `A·x = b` from the lower factor produced by [`potrf`]; `b` is
/// overwritten with `x`.
pub fn potrs(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Forward: L·y = b.
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
    // Backward: Lᵀ·x = y.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= l[(k, i)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
}

/// Factor-and-solve convenience (LAPACK `dposv`).
pub fn posv(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LuError> {
    let mut l = a.clone();
    potrf(&mut l)?;
    let mut x = b.to_vec();
    potrs(&l, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getrs::gesv;
    use greenla_linalg::generate;

    #[test]
    fn solves_spd_systems() {
        for (n, seed) in [(1, 1), (8, 2), (24, 3), (50, 4)] {
            let sys = generate::spd(n, seed);
            let x = posv(&sys.a, &sys.b).unwrap();
            assert!(sys.residual(&x) < 1e-11, "n={n}: {}", sys.residual(&x));
        }
    }

    #[test]
    fn matches_lu_on_spd() {
        let sys = generate::spd(30, 5);
        let x_chol = posv(&sys.a, &sys.b).unwrap();
        let x_lu = gesv(&sys.a, &sys.b, 8).unwrap();
        for (a, b) in x_chol.iter().zip(&x_lu) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let sys = generate::spd(12, 6);
        let mut l = sys.a.clone();
        potrf(&mut l).unwrap();
        for i in 0..12 {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!(
                    (s - sys.a[(i, j)]).abs() < 1e-10 * (1.0 + sys.a[(i, j)].abs()),
                    "LLᵀ ≠ A at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solves_circuit_conductance_matrices() {
        // Conductance matrices are symmetric positive definite.
        let sys = generate::circuit_network(40, 7);
        let x = posv(&sys.a, &sys.b).unwrap();
        assert!(sys.residual(&x) < 1e-12);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert_eq!(
            potrf(&mut a.clone()),
            Err(LuError::NotPositiveDefinite { col: 1 })
        );
    }

    #[test]
    fn rejects_negative_leading_entry() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(
            potrf(&mut a.clone()),
            Err(LuError::NotPositiveDefinite { col: 0 })
        );
    }
}
