//! `start_monitoring` / `end_monitoring` — the paper's `papi_monitoring.h`.
//!
//! `start_monitoring` performs, on the designated monitoring rank only, the
//! full PAPI bring-up the paper lists: library initialisation, thread
//! initialisation, event-set creation, addition of all desired powercap
//! events (name → code translation included), then `PAPI_start_AND_time`.
//! `end_monitoring` stops the counters (`PAPI_stop_AND_time`), collects the
//! values and destroys the event set (`PAPI_term` equivalent).

use crate::error::MonitorError;
use crate::report::{NodeReport, PhaseReport};
use greenla_papi::low::{EventSetId, Papi, PAPI_VER_CURRENT};
use greenla_papi::powercap::paper_event_names;
use greenla_papi::reader::NodeRapl;
use greenla_papi::timer::real_usec;
use greenla_rapl::RaplSim;
use std::sync::Arc;

/// Monitoring configuration.
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    /// Events to monitor; `None` selects the paper's standard set (package
    /// and DRAM energy for every socket).
    pub events: Option<Vec<String>>,
    /// Directory for per-processor result files; `None` skips file output.
    pub output_dir: Option<std::path::PathBuf>,
    /// Graceful degradation: when the node's monitoring fails — the
    /// monitoring rank dies during bring-up, or PAPI/powercap reads fail
    /// mid-protocol — downgrade the node to "unmeasured" (no
    /// [`NodeReport`], run continues) instead of failing the whole job.
    /// Off by default: a fault-free campaign wants loud failures.
    pub degrade_on_fault: bool,
}

/// A live measurement on a monitoring rank.
pub struct Session {
    papi: Papi<NodeRapl>,
    set: EventSetId,
    names: Vec<String>,
    start_t: f64,
    /// Phase boundaries: (label, boundary time, cumulative counts at the
    /// boundary).
    marks: Vec<(String, f64, Vec<i64>)>,
}

/// Bring up PAPI on this node and start counting at virtual time `now`.
pub fn start_monitoring(
    rapl: &Arc<RaplSim>,
    node: usize,
    cfg: &MonitorConfig,
    now: f64,
) -> Result<Session, MonitorError> {
    let reader = NodeRapl::new(Arc::clone(rapl), node);
    let sockets = reader.node_sockets();
    // PWCAP_plot_init(): library + thread initialisation.
    let mut papi = Papi::library_init(PAPI_VER_CURRENT, reader)?;
    papi.thread_init()?;
    // Event-set creation and event addition.
    let names = cfg
        .events
        .clone()
        .unwrap_or_else(|| paper_event_names(sockets));
    let set = papi.create_eventset()?;
    for name in &names {
        papi.add_named_event(set, name)?;
    }
    // PAPI_start_AND_time().
    papi.start(set, now)?;
    Ok(Session {
        papi,
        set,
        names,
        start_t: now,
        marks: Vec::new(),
    })
}

impl Session {
    /// Record a phase boundary at virtual time `now` (a `PAPI_read`).
    pub fn mark_phase(&mut self, label: &str, now: f64) -> Result<(), MonitorError> {
        let vals = self.papi.read(self.set, now)?;
        self.marks.push((label.to_string(), now, vals));
        Ok(())
    }

    /// Event names being counted.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Stop the counters at `now`, tear PAPI down and produce the node report.
pub fn end_monitoring(
    mut session: Session,
    node: usize,
    monitor_rank: usize,
    now: f64,
) -> Result<NodeReport, MonitorError> {
    // PAPI_stop_AND_time().
    let totals = session.papi.stop(session.set, now)?;
    // PAPI_term(): clean up and destroy the event set.
    session.papi.cleanup_eventset(session.set)?;
    session.papi.destroy_eventset(session.set)?;

    // Build phase deltas from the cumulative marks (+ implicit final phase).
    let mut phases = Vec::new();
    let mut prev_t = session.start_t;
    let mut prev_vals = vec![0i64; session.names.len()];
    for (label, t, vals) in &session.marks {
        phases.push(PhaseReport {
            label: label.clone(),
            duration_s: t - prev_t,
            values_uj: vals.iter().zip(&prev_vals).map(|(a, b)| a - b).collect(),
        });
        prev_t = *t;
        prev_vals = vals.clone();
    }
    if now > prev_t || phases.is_empty() {
        phases.push(PhaseReport {
            label: "final".into(),
            duration_s: now - prev_t,
            values_uj: totals.iter().zip(&prev_vals).map(|(a, b)| a - b).collect(),
        });
    }
    Ok(NodeReport {
        node,
        monitor_rank,
        events: session.names,
        start_usec: real_usec(session.start_t),
        end_usec: real_usec(now),
        totals_uj: totals,
        phases,
    })
}

/// Socket count helper on [`NodeRapl`] (the PAPI reader hides it behind the
/// component trait).
trait NodeSockets {
    fn node_sockets(&self) -> usize;
}

impl NodeSockets for NodeRapl {
    fn node_sockets(&self) -> usize {
        use greenla_papi::EnergyReader;
        self.sockets()
    }
}
