//! `file_management()` — per-processor result files.
//!
//! The paper's framework "creates one file for each processor … in each
//! file are saved the values of PAPI event counters for the processor in
//! which the node has run", in a human-readable format for later review.
//! This module writes and parses that format:
//!
//! ```text
//! # greenla monitor report v1
//! node 0
//! monitor_rank 47
//! start_usec 12
//! end_usec 20510
//! event powercap:::ENERGY_UJ:ZONE0 1234567
//! event powercap:::ENERGY_UJ:ZONE1 1200001
//! phase allocation 0.002100 12 11
//! phase execution 0.018398 1234555 1199990
//! ```

use crate::report::{NodeReport, PhaseReport};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &str = "# greenla monitor report v1";

/// Render a node report in the file format.
pub fn render(report: &NodeReport) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let _ = writeln!(out, "node {}", report.node);
    let _ = writeln!(out, "monitor_rank {}", report.monitor_rank);
    let _ = writeln!(out, "start_usec {}", report.start_usec);
    let _ = writeln!(out, "end_usec {}", report.end_usec);
    for (name, val) in report.events.iter().zip(&report.totals_uj) {
        let _ = writeln!(out, "event {name} {val}");
    }
    for p in &report.phases {
        let _ = write!(
            out,
            "phase {} {:.17e}",
            p.label.replace(' ', "_"),
            p.duration_s
        );
        for v in &p.values_uj {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    out
}

/// File name for a node's report.
pub fn file_name(node: usize) -> String {
    format!("greenla_monitor_node{node:04}.txt")
}

/// Write the report into `dir` (created if needed); returns the path.
pub fn write_node_report(dir: &Path, report: &NodeReport) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name(report.node));
    std::fs::write(&path, render(report))?;
    Ok(path)
}

/// Parse a rendered report back.
pub fn parse(text: &str) -> Result<NodeReport, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err("bad magic line".into());
    }
    let mut node = None;
    let mut monitor_rank = None;
    let mut start_usec = None;
    let mut end_usec = None;
    let mut events = Vec::new();
    let mut totals = Vec::new();
    let mut phases = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("node") => node = it.next().and_then(|v| v.parse().ok()),
            Some("monitor_rank") => monitor_rank = it.next().and_then(|v| v.parse().ok()),
            Some("start_usec") => start_usec = it.next().and_then(|v| v.parse().ok()),
            Some("end_usec") => end_usec = it.next().and_then(|v| v.parse().ok()),
            Some("event") => {
                let name = it.next().ok_or("event without name")?;
                let val: i64 = it
                    .next()
                    .ok_or("event without value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                events.push(name.to_string());
                totals.push(val);
            }
            Some("phase") => {
                let label = it.next().ok_or("phase without label")?.to_string();
                let duration_s: f64 = it
                    .next()
                    .ok_or("phase without duration")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                let values: Result<Vec<i64>, _> = it.map(str::parse).collect();
                phases.push(PhaseReport {
                    label,
                    duration_s,
                    values_uj: values.map_err(|e| format!("{e}"))?,
                });
            }
            Some(other) => return Err(format!("unknown record {other:?}")),
            None => {}
        }
    }
    Ok(NodeReport {
        node: node.ok_or("missing node")?,
        monitor_rank: monitor_rank.ok_or("missing monitor_rank")?,
        events,
        start_usec: start_usec.ok_or("missing start_usec")?,
        end_usec: end_usec.ok_or("missing end_usec")?,
        totals_uj: totals,
        phases,
    })
}

/// Load every report file found in `dir`, ordered by node.
pub fn load_all(dir: &Path) -> io::Result<Vec<NodeReport>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("greenla_monitor_node") && name.ends_with(".txt") {
            let text = std::fs::read_to_string(entry.path())?;
            out.push(parse(&text).map_err(io::Error::other)?);
        }
    }
    out.sort_by_key(|r| r.node);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> NodeReport {
        NodeReport {
            node: 3,
            monitor_rank: 191,
            events: vec![
                "powercap:::ENERGY_UJ:ZONE0".into(),
                "powercap:::ENERGY_UJ:ZONE1_SUBZONE1".into(),
            ],
            start_usec: 42,
            end_usec: 99_042,
            totals_uj: vec![5_000_000, 120_000],
            phases: vec![
                PhaseReport {
                    label: "allocation".into(),
                    duration_s: 0.01,
                    values_uj: vec![1_000_000, 20_000],
                },
                PhaseReport {
                    label: "execution".into(),
                    duration_s: 0.089,
                    values_uj: vec![4_000_000, 100_000],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let r = report();
        let text = render(&r);
        let back = parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn human_readable_header() {
        let text = render(&report());
        assert!(text.contains("node 3"));
        assert!(text.contains("event powercap:::ENERGY_UJ:ZONE0 5000000"));
        assert!(text.contains("phase allocation"));
    }

    #[test]
    fn write_and_load_all() {
        let dir = std::env::temp_dir().join(format!("greenla_mon_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r0 = report();
        r0.node = 0;
        let r1 = report();
        write_node_report(&dir, &r1).unwrap();
        write_node_report(&dir, &r0).unwrap();
        let all = load_all(&dir).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, 0);
        assert_eq!(all[1].node, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("nonsense").is_err());
        assert!(parse("# greenla monitor report v1\nwhat 1\n").is_err());
    }
}
