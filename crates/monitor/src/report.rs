//! Per-node reports and cross-node aggregation.

use greenla_papi::events::{event_name_to_code, EventCode};
use greenla_rapl::Domain;
use serde::{Deserialize, Serialize};

/// Counter deltas over one phase of the monitored region.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    pub label: String,
    /// Virtual seconds spent in the phase.
    pub duration_s: f64,
    /// Per-event energy increments in µJ (same order as the report's
    /// `events`).
    pub values_uj: Vec<i64>,
}

/// What one monitoring rank measured for its node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node index within the job.
    pub node: usize,
    /// World rank of the monitoring rank.
    pub monitor_rank: usize,
    /// Monitored event names.
    pub events: Vec<String>,
    /// Virtual time at `PAPI_start` (µs, as `PAPI_get_real_usec` reports).
    pub start_usec: u64,
    /// Virtual time at `PAPI_stop` (µs).
    pub end_usec: u64,
    /// Total per-event counts over the monitored region (µJ).
    pub totals_uj: Vec<i64>,
    /// Phase-by-phase breakdown (covers the region in order).
    pub phases: Vec<PhaseReport>,
}

impl NodeReport {
    /// Duration of the monitored region in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_usec.saturating_sub(self.start_usec)) as f64 / 1e6
    }

    /// Total energy in joules for one RAPL domain, summed over sockets.
    pub fn energy_j(&self, domain: Domain) -> f64 {
        self.events
            .iter()
            .zip(&self.totals_uj)
            .filter_map(|(name, &uj)| {
                let code: EventCode = event_name_to_code(name).ok()?;
                (code.domain == domain).then_some(uj as f64 / 1e6)
            })
            .sum()
    }

    /// Energy in joules for one `(domain, socket)` pair, if monitored.
    pub fn energy_j_socket(&self, domain: Domain, socket: usize) -> Option<f64> {
        self.events
            .iter()
            .zip(&self.totals_uj)
            .find_map(|(name, &uj)| {
                let code = event_name_to_code(name).ok()?;
                (code.domain == domain && code.socket == socket).then_some(uj as f64 / 1e6)
            })
    }

    /// Whole-node energy (all monitored events) in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.totals_uj.iter().map(|&uj| uj as f64 / 1e6).sum()
    }

    /// Mean node power over the region in watts.
    pub fn mean_power_w(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.total_energy_j() / d
        } else {
            0.0
        }
    }
}

/// Job-level aggregation across every node's report — what the paper's
/// charts plot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    pub nodes: usize,
    /// Longest monitored duration across nodes (the job's wall time).
    pub duration_s: f64,
    /// Sum of all monitored energies (J).
    pub total_energy_j: f64,
    /// Package energy, all sockets all nodes (J).
    pub pkg_energy_j: f64,
    /// DRAM energy, all sockets all nodes (J).
    pub dram_energy_j: f64,
    /// Package energy split by socket index `[socket0, socket1]` (J).
    pub pkg_by_socket_j: [f64; 2],
    /// DRAM energy split by socket index (J).
    pub dram_by_socket_j: [f64; 2],
    /// Mean job power = total energy / duration (W).
    pub mean_power_w: f64,
}

impl JobSummary {
    /// Aggregate node reports (panics on an empty slice).
    pub fn aggregate(reports: &[NodeReport]) -> JobSummary {
        assert!(!reports.is_empty(), "no node reports to aggregate");
        let nodes = reports.len();
        let duration_s = reports
            .iter()
            .map(NodeReport::duration_s)
            .fold(0.0, f64::max);
        let mut pkg = 0.0;
        let mut dram = 0.0;
        let mut pkg_s = [0.0; 2];
        let mut dram_s = [0.0; 2];
        for r in reports {
            pkg += r.energy_j(Domain::Package);
            dram += r.energy_j(Domain::Dram);
            for s in 0..2 {
                pkg_s[s] += r.energy_j_socket(Domain::Package, s).unwrap_or(0.0);
                dram_s[s] += r.energy_j_socket(Domain::Dram, s).unwrap_or(0.0);
            }
        }
        let total = pkg + dram;
        JobSummary {
            nodes,
            duration_s,
            total_energy_j: total,
            pkg_energy_j: pkg,
            dram_energy_j: dram,
            pkg_by_socket_j: pkg_s,
            dram_by_socket_j: dram_s,
            mean_power_w: if duration_s > 0.0 {
                total / duration_s
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> NodeReport {
        NodeReport {
            node: 0,
            monitor_rank: 7,
            events: vec![
                "powercap:::ENERGY_UJ:ZONE0".into(),
                "powercap:::ENERGY_UJ:ZONE1".into(),
                "powercap:::ENERGY_UJ:ZONE0_SUBZONE1".into(),
                "powercap:::ENERGY_UJ:ZONE1_SUBZONE1".into(),
            ],
            start_usec: 1_000_000,
            end_usec: 3_000_000,
            totals_uj: vec![200_000_000, 100_000_000, 20_000_000, 10_000_000],
            phases: vec![],
        }
    }

    #[test]
    fn domain_sums() {
        let r = report();
        assert!((r.energy_j(Domain::Package) - 300.0).abs() < 1e-9);
        assert!((r.energy_j(Domain::Dram) - 30.0).abs() < 1e-9);
        assert_eq!(r.energy_j_socket(Domain::Package, 1), Some(100.0));
        assert_eq!(r.energy_j_socket(Domain::Pp0, 0), None);
    }

    #[test]
    fn duration_and_power() {
        let r = report();
        assert!((r.duration_s() - 2.0).abs() < 1e-12);
        assert!((r.mean_power_w() - 165.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_across_nodes() {
        let mut r2 = report();
        r2.node = 1;
        r2.end_usec = 4_000_000; // slower node
        let s = JobSummary::aggregate(&[report(), r2]);
        assert_eq!(s.nodes, 2);
        assert!((s.duration_s - 3.0).abs() < 1e-12);
        assert!((s.pkg_energy_j - 600.0).abs() < 1e-9);
        assert!((s.dram_energy_j - 60.0).abs() < 1e-9);
        assert!((s.pkg_by_socket_j[0] - 400.0).abs() < 1e-9);
        assert!((s.pkg_by_socket_j[1] - 200.0).abs() < 1e-9);
        assert!((s.mean_power_w - 660.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no node reports")]
    fn aggregate_empty_panics() {
        let _ = JobSummary::aggregate(&[]);
    }
}
