#![forbid(unsafe_code)]
//! # greenla-monitor
//!
//! The paper's contribution: a **white-box, per-node energy-monitoring
//! framework** for MPI linear-system solvers.
//!
//! One rank per node — the one with the *highest rank value* in the node's
//! `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)` communicator — is designated
//! the *monitoring rank*. It initialises PAPI, starts the powercap energy
//! events (CPU packages 0/1 and DRAM 0/1), runs its share of the solver
//! like every other rank, and stops the counters once all ranks on its node
//! have finished. Every start/stop is bracketed by node-communicator
//! barriers (and the whole measured region by world barriers), which is the
//! paper's accuracy-for-overhead trade-off: measurements align exactly with
//! the slowest rank of each node at the cost of extra synchronisation
//! ([`overhead`] quantifies it).
//!
//! Modules mirror the paper's `papi_monitoring.h` decomposition:
//! [`monitoring`] holds `start_monitoring`/`end_monitoring`, [`protocol`]
//! the Figure-2 barrier choreography, [`files`] the per-processor
//! human-readable result files, [`report`] the cross-node aggregation, and
//! [`overhead`] the monitored-vs-raw comparison.

pub mod blackbox;
pub mod error;
pub mod files;
pub mod monitoring;
pub mod overhead;
pub mod protocol;
pub mod report;

pub use blackbox::{blackbox_run, BlackboxReport};
pub use error::MonitorError;
pub use monitoring::MonitorConfig;
pub use protocol::{monitored_run, MonitorHandle, MonitorOutput};
pub use report::{JobSummary, NodeReport, PhaseReport};
