//! Black-box monitoring — the paper's §4 requirement that the framework
//! "accommodate both white-box and black box approaches, introducing only
//! minimal modifications".
//!
//! In black-box mode the application is **not** instrumented at all: one
//! core per node hosts a sampling daemon instead of an application rank.
//! The daemon reads the node's energy counters on a fixed period while the
//! unmodified application runs on the remaining cores, and stops when every
//! application rank of its node reports completion. The result is a
//! *power trace* — energy/power over time — rather than the white-box
//! mode's phase-aligned totals; the trade-off is zero application changes
//! against sampling-grained (≥ counter-update-grained) resolution.
//!
//! Determinism note: the daemon's samples are reconstructed from the
//! time-indexed RAPL device after the completion message arrives — the
//! exact series a live sampler with the same period would have produced,
//! without racing the wall clock.

use crate::error::MonitorError;
use crate::monitoring::MonitorConfig;
use greenla_mpi::{Comm, RankCtx};
use greenla_papi::events::event_name_to_code;
use greenla_papi::powercap::paper_event_names;
use greenla_rapl::RaplSim;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const DONE_TAG: u64 = 9_001;

/// One sample of the daemon: cumulative per-event energy at `t_s`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    pub t_s: f64,
    /// Cumulative µJ since t = 0, one per monitored event.
    pub values_uj: Vec<i64>,
}

/// What one node's sampling daemon collected.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlackboxReport {
    pub node: usize,
    pub monitor_rank: usize,
    pub events: Vec<String>,
    pub sample_period_s: f64,
    pub samples: Vec<PowerSample>,
    /// Virtual time at which the last application rank of the node
    /// finished.
    pub end_s: f64,
}

impl BlackboxReport {
    /// Total monitored energy in joules (all events, last sample).
    pub fn total_energy_j(&self) -> f64 {
        self.samples
            .last()
            .map(|s| s.values_uj.iter().map(|&v| v as f64 / 1e6).sum())
            .unwrap_or(0.0)
    }

    /// Node power trace: `(interval midpoint [s], mean power [W])` between
    /// consecutive samples, summed over all monitored events.
    pub fn power_trace(&self) -> Vec<(f64, f64)> {
        self.samples
            .windows(2)
            .map(|w| {
                let dt = w[1].t_s - w[0].t_s;
                let de: f64 = w[1]
                    .values_uj
                    .iter()
                    .zip(&w[0].values_uj)
                    .map(|(b, a)| (b - a) as f64 / 1e6)
                    .sum();
                (
                    (w[0].t_s + w[1].t_s) / 2.0,
                    if dt > 0.0 { de / dt } else { 0.0 },
                )
            })
            .collect()
    }

    /// Per-domain energy in joules at the final sample.
    pub fn energy_j_by_event(&self) -> Vec<(String, f64)> {
        let last = match self.samples.last() {
            Some(s) => s,
            None => return Vec::new(),
        };
        self.events
            .iter()
            .cloned()
            .zip(last.values_uj.iter().map(|&v| v as f64 / 1e6))
            .collect()
    }
}

/// Result of a black-box run on one rank.
pub struct BlackboxOutput<R> {
    /// The application's result — `None` on sampling-daemon ranks, which
    /// never run the application.
    pub result: Option<R>,
    /// The power trace — `Some` only on daemon ranks.
    pub report: Option<BlackboxReport>,
}

/// Run an **unmodified** application under black-box sampling.
///
/// The highest rank of each node becomes the sampling daemon; the rest form
/// the application communicator handed to `workload` (which needs no
/// monitoring hooks at all — that is the point of the mode). Collective
/// over the world communicator.
pub fn blackbox_run<R>(
    ctx: &mut RankCtx,
    rapl: &Arc<RaplSim>,
    cfg: &MonitorConfig,
    sample_period_s: f64,
    workload: impl FnOnce(&mut RankCtx, &Comm) -> R,
) -> Result<BlackboxOutput<R>, MonitorError> {
    assert!(sample_period_s > 0.0, "sampling period must be positive");
    let world = ctx.world();
    let node_comm = ctx.split_shared(&world);
    let is_daemon = node_comm.is_highest();
    // Application ranks get their own communicator (the unmodified app must
    // not see the daemons).
    let app_comm = ctx.split(&world, is_daemon as u64, ctx.rank() as u64);

    if is_daemon {
        let node = ctx.node();
        let events = cfg
            .events
            .clone()
            .unwrap_or_else(|| paper_event_names(rapl.sockets_per_node()));
        let codes: Vec<_> = events
            .iter()
            .map(|n| event_name_to_code(n).map_err(MonitorError::from))
            .collect::<Result<_, _>>()?;
        // Wait (idle, like a daemon sleeping in epoll) for every
        // application rank of this node to report completion.
        let workers = node_comm.size() - 1;
        let mut end_s = ctx.now();
        for w in 0..workers {
            let msg = ctx.recv_f64_idle(&node_comm, w, DONE_TAG);
            end_s = end_s.max(msg[0]);
        }
        end_s = end_s.max(ctx.now());
        // Reconstruct the periodic samples the live daemon would have read.
        let mut samples = Vec::new();
        let mut t = 0.0f64;
        loop {
            let t_read = t.min(end_s);
            let values: Vec<i64> = codes
                .iter()
                .map(|c: &greenla_papi::EventCode| {
                    rapl.energy_uj(node, c.socket, c.domain, t_read)
                        .map(|v| v as i64)
                        .map_err(|_| MonitorError::Papi(-4))
                })
                .collect::<Result<_, _>>()?;
            samples.push(PowerSample {
                t_s: t_read,
                values_uj: values,
            });
            if t >= end_s {
                break;
            }
            t += sample_period_s;
        }
        let report = BlackboxReport {
            node,
            monitor_rank: ctx.rank(),
            events,
            sample_period_s,
            samples,
            end_s,
        };
        if let Some(dir) = &cfg.output_dir {
            let text = serde_json::to_string_pretty(&report)
                .map_err(|e| MonitorError::Io(e.to_string()))?;
            std::fs::create_dir_all(dir).map_err(|e| MonitorError::Io(e.to_string()))?;
            std::fs::write(
                dir.join(format!("greenla_blackbox_node{node:04}.json")),
                text,
            )
            .map_err(|e| MonitorError::Io(e.to_string()))?;
        }
        Ok(BlackboxOutput {
            result: None,
            report: Some(report),
        })
    } else {
        let r = workload(ctx, &app_comm);
        // Report completion (with my finish time) to my node's daemon.
        let t = ctx.now();
        let daemon = node_comm.size() - 1;
        ctx.send_f64(&node_comm, daemon, DONE_TAG, &[t]);
        Ok(BlackboxOutput {
            result: Some(r),
            report: None,
        })
    }
}
