//! Monitoring-overhead measurement.
//!
//! The paper concedes "a compromise … regarding the time spent on
//! synchronization, which … results in slower program execution and adds
//! some overhead, not directly to the linear system solver algorithm, but
//! to the overall execution". This module quantifies that claim: run the
//! same workload with and without the monitoring protocol and compare
//! virtual makespans (experiment E-O1).

use crate::monitoring::MonitorConfig;
use crate::protocol::monitored_run;
use greenla_mpi::{Machine, RankCtx};
use greenla_rapl::RaplSim;
use std::sync::Arc;

/// Outcome of an overhead measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadReport {
    /// Virtual makespan with the monitoring protocol injected.
    pub monitored_s: f64,
    /// Virtual makespan of the bare workload.
    pub raw_s: f64,
}

impl OverheadReport {
    /// Fractional slowdown, e.g. 0.02 = 2 % overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.raw_s > 0.0 {
            (self.monitored_s - self.raw_s) / self.raw_s
        } else {
            0.0
        }
    }
}

/// Run `workload` twice on freshly built machines — once bare, once under
/// the full monitoring protocol — and report both makespans.
///
/// `build` must return identically configured machines (same spec,
/// placement, power model, seed) so the two runs differ only in the
/// monitoring instrumentation.
pub fn measure_overhead(
    build: impl Fn() -> Machine,
    workload: impl Fn(&mut RankCtx) + Sync,
) -> OverheadReport {
    let raw_machine = build();
    let raw = raw_machine.run(|ctx| workload(ctx));

    let mon_machine = build();
    let rapl = Arc::new(RaplSim::new(
        mon_machine.ledger(),
        mon_machine.power().clone(),
        mon_machine.seed(),
    ));
    let cfg = MonitorConfig::default();
    let mon = mon_machine.run(|ctx| {
        monitored_run(ctx, &rapl, &cfg, |ctx, _| workload(ctx)).expect("monitored run failed");
    });

    OverheadReport {
        monitored_s: mon.makespan,
        raw_s: raw.makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::Machine;

    fn build() -> Machine {
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::packed(&spec.node, 16).unwrap();
        Machine::new(spec, placement, PowerModel::deterministic(), 9).unwrap()
    }

    #[test]
    fn monitoring_adds_small_positive_overhead() {
        let report = measure_overhead(build, |ctx| {
            // Uneven work so barriers actually cost something.
            ctx.compute(1_000_000 * (1 + ctx.rank() as u64), 0);
        });
        assert!(report.monitored_s > report.raw_s, "{report:?}");
        let frac = report.overhead_fraction();
        assert!(
            frac > 0.0 && frac < 0.25,
            "overhead {frac} out of the plausible band"
        );
    }

    #[test]
    fn overhead_shrinks_for_longer_workloads() {
        let short = measure_overhead(build, |ctx| ctx.compute(100_000, 0));
        let long = measure_overhead(build, |ctx| ctx.compute(100_000_000, 0));
        assert!(long.overhead_fraction() < short.overhead_fraction());
    }
}
