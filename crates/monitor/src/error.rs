//! Monitoring failures.

use greenla_papi::PapiError;
use std::fmt;

/// Why monitoring could not be set up or completed. The protocol
/// propagates a monitoring rank's failure to every rank of its node so the
/// job fails coherently instead of deadlocking in a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// PAPI failed on the monitoring rank (the numeric code travels to the
    /// other ranks of the node).
    Papi(i32),
    /// Result file could not be written.
    Io(String),
}

impl From<PapiError> for MonitorError {
    fn from(e: PapiError) -> Self {
        MonitorError::Papi(e.code())
    }
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Papi(code) => write!(f, "PAPI failure on monitoring rank: code {code}"),
            MonitorError::Io(m) => write!(f, "monitor file i/o: {m}"),
        }
    }
}

impl std::error::Error for MonitorError {}
