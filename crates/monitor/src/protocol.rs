//! The Figure-2 choreography: rank grouping, monitoring-rank designation,
//! and the barrier protocol around the measured region.
//!
//! ```text
//! MPI_Comm_split_type(SHARED)            → one communicator per node
//! monitoring rank = highest rank of node comm
//! MPI_Barrier(node comm)                 → align the node
//! monitoring rank: start_monitoring()
//! MPI_Barrier(COMM_WORLD)                → align the job
//! every rank: its share of the solver
//! MPI_Barrier(node comm)                 → wait for the node's ranks
//! monitoring rank: end_monitoring()
//! MPI_Barrier(COMM_WORLD)                → final alignment
//! ```
//!
//! The node barrier before `end_monitoring` is what makes the measurement
//! *correct*: the counters are read only after every rank of the node has
//! finished its share, so the window covers all of the node's work (the
//! property `tests/monitor_correctness.rs` checks, including the failure
//! of a barrier-less variant).

use crate::error::MonitorError;
use crate::files;
use crate::monitoring::{end_monitoring, start_monitoring, MonitorConfig, Session};
use crate::report::NodeReport;
use greenla_mpi::{Comm, RankCtx};
use greenla_rapl::RaplSim;
use std::sync::Arc;

/// In-band status word broadcast over the node communicator after PAPI
/// bring-up so a monitoring-rank failure aborts the whole node coherently.
/// Zero means success; failures carry the (negative) PAPI code
/// sign-extended to u64.
const STATUS_OK: u64 = 0;

/// Status word for a node that downgraded itself to "unmeasured" after a
/// monitoring fault (only sent when [`MonitorConfig::degrade_on_fault`] is
/// set). Distinct from every sign-extended negative PAPI code and from
/// [`STATUS_OK`].
const STATUS_DEGRADED: u64 = 0xDE67_ADED;

/// Live monitoring state carried through the measured region.
pub struct MonitorHandle {
    node_comm: Comm,
    session: Option<Session>,
    monitor_rank_world: usize,
    /// The node runs unmeasured: monitoring failed and
    /// [`MonitorConfig::degrade_on_fault`] turned that into a downgrade
    /// instead of an abort.
    degraded: bool,
    degrade_on_fault: bool,
}

/// Result of a monitored run on one rank.
pub struct MonitorOutput<R> {
    /// The workload's return value.
    pub result: R,
    /// The node report — `Some` only on monitoring ranks.
    pub report: Option<NodeReport>,
}

impl MonitorHandle {
    /// Rank grouping + designation + measurement start (first half of the
    /// Figure-2 flow). Collective over the world communicator.
    pub fn begin(
        ctx: &mut RankCtx,
        rapl: &Arc<RaplSim>,
        cfg: &MonitorConfig,
    ) -> Result<MonitorHandle, MonitorError> {
        ctx.trace_begin("monitor", "monitor_begin");
        let world = ctx.world();
        let node_comm = ctx.split_shared(&world);
        ctx.check_monitor_node_comm(&node_comm);
        let is_monitor = node_comm.is_highest();
        let monitor_rank_world = node_comm.global_rank(node_comm.size() - 1);
        // Node synchronisation before measurements begin.
        ctx.barrier(&node_comm);
        let mut status = vec![STATUS_OK];
        let mut session = None;
        if is_monitor {
            // A planned monitoring-rank death fires here, mid-protocol:
            // with degradation enabled the node downgrades itself to
            // "unmeasured"; without it the rank really dies and the machine
            // aborts the run with a stable diagnostic.
            let death = ctx.faults_enabled() && ctx.faults_mut().monitor_death_due();
            if death {
                ctx.trace_instant("fault:monitor_death");
                if !cfg.degrade_on_fault {
                    panic!(
                        "injected fault: monitoring rank {} of node {} died during \
                         protocol bring-up",
                        ctx.rank(),
                        ctx.node()
                    );
                }
                ctx.faults_mut().note_degraded();
                ctx.trace_instant("fault:monitor_degraded");
                status = vec![STATUS_DEGRADED];
            } else {
                match start_monitoring(rapl, ctx.node(), cfg, ctx.now()) {
                    Ok(s) => {
                        ctx.trace_instant("start_monitoring");
                        ctx.check_monitor_start();
                        session = Some(s);
                    }
                    Err(MonitorError::Papi(code)) => {
                        if cfg.degrade_on_fault {
                            ctx.faults_mut().note_degraded();
                            ctx.trace_instant("fault:monitor_degraded");
                            status = vec![STATUS_DEGRADED];
                        } else {
                            status = vec![code as i64 as u64];
                        }
                    }
                    Err(MonitorError::Io(_)) => unreachable!("start does no file i/o"),
                }
            }
        }
        // The monitoring rank shares its bring-up status with its node;
        // everyone only reads it, so it travels as one shared word.
        let root = node_comm.size() - 1;
        let status = ctx.bcast_shared_u64(&node_comm, root, is_monitor.then_some(status));
        let degraded = status[0] == STATUS_DEGRADED;
        if status[0] != STATUS_OK && !degraded {
            ctx.trace_end("monitor", "monitor_begin");
            return Err(MonitorError::Papi(status[0] as i64 as i32));
        }
        // General execution synchronisation. A degraded node still joins:
        // the rest of the job must not notice the downgrade.
        ctx.barrier(&world);
        ctx.trace_end("monitor", "monitor_begin");
        ctx.trace_begin("monitor", "measured_region");
        Ok(MonitorHandle {
            node_comm,
            session,
            monitor_rank_world,
            degraded,
            degrade_on_fault: cfg.degrade_on_fault,
        })
    }

    /// Mark a phase boundary (e.g. between matrix allocation and solver
    /// execution). Collective over the node communicator: all ranks of the
    /// node synchronise so the boundary is well defined.
    pub fn phase(&mut self, ctx: &mut RankCtx, label: &str) -> Result<(), MonitorError> {
        ctx.barrier(&self.node_comm);
        if ctx.trace_enabled() {
            ctx.trace_instant(&format!("phase:{label}"));
        }
        if let Some(mut s) = self.session.take() {
            match s.mark_phase(label, ctx.now()) {
                Ok(()) => self.session = Some(s),
                Err(e) => {
                    // Mid-run measurement loss (e.g. a glitched powercap
                    // read): degrade the node rather than fail the job.
                    if !self.degrade_on_fault {
                        return Err(e);
                    }
                    ctx.faults_mut().note_degraded();
                    ctx.trace_instant("fault:monitor_degraded");
                    self.degraded = true;
                }
            }
        }
        Ok(())
    }

    /// Measurement stop + teardown (second half of the Figure-2 flow).
    pub fn finish(
        self,
        ctx: &mut RankCtx,
        cfg: &MonitorConfig,
    ) -> Result<Option<NodeReport>, MonitorError> {
        ctx.trace_end("monitor", "measured_region");
        ctx.trace_begin("monitor", "monitor_finish");
        // Ranks of the node synchronise so the monitoring rank stops only
        // after all of them completed their share.
        ctx.barrier(&self.node_comm);
        let mut report = None;
        if let Some(session) = self.session {
            ctx.check_monitor_end();
            match end_monitoring(session, ctx.node(), self.monitor_rank_world, ctx.now()) {
                Ok(r) => {
                    ctx.trace_instant("end_monitoring");
                    if let Some(dir) = &cfg.output_dir {
                        files::write_node_report(dir, &r)
                            .map_err(|e| MonitorError::Io(e.to_string()))?;
                    }
                    report = Some(r);
                }
                Err(e) => {
                    // The counters died between the last read and the stop:
                    // with degradation enabled the node forfeits its report
                    // instead of failing the job.
                    if !self.degrade_on_fault {
                        return Err(e);
                    }
                    ctx.faults_mut().note_degraded();
                    ctx.trace_instant("fault:monitor_degraded");
                }
            }
        }
        // Final job-wide alignment (then MPI_Finalize in the C framework).
        let world = ctx.world();
        ctx.barrier(&world);
        ctx.trace_end("monitor", "monitor_finish");
        Ok(report)
    }

    /// The node communicator (for tests and phase-aware workloads).
    pub fn node_comm(&self) -> &Comm {
        &self.node_comm
    }

    /// Is this rank its node's monitoring rank?
    pub fn is_monitor(&self) -> bool {
        self.session.is_some()
    }

    /// Is this rank's node running unmeasured after a monitoring fault?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

/// Run `workload` under monitoring: the complete Figure-2 flow in one call.
/// The workload receives the rank context and the handle (to mark phase
/// boundaries).
///
/// # Example
///
/// ```
/// use greenla_cluster::placement::{LoadLayout, Placement};
/// use greenla_cluster::spec::ClusterSpec;
/// use greenla_cluster::PowerModel;
/// use greenla_monitor::{monitored_run, MonitorConfig};
/// use greenla_mpi::Machine;
/// use greenla_rapl::RaplSim;
/// use std::sync::Arc;
///
/// let spec = ClusterSpec::test_cluster(1, 4); // one node, 2×4 cores
/// let placement = Placement::layout(&spec.node, 8, LoadLayout::FullLoad).unwrap();
/// let machine = Machine::new(spec, placement, PowerModel::deterministic(), 1).unwrap();
/// let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 1));
/// let cfg = MonitorConfig::default();
///
/// let out = machine.run(|ctx| {
///     monitored_run(ctx, &rapl, &cfg, |ctx, _handle| {
///         ctx.compute(1_000_000, 0); // the measured workload
///     })
///     .expect("monitoring protocol")
/// });
///
/// // Exactly one rank per node (here: one node) produced a report.
/// let reports: Vec<_> = out.results.into_iter().filter_map(|m| m.report).collect();
/// assert_eq!(reports.len(), 1);
/// assert!(reports[0].total_energy_j() > 0.0);
/// ```
pub fn monitored_run<R>(
    ctx: &mut RankCtx,
    rapl: &Arc<RaplSim>,
    cfg: &MonitorConfig,
    workload: impl FnOnce(&mut RankCtx, &mut MonitorHandle) -> R,
) -> Result<MonitorOutput<R>, MonitorError> {
    let mut handle = MonitorHandle::begin(ctx, rapl, cfg)?;
    let result = workload(ctx, &mut handle);
    let report = handle.finish(ctx, cfg)?;
    Ok(MonitorOutput { result, report })
}
