//! Monitor-protocol conformance under the greenla-check sink: the real
//! Figure-2 choreography must be violation-free, and intentionally broken
//! variants must trip exactly the monitor rules (MON001/MON003/MON004).

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_mpi::{CheckSink, Machine, Rule};
use greenla_rapl::RaplSim;
use std::sync::Arc;

fn checked_machine(nodes: usize, ranks: usize) -> Machine {
    let spec = ClusterSpec::test_cluster(nodes, 4);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 21)
        .unwrap()
        .with_check(CheckSink::enabled())
}

#[test]
fn figure_2_protocol_is_violation_free() {
    let m = checked_machine(2, 16);
    let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), m.seed()));
    m.run(|ctx| {
        monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, handle| {
            ctx.compute(5_000_000 * (1 + ctx.rank() as u64), 256);
            handle.phase(ctx, "execution").unwrap();
        })
        .unwrap()
    });
    let violations = m.check().violations();
    assert!(
        violations.is_empty(),
        "clean monitored run must produce no diagnostics: {violations:#?}"
    );
}

#[test]
fn wrong_designation_trips_mon001() {
    let m = checked_machine(1, 8);
    m.run(|ctx| {
        let world = ctx.world();
        let node_comm = ctx.split_shared(&world);
        ctx.check_monitor_node_comm(&node_comm);
        ctx.barrier(&node_comm);
        // Broken program: the LOWEST rank starts the counters instead of
        // the node's highest rank.
        if ctx.rank() == 0 {
            ctx.check_monitor_start();
        }
        ctx.barrier(&world);
    });
    let violations = m.check().violations();
    let mon001: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::MonitorDesignation)
        .collect();
    assert_eq!(mon001.len(), 1, "exactly one MON001: {violations:#?}");
    assert_eq!(mon001[0].ranks, vec![0]);
    assert_eq!(mon001[0].rule.id(), "MON001");
    assert!(
        mon001[0].message.contains("highest rank 7"),
        "diagnostic must name the designated rank: {}",
        mon001[0].message
    );
}

#[test]
fn barrierless_finish_trips_mon003_and_mon004() {
    let m = checked_machine(1, 8);
    m.run(|ctx| {
        let world = ctx.world();
        let node_comm = ctx.split_shared(&world);
        ctx.check_monitor_node_comm(&node_comm);
        ctx.barrier(&node_comm);
        if node_comm.is_highest() {
            ctx.check_monitor_start();
        }
        ctx.barrier(&world);
        // Rank 0 works far longer than the monitoring rank.
        let flops = if ctx.rank() == 0 {
            200_000_000u64
        } else {
            1_000_000
        };
        ctx.compute(flops, 0);
        // Broken program: the monitoring rank stops the counters at its OWN
        // finish time, without the node barrier Figure 2 requires.
        if node_comm.is_highest() {
            ctx.check_monitor_end();
        }
        ctx.barrier(&world);
    });
    let violations = m.check().violations();
    let mon003: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::MonitorBarrierBeforeEnd)
        .collect();
    assert_eq!(mon003.len(), 1, "exactly one MON003: {violations:#?}");
    assert_eq!(mon003[0].ranks, vec![7]);
    assert!(
        mon003[0].message.contains("node barrier"),
        "diagnostic must explain the missing barrier: {}",
        mon003[0].message
    );
    // The under-covered window is also caught: rank 0's work straddles the
    // premature measurement end.
    let mon004: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::MonitorWindowStraddle)
        .collect();
    assert_eq!(mon004.len(), 1, "exactly one MON004: {violations:#?}");
    assert_eq!(mon004[0].ranks, vec![0]);
    assert!(
        mon004[0].message.contains("missed"),
        "diagnostic must quantify the missed work: {}",
        mon004[0].message
    );
}
