//! Black-box monitoring mode: unmodified applications, per-node sampling
//! daemons, deterministic power traces.

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_monitor::blackbox::blackbox_run;
use greenla_monitor::monitoring::MonitorConfig;
use greenla_mpi::Machine;
use greenla_rapl::RaplSim;
use std::sync::Arc;

fn machine(nodes: usize, ranks: usize, seed: u64) -> Machine {
    let spec = ClusterSpec::test_cluster(nodes, 4);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    Machine::new(spec, placement, power, seed).unwrap()
}

#[test]
fn daemons_dont_run_the_app_and_apps_dont_see_daemons() {
    let m = machine(2, 16, 1);
    let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), 1));
    let out = m.run(|ctx| {
        blackbox_run(
            ctx,
            &rapl,
            &MonitorConfig::default(),
            1e-3,
            |ctx, app_comm| {
                // The unmodified app: uses only its own communicator.
                ctx.compute(10_000_000, 0);
                ctx.barrier(app_comm);
                app_comm.size()
            },
        )
        .unwrap()
    });
    let mut app_sizes = Vec::new();
    let mut daemons = 0;
    for (rank, o) in out.results.iter().enumerate() {
        match (&o.result, &o.report) {
            (Some(sz), None) => app_sizes.push((rank, *sz)),
            (None, Some(r)) => {
                daemons += 1;
                assert_eq!(r.monitor_rank, rank);
            }
            other => panic!(
                "rank {rank}: inconsistent output {:?}",
                (other.0.is_some(), other.1.is_some())
            ),
        }
    }
    assert_eq!(daemons, 2, "one daemon per node");
    // 16 ranks − 2 daemons = 14 app ranks, all seeing a 14-member comm.
    assert_eq!(app_sizes.len(), 14);
    assert!(app_sizes.iter().all(|&(_, sz)| sz == 14));
    // Daemons are the highest rank of each node (7 and 15).
    assert!(out.results[7].report.is_some());
    assert!(out.results[15].report.is_some());
}

#[test]
fn power_trace_covers_the_run_and_grows_monotonically() {
    let m = machine(1, 8, 2);
    let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), 2));
    let period = 2e-3;
    let out = m.run(|ctx| {
        blackbox_run(ctx, &rapl, &MonitorConfig::default(), period, |ctx, _| {
            ctx.compute(40_000_000, 1000); // ~20 ms on the slow test CPU
        })
        .unwrap()
    });
    let report = out.results[7].report.clone().expect("daemon report");
    assert!(
        report.samples.len() >= 5,
        "got {} samples",
        report.samples.len()
    );
    // Samples are periodic and end at the app's completion.
    for w in report.samples.windows(2) {
        assert!(w[1].t_s > w[0].t_s);
        assert!(w[1].t_s - w[0].t_s <= period + 1e-12);
        // Cumulative energy counters never decrease.
        for (a, b) in w[0].values_uj.iter().zip(&w[1].values_uj) {
            assert!(b >= a, "counter regressed");
        }
    }
    let last = report.samples.last().unwrap();
    assert!(
        (last.t_s - report.end_s).abs() < 1e-12,
        "final sample at completion"
    );
    assert!(report.total_energy_j() > 0.0);
    // The power trace is plausible: every interval within (0, 2×TDP-ish).
    for (t, w) in report.power_trace() {
        assert!(t >= 0.0 && t <= report.end_s);
        assert!((0.0..200.0).contains(&w), "implausible power {w} W");
    }
}

#[test]
fn blackbox_is_deterministic() {
    let run = || {
        let m = machine(2, 16, 7);
        let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), 7));
        let out = m.run(|ctx| {
            blackbox_run(ctx, &rapl, &MonitorConfig::default(), 1e-3, |ctx, app| {
                ctx.compute(5_000_000 * (1 + ctx.rank() as u64 % 3), 0);
                ctx.barrier(app);
            })
            .unwrap()
        });
        out.results
            .into_iter()
            .filter_map(|o| o.report)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "sample series must be bit-identical across runs"
    );
}

#[test]
fn blackbox_writes_trace_files() {
    let dir = std::env::temp_dir().join(format!("greenla_bb_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = machine(1, 8, 3);
    let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), 3));
    let cfg = MonitorConfig {
        events: None,
        output_dir: Some(dir.clone()),
        degrade_on_fault: false,
    };
    m.run(|ctx| {
        blackbox_run(ctx, &rapl, &cfg, 1e-3, |ctx, _| ctx.compute(2_000_000, 0)).unwrap();
    });
    let file = dir.join("greenla_blackbox_node0000.json");
    let text = std::fs::read_to_string(&file).expect("trace file written");
    let back: greenla_monitor::BlackboxReport = serde_json::from_str(&text).unwrap();
    assert_eq!(back.node, 0);
    assert!(!back.samples.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn whitebox_and_blackbox_energies_agree() {
    // Same workload measured both ways must yield comparable node energy
    // (black-box trails by at most its sampling resolution).
    use greenla_monitor::protocol::monitored_run;
    let work = |ctx: &mut greenla_mpi::RankCtx| ctx.compute(30_000_000, 0);

    let m1 = machine(1, 8, 9);
    let rapl1 = Arc::new(RaplSim::new(m1.ledger(), m1.power().clone(), 9));
    let wb = m1.run(|ctx| {
        monitored_run(ctx, &rapl1, &MonitorConfig::default(), |ctx, _| work(ctx))
            .unwrap()
            .report
    });
    let wb_energy = wb
        .results
        .into_iter()
        .flatten()
        .next()
        .unwrap()
        .total_energy_j();

    let m2 = machine(1, 8, 9); // same node; one core hosts the daemon instead of an app rank
    let rapl2 = Arc::new(RaplSim::new(m2.ledger(), m2.power().clone(), 9));
    let bb = m2.run(|ctx| {
        blackbox_run(ctx, &rapl2, &MonitorConfig::default(), 1e-3, |ctx, _| {
            work(ctx)
        })
        .unwrap()
    });
    let bb_energy = bb
        .results
        .into_iter()
        .filter_map(|o| o.report)
        .next()
        .unwrap()
        .total_energy_j();
    let ratio = bb_energy / wb_energy;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "white {wb_energy} vs black {bb_energy}"
    );
}
