//! End-to-end correctness of the monitoring framework on the simulated
//! cluster: designation, measurement-window coverage, agreement with the
//! ground-truth power model, phase accounting, and failure propagation.

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_monitor::report::JobSummary;
use greenla_monitor::MonitorError;
use greenla_mpi::Machine;
use greenla_rapl::{Domain, RaplSim};
use std::sync::Arc;

fn machine(nodes: usize, ranks: usize) -> Machine {
    let spec = ClusterSpec::test_cluster(nodes, 4);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 21).unwrap()
}

fn rapl_for(m: &Machine) -> Arc<RaplSim> {
    Arc::new(RaplSim::new(m.ledger(), m.power().clone(), m.seed()))
}

#[test]
fn exactly_one_monitoring_rank_per_node_and_it_is_the_highest() {
    let m = machine(3, 24); // 8 ranks/node
    let rapl = rapl_for(&m);
    let out = m.run(|ctx| {
        let r = monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
            ctx.compute(1_000_000, 0);
        })
        .unwrap();
        r.report.is_some()
    });
    for (rank, &is_mon) in out.results.iter().enumerate() {
        // Highest rank on each 8-rank node: 7, 15, 23.
        assert_eq!(is_mon, rank % 8 == 7, "rank {rank}");
    }
}

#[test]
fn measurement_window_covers_every_ranks_work() {
    let m = machine(2, 16);
    let rapl = rapl_for(&m);
    let out = m.run(|ctx| {
        let r = monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
            // Strongly rank-dependent workloads.
            ctx.compute(5_000_000 * (1 + ctx.rank() as u64), 256);
            ctx.now()
        })
        .unwrap();
        (r.result, r.report)
    });
    // Monitoring windows must start before any work and end after the
    // slowest rank of the node.
    for node in 0..2 {
        let monitor = (node + 1) * 8 - 1;
        let report = out.results[monitor]
            .1
            .as_ref()
            .expect("monitor rank has a report");
        let slowest_finish = out.results[node * 8..(node + 1) * 8]
            .iter()
            .map(|(t, _)| *t)
            .fold(0.0f64, f64::max);
        assert!(
            report.end_usec as f64 / 1e6 >= slowest_finish * 0.999999,
            "node {node}: window ends at {} but work ran to {slowest_finish}",
            report.end_usec as f64 / 1e6
        );
    }
}

#[test]
fn monitored_energy_matches_ground_truth_model() {
    let m = machine(2, 16);
    let rapl = rapl_for(&m);
    let rapl2 = Arc::clone(&rapl);
    let out = m.run(|ctx| {
        monitored_run(ctx, &rapl2, &MonitorConfig::default(), |ctx, _| {
            ctx.compute(50_000_000, 1_000_000);
        })
        .unwrap()
        .report
    });
    for report in out.results.into_iter().flatten() {
        let node = report.node;
        let t0 = report.start_usec as f64 / 1e6;
        let t1 = report.end_usec as f64 / 1e6;
        for socket in 0..2 {
            let measured = report.energy_j_socket(Domain::Package, socket).unwrap();
            let truth = rapl
                .ground_truth_j(node, socket, Domain::Package, t1)
                .unwrap()
                - rapl
                    .ground_truth_j(node, socket, Domain::Package, t0)
                    .unwrap();
            let err = (measured - truth).abs();
            // Quantisation loses at most ~2 ms of power plus rounding.
            assert!(
                err < 0.5,
                "node {node} socket {socket}: {measured} vs {truth}"
            );
            assert!(measured > 0.0);
        }
    }
}

#[test]
fn without_node_barrier_the_window_misses_work() {
    // Demonstrate the design point: a monitor that stops at ITS OWN finish
    // time (no node barrier) under-covers slower peers. This is why the
    // paper's protocol pays the synchronisation overhead.
    let m = machine(1, 8);
    let out = m.run(|ctx| {
        // Monitor (rank 7) does little work; rank 0 works long.
        let flops = if ctx.rank() == 0 {
            200_000_000u64
        } else {
            1_000_000
        };
        ctx.compute(flops, 0);
        ctx.now()
    });
    let monitor_finish = out.results[7];
    let slowest = out.results[0];
    assert!(
        monitor_finish < slowest * 0.5,
        "naive stop time {monitor_finish} would miss most of {slowest}"
    );
}

#[test]
fn phases_partition_the_window() {
    let m = machine(2, 16);
    let rapl = rapl_for(&m);
    let out = m.run(|ctx| {
        monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, handle| {
            ctx.touch_memory(10_000_000); // allocation
            handle.phase(ctx, "allocation").unwrap();
            ctx.compute(80_000_000, 0); // execution
            handle.phase(ctx, "execution").unwrap();
        })
        .unwrap()
        .report
    });
    for report in out.results.into_iter().flatten() {
        assert_eq!(report.phases.len(), 3, "allocation, execution, final");
        assert_eq!(report.phases[0].label, "allocation");
        let total: f64 = report.phases.iter().map(|p| p.duration_s).sum();
        assert!(
            (total - report.duration_s()).abs() < 2e-6,
            "phases must tile the window"
        );
        // Per-event phase values must sum to the totals.
        for (e, &total_uj) in report.totals_uj.iter().enumerate() {
            let s: i64 = report.phases.iter().map(|p| p.values_uj[e]).sum();
            assert_eq!(s, total_uj, "event {e} {}", report.events[e]);
        }
        // The execution phase (hard compute) must dominate energy.
        assert!(
            report.phases[1].values_uj[0] > report.phases[0].values_uj[0],
            "execution should out-consume allocation on package 0"
        );
    }
}

#[test]
fn per_processor_files_written_and_parse_back() {
    let dir = std::env::temp_dir().join(format!("greenla_mon_files_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = machine(2, 16);
    let rapl = rapl_for(&m);
    let cfg = MonitorConfig {
        events: None,
        output_dir: Some(dir.clone()),
        degrade_on_fault: false,
    };
    let out = m.run(|ctx| {
        monitored_run(ctx, &rapl, &cfg, |ctx, _| ctx.compute(10_000_000, 0))
            .unwrap()
            .report
    });
    let from_files = greenla_monitor::files::load_all(&dir).unwrap();
    assert_eq!(from_files.len(), 2, "one file per processor/node");
    let in_memory: Vec<_> = out.results.into_iter().flatten().collect();
    assert_eq!(from_files, in_memory);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aggregation_produces_job_summary() {
    let m = machine(3, 24);
    let rapl = rapl_for(&m);
    let out = m.run(|ctx| {
        monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
            ctx.compute(30_000_000, 100_000);
        })
        .unwrap()
        .report
    });
    let reports: Vec<_> = out.results.into_iter().flatten().collect();
    let summary = JobSummary::aggregate(&reports);
    assert_eq!(summary.nodes, 3);
    assert!(summary.total_energy_j > 0.0);
    assert!(summary.pkg_energy_j > summary.dram_energy_j);
    assert!(summary.mean_power_w > 0.0);
    // Full-load layout: both sockets active, similar energy.
    let ratio = summary.pkg_by_socket_j[0] / summary.pkg_by_socket_j[1];
    assert!((0.8..1.25).contains(&ratio), "socket balance {ratio}");
}

#[test]
fn idle_socket_draws_half_ish_under_one_socket_layout() {
    // §5.3's surprising observation: the "idle" socket still draws 50-60 %
    // less (not ~100 % less) than the loaded one.
    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::layout(&spec.node, 8, LoadLayout::HalfOneSocket).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    let m = Machine::new(spec, placement, power, 22).unwrap();
    let rapl = rapl_for(&m);
    let out = m.run(|ctx| {
        monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
            ctx.compute(100_000_000, 0);
        })
        .unwrap()
        .report
    });
    for report in out.results.into_iter().flatten() {
        let loaded = report.energy_j_socket(Domain::Package, 0).unwrap();
        let idle = report.energy_j_socket(Domain::Package, 1).unwrap();
        let drop = 1.0 - idle / loaded;
        assert!(
            (0.4..0.65).contains(&drop),
            "idle socket should consume 50-60% less, got {:.0}% less",
            drop * 100.0
        );
    }
}

#[test]
fn papi_failure_reported_on_every_rank_of_the_node() {
    let m = machine(1, 8);
    let rapl = rapl_for(&m);
    let cfg = MonitorConfig {
        // A bogus event name: add_named_event fails on the monitoring rank.
        events: Some(vec!["powercap:::ENERGY_UJ:ZONE99".into()]),
        output_dir: None,
        degrade_on_fault: false,
    };
    let out = m.run(|ctx| monitored_run(ctx, &rapl, &cfg, |ctx, _| ctx.compute(1000, 0)).err());
    for e in out.results {
        assert_eq!(
            e,
            Some(MonitorError::Papi(-7)),
            "PAPI_ENOEVNT must reach every rank"
        );
    }
}

#[test]
fn monitor_death_degrades_node_instead_of_aborting() {
    use greenla_mpi::{FaultPlan, FaultSink};
    let plan = FaultPlan {
        monitor_deaths: vec![0],
        ..Default::default()
    };
    let sink = FaultSink::with_plan(plan);
    let m = machine(2, 16).with_faults(sink.clone());
    let rapl =
        Arc::new(RaplSim::new(m.ledger(), m.power().clone(), m.seed()).with_faults(sink.clone()));
    let cfg = MonitorConfig {
        degrade_on_fault: true,
        ..Default::default()
    };
    let out = m.run(|ctx| {
        let r = monitored_run(ctx, &rapl, &cfg, |ctx, _| {
            ctx.compute(1_000_000, 0);
        })
        .expect("degraded node must not fail the protocol");
        r.report
    });
    let reports: Vec<_> = out.results.into_iter().flatten().collect();
    assert_eq!(reports.len(), 1, "only the healthy node reports");
    assert_eq!(reports[0].node, 1);
    let rep = sink.report();
    assert_eq!(rep.degraded_nodes, vec![0]);
    assert_eq!(rep.injected.monitor, 1);
    assert_eq!(rep.recovered.monitor, 1);
}

#[test]
fn monitor_death_without_degradation_aborts_with_stable_diagnostic() {
    use greenla_mpi::{FaultPlan, FaultSink};
    let plan = FaultPlan {
        monitor_deaths: vec![0],
        ..Default::default()
    };
    let m = machine(2, 16).with_faults(FaultSink::with_plan(plan));
    let rapl = rapl_for(&m);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|ctx| {
            monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
                ctx.compute(1_000_000, 0);
            })
            .map(|_| ())
            .ok();
        })
    }));
    let payload = match r {
        Err(p) => p,
        Ok(_) => panic!("strict mode must abort on monitoring-rank death"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.starts_with("injected fault: monitoring rank")
            || msg.contains("simulated MPI run aborted")
            || msg.contains("all peers gone"),
        "unstable diagnostic: {msg}"
    );
}

#[test]
fn glitched_counter_degrades_node_mid_run() {
    use greenla_mpi::{CounterFault, CounterFaultKind, FaultPlan, FaultSink};
    // Counter dies after monitoring starts: the phase read or the stop
    // fails, and the node forfeits its report instead of failing the job.
    let plan = FaultPlan {
        counters: vec![CounterFault {
            node: 0,
            socket: 0,
            from_s: 1.0e-6,
            kind: CounterFaultKind::Glitch,
        }],
        ..Default::default()
    };
    let sink = FaultSink::with_plan(plan);
    let m = machine(2, 16).with_faults(sink.clone());
    let rapl =
        Arc::new(RaplSim::new(m.ledger(), m.power().clone(), m.seed()).with_faults(sink.clone()));
    let cfg = MonitorConfig {
        degrade_on_fault: true,
        ..Default::default()
    };
    let out = m.run(|ctx| {
        let r = monitored_run(ctx, &rapl, &cfg, |ctx, handle| {
            ctx.compute(50_000_000, 0);
            handle.phase(ctx, "solve").unwrap();
            ctx.compute(1_000_000, 0);
        })
        .expect("degraded node must not fail the protocol");
        r.report
    });
    let reports: Vec<_> = out.results.into_iter().flatten().collect();
    assert_eq!(reports.len(), 1, "only the healthy node reports");
    assert_eq!(reports[0].node, 1);
    assert_eq!(sink.report().degraded_nodes, vec![0]);
}
