#![forbid(unsafe_code)]
//! # greenla-cg
//!
//! Conjugate-gradient solver for sparse SPD systems on the `greenla-mpi`
//! simulated runtime: the memory-bound counterweight to the workspace's
//! dense solvers, where GFLOP/s sits on the roofline's memory ceiling and
//! the energy-to-solution ranking inverts.
//!
//! The distribution is the textbook 1-D row block: rank `r` owns a
//! contiguous block of rows (and the matching slices of every vector),
//! the iterate `p` travels through a pattern-derived halo exchange before
//! each local SpMV, and the two per-iteration dot-product reductions ride
//! the size-switching collectives (their 8–16-byte payloads always take
//! the latency-bound tree pair). Residuals follow the classical
//! recurrence with a periodic true-residual refresh.
//!
//! Every cost the solver charges to the simulator comes from the closed
//! forms in [`formulas`], and every message it sends is counted by the
//! closed forms in `greenla_model::comm` — the test battery checks both
//! message-for-message against the simulator's traffic ledger.

pub mod error;
pub mod formulas;
pub mod partition;
pub mod solver;

pub use error::CgError;
pub use partition::{HaloPlan, RowBlocks};
pub use solver::{pcg, CgConfig, CgSolve};
