//! 1-D row-block partition and the pattern-derived halo-exchange plan.
//!
//! Both are pure functions of the (replicated) matrix and the rank count,
//! so every rank computes identical plans with no negotiation traffic,
//! and the closed-form traffic models in `greenla_model::comm` can
//! consume the same [`HaloStats`] the runtime exchange produces —
//! message-for-message.

use greenla_linalg::sparse::CsrMatrix;
use std::collections::BTreeMap;

/// Contiguous 1-D row-block partition of `n` rows over `p` ranks: the
/// first `n mod p` ranks own `⌈n/p⌉` rows, the rest `⌊n/p⌋` (ranks beyond
/// `n` own nothing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowBlocks {
    n: usize,
    p: usize,
}

impl RowBlocks {
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "no ranks");
        RowBlocks { n, p }
    }

    /// First row owned by `rank`.
    pub fn lo(&self, rank: usize) -> usize {
        let (base, rem) = (self.n / self.p, self.n % self.p);
        rank * base + rank.min(rem)
    }

    /// One past the last row owned by `rank`.
    pub fn hi(&self, rank: usize) -> usize {
        self.lo(rank + 1).min(self.n)
    }

    /// Rows owned by `rank`.
    pub fn rows(&self, rank: usize) -> usize {
        self.hi(rank) - self.lo(rank)
    }

    /// Which rank owns row `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n);
        let (base, rem) = (self.n / self.p, self.n % self.p);
        let wide = rem * (base + 1);
        if i < wide {
            i / (base + 1)
        } else {
            rem + (i - wide) / base
        }
    }
}

/// One rank's halo-exchange plan: which remote vector entries it needs
/// before a local SpMV, and which of its own entries its peers need.
/// Peer lists are sorted by rank, index lists ascending — the
/// deterministic order the exchange and the traffic model both count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HaloPlan {
    /// `(peer, global indices)` this rank receives, one message per peer.
    pub recv: Vec<(usize, Vec<usize>)>,
    /// `(peer, global indices)` this rank sends, one message per peer.
    pub send: Vec<(usize, Vec<usize>)>,
}

impl HaloPlan {
    /// Plans for every rank, derived from the global sparsity pattern:
    /// rank `r` needs column `j` iff some row it owns references `j` and
    /// `j` lives on another rank.
    pub fn build_all(a: &CsrMatrix, blocks: RowBlocks) -> Vec<HaloPlan> {
        let p = blocks.p;
        // needs[(needer, owner)] = sorted global indices.
        let mut needs: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for r in 0..p {
            let mut wanted: Vec<usize> = (blocks.lo(r)..blocks.hi(r))
                .flat_map(|i| a.row(i).0.iter().map(|&j| j as usize))
                .filter(|&j| blocks.owner(j) != r)
                .collect();
            wanted.sort_unstable();
            wanted.dedup();
            for j in wanted {
                needs.entry((r, blocks.owner(j))).or_default().push(j);
            }
        }
        let mut plans = vec![HaloPlan::default(); p];
        for ((needer, owner), idxs) in needs {
            plans[needer].recv.push((owner, idxs.clone()));
            plans[owner].send.push((needer, idxs));
        }
        plans
    }

    /// Elements this rank receives per exchange.
    pub fn recv_elems(&self) -> usize {
        self.recv.iter().map(|(_, idxs)| idxs.len()).sum()
    }
}

/// Aggregate traffic of one halo exchange across all ranks — exactly what
/// `greenla_model::comm::cg_iteration_traffic` consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Directed messages per exchange (one per `(owner, needer)` pair).
    pub msgs: u64,
    /// Total elements moved per exchange.
    pub elems: u64,
}

impl HaloStats {
    pub fn of(plans: &[HaloPlan]) -> HaloStats {
        HaloStats {
            msgs: plans.iter().map(|pl| pl.recv.len() as u64).sum(),
            elems: plans.iter().map(|pl| pl.recv_elems() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_linalg::sparse::{laplace2d, random_spd};

    #[test]
    fn blocks_tile_the_row_space() {
        for (n, p) in [(10, 3), (16, 4), (3, 8), (1, 1), (64, 5)] {
            let b = RowBlocks::new(n, p);
            let total: usize = (0..p).map(|r| b.rows(r)).sum();
            assert_eq!(total, n);
            for i in 0..n {
                let r = b.owner(i);
                assert!(b.lo(r) <= i && i < b.hi(r), "n={n} p={p} i={i}");
            }
        }
    }

    #[test]
    fn stencil_halo_degenerates_to_neighbour_ring() {
        // A k×k 5-point Laplacian split into p = k blocks of k rows: each
        // interior rank needs exactly one grid line (k entries) from each
        // of its two neighbours — the classic ring exchange.
        let k = 6;
        let sys = laplace2d(k);
        let blocks = RowBlocks::new(sys.n(), k);
        let plans = HaloPlan::build_all(&sys.a, blocks);
        for (r, plan) in plans.iter().enumerate() {
            let peers: Vec<usize> = plan.recv.iter().map(|(pr, _)| *pr).collect();
            let expect: Vec<usize> = [r.checked_sub(1), (r + 1 < k).then_some(r + 1)]
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(peers, expect, "rank {r}");
            assert!(plan.recv.iter().all(|(_, idxs)| idxs.len() == k));
        }
        let stats = HaloStats::of(&plans);
        assert_eq!(stats.msgs, 2 * (k as u64 - 1));
        assert_eq!(stats.elems, 2 * (k as u64 - 1) * k as u64);
    }

    #[test]
    fn send_and_recv_sides_mirror() {
        let sys = random_spd(40, 5, 9);
        let blocks = RowBlocks::new(sys.n(), 7);
        let plans = HaloPlan::build_all(&sys.a, blocks);
        for (r, plan) in plans.iter().enumerate() {
            for (peer, idxs) in &plan.recv {
                let (_, theirs) = plans[*peer]
                    .send
                    .iter()
                    .find(|(to, _)| *to == r)
                    .expect("matching send");
                assert_eq!(idxs, theirs);
                assert!(idxs.iter().all(|&j| blocks.owner(j) == *peer));
                assert!(idxs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            }
        }
    }

    #[test]
    fn single_rank_needs_no_halo() {
        let sys = laplace2d(4);
        let plans = HaloPlan::build_all(&sys.a, RowBlocks::new(sys.n(), 1));
        assert_eq!(HaloStats::of(&plans), HaloStats::default());
    }
}
