//! 1-D row-block partition and the pattern-derived halo-exchange plan.
//!
//! Both are pure functions of the (replicated) matrix and the rank count,
//! so every rank computes identical plans with no negotiation traffic,
//! and the closed-form traffic models in `greenla_model::comm` can
//! consume the same [`HaloStats`] the runtime exchange produces —
//! message-for-message.

use greenla_linalg::sparse::CsrMatrix;
use std::collections::BTreeMap;

/// Contiguous 1-D row-block partition of `n` rows over `p` ranks: the
/// first `n mod p` ranks own `⌈n/p⌉` rows, the rest `⌊n/p⌋` (ranks beyond
/// `n` own nothing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowBlocks {
    n: usize,
    p: usize,
}

impl RowBlocks {
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "no ranks");
        RowBlocks { n, p }
    }

    /// First row owned by `rank`.
    pub fn lo(&self, rank: usize) -> usize {
        let (base, rem) = (self.n / self.p, self.n % self.p);
        rank * base + rank.min(rem)
    }

    /// One past the last row owned by `rank`.
    pub fn hi(&self, rank: usize) -> usize {
        self.lo(rank + 1).min(self.n)
    }

    /// Rows owned by `rank`.
    pub fn rows(&self, rank: usize) -> usize {
        self.hi(rank) - self.lo(rank)
    }

    /// Which rank owns row `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n);
        let (base, rem) = (self.n / self.p, self.n % self.p);
        let wide = rem * (base + 1);
        if i < wide {
            i / (base + 1)
        } else {
            rem + (i - wide) / base
        }
    }
}

/// One rank's halo-exchange plan: which remote vector entries it needs
/// before a local SpMV, and which of its own entries its peers need.
/// Peer lists are sorted by rank, index lists ascending — the
/// deterministic order the exchange and the traffic model both count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HaloPlan {
    /// `(peer, global indices)` this rank receives, one message per peer.
    pub recv: Vec<(usize, Vec<usize>)>,
    /// `(peer, global indices)` this rank sends, one message per peer.
    pub send: Vec<(usize, Vec<usize>)>,
}

impl HaloPlan {
    /// Plans for every rank, derived from the global sparsity pattern:
    /// rank `r` needs column `j` iff some row it owns references `j` and
    /// `j` lives on another rank.
    pub fn build_all(a: &CsrMatrix, blocks: RowBlocks) -> Vec<HaloPlan> {
        let p = blocks.p;
        // needs[(needer, owner)] = sorted global indices.
        let mut needs: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for r in 0..p {
            let mut wanted: Vec<usize> = (blocks.lo(r)..blocks.hi(r))
                .flat_map(|i| a.row(i).0.iter().map(|&j| j as usize))
                .filter(|&j| blocks.owner(j) != r)
                .collect();
            wanted.sort_unstable();
            wanted.dedup();
            for j in wanted {
                needs.entry((r, blocks.owner(j))).or_default().push(j);
            }
        }
        let mut plans = vec![HaloPlan::default(); p];
        for ((needer, owner), idxs) in needs {
            plans[needer].recv.push((owner, idxs.clone()));
            plans[owner].send.push((needer, idxs));
        }
        plans
    }

    /// Elements this rank receives per exchange.
    pub fn recv_elems(&self) -> usize {
        self.recv.iter().map(|(_, idxs)| idxs.len()).sum()
    }
}

/// One rank's rows split by halo dependence: *interior* rows reference
/// only columns the rank owns and can be computed before any neighbour
/// payload lands; *boundary* rows touch at least one remote column and
/// must wait for the halo. The split is what lets the overlapped solver
/// compute the interior SpMV while the exchange is in flight, turning the
/// per-iteration time into `max(halo, interior) + boundary`.
///
/// Row indices are local (relative to the rank's block), each list
/// ascending; together they tile `0..rows`. `nnz` counts accompany each
/// side so the closed-form cost split in [`crate::formulas`] matches the
/// kernel work exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowSplit {
    /// Local indices of rows with no remote column, ascending.
    pub interior: Vec<usize>,
    /// Local indices of rows with at least one remote column, ascending.
    pub boundary: Vec<usize>,
    /// Stored entries in the interior rows.
    pub interior_nnz: usize,
    /// Stored entries in the boundary rows.
    pub boundary_nnz: usize,
}

impl RowSplit {
    /// Split rank `rank`'s rows of `a` (the *global* matrix) under
    /// `blocks`. Pure function of the replicated pattern, like
    /// [`HaloPlan::build_all`].
    pub fn build(a: &CsrMatrix, blocks: RowBlocks, rank: usize) -> RowSplit {
        let (lo, hi) = (blocks.lo(rank), blocks.hi(rank));
        let mut split = RowSplit::default();
        for i in lo..hi {
            let (cols, _) = a.row(i);
            let nnz = cols.len();
            let local = cols
                .iter()
                .all(|&j| (j as usize) >= lo && (j as usize) < hi);
            if local {
                split.interior.push(i - lo);
                split.interior_nnz += nnz;
            } else {
                split.boundary.push(i - lo);
                split.boundary_nnz += nnz;
            }
        }
        split
    }
}

/// Aggregate traffic of one halo exchange across all ranks — exactly what
/// `greenla_model::comm::cg_iteration_traffic` consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Directed messages per exchange (one per `(owner, needer)` pair).
    pub msgs: u64,
    /// Total elements moved per exchange.
    pub elems: u64,
}

impl HaloStats {
    pub fn of(plans: &[HaloPlan]) -> HaloStats {
        HaloStats {
            msgs: plans.iter().map(|pl| pl.recv.len() as u64).sum(),
            elems: plans.iter().map(|pl| pl.recv_elems() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_linalg::sparse::{laplace2d, random_spd};

    #[test]
    fn blocks_tile_the_row_space() {
        for (n, p) in [(10, 3), (16, 4), (3, 8), (1, 1), (64, 5)] {
            let b = RowBlocks::new(n, p);
            let total: usize = (0..p).map(|r| b.rows(r)).sum();
            assert_eq!(total, n);
            for i in 0..n {
                let r = b.owner(i);
                assert!(b.lo(r) <= i && i < b.hi(r), "n={n} p={p} i={i}");
            }
        }
    }

    #[test]
    fn stencil_halo_degenerates_to_neighbour_ring() {
        // A k×k 5-point Laplacian split into p = k blocks of k rows: each
        // interior rank needs exactly one grid line (k entries) from each
        // of its two neighbours — the classic ring exchange.
        let k = 6;
        let sys = laplace2d(k);
        let blocks = RowBlocks::new(sys.n(), k);
        let plans = HaloPlan::build_all(&sys.a, blocks);
        for (r, plan) in plans.iter().enumerate() {
            let peers: Vec<usize> = plan.recv.iter().map(|(pr, _)| *pr).collect();
            let expect: Vec<usize> = [r.checked_sub(1), (r + 1 < k).then_some(r + 1)]
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(peers, expect, "rank {r}");
            assert!(plan.recv.iter().all(|(_, idxs)| idxs.len() == k));
        }
        let stats = HaloStats::of(&plans);
        assert_eq!(stats.msgs, 2 * (k as u64 - 1));
        assert_eq!(stats.elems, 2 * (k as u64 - 1) * k as u64);
    }

    #[test]
    fn send_and_recv_sides_mirror() {
        let sys = random_spd(40, 5, 9);
        let blocks = RowBlocks::new(sys.n(), 7);
        let plans = HaloPlan::build_all(&sys.a, blocks);
        for (r, plan) in plans.iter().enumerate() {
            for (peer, idxs) in &plan.recv {
                let (_, theirs) = plans[*peer]
                    .send
                    .iter()
                    .find(|(to, _)| *to == r)
                    .expect("matching send");
                assert_eq!(idxs, theirs);
                assert!(idxs.iter().all(|&j| blocks.owner(j) == *peer));
                assert!(idxs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            }
        }
    }

    #[test]
    fn single_rank_needs_no_halo() {
        let sys = laplace2d(4);
        let plans = HaloPlan::build_all(&sys.a, RowBlocks::new(sys.n(), 1));
        assert_eq!(HaloStats::of(&plans), HaloStats::default());
    }

    #[test]
    fn row_split_tiles_the_block_and_matches_the_stencil() {
        // k×k 5-point Laplacian on p = k/2 ranks of two grid lines each:
        // the halo reaches exactly one grid line per neighbour, so each
        // block's boundary is its first and/or last line (k rows per
        // neighbouring rank) and the rest is interior.
        let k = 6;
        let p = k / 2;
        let sys = laplace2d(k);
        let blocks = RowBlocks::new(sys.n(), p);
        for r in 0..p {
            let split = RowSplit::build(&sys.a, blocks, r);
            let rows = blocks.rows(r);
            // Tiling: interior ∪ boundary = 0..rows, disjoint, ascending.
            let mut all: Vec<usize> = split
                .interior
                .iter()
                .chain(&split.boundary)
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..rows).collect::<Vec<_>>(), "rank {r}");
            let nbrs = usize::from(r > 0) + usize::from(r + 1 < p);
            assert_eq!(split.boundary.len(), nbrs * k, "rank {r}");
            assert_eq!(split.interior.len(), rows - nbrs * k, "rank {r}");
            let nnz = sys.a.row_block(blocks.lo(r), blocks.hi(r)).nnz();
            assert_eq!(split.interior_nnz + split.boundary_nnz, nnz, "rank {r}");
        }
    }

    #[test]
    fn single_rank_split_is_all_interior() {
        let sys = random_spd(30, 4, 5);
        let split = RowSplit::build(&sys.a, RowBlocks::new(sys.n(), 1), 0);
        assert_eq!(split.interior.len(), 30);
        assert!(split.boundary.is_empty());
        assert_eq!(split.interior_nnz, sys.a.nnz());
        assert_eq!(split.boundary_nnz, 0);
    }
}
