//! Distributed preconditioned conjugate gradients over the simulated
//! runtime.
//!
//! Every rank holds the replicated system (like the dense solvers), owns
//! a contiguous row block of the matrix and of every vector, and runs the
//! classical PCG recurrence: per iteration one halo exchange + local
//! SpMV, one 8-byte curvature reduction, and one combined 16-byte
//! `[r·z, r·r]` reduction — both always on the size-switching
//! collectives' latency-bound tree path. Convergence and abort decisions
//! are made only on allreduced scalars (or on the replicated input
//! before any communication), so all ranks always agree bit-for-bit and
//! no abort can strand a peer in a half-finished exchange.
//!
//! Local arithmetic is charged through the closed forms in
//! [`crate::formulas`], so the simulator's virtual time and the roofline
//! model see the same flop-for-flop picture by construction.

use crate::error::CgError;
use crate::formulas::{self, IterCost};
use crate::partition::{HaloPlan, RowBlocks, RowSplit};
use greenla_linalg::blas1::ddot;
use greenla_linalg::sparse::{CsrMatrix, SparseSystem};
use greenla_mpi::{Comm, RankCtx};

/// User tags for the halo exchange: one tag per exchange round, so
/// consecutive iterations can never alias even if a fast rank runs ahead.
const HALO_TAG_BASE: u64 = 1 << 20;

/// Solver knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CgConfig {
    /// Relative residual target: stop once `‖r‖₂ ≤ tol·‖b‖₂`.
    pub tol: f64,
    /// Iteration budget; `0` means the `10·n + 100` default.
    pub max_iters: usize,
    /// Jacobi (diagonal) preconditioning instead of the identity.
    pub jacobi: bool,
    /// Recompute the true residual `b − A·x` every this many iterations
    /// (an extra halo exchange + SpMV); `0` disables the refresh.
    pub refresh_every: usize,
    /// Overlap the halo exchange with the interior SpMV: post sends,
    /// compute the rows with no remote column while neighbour payloads
    /// are in flight, then drain the receives and finish the boundary
    /// rows. Per-iteration simulated time becomes
    /// `max(halo, interior) + boundary` instead of `halo + spmv`; the
    /// numerics, message counts and tags are bit-identical either way
    /// (the blocking path exists for the invariance tests).
    pub overlap: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            tol: 1e-12,
            max_iters: 0,
            jacobi: false,
            refresh_every: 50,
            overlap: true,
        }
    }
}

/// A converged solve.
#[derive(Clone, Debug)]
pub struct CgSolve {
    /// Solution, replicated on every rank.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// True-residual refreshes performed.
    pub refreshes: usize,
    /// Final relative residual `‖r‖₂/‖b‖₂` (recurrence-based).
    pub rel_residual: f64,
}

/// Solve a replicated sparse SPD system over all ranks of `comm` with
/// 1-D row-block PCG. Collective over `comm`; every rank must pass the
/// same system and config.
pub fn pcg(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &SparseSystem,
    cfg: &CgConfig,
) -> Result<CgSolve, CgError> {
    let n = sys.n();
    let p = comm.size();
    let me = comm.rank();
    let blocks = RowBlocks::new(n, p);

    // SPD pre-check on the replicated diagonal: every rank sees the same
    // matrix, so every rank takes the same abort without any negotiation.
    let diag = sys.a.diagonal();
    if let Some((row, &value)) = diag
        .iter()
        .enumerate()
        .find(|&(_, &d)| d.is_nan() || d <= 0.0)
    {
        return Err(CgError::NonPositiveDiagonal { row, value });
    }

    let (lo, hi) = (blocks.lo(me), blocks.hi(me));
    let rows = hi - lo;
    let a_loc = sys.a.row_block(lo, hi);
    let nnz_l = a_loc.nnz();
    let plan = HaloPlan::build_all(&sys.a, blocks).swap_remove(me);
    let split = RowSplit::build(&sys.a, blocks, me);
    let halo_in = plan.recv_elems();
    let max_iters = if cfg.max_iters == 0 {
        10 * n + 100
    } else {
        cfg.max_iters
    };

    let inv_diag: Option<Vec<f64>> = cfg
        .jacobi
        .then(|| diag[lo..hi].iter().map(|d| 1.0 / d).collect());
    let apply_precond = |r: &[f64], z: &mut Vec<f64>| match &inv_diag {
        Some(inv) => {
            z.clear();
            z.extend(r.iter().zip(inv).map(|(ri, di)| ri * di));
        }
        None => {
            z.clear();
            z.extend_from_slice(r);
        }
    };

    // Setup: x = 0, r = b, z = M⁻¹·r, p = z, seed reductions.
    let b_l = &sys.b[lo..hi];
    let mut x_l = vec![0.0f64; rows];
    let mut r = b_l.to_vec();
    let mut z = Vec::with_capacity(rows);
    apply_precond(&r, &mut z);
    // The direction lives in a full-length buffer so the local SpMV can
    // index columns globally; only the owned + halo slots are ever valid.
    let mut p_full = vec![0.0f64; n];
    p_full[lo..hi].copy_from_slice(&z);
    let mut q = vec![0.0f64; rows];
    let setup = formulas::cg_setup_cost(rows, cfg.jacobi);
    ctx.compute(setup.flops, setup.bytes);
    let seed = ctx.allreduce_sum_owned_f64(comm, vec![ddot(&r, &z), ddot(&r, &r)]);
    let (mut rz, bb) = (seed[0], seed[1]);
    let bnorm = bb.sqrt();
    let mut exchanges = 0u64;
    let mut refreshes = 0usize;

    if bnorm == 0.0 {
        // b = 0 ⇒ x = 0 exactly; gather the (zero) blocks so the traffic
        // shape matches every other completed solve.
        let x = gather_solution(ctx, comm, &x_l);
        return Ok(CgSolve {
            x,
            iterations: 0,
            refreshes: 0,
            rel_residual: 0.0,
        });
    }

    // Per-iteration charges, pre-split around the curvature reduction:
    // the p·q dot happens before it, the rest of the BLAS1 sweep after.
    let dot_cost = IterCost {
        flops: 2 * rows as u64,
        bytes: 16 * rows as u64,
    };
    let blas1 = formulas::blas1_iter_cost(rows, cfg.jacobi);
    let blas1_rest = IterCost {
        flops: blas1.flops - dot_cost.flops,
        bytes: blas1.bytes - dot_cost.bytes,
    };
    let spmv_cost = formulas::spmv_block_cost(rows, nnz_l, halo_in);
    let refresh_cost = formulas::cg_refresh_cost(rows, nnz_l, halo_in);
    // The residual-update tail of a refresh beyond its SpMV (`r = b − A·x`).
    let refresh_extra = IterCost {
        flops: refresh_cost.flops - spmv_cost.flops,
        bytes: refresh_cost.bytes - spmv_cost.bytes,
    };
    let (interior_cost, boundary_cost) = formulas::spmv_split_cost(
        split.interior.len(),
        split.interior_nnz,
        split.boundary.len(),
        split.boundary_nnz,
        halo_in,
    );
    let spmv = SpmvPhase {
        a_loc: &a_loc,
        plan: &plan,
        split: &split,
        whole: spmv_cost,
        interior: interior_cost,
        boundary: boundary_cost,
        overlap: cfg.overlap,
    };

    for k in 1..=max_iters {
        // q = A·p over the owned block, pulling the halo slice of p —
        // overlapped with the interior rows when cfg.overlap is set.
        spmv.apply(
            ctx,
            comm,
            &mut p_full,
            &mut q,
            &mut exchanges,
            IterCost::default(),
        );

        ctx.compute(dot_cost.flops, dot_cost.bytes);
        let pq = ctx.allreduce_sum_owned_f64(comm, vec![ddot(&p_full[lo..hi], &q)])[0];
        if pq.is_nan() || pq <= 0.0 {
            // Indefinite/singular operator (or overflow to NaN): the
            // decision is on an allreduced scalar, so every rank aborts
            // here in the same iteration.
            return Err(CgError::IndefiniteOperator {
                iteration: k,
                curvature: pq,
            });
        }
        let alpha = rz / pq;
        for i in 0..rows {
            x_l[i] += alpha * p_full[lo + i];
            r[i] -= alpha * q[i];
        }

        if cfg.refresh_every > 0 && k % cfg.refresh_every == 0 {
            // True residual: r = b − A·x, killing the recurrence's drift.
            let mut x_full = vec![0.0f64; n];
            x_full[lo..hi].copy_from_slice(&x_l);
            spmv.apply(
                ctx,
                comm,
                &mut x_full,
                &mut q,
                &mut exchanges,
                refresh_extra,
            );
            for i in 0..rows {
                r[i] = b_l[i] - q[i];
            }
            refreshes += 1;
        }

        apply_precond(&r, &mut z);
        ctx.compute(blas1_rest.flops, blas1_rest.bytes);
        let red = ctx.allreduce_sum_owned_f64(comm, vec![ddot(&r, &z), ddot(&r, &r)]);
        let (rz_new, rr) = (red[0], red[1]);
        if !rr.is_finite() {
            return Err(CgError::NoConvergence {
                iterations: k,
                rel_residual: f64::NAN,
            });
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..rows {
            p_full[lo + i] = z[i] + beta * p_full[lo + i];
        }
        if rr.sqrt() <= cfg.tol * bnorm {
            let x = gather_solution(ctx, comm, &x_l);
            return Ok(CgSolve {
                x,
                iterations: k,
                refreshes,
                rel_residual: rr.sqrt() / bnorm,
            });
        }
    }
    Err(CgError::NoConvergence {
        iterations: max_iters,
        rel_residual: rz.max(0.0).sqrt() / bnorm,
    })
}

/// One halo exchange + block SpMV, with the per-phase `compute` charges:
/// everything the solver needs to form `q = A·v` from the full-length
/// gathered vector `v`.
///
/// Overlapped (`overlap = true`): post every send, compute the interior
/// rows while the neighbour payloads are in flight, drain the receives,
/// then finish the boundary rows — the per-iteration simulated time
/// becomes `max(halo, interior) + boundary`. Blocking: the classic
/// exchange-then-sweep, `halo + spmv`. Both orders compute every row with
/// the same left-to-right accumulation exactly once and post identical
/// messages under identical tags, so the numerics and the traffic ledger
/// are bit-identical either way; only the virtual clock differs.
struct SpmvPhase<'a> {
    a_loc: &'a CsrMatrix,
    plan: &'a HaloPlan,
    split: &'a RowSplit,
    /// Whole-sweep cost ([`formulas::spmv_block_cost`]), blocking path.
    whole: IterCost,
    /// Interior-phase cost ([`formulas::spmv_split_cost`]), overlap path.
    interior: IterCost,
    /// Boundary-phase cost; `interior + boundary == whole` exactly.
    boundary: IterCost,
    overlap: bool,
}

impl SpmvPhase<'_> {
    /// `q = A·v` over the owned block, pulling the halo slice of `v`.
    /// `extra` is charged with the final compute phase (the refresh path
    /// folds its residual-update tail in here).
    fn apply(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        v: &mut [f64],
        q: &mut [f64],
        exchanges: &mut u64,
        extra: IterCost,
    ) {
        if !self.overlap {
            halo_exchange(ctx, comm, self.plan, v, exchanges);
            self.a_loc.spmv_block(v, q);
            let c = self.whole.plus(extra);
            ctx.compute(c.flops, c.bytes);
            return;
        }
        let tag = HALO_TAG_BASE + *exchanges;
        *exchanges += 1;
        ctx.trace_begin("comm", "halo_post");
        for (peer, idxs) in &self.plan.send {
            let vals: Vec<f64> = idxs.iter().map(|&j| v[j]).collect();
            ctx.send_f64(comm, *peer, tag, &vals);
        }
        ctx.trace_end("comm", "halo_post");
        // Interior rows touch no remote column, so they proceed while the
        // payloads fly; the recv below then pays only the residual wait.
        ctx.trace_begin("compute", "spmv_interior");
        self.a_loc.spmv_rows(&self.split.interior, v, q);
        ctx.compute(self.interior.flops, self.interior.bytes);
        ctx.trace_end("compute", "spmv_interior");
        ctx.trace_begin("comm", "halo_wait");
        for (peer, idxs) in &self.plan.recv {
            let vals = ctx.recv_f64(comm, *peer, tag);
            debug_assert_eq!(vals.len(), idxs.len());
            for (&j, val) in idxs.iter().zip(vals) {
                v[j] = val;
            }
        }
        ctx.trace_end("comm", "halo_wait");
        ctx.trace_begin("compute", "spmv_boundary");
        self.a_loc.spmv_rows(&self.split.boundary, v, q);
        let c = self.boundary.plus(extra);
        ctx.compute(c.flops, c.bytes);
        ctx.trace_end("compute", "spmv_boundary");
    }
}

/// One blocking halo exchange of the full-length vector `v`: post every
/// send (sends are asynchronous on the simulated runtime, so no ordering
/// can deadlock), then drain the receives in peer order. One message per
/// directed neighbour pair, tagged by exchange round.
fn halo_exchange(
    ctx: &mut RankCtx,
    comm: &Comm,
    plan: &HaloPlan,
    v: &mut [f64],
    exchanges: &mut u64,
) {
    let tag = HALO_TAG_BASE + *exchanges;
    *exchanges += 1;
    ctx.trace_begin("comm", "halo_exchange");
    for (peer, idxs) in &plan.send {
        let vals: Vec<f64> = idxs.iter().map(|&j| v[j]).collect();
        ctx.send_f64(comm, *peer, tag, &vals);
    }
    for (peer, idxs) in &plan.recv {
        let vals = ctx.recv_f64(comm, *peer, tag);
        debug_assert_eq!(vals.len(), idxs.len());
        for (&j, val) in idxs.iter().zip(vals) {
            v[j] = val;
        }
    }
    ctx.trace_end("comm", "halo_exchange");
}

/// Ring-allgather the owned blocks into the replicated full solution.
fn gather_solution(ctx: &mut RankCtx, comm: &Comm, x_l: &[f64]) -> Vec<f64> {
    ctx.allgather_f64(comm, x_l).concat()
}
