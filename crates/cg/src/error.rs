//! CG failure modes.
//!
//! Every variant's `Display` starts with the stable `"cg aborted:"`
//! prefix the chaos battery's `STABLE_DIAGNOSTICS` pins (greenla-lint
//! GL004 keeps the two in sync): a failed solve must surface as a stable,
//! grep-able diagnostic — never a hang or a NaN spin.

use std::fmt;

/// Why conjugate gradients could not solve a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CgError {
    /// A diagonal entry is missing, zero, or negative — the operator
    /// cannot be SPD and the Jacobi preconditioner `1/aᵢᵢ` is undefined.
    /// Detected up front on the replicated matrix, so every rank aborts
    /// in unison instead of deadlocking in a half-abandoned exchange.
    NonPositiveDiagonal { row: usize, value: f64 },
    /// The curvature `pᵀ·A·p` came out non-positive (or non-finite) at
    /// some iteration: the operator is indefinite or singular and the CG
    /// recurrence is no longer a descent method.
    IndefiniteOperator { iteration: usize, curvature: f64 },
    /// The residual never reached the tolerance within the iteration
    /// budget.
    NoConvergence {
        iterations: usize,
        rel_residual: f64,
    },
}

impl fmt::Display for CgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgError::NonPositiveDiagonal { row, value } => write!(
                f,
                "cg aborted: non-positive diagonal a[{row},{row}] = {value}: \
                 operator is not SPD"
            ),
            CgError::IndefiniteOperator {
                iteration,
                curvature,
            } => write!(
                f,
                "cg aborted: indefinite operator (p·Ap = {curvature} at \
                 iteration {iteration})"
            ),
            CgError::NoConvergence {
                iterations,
                rel_residual,
            } => write!(
                f,
                "cg aborted: no convergence after {iterations} iterations \
                 (relative residual {rel_residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for CgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_carries_the_stable_prefix() {
        let errs = [
            CgError::NonPositiveDiagonal { row: 3, value: 0.0 },
            CgError::IndefiniteOperator {
                iteration: 7,
                curvature: -1.0,
            },
            CgError::NoConvergence {
                iterations: 100,
                rel_residual: 0.5,
            },
        ];
        for e in errs {
            assert!(e.to_string().starts_with("cg aborted:"), "{e}");
        }
    }
}
