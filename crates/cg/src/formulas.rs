//! Closed-form per-rank flop and DRAM-byte costs of the CG recurrence —
//! the single source both the solver's `compute` charges and the roofline
//! predictions draw from (mirroring `greenla_ime::formulas` on the dense
//! side). Byte counts are stream counts × 8·rows: every BLAS1 operand
//! read or written once per sweep, plus the CSR SpMV traffic from
//! [`greenla_linalg::flops::spmv_csr_bytes`]'s layout model extended with
//! the halo slice of the gathered vector.

use greenla_linalg::flops;

/// A charge against the simulated core: flops plus DRAM bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterCost {
    pub flops: u64,
    pub bytes: u64,
}

impl IterCost {
    pub fn plus(self, other: IterCost) -> IterCost {
        IterCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }

    pub fn times(self, k: u64) -> IterCost {
        IterCost {
            flops: self.flops * k,
            bytes: self.bytes * k,
        }
    }
}

/// One local row-block SpMV: a multiply-add per stored entry; bytes are
/// the block's values + `u32` column indices (12·nnz), its row pointers
/// (8·(rows+1)), the owned plus halo slices of the gathered vector
/// (8·(rows + halo_in)) and the result write (8·rows).
pub fn spmv_block_cost(rows: usize, nnz: usize, halo_in: usize) -> IterCost {
    IterCost {
        flops: flops::spmv(nnz),
        bytes: 12 * nnz as u64
            + 8 * (rows as u64 + 1)
            + 8 * (rows + halo_in) as u64
            + 8 * rows as u64,
    }
}

/// The block SpMV cost of [`spmv_block_cost`] attributed to the
/// interior/boundary row split the overlapped solver computes in two
/// phases. The interior phase streams its rows' entries, row pointers,
/// the owned slice of the gathered vector and its result slots; the
/// boundary phase carries the rest — including the halo slice (only
/// boundary rows gather remote columns) and the row-pointer sentinel.
/// By construction `interior + boundary == spmv_block_cost(rows, nnz,
/// halo_in)` exactly, so whole-solve costs (and the campaign's flop
/// totals) are independent of whether the solver overlapped.
pub fn spmv_split_cost(
    rows_interior: usize,
    nnz_interior: usize,
    rows_boundary: usize,
    nnz_boundary: usize,
    halo_in: usize,
) -> (IterCost, IterCost) {
    let interior = IterCost {
        flops: flops::spmv(nnz_interior),
        bytes: 12 * nnz_interior as u64 + 8 * rows_interior as u64 * 3,
    };
    let boundary = IterCost {
        flops: flops::spmv(nnz_boundary),
        bytes: 12 * nnz_boundary as u64
            + 8 * (rows_boundary as u64 + 1)
            + 8 * (rows_boundary + halo_in) as u64
            + 8 * rows_boundary as u64,
    };
    (interior, boundary)
}

/// The BLAS1 sweep of one CG iteration over a rank's `rows`-long vector
/// slices: three dot products (`p·q`, `r·z`, `r·r`), two axpys
/// (`x += α·p`, `r −= α·q`), the preconditioner application
/// (`z = M⁻¹·r`: a multiply under Jacobi, a copy otherwise) and the
/// direction update `p = z + β·p`. 12 flops per row (+1 for Jacobi);
/// 17 operand streams (16 unpreconditioned — the copy reads one stream
/// fewer than the multiply).
pub fn blas1_iter_cost(rows: usize, jacobi: bool) -> IterCost {
    let r = rows as u64;
    IterCost {
        flops: 12 * r + if jacobi { r } else { 0 },
        bytes: 8 * r * if jacobi { 17 } else { 16 },
    }
}

/// Everything one steady-state CG iteration charges locally: the block
/// SpMV plus the BLAS1 sweep. (The two reductions and the halo exchange
/// are communication, counted by `greenla_model::comm`.)
pub fn cg_iter_cost(rows: usize, nnz: usize, halo_in: usize, jacobi: bool) -> IterCost {
    spmv_block_cost(rows, nnz, halo_in).plus(blas1_iter_cost(rows, jacobi))
}

/// Setup before the first iteration: `r = b` (copy, 2 streams),
/// `z = M⁻¹·r` (3 streams under Jacobi, 2 for the copy), `p = z` (2
/// streams) and the two seed dot products `r·z`, `r·r` (4 flops/row,
/// 3 streams).
pub fn cg_setup_cost(rows: usize, jacobi: bool) -> IterCost {
    let r = rows as u64;
    IterCost {
        flops: 4 * r + if jacobi { r } else { 0 },
        bytes: 8 * r * if jacobi { 10 } else { 9 },
    }
}

/// A true-residual refresh: one extra block SpMV (`A·x`) plus
/// `r = b − A·x` (one flop per row, 3 streams).
pub fn cg_refresh_cost(rows: usize, nnz: usize, halo_in: usize) -> IterCost {
    spmv_block_cost(rows, nnz, halo_in).plus(IterCost {
        flops: rows as u64,
        bytes: 24 * rows as u64,
    })
}

/// Whole-solve local cost for a rank: setup + `iters` iterations +
/// `refreshes` true-residual refreshes.
pub fn cg_solve_cost(
    rows: usize,
    nnz: usize,
    halo_in: usize,
    jacobi: bool,
    iters: u64,
    refreshes: u64,
) -> IterCost {
    cg_setup_cost(rows, jacobi)
        .plus(cg_iter_cost(rows, nnz, halo_in, jacobi).times(iters))
        .plus(cg_refresh_cost(rows, nnz, halo_in).times(refreshes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_flops_are_spmv_plus_5n_blas1_ops() {
        // 2·nnz (SpMV) + 3 dots (6n) + 2 axpys (4n) + xpay (2n) = 2·nnz + 12n.
        let c = cg_iter_cost(100, 480, 10, false);
        assert_eq!(c.flops, 2 * 480 + 12 * 100);
        assert_eq!(cg_iter_cost(100, 480, 10, true).flops, c.flops + 100);
    }

    #[test]
    fn spmv_block_cost_reduces_to_the_sequential_byte_model() {
        // A single rank owning everything with no halo must charge exactly
        // the sequential closed form.
        let (n, nnz) = (50, 230);
        let c = spmv_block_cost(n, nnz, 0);
        assert_eq!(c.bytes, flops::spmv_csr_bytes(n, nnz));
        assert_eq!(c.flops, flops::spmv(nnz));
    }

    #[test]
    fn empty_rank_charges_only_the_row_pointer_sentinel() {
        // A rank owning zero rows still reads its one-entry row-pointer
        // array per SpMV (8 bytes); everything else must vanish.
        let c = cg_solve_cost(0, 0, 0, true, 10, 2);
        assert_eq!(c.flops, 0);
        assert_eq!(c.bytes, (10 + 2) * 8);
    }

    #[test]
    fn split_cost_sums_to_the_block_cost() {
        // Any interior/boundary attribution must leave the total invariant
        // — the solver charges the two phases separately but the campaign
        // totals may not move.
        for (ri, ni, rb, nb, halo) in [
            (90, 430, 10, 50, 10),
            (0, 0, 100, 480, 24),
            (100, 480, 0, 0, 0),
            (0, 0, 0, 0, 0),
        ] {
            let (i, b) = spmv_split_cost(ri, ni, rb, nb, halo);
            let whole = spmv_block_cost(ri + rb, ni + nb, halo);
            assert_eq!(i.plus(b), whole, "({ri},{ni},{rb},{nb},{halo})");
        }
    }

    #[test]
    fn solve_cost_is_linear_in_iterations() {
        let per = cg_iter_cost(64, 320, 8, false);
        let a = cg_solve_cost(64, 320, 8, false, 3, 0);
        let b = cg_solve_cost(64, 320, 8, false, 4, 0);
        assert_eq!(b.flops - a.flops, per.flops);
        assert_eq!(b.bytes - a.bytes, per.bytes);
    }
}
