//! The overlapped halo/compute path against the blocking solver: the
//! numerics and the traffic ledger must be bit-identical (only the
//! virtual clock may differ), and whenever the halo fits under the
//! interior SpMV the overlapped iteration must be strictly faster.

use greenla_cg::solver::{pcg, CgConfig, CgSolve};
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_linalg::sparse::{laplace2d, random_spd, SparseSystem};
use greenla_mpi::{Machine, RunOutput};

fn machine(ranks: usize) -> Machine {
    let spec = ClusterSpec::test_cluster(1, ranks);
    let placement = Placement::explicit(&spec.node, ranks, &[ranks, 0]).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 7).unwrap()
}

fn solve(sys: &SparseSystem, ranks: usize, cfg: CgConfig) -> RunOutput<CgSolve> {
    machine(ranks).run(|ctx| {
        let world = ctx.world();
        pcg(ctx, &world, sys, &cfg).expect("solves")
    })
}

#[test]
fn overlapped_solver_is_bit_identical_to_blocking() {
    for (sys, ranks, base) in [
        (laplace2d(8), 4, CgConfig::default()),
        (laplace2d(6), 1, CgConfig::default()),
        (
            random_spd(40, 4, 3),
            5,
            CgConfig {
                jacobi: true,
                refresh_every: 3,
                ..CgConfig::default()
            },
        ),
    ] {
        let over = solve(
            &sys,
            ranks,
            CgConfig {
                overlap: true,
                ..base
            },
        );
        let block = solve(
            &sys,
            ranks,
            CgConfig {
                overlap: false,
                ..base
            },
        );
        for (o, b) in over.results.iter().zip(&block.results) {
            assert_eq!(o.iterations, b.iterations);
            assert_eq!(o.refreshes, b.refreshes);
            assert_eq!(o.rel_residual.to_bits(), b.rel_residual.to_bits());
            assert!(
                o.x.iter()
                    .zip(&b.x)
                    .all(|(a, c)| a.to_bits() == c.to_bits()),
                "solution drifted between overlap and blocking"
            );
        }
        // Same messages, same volume: the ledger cannot tell them apart.
        assert_eq!(over.traffic.msgs, block.traffic.msgs, "ranks={ranks}");
        assert_eq!(
            over.traffic.volume_elems(),
            block.traffic.volume_elems(),
            "ranks={ranks}"
        );
    }
}

#[test]
fn overlap_strictly_improves_when_the_halo_fits_under_the_interior() {
    // 1024 unknowns over 4 ranks: 256 rows a rank, the halo one 32-entry
    // grid line per neighbour — interior compute dwarfs the exchange, so
    // the overlapped virtual makespan must be strictly smaller.
    let sys = laplace2d(32);
    let ranks = 4;
    let over = solve(&sys, ranks, CgConfig::default());
    let block = solve(
        &sys,
        ranks,
        CgConfig {
            overlap: false,
            ..CgConfig::default()
        },
    );
    assert!(
        over.makespan < block.makespan,
        "overlap {} vs blocking {}",
        over.makespan,
        block.makespan
    );
}
