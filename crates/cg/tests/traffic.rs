//! Message-for-message verification of the closed-form CG traffic model
//! against the simulator's ledger: `greenla_model::comm::cg_solve_traffic`
//! must reproduce the run's exact message and element counts, and the
//! closed-form flop/byte charges must reproduce the run's virtual time
//! through the spec-derived roofline.

use greenla_cg::formulas;
use greenla_cg::partition::{HaloPlan, HaloStats, RowBlocks};
use greenla_cg::solver::{pcg, CgConfig};
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_linalg::sparse::{laplace2d, random_spd};
use greenla_model::comm::cg_solve_traffic;
use greenla_model::roofline::{KernelProfile, Roofline};
use greenla_mpi::Machine;

fn machine(ranks: usize) -> Machine {
    // One node, all ranks on socket 0 — works for any rank count.
    let spec = ClusterSpec::test_cluster(1, ranks);
    let placement = Placement::explicit(&spec.node, ranks, &[ranks, 0]).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 7).unwrap()
}

#[test]
fn traffic_model_matches_the_simulator_message_for_message() {
    for (sys, ranks, cfg) in [
        (laplace2d(6), 4, CgConfig::default()),
        (laplace2d(6), 1, CgConfig::default()),
        (
            random_spd(40, 4, 3),
            5,
            CgConfig {
                jacobi: true,
                refresh_every: 3,
                ..CgConfig::default()
            },
        ),
    ] {
        let n = sys.n();
        let out = machine(ranks).run(|ctx| {
            let world = ctx.world();
            pcg(ctx, &world, &sys, &cfg).expect("solves")
        });
        let solve = &out.results[0];
        let stats = HaloStats::of(&HaloPlan::build_all(&sys.a, RowBlocks::new(n, ranks)));
        let (msgs, elems) = cg_solve_traffic(
            ranks,
            n,
            solve.iterations as u64,
            solve.refreshes as u64,
            stats.msgs,
            stats.elems,
        );
        assert_eq!(
            (out.traffic.msgs, out.traffic.volume_elems()),
            (msgs, elems),
            "ranks={ranks} n={n} iters={} refreshes={}",
            solve.iterations,
            solve.refreshes,
        );
    }
}

#[test]
fn roofline_reproduces_the_iterations_virtual_time() {
    // On the deterministic power model the spec roofline's rates are the
    // simulator's own charging rates, so per-rank compute time must match
    // the closed-form cost exactly (communication adds on top, so the
    // makespan brackets from above).
    let sys = laplace2d(8);
    let ranks = 4;
    let cfg = CgConfig::default();
    let spec = ClusterSpec::test_cluster(1, ranks);
    let out = machine(ranks).run(|ctx| {
        let world = ctx.world();
        pcg(ctx, &world, &sys, &cfg).expect("solves")
    });
    let solve = &out.results[0];

    let blocks = RowBlocks::new(sys.n(), ranks);
    let plans = HaloPlan::build_all(&sys.a, blocks);
    let rf = Roofline::from_spec(&spec);
    let per_rank_time: Vec<f64> = (0..ranks)
        .map(|r| {
            let rows = blocks.rows(r);
            let nnz = sys.a.row_block(blocks.lo(r), blocks.hi(r)).nnz();
            let cost = formulas::cg_solve_cost(
                rows,
                nnz,
                plans[r].recv_elems(),
                cfg.jacobi,
                solve.iterations as u64,
                0,
            );
            rf.predict(&KernelProfile::sparse(cost.flops, cost.bytes, 1))
                .time_s
        })
        .collect();
    let compute_pred: f64 = per_rank_time.iter().fold(0.0f64, |m, &t| m.max(t));
    assert!(
        compute_pred > 0.0 && compute_pred <= out.makespan,
        "closed-form compute {compute_pred} vs makespan {}",
        out.makespan
    );
    // Communication on the test cluster is latency-dominated; compute
    // must still explain a visible share of the makespan.
    assert!(
        compute_pred / out.makespan > 0.01,
        "compute share {:.4}",
        compute_pred / out.makespan
    );
}

#[test]
fn spmv_sits_on_the_memory_ceiling_of_the_spec_roofline() {
    let sys = laplace2d(32);
    let rows = sys.n();
    let nnz = sys.a.nnz();
    let spec = ClusterSpec::test_cluster(1, 2);
    let rf = Roofline::from_spec(&spec);
    let cost = formulas::spmv_block_cost(rows, nnz, 0);
    let pred = rf.predict(&KernelProfile::sparse(cost.flops, cost.bytes, 1));
    assert!(
        !pred.compute_bound,
        "SpMV must be memory-bound (AI {:.3})",
        pred.ai
    );
    // Pinned at the ceiling: attainable GFLOP/s equals AI × bandwidth.
    let ceiling = pred.ai * rf.mem_bw / 1e9;
    assert!(
        (pred.gflops - ceiling).abs() / ceiling < 1e-9,
        "{} vs ceiling {}",
        pred.gflops,
        ceiling
    );
}
