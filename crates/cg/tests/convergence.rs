//! Oracle property tests for distributed CG: every seeded SPD generator
//! at n = 1..64 must converge to the dense Cholesky reference at 1e-10,
//! Jacobi preconditioning must never cost iterations, and
//! singular/indefinite inputs must abort with the stable diagnostic —
//! never a hang or a NaN spin.

use greenla_cg::solver::{pcg, CgConfig, CgSolve};
use greenla_cg::CgError;
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_linalg::sparse::{laplace2d, laplace3d, random_spd, CsrMatrix, SparseSystem};
use greenla_mpi::Machine;
use greenla_scalapack::potrf::posv;

const RANKS: usize = 4;

fn machine(ranks: usize) -> Machine {
    // One node, all ranks on socket 0 — works for any rank count.
    let spec = ClusterSpec::test_cluster(1, ranks);
    let placement = Placement::explicit(&spec.node, ranks, &[ranks, 0]).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 1).unwrap()
}

fn solve(sys: &SparseSystem, cfg: &CgConfig, ranks: usize) -> Result<CgSolve, CgError> {
    let out = machine(ranks).run(|ctx| {
        let world = ctx.world();
        pcg(ctx, &world, sys, cfg)
    });
    // The outcome is decided on replicated inputs and allreduced scalars,
    // so every rank must return the same thing.
    let first = out.results[0].clone();
    for r in &out.results {
        match (&first, r) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.iterations, b.iterations);
                assert!(a
                    .x
                    .iter()
                    .zip(&b.x)
                    .all(|(p, q)| p.to_bits() == q.to_bits()));
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("ranks disagree on the outcome"),
        }
    }
    first
}

#[test]
fn cg_matches_dense_cholesky_on_every_seeded_spd_oracle() {
    for n in 1..=64usize {
        let sys = random_spd(n, 3, n as u64);
        let dense = sys.to_dense();
        let x_ref = posv(&dense.a, &dense.b).expect("SPD oracle factors");
        let got = solve(&sys, &CgConfig::default(), RANKS).expect("CG converges");
        let err = got
            .x
            .iter()
            .zip(&x_ref)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err < 1e-10, "n={n}: max err {err:.3e} vs Cholesky");
        assert!(sys.residual(&got.x) < 1e-10, "n={n}");
    }
}

#[test]
fn cg_matches_cholesky_on_stencil_systems() {
    for sys in [laplace2d(7), laplace3d(4)] {
        let dense = sys.to_dense();
        let x_ref = posv(&dense.a, &dense.b).expect("stencils are SPD");
        for jacobi in [false, true] {
            let cfg = CgConfig {
                jacobi,
                ..CgConfig::default()
            };
            let got = solve(&sys, &cfg, RANKS).expect("CG converges");
            let err = got
                .x
                .iter()
                .zip(&x_ref)
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
            assert!(err < 1e-10, "n={} jacobi={jacobi}: {err:.3e}", sys.n());
        }
    }
}

#[test]
fn jacobi_never_needs_more_iterations() {
    for seed in 0..8u64 {
        let sys = random_spd(48, 4, seed);
        let plain = solve(&sys, &CgConfig::default(), RANKS).expect("plain CG");
        let pre = solve(
            &sys,
            &CgConfig {
                jacobi: true,
                ..CgConfig::default()
            },
            RANKS,
        )
        .expect("Jacobi CG");
        assert!(
            pre.iterations <= plain.iterations,
            "seed {seed}: Jacobi {} > plain {}",
            pre.iterations,
            plain.iterations
        );
    }
}

#[test]
fn periodic_refresh_fires_and_still_converges() {
    let sys = laplace2d(8);
    let cfg = CgConfig {
        refresh_every: 5,
        tol: 1e-13,
        ..CgConfig::default()
    };
    let got = solve(&sys, &cfg, RANKS).expect("CG converges");
    assert!(got.refreshes >= 1, "refresh cadence of 5 never fired");
    assert!(sys.residual(&got.x) < 1e-12);
}

#[test]
fn singular_input_aborts_with_the_stable_diagnostic() {
    // Zero diagonal row: structurally singular, caught before any
    // communication.
    let a = CsrMatrix::from_rows(vec![vec![(0, 1.0)], vec![(0, 1.0)]]);
    let sys = SparseSystem {
        b: a.matvec(&[1.0, 1.0]),
        x_ref: vec![1.0, 1.0],
        a,
    };
    let err = solve(&sys, &CgConfig::default(), 2).expect_err("must abort");
    assert!(matches!(err, CgError::NonPositiveDiagonal { row: 1, .. }));
    assert!(err.to_string().starts_with("cg aborted:"), "{err}");
}

#[test]
fn indefinite_input_aborts_not_spins() {
    // Positive diagonal but indefinite (eigenvalues 3 and −1): the
    // curvature test must fire within the first iterations.
    let a = CsrMatrix::from_rows(vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 2.0), (1, 1.0)]]);
    let sys = SparseSystem {
        b: vec![1.0, -1.0],
        x_ref: vec![0.0, 0.0],
        a,
    };
    let err = solve(&sys, &CgConfig::default(), 2).expect_err("must abort");
    match err {
        CgError::IndefiniteOperator { curvature, .. } => {
            assert!(curvature <= 0.0, "curvature {curvature}")
        }
        other => panic!("wrong abort: {other}"),
    }
    assert!(err.to_string().starts_with("cg aborted:"), "{err}");
}

#[test]
fn iteration_budget_aborts_with_no_convergence() {
    let sys = random_spd(40, 4, 2);
    let err = solve(
        &sys,
        &CgConfig {
            max_iters: 2,
            ..CgConfig::default()
        },
        RANKS,
    )
    .expect_err("2 iterations cannot reach 1e-12");
    match err {
        CgError::NoConvergence {
            iterations,
            rel_residual,
        } => {
            assert_eq!(iterations, 2);
            assert!(rel_residual.is_finite());
        }
        other => panic!("wrong abort: {other}"),
    }
    assert!(err.to_string().starts_with("cg aborted:"), "{err}");
}

#[test]
fn zero_rhs_returns_the_zero_solution_immediately() {
    let mut sys = laplace2d(4);
    sys.b = vec![0.0; sys.n()];
    let got = solve(&sys, &CgConfig::default(), RANKS).expect("trivial solve");
    assert_eq!(got.iterations, 0);
    assert!(got.x.iter().all(|&v| v == 0.0));
}

#[test]
fn more_ranks_than_rows_still_works() {
    // Ranks 3.. own zero rows; they must still participate in every
    // reduction and the final allgather without deadlocking.
    let sys = random_spd(3, 2, 5);
    let got = solve(&sys, &CgConfig::default(), 6).expect("CG converges");
    assert!(sys.residual(&got.x) < 1e-10);
}
