#![forbid(unsafe_code)]
//! Virtual-time event tracing for the simulated MPI runtime.
//!
//! The runtime's clocks are *virtual*: each rank advances its own `f64`
//! clock as it computes and communicates. This crate records what happened
//! on those clocks — span begin/end pairs for compute, point-to-point and
//! collective operations, and instant markers for protocol milestones —
//! without ever advancing them. Tracing is therefore an observer: a run
//! produces bit-identical virtual timings whether tracing is enabled or
//! not (the harness tests assert this).
//!
//! Architecture:
//!
//! * [`TraceSink`] — the machine-wide handle. [`TraceSink::disabled`] holds
//!   no allocation; every recording call behind it is a single branch on an
//!   `Option`, so the instrumented runtime pays nothing when tracing is
//!   off.
//! * [`RankTracer`] — a per-rank recorder that buffers events locally
//!   (no cross-thread synchronisation on the hot path) and flushes into
//!   the sink when the rank finishes (or on drop, so panicking ranks still
//!   contribute their prefix).
//! * [`TraceEvent`] — one record: rank, node, kind, category, name,
//!   virtual timestamp, numeric args.
//!
//! The harness's `chrome_trace` module converts drained events into Chrome
//! Trace Event JSON (one Perfetto thread track per rank, one process per
//! node).
//!
//! # Example
//!
//! ```
//! use greenla_trace::{EventKind, TraceSink};
//!
//! let sink = TraceSink::enabled();
//! let mut tracer = sink.tracer(0, 0);
//! tracer.begin("compute", "dgemm", 0.0);
//! tracer.end("compute", "dgemm", 1.5e-3);
//! tracer.instant("checkpoint", 1.5e-3);
//! tracer.flush();
//!
//! let events = sink.drain();
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[0].kind, EventKind::Begin);
//! assert_eq!(events[1].t_s, 1.5e-3);
//!
//! // A disabled sink records nothing and allocates nothing.
//! let off = TraceSink::disabled();
//! let mut t = off.tracer(0, 0);
//! t.begin("compute", "dgemm", 0.0);
//! assert!(off.drain().is_empty());
//! ```

use std::sync::{Arc, Mutex, PoisonError};

/// What a [`TraceEvent`] marks: the start of a span, its end, or a
/// zero-duration instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    Begin,
    End,
    Instant,
}

/// One trace record on a rank's virtual clock.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global rank that recorded the event.
    pub rank: usize,
    /// Node the rank is placed on.
    pub node: usize,
    pub kind: EventKind,
    /// Coarse grouping used for colouring/filtering ("compute", "comm",
    /// "coll", "monitor").
    pub cat: &'static str,
    /// Span or marker name ("dgemm", "bcast", "measured_region", …).
    pub name: String,
    /// Virtual time in seconds.
    pub t_s: f64,
    /// Numeric payload (byte counts, flop counts, peers, …).
    pub args: Vec<(&'static str, f64)>,
}

/// Flushed per-rank buffers, in flush order.
#[derive(Default)]
struct Shared {
    flushed: Mutex<Vec<(usize, Vec<TraceEvent>)>>,
}

/// Machine-wide tracing handle. Cheap to clone; all clones feed the same
/// buffer. The disabled sink is a `None` and costs one branch per
/// (skipped) recording call.
#[derive(Clone, Default)]
pub struct TraceSink {
    shared: Option<Arc<Shared>>,
}

impl TraceSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sink that collects events from every tracer it hands out.
    pub fn enabled() -> Self {
        Self {
            shared: Some(Arc::new(Shared::default())),
        }
    }

    /// Is this sink collecting?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A recorder for one rank. Tracers from a disabled sink never buffer.
    pub fn tracer(&self, rank: usize, node: usize) -> RankTracer {
        RankTracer {
            shared: self.shared.clone(),
            rank,
            node,
            buf: Vec::new(),
        }
    }

    /// Take all flushed events, ordered by rank and, within a rank, by
    /// recording order (which is also virtual-time order, clocks being
    /// monotone per rank). The sink is left empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let mut batches = std::mem::take(
            &mut *shared
                .flushed
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        // One rank may flush several batches (e.g. tracer recreated after
        // a retry); a stable sort keeps them in flush order.
        batches.sort_by_key(|(rank, _)| *rank);
        batches.into_iter().flat_map(|(_, events)| events).collect()
    }
}

/// Per-rank event recorder. All methods are no-ops (one branch) when the
/// parent sink is disabled. Events buffer locally; [`RankTracer::flush`]
/// (or drop) publishes them to the sink.
pub struct RankTracer {
    shared: Option<Arc<Shared>>,
    rank: usize,
    node: usize,
    buf: Vec<TraceEvent>,
}

impl RankTracer {
    /// A tracer that records nothing (for contexts built without a sink).
    pub fn disabled() -> Self {
        Self {
            shared: None,
            rank: 0,
            node: 0,
            buf: Vec::new(),
        }
    }

    /// Is this tracer recording? Callers can skip argument marshalling
    /// when false.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    #[inline]
    fn push(
        &mut self,
        kind: EventKind,
        cat: &'static str,
        name: &str,
        t_s: f64,
        args: &[(&'static str, f64)],
    ) {
        if self.shared.is_none() {
            return;
        }
        self.buf.push(TraceEvent {
            rank: self.rank,
            node: self.node,
            kind,
            cat,
            name: name.to_string(),
            t_s,
            args: args.to_vec(),
        });
    }

    /// Open a span at virtual time `t_s`.
    #[inline]
    pub fn begin(&mut self, cat: &'static str, name: &str, t_s: f64) {
        self.push(EventKind::Begin, cat, name, t_s, &[]);
    }

    /// Open a span carrying numeric args (byte counts, peers, …).
    #[inline]
    pub fn begin_with_args(
        &mut self,
        cat: &'static str,
        name: &str,
        t_s: f64,
        args: &[(&'static str, f64)],
    ) {
        self.push(EventKind::Begin, cat, name, t_s, args);
    }

    /// Close the innermost open span with this name at `t_s`. Spans on one
    /// rank must nest (LIFO), mirroring the call structure of the
    /// instrumented runtime.
    #[inline]
    pub fn end(&mut self, cat: &'static str, name: &str, t_s: f64) {
        self.push(EventKind::End, cat, name, t_s, &[]);
    }

    /// A zero-duration marker.
    #[inline]
    pub fn instant(&mut self, name: &str, t_s: f64) {
        self.push(EventKind::Instant, "marker", name, t_s, &[]);
    }

    /// Publish the buffered events to the sink.
    pub fn flush(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if self.buf.is_empty() {
            return;
        }
        shared
            .flushed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((self.rank, std::mem::take(&mut self.buf)));
    }
}

impl Drop for RankTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_holds_no_buffer() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let mut tracer = sink.tracer(3, 1);
        tracer.begin("compute", "work", 0.0);
        tracer.begin_with_args("comm", "send", 0.1, &[("bytes", 80.0)]);
        tracer.end("comm", "send", 0.2);
        tracer.instant("mark", 0.3);
        assert!(tracer.buf.is_empty(), "disabled tracer must not buffer");
        tracer.flush();
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn events_drain_in_rank_then_record_order() {
        let sink = TraceSink::enabled();
        let mut t1 = sink.tracer(1, 0);
        let mut t0 = sink.tracer(0, 0);
        t1.begin("compute", "b", 0.5);
        t1.end("compute", "b", 0.9);
        t0.begin("compute", "a", 0.0);
        t0.end("compute", "a", 0.4);
        // Flush out of rank order on purpose.
        t1.flush();
        t0.flush();
        let events = sink.drain();
        let ranks: Vec<usize> = events.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0, 0, 1, 1]);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[2].name, "b");
        assert!(sink.drain().is_empty(), "drain empties the sink");
    }

    #[test]
    fn drop_flushes_partial_buffers() {
        let sink = TraceSink::enabled();
        {
            let mut tracer = sink.tracer(0, 0);
            tracer.begin("compute", "interrupted", 0.0);
            // No explicit flush: the drop must publish.
        }
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "interrupted");
    }

    #[test]
    fn args_ride_along() {
        let sink = TraceSink::enabled();
        let mut tracer = sink.tracer(2, 1);
        tracer.begin_with_args("comm", "send", 1.0, &[("bytes", 4096.0), ("dst", 5.0)]);
        tracer.flush();
        let events = sink.drain();
        assert_eq!(events[0].args, vec![("bytes", 4096.0), ("dst", 5.0)]);
        assert_eq!(events[0].node, 1);
    }
}
