#![forbid(unsafe_code)]
//! # greenla-harness
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5). Two tiers:
//!
//! * **functional tier** — real solves through the whole simulated stack
//!   (rank threads, actual numerics, PAPI-read energies) on scaled-down
//!   configurations that keep Table 1's geometry (three load layouts,
//!   square rank counts, four matrix dimensions in fixed ratio);
//! * **model tier** — the calibrated analytic model evaluated at the
//!   paper's exact configurations (8640…34560 × 144/576/1296 ranks),
//!   printing the same rows/series the paper reports.
//!
//! A single measurement [`campaign`](run::Dataset::campaign) produces the dataset
//! all figures slice, as in the paper; [`summary`] distils the headline
//! claims (energy gap, power gap, load-level ordering, crossovers) and
//! checks them against the paper's stated bands.

pub mod bench;
pub mod charts;
pub mod chrome_trace;
pub mod config;
pub mod experiments;
pub mod output;
pub mod power_trace;
pub mod powercap;
pub mod roofline;
pub mod run;
pub mod sparse;
pub mod summary;

pub use config::{FunctionalGrid, SolverChoice};
pub use run::{run_once, Aggregated, DataPoint, Dataset, Measurement, RunConfig};
