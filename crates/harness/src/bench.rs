//! Machine-readable benchmark suites and the regression-gate data model.
//!
//! Two pinned suites feed the repo's bench trajectory:
//!
//! - **kernels** — wall-clock microbenchmarks of the packed Level-3 kernels
//!   (plus the scalar reference, so the packed-vs-scalar speedup stays
//!   visible in every artifact);
//! - **campaign** — wall-clock of fixed smoke-grid solver runs, covering
//!   the whole simulated-MPI stack including the wakeup scheduler.
//!
//! `repro --bench-out`/`--bench-campaign` serialise a [`BenchReport`] per
//! suite; the `bench_gate` binary diffs current reports against the
//! checked-in `BENCH_baseline.json` with a tolerance band and fails CI on
//! regression. Entries are matched by `(suite, id)`, so renaming an entry
//! counts as losing coverage until the baseline is regenerated (see
//! EXPERIMENTS.md).

use crate::config::SolverChoice;
use crate::run::{run_once, RunConfig};
use greenla_cg::partition::{RowBlocks, RowSplit};
use greenla_cluster::placement::LoadLayout;
use greenla_linalg::blas3::{
    dgemm_blocked, dgemm_blocked_path, dgemm_reference, dtrsm_left_lower_unit, dtrsm_left_upper,
};
use greenla_linalg::generate::SystemKind;
use greenla_linalg::par::dgemm_parallel_blocked;
use greenla_linalg::simd::{self, KernelPath};
use greenla_linalg::tune::Blocking;
use greenla_linalg::{flops, Matrix};
use serde::{Deserialize, Serialize};

pub mod retry;
pub use retry::median_wall;

/// One benchmark's aggregated result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable identifier; the gate matches baseline and current by it.
    pub id: String,
    /// Number of timed repetitions behind the median.
    pub reps: usize,
    /// Median wall-clock seconds per repetition.
    pub median_wall_s: f64,
    /// Achieved GFLOP/s (flop-count / median wall), where a closed-form
    /// flop count exists; `null` otherwise.
    #[serde(default = "no_rate")]
    pub gflops: Option<f64>,
    /// Achieved DRAM GB/s against the kernel's closed-form byte count —
    /// the headline rate for memory-bound entries (SpMV, the CG
    /// iteration), where GFLOP/s understates what the kernel achieves.
    /// `null` for the compute-bound entries (pre-`gbps` baselines parse
    /// the same way).
    #[serde(default = "no_rate")]
    pub gbps: Option<f64>,
    /// Virtual-time seconds of the simulated run (campaign entries only;
    /// deterministic, so any drift here is a *correctness* signal).
    #[serde(default = "no_rate")]
    pub virtual_s: Option<f64>,
}

fn no_rate() -> Option<f64> {
    None
}

fn no_path() -> Option<String> {
    None
}

/// A named collection of benchmark results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSuite {
    pub suite: String,
    pub entries: Vec<BenchEntry>,
}

/// Top-level artifact format of `BENCH_*.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version for forward compatibility.
    pub schema: u32,
    /// The microkernel path ([`greenla_linalg::simd::resolved`]) the report
    /// was produced under. Kernel wall-clocks are only comparable within
    /// one path — `bench_gate` refuses a cross-path diff rather than
    /// reporting a spurious ISA "regression"/"improvement". `None` in
    /// pre-dispatch artifacts (the serde default keeps them parsing).
    #[serde(default = "no_path")]
    pub kernel_path: Option<String>,
    pub suites: Vec<BenchSuite>,
}

pub const SCHEMA: u32 = 1;

impl BenchReport {
    pub fn new(suites: Vec<BenchSuite>) -> Self {
        BenchReport {
            schema: SCHEMA,
            kernel_path: Some(simd::resolved().label().to_string()),
            suites,
        }
    }

    /// Look up an entry by suite and id.
    pub fn get(&self, suite: &str, id: &str) -> Option<&BenchEntry> {
        self.suites
            .iter()
            .find(|s| s.suite == suite)
            .and_then(|s| s.entries.iter().find(|e| e.id == id))
    }

    /// Speedup of `fast` over `slow` within `suite` (by median wall-clock).
    pub fn speedup(&self, suite: &str, fast: &str, slow: &str) -> Option<f64> {
        let f = self.get(suite, fast)?.median_wall_s;
        let s = self.get(suite, slow)?.median_wall_s;
        (f > 0.0).then(|| s / f)
    }
}

pub(crate) fn test_matrix(n: usize, salt: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| ((i * (7 + salt) + j * 13) % 17) as f64 - 8.0)
}

/// The pinned kernel suite. `quick` trims repetitions (CI), not problem
/// sizes — the 512³ entries are what the acceptance gate tracks. Even the
/// quick mode keeps enough repetitions that the median shrugs off several
/// noisy samples on a shared runner (the whole suite stays ~1 s).
pub fn kernel_suite(quick: bool) -> BenchSuite {
    let reps = if quick { 9 } else { 15 };
    let tune = Blocking::default_blocking();
    let mut entries = Vec::new();

    // Small sizes batch several calls per timed repetition so every
    // repetition measures milliseconds, not timer granularity; the
    // recorded median is per call.
    for (n, iters) in [(128usize, 16), (256, 4), (512, 1)] {
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 2);
        let mut c = Matrix::zeros(n, n);
        let wall = median_wall(reps, || {
            for _ in 0..iters {
                dgemm_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune);
            }
        }) / iters as f64;
        entries.push(BenchEntry {
            id: format!("dgemm_packed_{n}"),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dgemm(n, n, n) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
    }

    // The pre-packing scalar loop nest at the acceptance size, so every
    // artifact carries the packed-vs-scalar ratio.
    {
        let n = 512;
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 2);
        let mut c = Matrix::zeros(n, n);
        let wall = median_wall(reps, || {
            dgemm_reference(1.0, a.block(), b.block(), 0.0, c.block_mut());
        });
        entries.push(BenchEntry {
            id: "dgemm_scalar_512".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dgemm(n, n, n) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
    }

    // The packed loop nest pinned to the scalar microkernel at the
    // acceptance size: together with `dgemm_packed_512` (dispatched path)
    // this keeps the SIMD-dispatch win visible in every artifact, the same
    // way `dgemm_scalar_512` keeps the packing win visible.
    {
        let n = 512;
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 2);
        let mut c = Matrix::zeros(n, n);
        let wall = median_wall(reps, || {
            dgemm_blocked_path(
                KernelPath::Scalar,
                1.0,
                a.block(),
                b.block(),
                0.0,
                c.block_mut(),
                &tune,
            );
        });
        entries.push(BenchEntry {
            id: "dgemm_packed_scalar_512".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dgemm(n, n, n) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
    }

    // Sequential-vs-parallel pair at n = 1024 on the dispatched path: the
    // scaling acceptance criterion (≥ 3× on 4 workers on a ≥ 4-core host)
    // is their wall-clock ratio, and both entries ride the gate.
    {
        let n = 1024;
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 2);
        let mut c = Matrix::zeros(n, n);
        let wall = median_wall(reps, || {
            dgemm_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune);
        });
        entries.push(BenchEntry {
            id: "dgemm_seq_1024".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dgemm(n, n, n) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
        let wall = median_wall(reps, || {
            dgemm_parallel_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune, 4);
        });
        entries.push(BenchEntry {
            id: "dgemm_par_1024_w4".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dgemm(n, n, n) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
    }

    // Blocked triangular solves (the LU hot path besides the trailing
    // update): one well-conditioned system per shape, re-solved from a
    // pristine right-hand side every repetition.
    {
        let m = 512;
        let nrhs = 256;
        let mut l = test_matrix(m, 4);
        let mut u = test_matrix(m, 6);
        for j in 0..m {
            for i in 0..=j {
                l[(i, j)] = if i == j { 1.0 } else { 0.0 };
            }
            for i in j + 1..m {
                l[(i, j)] *= 0.001;
                u[(i, j)] = 0.0;
            }
            u[(j, j)] = 4.0;
        }
        let b0: Vec<f64> = (0..m * nrhs).map(|i| ((i % 23) as f64) - 11.0).collect();
        let mut x = b0.clone();
        let wall = median_wall(reps, || {
            x.copy_from_slice(&b0);
            dtrsm_left_lower_unit(m, nrhs, l.as_slice(), m, &mut x, m);
        });
        entries.push(BenchEntry {
            id: "dtrsm_lower_512x256".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dtrsm(m, nrhs) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
        let wall = median_wall(reps, || {
            x.copy_from_slice(&b0);
            dtrsm_left_upper(m, nrhs, u.as_slice(), m, &mut x, m);
        });
        entries.push(BenchEntry {
            id: "dtrsm_upper_512x256".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(flops::dtrsm(m, nrhs) as f64 / wall / 1e9),
            gbps: None,
            virtual_s: None,
        });
    }

    // The sparse pair: CSR SpMV on the million-row 5-point Laplacian (the
    // CSR image streams DRAM well past any cache) and one unpreconditioned
    // CG iteration's local arithmetic — the SpMV plus the exact BLAS1
    // sweep `greenla_cg::formulas::blas1_iter_cost` counts. Both are
    // memory-bound, so GB/s against the closed-form byte model is the
    // headline rate and GFLOP/s rides along for the roofline acceptance.
    {
        let (k, reps) = (LAPLACE_BENCH_K, if quick { 5 } else { 9 });
        let s = greenla_linalg::sparse::laplace2d(k);
        let (n, nnz) = (s.a.n(), s.a.nnz());
        assert_eq!((n, nnz), laplace2d_shape(k), "closed-form shape drifted");
        let spmv_flops = flops::spmv(nnz) as f64;
        let spmv_bytes = flops::spmv_csr_bytes(n, nnz) as f64;
        let ones = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        let wall = median_wall(reps, || {
            s.a.spmv(&ones, &mut y);
            std::hint::black_box(&mut y);
        });
        entries.push(BenchEntry {
            id: "spmv_2d_6m".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(spmv_flops / wall / 1e9),
            gbps: Some(spmv_bytes / wall / 1e9),
            virtual_s: None,
        });

        let iter = greenla_cg::formulas::cg_iter_cost(n, nnz, 0, false);
        let mut xv = vec![0.0f64; n];
        let mut r = s.b.clone();
        let mut z = r.clone();
        let mut p = z.clone();
        let mut q = vec![0.0f64; n];
        let wall = median_wall(reps, || {
            // One CG iteration, operation for operation what
            // `blas1_iter_cost` charges: SpMV, three dots, two axpys, the
            // identity-preconditioner copy and the direction update.
            s.a.spmv(&p, &mut q);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let alpha = if pq != 0.0 { rz / pq } else { 0.0 };
            for (xi, pi) in xv.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, qi) in r.iter_mut().zip(&q) {
                *ri -= alpha * qi;
            }
            let rr: f64 = r.iter().map(|v| v * v).sum();
            z.copy_from_slice(&r);
            let beta = if rz != 0.0 { rr / rz } else { 0.0 };
            for (pi, zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
            std::hint::black_box(&mut p);
        });
        entries.push(BenchEntry {
            id: "cg_iter_2d_6m".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(iter.flops as f64 / wall / 1e9),
            gbps: Some(iter.bytes as f64 / wall / 1e9),
            virtual_s: None,
        });

        // The multithreaded row-block SpMV on the same matrix and byte
        // model. Worker count comes from `GREENLA_SPMV_THREADS` (the CI
        // kernel-dispatch matrix sweeps it), defaulting to the host's
        // cores; the roofline acceptance requires this entry's GB/s to sit
        // on the memory ceiling and beat the serial `spmv_2d_6m` ≥ 2.5× on
        // a multi-core runner.
        let wall = median_wall(reps, || {
            s.a.spmv_parallel(&ones, &mut y);
            std::hint::black_box(&mut y);
        });
        entries.push(BenchEntry {
            id: "spmv_par_2d_6m".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(spmv_flops / wall / 1e9),
            gbps: Some(spmv_bytes / wall / 1e9),
            virtual_s: None,
        });

        // One CG iteration the way the overlapped solver sweeps it: the
        // SpMV runs in partition order — every 16-way row block's interior
        // rows first, then its boundary rows via `spmv_rows` — followed by
        // the same BLAS1 sweep as `cg_iter_2d_6m`. Same closed-form
        // flop/byte model (the split is an exact repartition), so the GB/s
        // gap between the two entries is the price of the indexed sweep.
        let blocks = RowBlocks::new(n, 16);
        let (mut interior, mut boundary) = (Vec::new(), Vec::new());
        for r in 0..16 {
            let split = RowSplit::build(&s.a, blocks, r);
            let lo = blocks.lo(r);
            interior.extend(split.interior.iter().map(|i| lo + i));
            boundary.extend(split.boundary.iter().map(|i| lo + i));
        }
        let mut xv = vec![0.0f64; n];
        let mut r = s.b.clone();
        let mut z = r.clone();
        let mut p = z.clone();
        let wall = median_wall(reps, || {
            s.a.spmv_rows(&interior, &p, &mut q);
            s.a.spmv_rows(&boundary, &p, &mut q);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let alpha = if pq != 0.0 { rz / pq } else { 0.0 };
            for (xi, pi) in xv.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, qi) in r.iter_mut().zip(&q) {
                *ri -= alpha * qi;
            }
            let rr: f64 = r.iter().map(|v| v * v).sum();
            z.copy_from_slice(&r);
            let beta = if rz != 0.0 { rr / rz } else { 0.0 };
            for (pi, zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
            std::hint::black_box(&mut p);
        });
        entries.push(BenchEntry {
            id: "cg_overlap_iter".into(),
            reps,
            median_wall_s: wall,
            gflops: Some(iter.flops as f64 / wall / 1e9),
            gbps: Some(iter.bytes as f64 / wall / 1e9),
            virtual_s: None,
        });
    }

    BenchSuite {
        suite: "kernels".into(),
        entries,
    }
}

/// Grid edge of the pinned sparse bench entries (`spmv_2d_*`,
/// `cg_iter_2d_*`): 6.25 million rows, 50 MB per vector. The CG iteration
/// re-touches five vectors back to back, so the working set must dwarf the
/// last-level cache (105 MB on the reference runner) or the measured rate
/// floats above the DRAM roofline ceiling the entries are validated against.
pub const LAPLACE_BENCH_K: usize = 2500;

/// Closed-form shape of [`greenla_linalg::sparse::laplace2d`]: `k²` rows,
/// five entries per row minus one per boundary side (`4k` total) — what
/// `entry_profile` rebuilds the sparse profiles from without materialising
/// the matrix.
pub fn laplace2d_shape(k: usize) -> (usize, usize) {
    (k * k, 5 * k * k - 4 * k)
}

/// The pinned campaign suite: fixed smoke-scale monitored solves through
/// the full stack (packed kernels, wakeup scheduler, monitoring protocol).
/// Wall-clock is the gated metric; the virtual duration rides along as a
/// determinism canary.
pub fn campaign_suite(quick: bool) -> BenchSuite {
    let reps = if quick { 5 } else { 9 };
    // CG runs the Poisson stencil (its n must be a perfect square and the
    // system SPD); the dense solvers keep the diagonally dominant system
    // every pre-existing baseline was produced under.
    let configs = [
        (
            "ime_n192_p16",
            SolverChoice::ime_optimized(),
            SystemKind::DiagDominant,
            192,
            16,
        ),
        (
            "scalapack_n192_p16",
            SolverChoice::scalapack(),
            SystemKind::DiagDominant,
            192,
            16,
        ),
        (
            "cg_n196_p16",
            SolverChoice::cg(),
            SystemKind::Poisson2d,
            196,
            16,
        ),
    ];
    let entries = configs
        .iter()
        .map(|&(id, solver, system, n, ranks)| {
            let cfg = RunConfig {
                n,
                ranks,
                layout: LoadLayout::FullLoad,
                solver,
                system,
                cores_per_socket: 8,
                seed: 42,
                check: false,
                faults: None,
                scheduler: Default::default(),
                batch: 1,
                cg_overlap: true,
            };
            let mut virtual_s = 0.0;
            let wall = median_wall(reps, || {
                virtual_s = run_once(&cfg).duration_s;
            });
            BenchEntry {
                id: id.into(),
                reps,
                median_wall_s: wall,
                gflops: None,
                gbps: None,
                virtual_s: Some(virtual_s),
            }
        })
        .collect();
    BenchSuite {
        suite: "campaign".into(),
        entries,
    }
}

/// The pinned collectives suite: wall-clock of the simulated collectives
/// themselves — broadcast fan-out, the size-switched allreduce and the
/// ring allgather — at 1 KiB / 256 KiB / 8 MiB across 16 and 64 ranks.
/// The allgather sizes are the *combined* payload (what the solvers see);
/// an `allgather_tree_8mib_p64` reference entry keeps the ring-vs-tree
/// ratio visible in every artifact, exactly like the packed-vs-scalar
/// kernel pair. Virtual seconds ride along as the determinism canary.
pub fn coll_suite(quick: bool) -> BenchSuite {
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::Machine;

    let reps = if quick { 5 } else { 9 };
    let machine = |ranks: usize| {
        let spec = ClusterSpec::test_cluster(ranks.div_ceil(8), 4);
        let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
        Machine::new(spec, placement, PowerModel::deterministic(), 13).unwrap()
    };
    // Element counts for 1 KiB / 256 KiB / 8 MiB of f64s.
    let sizes = [
        (128usize, "1kib"),
        (32 * 1024, "256kib"),
        (1024 * 1024, "8mib"),
    ];
    let mut entries = Vec::new();
    // The per-run activity ledger demands monotonic clocks, so every
    // repetition builds a fresh machine — the same shape `run_once` gives
    // the campaign suite, and the constant cost cancels in the gate's diff.
    let mut push = |id: String, p: usize, body: &(dyn Fn(&mut greenla_mpi::RankCtx) + Sync)| {
        let mut virtual_s = 0.0;
        let wall = median_wall(reps, || {
            virtual_s = machine(p).run(body).makespan;
        });
        entries.push(BenchEntry {
            id,
            reps,
            median_wall_s: wall,
            gflops: None,
            gbps: None,
            virtual_s: Some(virtual_s),
        });
    };
    for p in [16usize, 64] {
        for (elems, tag) in sizes {
            push(format!("bcast_{tag}_p{p}"), p, &move |ctx| {
                let world = ctx.world();
                let data = (ctx.rank() == 0).then(|| vec![1.0; elems]);
                ctx.bcast_shared_f64(&world, 0, data);
            });
            push(format!("allreduce_{tag}_p{p}"), p, &move |ctx| {
                let world = ctx.world();
                ctx.allreduce_sum_owned_f64(&world, vec![1.0; elems]);
            });
            let per = elems / p;
            push(format!("allgather_{tag}_p{p}"), p, &move |ctx| {
                let world = ctx.world();
                ctx.allgather_f64(&world, &vec![ctx.rank() as f64; per]);
            });
        }
        if p == 64 {
            // Reference: the pre-switch gather-then-broadcast composition at
            // the heaviest point, so the ring's win is gated, not assumed.
            let per = 1024 * 1024 / p;
            push(format!("allgather_tree_8mib_p{p}"), p, &move |ctx| {
                let world = ctx.world();
                ctx.allgather_f64_tree(&world, &vec![ctx.rank() as f64; per]);
            });
        }
    }
    BenchSuite {
        suite: "collectives".into(),
        entries,
    }
}

/// The pinned scheduler suite: wall-clock of the rank engines themselves,
/// with no solver in the way. `spinup` measures launching P ranks that do
/// nothing but one barrier and exiting; `barrier_storm` drives 20
/// back-to-back barriers, the wake-heaviest pattern the registry supports
/// (every barrier blocks and wakes all P ranks). The event engine is gated
/// at 1k and 10k ranks; a thread-engine entry at 1k keeps the fiber-vs-
/// thread spin-up ratio visible in every artifact — 10k OS threads is the
/// configuration the M:N engine exists to avoid, so it has no entry.
/// Worker count is pinned (not `available_parallelism`) so runner shape
/// can't move the numbers. Virtual seconds ride along as the determinism
/// canary, exactly like the campaign suite.
pub fn sched_suite(quick: bool) -> BenchSuite {
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::{Machine, SchedulerKind};

    let reps = if quick { 3 } else { 5 };
    let machine = |ranks: usize, kind: SchedulerKind| {
        let spec = ClusterSpec::test_cluster(ranks.div_ceil(8), 4);
        let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
        let mut m = Machine::new(spec, placement, PowerModel::deterministic(), 17)
            .unwrap()
            .with_scheduler(kind);
        if kind == SchedulerKind::EventDriven {
            m.set_sched_workers(2);
        }
        m
    };
    let mut entries = Vec::new();
    let mut push = |id: String,
                    p: usize,
                    kind: SchedulerKind,
                    body: &(dyn Fn(&mut greenla_mpi::RankCtx) + Sync)| {
        let mut virtual_s = 0.0;
        let wall = median_wall(reps, || {
            virtual_s = machine(p, kind).run(body).makespan;
        });
        entries.push(BenchEntry {
            id,
            reps,
            median_wall_s: wall,
            gflops: None,
            gbps: None,
            virtual_s: Some(virtual_s),
        });
    };
    let spinup = |ctx: &mut greenla_mpi::RankCtx| {
        let world = ctx.world();
        ctx.barrier(&world);
    };
    let storm = |ctx: &mut greenla_mpi::RankCtx| {
        let world = ctx.world();
        for _ in 0..20 {
            ctx.barrier(&world);
        }
    };
    let mut cases: Vec<(usize, SchedulerKind, &str)> = vec![
        (1_000, SchedulerKind::ThreadPerRank, "thread"),
        (1_000, SchedulerKind::EventDriven, "event"),
        (10_000, SchedulerKind::EventDriven, "event"),
    ];
    // Fibers only exist on x86_64; elsewhere only the thread entries run
    // (the gate reports the event entries as Missing, which is accurate).
    if !cfg!(target_arch = "x86_64") {
        cases.retain(|&(_, kind, _)| kind == SchedulerKind::ThreadPerRank);
    }
    for &(p, kind, tag) in &cases {
        let pk = p / 1_000;
        push(format!("spinup_{tag}_p{pk}k"), p, kind, &spinup);
        push(format!("barrier_storm_{tag}_p{pk}k"), p, kind, &storm);
    }
    BenchSuite {
        suite: "sched".into(),
        entries,
    }
}

/// Outcome of one baseline-vs-current comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Warn,
    Fail,
    /// Entry exists in the baseline but not in any current report.
    Missing,
    /// Entry is new (no baseline yet) — informational.
    New,
}

/// One line of the gate's diff.
#[derive(Clone, Debug)]
pub struct GateLine {
    pub suite: String,
    pub id: String,
    pub baseline_s: Option<f64>,
    pub current_s: Option<f64>,
    pub delta_pct: Option<f64>,
    /// Achieved-GB/s regression percent (positive = current is slower),
    /// present only when both sides report a rate — the memory-bound
    /// entries.
    pub gbps_delta_pct: Option<f64>,
    pub verdict: Verdict,
}

/// Diff `current` suites against `baseline`, flagging any entry whose
/// median wall-clock regressed more than `warn_pct`/`fail_pct` percent.
/// Memory-bound entries (those carrying a `gbps` rate on both sides) gate
/// their achieved GB/s with the same bands: wall and rate only move
/// together while the closed-form byte model stands still, so a kernel
/// change that inflates the model cannot hide a bandwidth regression.
/// Faster-than-baseline entries always pass (improvements are ratcheted in
/// by regenerating the baseline, not blocked).
pub fn gate(
    baseline: &BenchReport,
    current: &[BenchReport],
    warn_pct: f64,
    fail_pct: f64,
) -> Vec<GateLine> {
    let mut lines = Vec::new();
    let find = |suite: &str, id: &str| -> Option<&BenchEntry> {
        current.iter().find_map(|r| r.get(suite, id))
    };
    for suite in &baseline.suites {
        for e in &suite.entries {
            let line = match find(&suite.suite, &e.id) {
                Some(cur) => {
                    let delta = (cur.median_wall_s - e.median_wall_s) / e.median_wall_s * 100.0;
                    let gbps_delta = match (e.gbps, cur.gbps) {
                        (Some(b), Some(c)) if b > 0.0 => Some((b - c) / b * 100.0),
                        _ => None,
                    };
                    let worst = gbps_delta.map_or(delta, |g| delta.max(g));
                    let verdict = if worst > fail_pct {
                        Verdict::Fail
                    } else if worst > warn_pct {
                        Verdict::Warn
                    } else {
                        Verdict::Ok
                    };
                    GateLine {
                        suite: suite.suite.clone(),
                        id: e.id.clone(),
                        baseline_s: Some(e.median_wall_s),
                        current_s: Some(cur.median_wall_s),
                        delta_pct: Some(delta),
                        gbps_delta_pct: gbps_delta,
                        verdict,
                    }
                }
                None => GateLine {
                    suite: suite.suite.clone(),
                    id: e.id.clone(),
                    baseline_s: Some(e.median_wall_s),
                    current_s: None,
                    delta_pct: None,
                    gbps_delta_pct: None,
                    verdict: Verdict::Missing,
                },
            };
            lines.push(line);
        }
    }
    // Entries the baseline doesn't know about yet.
    for rep in current {
        for suite in &rep.suites {
            for e in &suite.entries {
                if baseline.get(&suite.suite, &e.id).is_none() {
                    lines.push(GateLine {
                        suite: suite.suite.clone(),
                        id: e.id.clone(),
                        baseline_s: None,
                        current_s: Some(e.median_wall_s),
                        delta_pct: None,
                        gbps_delta_pct: None,
                        verdict: Verdict::New,
                    });
                }
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(suite: &str, pairs: &[(&str, f64)]) -> BenchReport {
        BenchReport::new(vec![BenchSuite {
            suite: suite.into(),
            entries: pairs
                .iter()
                .map(|&(id, t)| BenchEntry {
                    id: id.into(),
                    reps: 3,
                    median_wall_s: t,
                    gflops: None,
                    gbps: None,
                    virtual_s: None,
                })
                .collect(),
        }])
    }

    #[test]
    fn gate_classifies_regressions() {
        let base = report(
            "kernels",
            &[("a", 1.0), ("b", 1.0), ("c", 1.0), ("gone", 1.0)],
        );
        let cur = report(
            "kernels",
            &[("a", 1.04), ("b", 1.10), ("c", 1.30), ("fresh", 0.5)],
        );
        let lines = gate(&base, &[cur], 5.0, 15.0);
        let verdict = |id: &str| lines.iter().find(|l| l.id == id).unwrap().verdict;
        assert_eq!(verdict("a"), Verdict::Ok);
        assert_eq!(verdict("b"), Verdict::Warn);
        assert_eq!(verdict("c"), Verdict::Fail);
        assert_eq!(verdict("gone"), Verdict::Missing);
        assert_eq!(verdict("fresh"), Verdict::New);
    }

    #[test]
    fn improvements_pass() {
        let base = report("kernels", &[("a", 1.0)]);
        let cur = report("kernels", &[("a", 0.2)]);
        assert_eq!(gate(&base, &[cur], 5.0, 15.0)[0].verdict, Verdict::Ok);
    }

    #[test]
    fn gbps_regression_fails_even_when_wall_improves() {
        // A byte-model inflation can shrink the rate while the wall-clock
        // gets faster — the gate must still flag it on memory-bound
        // entries, and must ignore gbps when either side lacks it.
        let with_rate = |wall: f64, gbps: Option<f64>| {
            BenchReport::new(vec![BenchSuite {
                suite: "kernels".into(),
                entries: vec![BenchEntry {
                    id: "spmv".into(),
                    reps: 3,
                    median_wall_s: wall,
                    gflops: None,
                    gbps,
                    virtual_s: None,
                }],
            }])
        };
        let base = with_rate(1.0, Some(10.0));
        let lines = gate(&base, &[with_rate(0.9, Some(7.0))], 5.0, 15.0);
        assert_eq!(lines[0].verdict, Verdict::Fail);
        assert!((lines[0].gbps_delta_pct.unwrap() - 30.0).abs() < 1e-12);
        let lines = gate(&base, &[with_rate(0.9, Some(9.5))], 5.0, 15.0);
        assert_eq!(lines[0].verdict, Verdict::Ok, "within band");
        // Pre-gbps baselines (rate absent) fall back to wall-only gating.
        let lines = gate(
            &with_rate(1.0, None),
            &[with_rate(0.9, Some(1.0))],
            5.0,
            15.0,
        );
        assert_eq!(lines[0].verdict, Verdict::Ok);
        assert!(lines[0].gbps_delta_pct.is_none());
    }

    #[test]
    fn speedup_reads_across_entries() {
        let r = report("kernels", &[("fast", 0.5), ("slow", 2.0)]);
        assert_eq!(r.speedup("kernels", "fast", "slow"), Some(4.0));
        assert_eq!(r.speedup("kernels", "fast", "nope"), None);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report("campaign", &[("x", 1.25)]);
        let text = serde_json::to_string(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.get("campaign", "x").unwrap().median_wall_s, 1.25);
    }

    #[test]
    fn laplace2d_shape_matches_the_generator() {
        for k in [1, 2, 7, 10] {
            let s = greenla_linalg::sparse::laplace2d(k);
            assert_eq!(laplace2d_shape(k), (s.a.n(), s.a.nnz()), "k={k}");
        }
    }

    #[test]
    fn kernel_suite_runs_quickly_at_tiny_scale() {
        // Not the pinned suite (too slow for unit tests) — just the median
        // helper and entry plumbing on a tiny matrix.
        let n = 16;
        let a = test_matrix(n, 0);
        let b = test_matrix(n, 2);
        let mut c = Matrix::zeros(n, n);
        let wall = median_wall(3, || {
            dgemm_blocked(
                1.0,
                a.block(),
                b.block(),
                0.0,
                c.block_mut(),
                &Blocking::default_blocking(),
            );
        });
        assert!(wall >= 0.0 && wall.is_finite());
    }
}
