#![forbid(unsafe_code)]
//! `bench_gate` — compare current `BENCH_*.json` reports against the
//! checked-in baseline and fail on regression.
//!
//! ```text
//! bench_gate --baseline BENCH_baseline.json
//!            --current BENCH_kernels.json [--current BENCH_campaign.json ...]
//!            [--fail-pct 15] [--warn-pct 5]
//! ```
//!
//! Exit status: 0 when every baseline entry is present and within the
//! tolerance band, 1 when any entry regressed past `--fail-pct` or vanished
//! from the current reports. Improvements always pass — they are ratcheted
//! in by regenerating the baseline (see EXPERIMENTS.md), never blocked.

use greenla_harness::bench::{gate, BenchReport, Verdict};
use std::path::PathBuf;

struct Args {
    baseline: PathBuf,
    current: Vec<PathBuf>,
    warn_pct: f64,
    fail_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: PathBuf::new(),
        current: Vec::new(),
        warn_pct: 5.0,
        fail_pct: 15.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => args.baseline = PathBuf::from(it.next().expect("--baseline path")),
            "--current" => args
                .current
                .push(PathBuf::from(it.next().expect("--current path"))),
            "--warn-pct" => {
                args.warn_pct = it
                    .next()
                    .expect("--warn-pct value")
                    .parse()
                    .expect("warn pct")
            }
            "--fail-pct" => {
                args.fail_pct = it
                    .next()
                    .expect("--fail-pct value")
                    .parse()
                    .expect("fail pct")
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate --baseline PATH --current PATH [--current PATH ...] [--warn-pct 5] [--fail-pct 15]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if args.baseline.as_os_str().is_empty() || args.current.is_empty() {
        eprintln!("bench_gate needs --baseline and at least one --current; try --help");
        std::process::exit(2);
    }
    args
}

fn load(path: &PathBuf) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let current: Vec<BenchReport> = args.current.iter().map(load).collect();

    // Kernel wall-clocks are only comparable within one dispatched
    // microkernel path: diffing a scalar-path report against an avx512
    // baseline would read as a ~2× "regression" (or a spurious 2×
    // "improvement" the other way). Refuse the comparison outright;
    // reports predating the `kernel_path` field are exempt.
    if let Some(bpath) = baseline.kernel_path.as_deref() {
        for (path, rep) in args.current.iter().zip(&current) {
            if let Some(cpath) = rep.kernel_path.as_deref() {
                if cpath != bpath {
                    eprintln!(
                        "bench gate REFUSED: baseline {} was measured on kernel path `{bpath}` \
                         but {} on `{cpath}`; rerun on a matching CPU/GREENLA_KERNEL or \
                         regenerate the baseline on this path (see EXPERIMENTS.md)",
                        args.baseline.display(),
                        path.display(),
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    eprintln!(
        "kernel path: baseline `{}`, current `{}`",
        baseline.kernel_path.as_deref().unwrap_or("unrecorded"),
        current
            .iter()
            .filter_map(|r| r.kernel_path.as_deref())
            .next()
            .unwrap_or("unrecorded"),
    );

    let lines = gate(&baseline, &current, args.warn_pct, args.fail_pct);

    println!(
        "{:<10} {:<22} {:>12} {:>12} {:>8} {:>8}  verdict",
        "suite", "id", "baseline(s)", "current(s)", "Δ%", "GB/sΔ%"
    );
    let mut failed = false;
    for l in &lines {
        let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.4}"));
        let verdict = match l.verdict {
            Verdict::Ok => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => {
                failed = true;
                "FAIL"
            }
            Verdict::Missing => {
                failed = true;
                "MISSING"
            }
            Verdict::New => "new",
        };
        println!(
            "{:<10} {:<22} {:>12} {:>12} {:>8} {:>8}  {verdict}",
            l.suite,
            l.id,
            fmt(l.baseline_s),
            fmt(l.current_s),
            l.delta_pct.map_or("-".into(), |d| format!("{d:+.1}")),
            l.gbps_delta_pct.map_or("-".into(), |d| format!("{d:+.1}")),
        );
    }
    let n_warn = lines.iter().filter(|l| l.verdict == Verdict::Warn).count();
    if failed {
        eprintln!(
            "bench gate FAILED (>{:.0}% median wall-clock or delivered-GB/s regression, or lost coverage)",
            args.fail_pct
        );
        std::process::exit(1);
    }
    eprintln!(
        "bench gate passed: {} entr{} compared, {n_warn} warning(s)",
        lines.len(),
        if lines.len() == 1 { "y" } else { "ies" },
    );
}
