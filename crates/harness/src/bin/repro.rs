#![forbid(unsafe_code)]
//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--exp all|table1|fig3|fig4|fig5|fig6|fig7|summary|overhead|powercap|trace|scale|sparse]
//!       [--tier functional|model|both]   (default: both)
//!       [--reps N]                       (default: 3)
//!       [--smoke]                        (tiny grid for CI)
//!       [--out DIR]                      (default: results)
//!       [--trace-out PATH]               (Chrome Trace JSON of one traced solve)
//!       [--check]                        (run the campaign under the MPI
//!                                         correctness checker; nonzero exit
//!                                         on any diagnostic)
//!       [--faults PLAN.json]             (inject the deterministic fault
//!                                         plan into every campaign run and
//!                                         report injected vs. observed vs.
//!                                         recovered faults)
//!       [--scheduler thread|event]       (rank engine for every simulated
//!                                         run; virtual results are engine-
//!                                         invariant, but `event` runs ranks
//!                                         as fibers so P is no longer
//!                                         bounded by OS thread limits)
//!       [--ranks P1,P2,...]              (override the campaign's rank
//!                                         counts; with --scheduler event,
//!                                         counts way past the old ~1296
//!                                         practical ceiling are fine)
//! ```
//!
//! `--exp scale` is the large-P smoke: it skips the solver campaign and
//! drives one barrier + broadcast + allreduce workout at the largest
//! `--ranks` value (default 10000) on the event engine, writing a
//! `scale_smoke.json` artifact with wall/virtual timings.
//!
//! Functional-tier figures come from real monitored solves on the scaled
//! simulated cluster; model-tier figures evaluate the calibrated analytic
//! model at the paper's exact configurations (8640…34560 × 144/576/1296).

use greenla_harness::charts;
use greenla_harness::config::FunctionalGrid;
use greenla_harness::experiments as exp;
use greenla_harness::output::{write_artifact, write_json, Figure};
use greenla_harness::run::Dataset;
use greenla_harness::summary;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    exp: String,
    tier: String,
    reps: usize,
    smoke: bool,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    check: bool,
    faults: Option<PathBuf>,
    scheduler: Option<greenla_mpi::SchedulerKind>,
    ranks: Option<Vec<usize>>,
    bench_out: Option<PathBuf>,
    bench_campaign: Option<PathBuf>,
    bench_coll: Option<PathBuf>,
    bench_sched: Option<PathBuf>,
    bench_baseline: Option<PathBuf>,
    bench_quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: "all".into(),
        tier: "both".into(),
        reps: 3,
        smoke: false,
        out: PathBuf::from("results"),
        trace_out: None,
        check: false,
        faults: None,
        scheduler: None,
        ranks: None,
        bench_out: None,
        bench_campaign: None,
        bench_coll: None,
        bench_sched: None,
        bench_baseline: None,
        bench_quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => args.exp = it.next().expect("--exp needs a value"),
            "--tier" => args.tier = it.next().expect("--tier needs a value"),
            "--reps" => {
                args.reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("reps")
            }
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--faults" => {
                args.faults = Some(PathBuf::from(it.next().expect("--faults needs a value")))
            }
            "--scheduler" => {
                let v = it.next().expect("--scheduler needs a value");
                args.scheduler = Some(greenla_mpi::SchedulerKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("--scheduler wants thread|event, got {v:?}");
                    std::process::exit(2);
                }));
            }
            "--ranks" => {
                let v = it.next().expect("--ranks needs a value");
                let parsed: Vec<usize> = v
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|e| {
                            eprintln!("--ranks wants comma-separated counts, got {v:?}: {e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                assert!(!parsed.is_empty(), "--ranks needs at least one count");
                args.ranks = Some(parsed);
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().expect("--trace-out needs a value")))
            }
            "--bench-out" => {
                args.bench_out = Some(PathBuf::from(it.next().expect("--bench-out needs a value")))
            }
            "--bench-campaign" => {
                args.bench_campaign = Some(PathBuf::from(
                    it.next().expect("--bench-campaign needs a value"),
                ))
            }
            "--bench-coll" => {
                args.bench_coll = Some(PathBuf::from(
                    it.next().expect("--bench-coll needs a value"),
                ))
            }
            "--bench-sched" => {
                args.bench_sched = Some(PathBuf::from(
                    it.next().expect("--bench-sched needs a value"),
                ))
            }
            "--bench-baseline" => {
                args.bench_baseline = Some(PathBuf::from(
                    it.next().expect("--bench-baseline needs a value"),
                ))
            }
            "--bench-quick" => args.bench_quick = true,
            "--help" | "-h" => {
                println!("usage: repro [--exp all|table1|fig3..fig7|summary|overhead|powercap|trace|scale|sparse] [--tier functional|model|both] [--reps N] [--smoke] [--out DIR] [--trace-out PATH] [--check] [--faults PLAN.json] [--scheduler thread|event] [--ranks P1,P2,...] [--bench-out PATH] [--bench-campaign PATH] [--bench-coll PATH] [--bench-sched PATH] [--bench-baseline PATH] [--bench-quick]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn emit(out: &std::path::Path, fig: &Figure) {
    let name = format!("{}.csv", fig.id);
    write_artifact(out, &name, &fig.to_csv()).expect("write csv");
    write_json(out, &format!("{}.json", fig.id), fig).expect("write json");
    println!("{}", charts::ascii(fig));
}

fn main() {
    let args = parse_args();
    let functional = args.tier == "functional" || args.tier == "both";
    let model = args.tier == "model" || args.tier == "both";
    let wants = |e: &str| args.exp == "all" || args.exp == e;
    let t0 = Instant::now();

    // Bench mode runs only the pinned suites and exits: CI's bench job (and
    // local baseline regeneration) wants the timing artefacts without the
    // figure campaign behind them.
    if args.bench_out.is_some()
        || args.bench_campaign.is_some()
        || args.bench_coll.is_some()
        || args.bench_sched.is_some()
        || args.bench_baseline.is_some()
    {
        use greenla_harness::bench::{
            campaign_suite, coll_suite, kernel_suite, sched_suite, BenchReport,
        };
        // Every report records this, but log it up front too: CI greps the
        // job output for the resolved path.
        eprintln!(
            "kernel dispatch: {} (GREENLA_KERNEL={})",
            greenla_linalg::simd::resolved(),
            std::env::var("GREENLA_KERNEL").unwrap_or_else(|_| "auto".into()),
        );
        let write = |path: &PathBuf, report: &BenchReport| {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create bench dir");
                }
            }
            let text = serde_json::to_string_pretty(report).expect("serialise bench report");
            std::fs::write(path, text + "\n").expect("write bench report");
            eprintln!("wrote {}", path.display());
        };
        let quick = if args.bench_quick { " [quick]" } else { "" };
        if let Some(path) = &args.bench_out {
            eprintln!("running kernel bench suite{quick}");
            let report = BenchReport::new(vec![kernel_suite(args.bench_quick)]);
            if let Some(sp) = report.speedup("kernels", "dgemm_packed_512", "dgemm_scalar_512") {
                eprintln!("dgemm 512³ packed vs scalar reference: {sp:.2}x");
            }
            write(path, &report);
        }
        if let Some(path) = &args.bench_campaign {
            eprintln!("running campaign bench suite{quick}");
            let report = BenchReport::new(vec![campaign_suite(args.bench_quick)]);
            write(path, &report);
        }
        if let Some(path) = &args.bench_coll {
            eprintln!("running collectives bench suite{quick}");
            let report = BenchReport::new(vec![coll_suite(args.bench_quick)]);
            if let Some(sp) = report.speedup(
                "collectives",
                "allgather_8mib_p64",
                "allgather_tree_8mib_p64",
            ) {
                eprintln!("8 MiB allgather at P=64, ring vs tree: {sp:.2}x");
            }
            write(path, &report);
        }
        if let Some(path) = &args.bench_sched {
            eprintln!("running scheduler bench suite{quick}");
            let report = BenchReport::new(vec![sched_suite(args.bench_quick)]);
            if let Some(sp) = report.speedup("sched", "spinup_event_p1k", "spinup_thread_p1k") {
                eprintln!("1k-rank spin-up, fibers vs threads: {sp:.2}x");
            }
            write(path, &report);
        }
        // All suites in one file — the shape `bench_gate --baseline` expects.
        if let Some(path) = &args.bench_baseline {
            eprintln!(
                "running kernel + campaign + collectives + sched suites for a fresh baseline{quick}"
            );
            let report = BenchReport::new(vec![
                kernel_suite(args.bench_quick),
                campaign_suite(args.bench_quick),
                coll_suite(args.bench_quick),
                sched_suite(args.bench_quick),
            ]);
            write(path, &report);
        }
        eprintln!("bench done in {:.1}s", t0.elapsed().as_secs_f64());
        return;
    }

    // The large-P smoke: no solver, no campaign — prove the event engine
    // spins up, synchronises and tears down five-digit rank counts inside
    // a CI step timeout, and leave a machine-readable artifact behind.
    if args.exp == "scale" {
        use greenla_cluster::placement::{LoadLayout, Placement};
        use greenla_cluster::spec::ClusterSpec;
        use greenla_cluster::PowerModel;
        use greenla_mpi::{Machine, SchedulerKind};

        let ranks = args
            .ranks
            .as_ref()
            .and_then(|r| r.iter().copied().max())
            .unwrap_or(10_000);
        let scheduler = args.scheduler.unwrap_or(SchedulerKind::EventDriven);
        eprintln!("scale smoke: {ranks} ranks on the {scheduler} engine");
        let spec = ClusterSpec::test_cluster(ranks.div_ceil(8), 4);
        let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad)
            .expect("placement for scale smoke");
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), 42)
            .expect("machine for scale smoke")
            .with_scheduler(scheduler);
        let wall = Instant::now();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            ctx.barrier(&world);
            let data = (ctx.rank() == 0).then(|| vec![1.0f64; 256]);
            ctx.bcast_shared_f64(&world, 0, data);
            let sum = ctx.allreduce_sum_f64(&world, &[1.0])[0];
            ctx.barrier(&world);
            sum
        });
        let wall_s = wall.elapsed().as_secs_f64();
        for (rank, &sum) in out.results.iter().enumerate() {
            assert_eq!(sum, ranks as f64, "rank {rank} disagreed on the allreduce");
        }
        #[derive(serde::Serialize)]
        struct ScaleSmoke {
            ranks: usize,
            scheduler: String,
            wall_s: f64,
            virtual_makespan_s: f64,
            msgs: u64,
            volume_elems: u64,
        }
        let artifact = ScaleSmoke {
            ranks,
            scheduler: scheduler.to_string(),
            wall_s,
            virtual_makespan_s: out.makespan,
            msgs: out.traffic.msgs,
            volume_elems: out.traffic.volume_elems(),
        };
        write_json(&args.out, "scale_smoke.json", &artifact).expect("write scale smoke");
        eprintln!(
            "scale smoke ok: {ranks} ranks, wall {wall_s:.2} s, virtual {:.6} s",
            out.makespan
        );
        return;
    }

    // A fault plan turns the campaign into a chaos run: parse it up front
    // so a malformed plan fails before any work happens.
    let fault_plan = args.faults.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read fault plan {}: {e}", path.display()));
        serde_json::from_str::<greenla_mpi::FaultPlan>(&text)
            .unwrap_or_else(|e| panic!("parse fault plan {}: {e}", path.display()))
    });

    // Experiments that need the measurement campaign (--check or --faults
    // alone also run it: the campaign is what gets checked/faulted).
    let needs_data = functional
        && (args.check
            || fault_plan.is_some()
            || ["fig3", "fig4", "fig5", "fig6", "fig7", "summary"]
                .iter()
                .any(|e| wants(e)));
    let dataset: Option<Dataset> = needs_data.then(|| {
        let mut grid = if args.smoke {
            FunctionalGrid::smoke()
        } else {
            FunctionalGrid::default()
        };
        grid.reps = args.reps;
        grid.check = args.check;
        grid.faults = fault_plan.clone();
        if let Some(kind) = args.scheduler {
            grid.scheduler = kind;
        }
        if let Some(ranks) = &args.ranks {
            grid.ranks = ranks.clone();
        }
        eprintln!(
            "running functional campaign: dims {:?} × ranks {:?} × 3 layouts × 2 solvers × {} reps{}{}",
            grid.dims,
            grid.ranks,
            grid.reps,
            match (grid.check, grid.faults.is_some()) {
                (true, true) => " [checked, faulted]",
                (true, false) => " [checked]",
                (false, true) => " [faulted]",
                (false, false) => "",
            },
            match grid.scheduler {
                greenla_mpi::SchedulerKind::ThreadPerRank => "",
                greenla_mpi::SchedulerKind::EventDriven => " [event engine]",
            }
        );
        let ds = Dataset::campaign(&grid, |msg| {
            eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f64())
        });
        write_json(&args.out, "dataset.json", &ds).expect("write dataset");
        ds
    });

    if args.check {
        let ds = dataset.as_ref().expect("--check implies a campaign");
        let diags: Vec<String> = ds
            .violations()
            .map(|(p, v)| {
                format!(
                    "{} n={} ranks={} layout={}: {v}",
                    p.solver, p.n, p.ranks, p.layout
                )
            })
            .collect();
        for d in &diags {
            eprintln!("VIOLATION {d}");
        }
        eprintln!(
            "checker: {} violation(s) across {} grid point(s)",
            diags.len(),
            ds.points.len()
        );
        if !diags.is_empty() {
            std::process::exit(1);
        }
    }

    if fault_plan.is_some() {
        use greenla_mpi::FaultReport;
        let ds = dataset.as_ref().expect("--faults implies a campaign");
        let mut agg = FaultReport::default();
        let mut runs = 0usize;
        for (_, r) in ds.fault_reports() {
            agg.merge(r);
            runs += 1;
        }
        write_json(&args.out, "fault_reports.json", &agg).expect("write fault reports");
        eprintln!(
            "faults over {runs} run(s): injected {} observed {} recovered {}{}",
            agg.injected.total(),
            agg.observed.total(),
            agg.recovered.total(),
            if agg.degraded_nodes.is_empty() {
                String::new()
            } else {
                format!(" (degraded nodes: {:?})", agg.degraded_nodes)
            }
        );
    }

    if wants("table1") {
        let t = exp::table1();
        write_artifact(&args.out, "table1.csv", &t.to_csv()).expect("write");
        println!("{}", t.to_text());
    }

    if wants("fig3") {
        if let Some(ds) = &dataset {
            let ranks = ds.points.iter().map(|p| p.ranks).min().unwrap_or(16);
            emit(&args.out, &exp::fig3_functional(ds, ranks));
        }
        if model {
            emit(&args.out, &exp::fig3_model(144));
        }
    }

    if wants("fig4") {
        if let Some(ds) = &dataset {
            let (fe, ft) = exp::fig4_functional(ds);
            emit(&args.out, &fe);
            emit(&args.out, &ft);
        }
        if model {
            let (fe, ft) = exp::fig4_model();
            emit(&args.out, &fe);
            emit(&args.out, &ft);
        }
    }

    if wants("fig5") {
        if let Some(ds) = &dataset {
            let (fe, ft) = exp::fig5_functional(ds);
            emit(&args.out, &fe);
            emit(&args.out, &ft);
        }
        if model {
            let (fe, ft) = exp::fig5_model();
            emit(&args.out, &fe);
            emit(&args.out, &ft);
        }
    }

    if wants("fig6") {
        if let Some(ds) = &dataset {
            let ranks = ds.points.iter().map(|p| p.ranks).min().unwrap_or(16);
            let (fe, fp) = exp::fig6_functional(ds, ranks);
            emit(&args.out, &fe);
            emit(&args.out, &fp);
        }
        if model {
            let (fe, fp) = exp::fig6_model(144);
            emit(&args.out, &fe);
            emit(&args.out, &fp);
        }
    }

    if wants("fig7") {
        if let Some(ds) = &dataset {
            let n = ds.points.iter().map(|p| p.n).max().unwrap_or(960);
            let (fe, fp) = exp::fig7_functional(ds, n);
            emit(&args.out, &fe);
            emit(&args.out, &fp);
        }
        if model {
            let (fe, fp) = exp::fig7_model(17280);
            emit(&args.out, &fe);
            emit(&args.out, &fp);
        }
    }

    if wants("summary") {
        if let Some(ds) = &dataset {
            let checks = summary::check_dataset(ds);
            let t = summary::claims_table(
                "summary-functional",
                "Paper claims vs functional tier",
                &checks,
            );
            write_artifact(&args.out, "summary_functional.csv", &t.to_csv()).expect("write");
            write_json(&args.out, "summary_functional.json", &checks).expect("write");
            println!("{}", t.to_text());
        }
        if model {
            let checks = summary::check_model();
            let t = summary::claims_table(
                "summary-model",
                "Paper claims vs model tier (paper scale)",
                &checks,
            );
            write_artifact(&args.out, "summary_model.csv", &t.to_csv()).expect("write");
            write_json(&args.out, "summary_model.json", &checks).expect("write");
            println!("{}", t.to_text());
        }
    }

    if wants("sparse") && functional {
        use greenla_harness::sparse::{self, SparseGrid};
        let mut grid = if args.smoke {
            SparseGrid::smoke()
        } else {
            SparseGrid::default()
        };
        grid.reps = args.reps;
        eprintln!(
            "running sparse campaign: dims {:?} × {} ranks × 4 solvers × {} reps",
            grid.dims, grid.ranks, grid.reps
        );
        let (ds, report) = sparse::campaign(&grid, |msg| {
            eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f64())
        });
        write_json(&args.out, "sparse_dataset.json", &ds).expect("write sparse dataset");
        write_json(&args.out, "sparse_campaign.json", &report).expect("write sparse report");
        let t = sparse::table(&report);
        write_artifact(&args.out, "sparse.csv", &t.to_csv()).expect("write");
        println!("{}", t.to_text());
        for c in &report.checks {
            println!(
                "  {} n={}: wall ratio {:.3}, energy ratio {:.3}, {} iters, {:.2} GB/s{}",
                c.solver,
                c.n,
                c.wall_ratio,
                c.energy_ratio,
                c.iterations,
                c.gbps,
                if c.within_band { "" } else { "  [OUT OF BAND]" }
            );
        }
        if !(report.all_within_band && report.all_memory_bound && report.inversion_holds) {
            eprintln!(
                "sparse campaign FAILED: within_band={} memory_bound={} inversion={}",
                report.all_within_band, report.all_memory_bound, report.inversion_holds
            );
            std::process::exit(1);
        }
        eprintln!("sparse campaign ok: CG memory-bound, model within ±30%, energy inversion holds");
    }

    if wants("powercap") && functional {
        let (n, ranks) = if args.smoke { (96, 8) } else { (360, 16) };
        let pts = greenla_harness::powercap::sweep(n, ranks, &[1.0, 0.85, 0.7, 0.55, 0.4], 7);
        let t = greenla_harness::powercap::table(&pts);
        write_artifact(&args.out, "powercap.csv", &t.to_csv()).expect("write");
        write_json(&args.out, "powercap.json", &pts).expect("write");
        println!("{}", t.to_text());
    }

    if wants("trace") && functional {
        let (n, ranks) = if args.smoke { (128, 8) } else { (480, 16) };
        let fig = greenla_harness::power_trace::figure(n, ranks, 1e-3, 7);
        emit(&args.out, &fig);
    }

    if let Some(path) = &args.trace_out {
        use greenla_harness::chrome_trace::traced_solve;
        use greenla_harness::config::SolverChoice;
        let (n, ranks) = if args.smoke { (96, 8) } else { (240, 16) };
        let run = traced_solve(SolverChoice::ime_optimized(), n, ranks, 7);
        let text = serde_json::to_string_pretty(&run.trace).expect("serialise trace");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create trace dir");
            }
        }
        std::fs::write(path, text).expect("write trace");
        eprintln!(
            "wrote {} ({} events, virtual makespan {:.6} s) — open in https://ui.perfetto.dev",
            path.display(),
            run.event_count,
            run.makespan_s
        );
    }

    if wants("overhead") && functional {
        use greenla_cluster::placement::Placement;
        use greenla_cluster::spec::ClusterSpec;
        use greenla_cluster::PowerModel;
        use greenla_ime::par::ImepOptions;
        use greenla_linalg::generate;
        use greenla_monitor::overhead::measure_overhead;
        use greenla_mpi::Machine;

        let sys = generate::diag_dominant(if args.smoke { 96 } else { 360 }, 1);
        let build = || {
            let spec = ClusterSpec::test_cluster(4, 4);
            let placement = Placement::packed(&spec.node, 16).unwrap();
            let power = PowerModel::scaled_deterministic(&spec.node);
            Machine::new(spec, placement, power, 99).unwrap()
        };
        let report = measure_overhead(build, |ctx| {
            let world = ctx.world();
            greenla_ime::solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap();
        });
        let text = format!(
            "monitored makespan: {:.6} s\nraw makespan:       {:.6} s\noverhead:           {:.2} %\n",
            report.monitored_s,
            report.raw_s,
            report.overhead_fraction() * 100.0
        );
        write_artifact(&args.out, "overhead.txt", &text).expect("write");
        println!("== E-O1 monitoring overhead ==\n{text}");
    }

    eprintln!(
        "done in {:.1}s — artefacts in {}",
        t0.elapsed().as_secs_f64(),
        args.out.display()
    );
}
