//! The measurement runner: one fully monitored solver execution per call,
//! repeated and aggregated the way the paper runs its jobs (ten
//! repetitions per configuration; we default to fewer but keep the knob).

use crate::config::{default_false, default_true, one_batch, FunctionalGrid, SolverChoice};
use greenla_cg::solver::{pcg, CgConfig};
use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::ft::solve_imep_ft;
use greenla_ime::solve_imep;
use greenla_linalg::flops;
use greenla_linalg::generate::{LinearSystem, SystemKind};
use greenla_linalg::sparse::{CsrMatrix, SparseSystem};
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_monitor::report::{JobSummary, NodeReport};
use greenla_mpi::{
    CheckSink, FaultPlan, FaultReport, FaultSink, Machine, SchedulerKind, Violation,
};
use greenla_rapl::RaplSim;
use greenla_scalapack::pdgesv::pdgesv;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One run's configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    pub n: usize,
    pub ranks: usize,
    pub layout: LoadLayout,
    pub solver: SolverChoice,
    pub system: SystemKind,
    pub cores_per_socket: usize,
    pub seed: u64,
    /// Attach the greenla-check correctness sink to the run.
    #[serde(default = "default_false")]
    pub check: bool,
    /// Deterministic fault plan injected into the run; `None` (the default
    /// for every pre-existing dataset) leaves all fault hooks disabled.
    #[serde(default = "Default::default")]
    pub faults: Option<FaultPlan>,
    /// Which rank-scheduling engine executes the run. The engine never
    /// changes measured (virtual-time) results — see the
    /// scheduler-invariance contract in `greenla_mpi::sched` — so older
    /// datasets deserialize to the thread-per-rank default losslessly.
    #[serde(default = "Default::default")]
    pub scheduler: SchedulerKind,
    /// Back-to-back solves inside the measured region. The simulated RAPL
    /// refreshes its counters once per millisecond like the real thing, so
    /// a sub-millisecond solve cannot be measured on its own; batching
    /// stretches the monitored window across many counter updates and the
    /// caller divides the measured figures by `batch` (the sparse campaign
    /// does). `1` — the default every pre-existing dataset deserializes
    /// to — measures a single solve.
    #[serde(default = "one_batch")]
    pub batch: usize,
    /// Overlap the CG halo exchange with the interior SpMV (the solver's
    /// default; see `greenla_cg::solver::CgConfig::overlap`). `false`
    /// forces the blocking exchange — numerics are bit-identical either
    /// way, only the virtual clock moves. Ignored by the direct solvers.
    #[serde(default = "default_true")]
    pub cg_overlap: bool,
}

/// Serde default for the violations carried by older datasets.
fn no_violations() -> Vec<Violation> {
    Vec::new()
}

/// What one monitored run measured (the union of the figures' axes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Measurement {
    pub duration_s: f64,
    pub total_energy_j: f64,
    pub pkg_energy_j: f64,
    pub dram_energy_j: f64,
    pub pkg_by_socket_j: [f64; 2],
    pub dram_by_socket_j: [f64; 2],
    pub mean_power_w: f64,
    pub residual: f64,
    pub msgs: u64,
    pub volume_elems: u64,
    pub nodes: usize,
    /// Checker diagnostics (empty unless the run was checked — and for a
    /// correct solver, empty even then).
    #[serde(default = "no_violations")]
    pub violations: Vec<Violation>,
    /// Injected / observed / recovered fault accounting — `None` unless the
    /// run carried a fault plan.
    #[serde(default = "Default::default")]
    pub fault_report: Option<FaultReport>,
    /// CG iteration count (`None` for the direct solvers) — what the
    /// sparse campaign's per-iteration model predictions divide by.
    #[serde(default = "Default::default")]
    pub iterations: Option<u64>,
    /// CG true-residual refresh count (`None` for the direct solvers).
    #[serde(default = "Default::default")]
    pub refreshes: Option<u64>,
}

/// Execute one configuration end to end: build the scaled cluster, run the
/// solver under the white-box monitoring framework, aggregate the per-node
/// reports.
pub fn run_once(cfg: &RunConfig) -> Measurement {
    let node = greenla_cluster::spec::NodeSpec::test_node(cfg.cores_per_socket);
    let placement =
        Placement::layout(&node, cfg.ranks, cfg.layout).expect("grid guarantees divisibility");
    let nodes = placement.nodes_used();
    let spec = ClusterSpec {
        node: node.clone(),
        nodes,
        net: greenla_cluster::Interconnect::omni_path(),
    };
    let power = PowerModel::scaled_for(&node);
    let mut machine = Machine::new(spec, placement, power, cfg.seed).expect("valid machine");
    machine.set_scheduler(cfg.scheduler);
    if cfg.check {
        machine.set_check(CheckSink::enabled());
    }
    // A non-empty fault plan arms the sink shared by the machine (message
    // and crash faults) and the RAPL simulator (counter faults); an absent
    // or empty plan leaves the zero-overhead disabled path in place.
    let fault_sink = cfg
        .faults
        .as_ref()
        .filter(|p| !p.is_empty())
        .map(|p| FaultSink::with_plan(p.clone()));
    if let Some(sink) = &fault_sink {
        machine.set_faults(sink.clone());
    }
    let mut rapl = RaplSim::new(machine.ledger(), machine.power().clone(), cfg.seed);
    if let Some(sink) = &fault_sink {
        rapl = rapl.with_faults(sink.clone());
    }
    let rapl = Arc::new(rapl);
    let sys: LinearSystem = cfg.system.generate(cfg.n, system_seed(cfg));
    // CG runs sparsify the dense input once, outside the measured region
    // (the paper's jobs load their input from a file the same way).
    let sparse: Option<SparseSystem> =
        matches!(cfg.solver, SolverChoice::Cg { .. }).then(|| SparseSystem {
            a: CsrMatrix::from_dense(&sys.a),
            b: sys.b.clone(),
            x_ref: sys.x_ref.clone().unwrap_or_default(),
        });
    // Faulted runs monitor in degraded mode: a dead monitoring rank costs
    // its node's report, not the job.
    let mon_cfg = MonitorConfig {
        degrade_on_fault: fault_sink.is_some(),
        ..MonitorConfig::default()
    };
    let faulted = fault_sink.is_some();
    let solver = cfg.solver;
    let sparse = &sparse;
    let out = machine.run(|ctx| {
        let world = ctx.world();
        let monitored = monitored_run(ctx, &rapl, &mon_cfg, |ctx, handle| {
            // Allocation phase: the input system is materialised in each
            // rank's memory (the paper loads it from a file). A sparse run
            // materialises the CSR image, not the dense square.
            let local_share = match sparse {
                Some(s) => flops::spmv_csr_bytes(s.n(), s.a.nnz()) / ctx.size() as u64,
                None => 8 * (cfg.n * cfg.n) as u64 / ctx.size() as u64,
            };
            ctx.touch_memory(local_share);
            handle.phase(ctx, "allocation").expect("phase mark");
            // `batch` back-to-back solves of the same system; every solve is
            // deterministic so only the last result needs keeping. See
            // [`RunConfig::batch`] for why short kernels need this.
            let mut last = None;
            for _ in 0..cfg.batch.max(1) {
                last = Some(match solver {
                    // A faulted IMe run goes through the checksum-protected
                    // solver so a planned column loss is recoverable in-band.
                    SolverChoice::Ime { .. } if faulted => (
                        solve_imep_ft(ctx, &world, &sys, None).expect("IMe FT solve"),
                        None,
                    ),
                    SolverChoice::Ime { .. } => (
                        solve_imep(ctx, &world, &sys, solver.imep_options().unwrap())
                            .expect("IMe solve"),
                        None,
                    ),
                    SolverChoice::ScaLapack { nb } => {
                        (pdgesv(ctx, &world, &sys, nb).expect("pdgesv solve"), None)
                    }
                    SolverChoice::Cg { jacobi } => {
                        let cg_cfg = CgConfig {
                            jacobi,
                            overlap: cfg.cg_overlap,
                            ..CgConfig::default()
                        };
                        // Panic with the Display form so an abort surfaces the
                        // stable "cg aborted:" diagnostic the chaos battery and
                        // GL004 key on.
                        let s = pcg(ctx, &world, sparse.as_ref().unwrap(), &cg_cfg)
                            .unwrap_or_else(|e| panic!("{e}"));
                        (s.x, Some((s.iterations as u64, s.refreshes as u64)))
                    }
                });
            }
            let (x, cg_counts) = last.expect("batch >= 1");
            handle.phase(ctx, "execution").expect("phase mark");
            (x, cg_counts)
        })
        .expect("monitoring protocol");
        (monitored.result, monitored.report)
    });
    let reports: Vec<NodeReport> = out.results.iter().filter_map(|(_, r)| r.clone()).collect();
    let fault_report = fault_sink.as_ref().map(|s| s.report());
    let degraded = fault_report.as_ref().map_or(0, |r| r.degraded_nodes.len());
    assert_eq!(
        reports.len() + degraded,
        nodes,
        "one report per non-degraded node"
    );
    let summary = if reports.is_empty() {
        // Every node degraded to unmeasured: energy figures are zero, the
        // run's virtual makespan stands in for the monitored duration.
        JobSummary {
            nodes: 0,
            duration_s: out.makespan,
            total_energy_j: 0.0,
            pkg_energy_j: 0.0,
            dram_energy_j: 0.0,
            pkg_by_socket_j: [0.0; 2],
            dram_by_socket_j: [0.0; 2],
            mean_power_w: 0.0,
        }
    } else {
        JobSummary::aggregate(&reports)
    };
    let (x, cg_counts) = &out.results[0].0;
    Measurement {
        duration_s: summary.duration_s,
        total_energy_j: summary.total_energy_j,
        pkg_energy_j: summary.pkg_energy_j,
        dram_energy_j: summary.dram_energy_j,
        pkg_by_socket_j: summary.pkg_by_socket_j,
        dram_by_socket_j: summary.dram_by_socket_j,
        mean_power_w: summary.mean_power_w,
        residual: sys.residual(x),
        msgs: out.traffic.msgs,
        volume_elems: out.traffic.volume_elems(),
        nodes,
        violations: machine.check().violations(),
        fault_report,
        iterations: cg_counts.map(|(i, _)| i),
        refreshes: cg_counts.map(|(_, r)| r),
    }
}

/// Input-system seed derived from the configuration (the same system for
/// every repetition, as the paper's file-based inputs guarantee).
pub(crate) fn system_seed(cfg: &RunConfig) -> u64 {
    (cfg.n as u64) << 32 | cfg.ranks as u64
}

/// Normalise a batched measurement to a single solve. Energies and the
/// window divide exactly (every solve in the batch is identical); traffic
/// divides approximately — the monitoring protocol's own messages ride
/// along once per window, not once per solve. Identity at `batch = 1`.
pub fn per_solve(mut m: Measurement, batch: usize) -> Measurement {
    let b = batch as f64;
    m.duration_s /= b;
    m.total_energy_j /= b;
    m.pkg_energy_j /= b;
    m.dram_energy_j /= b;
    for v in &mut m.pkg_by_socket_j {
        *v /= b;
    }
    for v in &mut m.dram_by_socket_j {
        *v /= b;
    }
    m.msgs /= batch as u64;
    m.volume_elems /= batch as u64;
    m
}

/// Simple per-metric statistics over repetitions.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Stats {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    pub fn from(values: &[f64]) -> Stats {
        assert!(!values.is_empty());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Stats {
            mean,
            std: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Repetition-aggregated measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Aggregated {
    pub duration_s: Stats,
    pub total_energy_j: Stats,
    pub pkg_energy_j: Stats,
    pub dram_energy_j: Stats,
    pub mean_power_w: Stats,
    pub pkg0_j: Stats,
    pub pkg1_j: Stats,
    pub dram0_j: Stats,
    pub dram1_j: Stats,
    pub worst_residual: f64,
    pub reps: usize,
}

impl Aggregated {
    pub fn from_runs(runs: &[Measurement]) -> Aggregated {
        let pick =
            |f: &dyn Fn(&Measurement) -> f64| Stats::from(&runs.iter().map(f).collect::<Vec<_>>());
        Aggregated {
            duration_s: pick(&|m| m.duration_s),
            total_energy_j: pick(&|m| m.total_energy_j),
            pkg_energy_j: pick(&|m| m.pkg_energy_j),
            dram_energy_j: pick(&|m| m.dram_energy_j),
            mean_power_w: pick(&|m| m.mean_power_w),
            pkg0_j: pick(&|m| m.pkg_by_socket_j[0]),
            pkg1_j: pick(&|m| m.pkg_by_socket_j[1]),
            dram0_j: pick(&|m| m.dram_by_socket_j[0]),
            dram1_j: pick(&|m| m.dram_by_socket_j[1]),
            worst_residual: runs.iter().map(|m| m.residual).fold(0.0, f64::max),
            reps: runs.len(),
        }
    }
}

/// One aggregated grid point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataPoint {
    pub solver: String,
    pub n: usize,
    pub ranks: usize,
    pub layout: LoadLayout,
    pub agg: Aggregated,
    /// Checker diagnostics across all repetitions of this point.
    #[serde(default = "no_violations")]
    pub violations: Vec<Violation>,
    /// Per-repetition fault accounting (empty unless the campaign ran
    /// under a fault plan).
    #[serde(default = "Default::default")]
    pub fault_reports: Vec<FaultReport>,
}

/// The full functional-tier dataset all figures slice.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub points: Vec<DataPoint>,
}

impl Dataset {
    /// Run the whole measurement campaign for a grid (both solvers, every
    /// dim × ranks × layout, `reps` repetitions each). Independent
    /// configurations run in parallel on a scoped thread pool; each
    /// simulation is deterministic, so the dataset is identical regardless
    /// of scheduling.
    pub fn campaign(grid: &FunctionalGrid, progress: impl Fn(&str) + Sync) -> Dataset {
        let solvers = [SolverChoice::ime_optimized(), SolverChoice::scalapack()];
        let mut configs = Vec::new();
        for &n in &grid.dims {
            for &ranks in &grid.ranks {
                for &layout in &grid.layouts {
                    for solver in solvers {
                        configs.push((n, ranks, layout, solver));
                    }
                }
            }
        }
        let points: Vec<DataPoint> = parallel_map(&configs, |&(n, ranks, layout, solver)| {
            progress(&format!(
                "n={n} ranks={ranks} layout={layout} solver={}",
                solver.label()
            ));
            let runs: Vec<Measurement> = (0..grid.reps)
                .map(|rep| {
                    per_solve(
                        run_once(&RunConfig {
                            n,
                            ranks,
                            layout,
                            solver,
                            system: SystemKind::DiagDominant,
                            cores_per_socket: grid.cores_per_socket,
                            seed: grid.base_seed + rep as u64,
                            check: grid.check,
                            faults: grid.faults.clone(),
                            scheduler: grid.scheduler,
                            batch: grid.batch,
                            cg_overlap: true,
                        }),
                        grid.batch.max(1),
                    )
                })
                .collect();
            DataPoint {
                solver: solver.label().to_string(),
                n,
                ranks,
                layout,
                agg: Aggregated::from_runs(&runs),
                violations: runs.iter().flat_map(|m| m.violations.clone()).collect(),
                fault_reports: runs.iter().filter_map(|m| m.fault_report.clone()).collect(),
            }
        });
        Dataset { points }
    }

    /// Look up one point.
    pub fn get(
        &self,
        solver: &str,
        n: usize,
        ranks: usize,
        layout: LoadLayout,
    ) -> Option<&DataPoint> {
        self.points
            .iter()
            .find(|p| p.solver == solver && p.n == n && p.ranks == ranks && p.layout == layout)
    }

    /// Every checker diagnostic in the dataset, paired with the grid point
    /// that produced it.
    pub fn violations(&self) -> impl Iterator<Item = (&DataPoint, &Violation)> {
        self.points
            .iter()
            .flat_map(|p| p.violations.iter().map(move |v| (p, v)))
    }

    /// Every per-repetition fault report in the dataset, paired with the
    /// grid point that produced it.
    pub fn fault_reports(&self) -> impl Iterator<Item = (&DataPoint, &FaultReport)> {
        self.points
            .iter()
            .flat_map(|p| p.fault_reports.iter().map(move |r| (p, r)))
    }
}

/// Order-preserving parallel map over a slice on scoped worker threads.
/// Workers pull indices from a shared atomic counter, so long-running
/// configurations don't serialise behind a fixed chunking.
fn parallel_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len());
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}
