//! Experiment grids and solver selection.

use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_ime::par::ImepOptions;
use greenla_mpi::{FaultPlan, SchedulerKind};
use serde::{Deserialize, Serialize};

/// Which solver a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverChoice {
    /// IMeP with the given protocol options.
    Ime {
        collect_last_rows: bool,
        centralized_h: bool,
        pipelined_bcast: bool,
    },
    /// Block-cyclic LU with partial pivoting.
    ScaLapack { nb: usize },
    /// Distributed conjugate gradients over the sparse row-block SpMV
    /// (the system must be SPD; the dense input is sparsified on entry).
    Cg { jacobi: bool },
}

impl SolverChoice {
    pub fn ime_optimized() -> Self {
        let o = ImepOptions::optimized();
        SolverChoice::Ime {
            collect_last_rows: o.collect_last_rows,
            centralized_h: o.centralized_h,
            pipelined_bcast: o.pipelined_bcast,
        }
    }

    pub fn ime_paper() -> Self {
        let o = ImepOptions::paper();
        SolverChoice::Ime {
            collect_last_rows: o.collect_last_rows,
            centralized_h: o.centralized_h,
            pipelined_bcast: o.pipelined_bcast,
        }
    }

    pub fn scalapack() -> Self {
        SolverChoice::ScaLapack { nb: 32 }
    }

    pub fn cg() -> Self {
        SolverChoice::Cg { jacobi: false }
    }

    pub fn cg_jacobi() -> Self {
        SolverChoice::Cg { jacobi: true }
    }

    pub fn imep_options(&self) -> Option<ImepOptions> {
        match *self {
            SolverChoice::Ime {
                collect_last_rows,
                centralized_h,
                pipelined_bcast,
            } => Some(ImepOptions {
                collect_last_rows,
                centralized_h,
                pipelined_bcast,
            }),
            SolverChoice::ScaLapack { .. } | SolverChoice::Cg { .. } => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            SolverChoice::Ime { .. } => "IMe",
            SolverChoice::ScaLapack { .. } => "ScaLAPACK",
            SolverChoice::Cg { jacobi: false } => "CG",
            SolverChoice::Cg { jacobi: true } => "CG-Jacobi",
        }
    }
}

/// The functional tier's scaled-down analogue of the paper's Table 1 grid.
///
/// The node is a 2-socket, 4-cores-per-socket miniature of the Marconi A3
/// node (so `full = 8 ranks/node`, `half-1sock = 4 on socket 0`,
/// `half-2sock = 2 + 2`), rank counts are squares (the IMeP requirement the
/// paper states) divisible by every layout's ranks-per-node, and the four
/// dimensions keep a fixed ratio like 8640 : 17280 : 25920 : 34560. (Rank
/// counts are powers of two rather than the paper's squares — our IMeP's
/// cyclic column distribution has no square-count requirement, and every
/// layout's ranks-per-node must divide the count.)
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FunctionalGrid {
    pub dims: Vec<usize>,
    pub ranks: Vec<usize>,
    pub layouts: Vec<LoadLayout>,
    pub reps: usize,
    pub cores_per_socket: usize,
    pub base_seed: u64,
    /// Run every configuration under the greenla-check correctness sink
    /// and record its diagnostics in the dataset.
    #[serde(default = "default_false")]
    pub check: bool,
    /// Deterministic fault plan injected into every run of the campaign
    /// (`repro --faults plan.json`); `None` disables all fault hooks.
    #[serde(default = "Default::default")]
    pub faults: Option<FaultPlan>,
    /// Rank-scheduling engine for every run of the campaign
    /// (`repro --scheduler event`). Virtual-time results are engine-
    /// invariant; the knob trades OS threads for fibers at large P.
    #[serde(default = "Default::default")]
    pub scheduler: SchedulerKind,
    /// Back-to-back solves per monitored window for every run of the
    /// campaign (see `RunConfig::batch`); the runner normalises the
    /// measured figures back to one solve. `1` — what every pre-existing
    /// grid deserializes to — measures single solves.
    #[serde(default = "one_batch")]
    pub batch: usize,
}

/// Serde default for opt-in boolean knobs.
pub(crate) fn default_false() -> bool {
    false
}

/// Serde default for opt-out boolean knobs.
pub(crate) fn default_true() -> bool {
    true
}

/// Serde default for batch knobs: one solve per monitored window.
pub(crate) fn one_batch() -> usize {
    1
}

impl Default for FunctionalGrid {
    fn default() -> Self {
        Self {
            dims: vec![240, 480, 720, 960, 1200],
            ranks: vec![16, 32, 64],
            layouts: LoadLayout::all().to_vec(),
            reps: 3,
            cores_per_socket: 4,
            base_seed: 2023,
            check: false,
            faults: None,
            scheduler: SchedulerKind::default(),
            batch: 1,
        }
    }
}

impl FunctionalGrid {
    /// A minimal grid for fast smoke tests and benches.
    pub fn smoke() -> Self {
        Self {
            dims: vec![96, 192],
            ranks: vec![16],
            layouts: LoadLayout::all().to_vec(),
            reps: 1,
            ..Self::default()
        }
    }

    /// Node spec of the scaled cluster.
    pub fn node(&self) -> NodeSpec {
        NodeSpec::test_node(self.cores_per_socket)
    }

    /// Cluster sized for the largest configuration in the grid.
    pub fn cluster(&self) -> ClusterSpec {
        let node = self.node();
        let max_nodes = self
            .ranks
            .iter()
            .map(|&r| r.div_ceil(self.cores_per_socket)) // half-load worst case
            .max()
            .unwrap_or(1);
        ClusterSpec {
            node,
            nodes: max_nodes.max(1),
            net: greenla_cluster::Interconnect::omni_path(),
        }
    }
}

/// The paper's exact evaluation grid (model tier).
pub mod paper {
    pub use greenla_cluster::placement::{PAPER_DIMS, PAPER_RANKS};
    /// ScaLAPACK block size assumed at paper scale.
    pub const NB: usize = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_consistent() {
        let g = FunctionalGrid::default();
        let node = g.node();
        for layout in &g.layouts {
            let rpn = layout.ranks_per_node(&node);
            for &r in &g.ranks {
                assert_eq!(r % rpn, 0, "ranks {r} vs rpn {rpn} for {layout}");
            }
        }
        // Fixed dimension ratios like the paper (1:2:3:4, plus a fifth
        // point extending the compute-bound end).
        assert_eq!(
            g.dims.iter().map(|d| d / g.dims[0]).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn solver_labels() {
        assert_eq!(SolverChoice::ime_optimized().label(), "IMe");
        assert_eq!(SolverChoice::scalapack().label(), "ScaLAPACK");
        assert_eq!(SolverChoice::cg().label(), "CG");
        assert_eq!(SolverChoice::cg_jacobi().label(), "CG-Jacobi");
    }
}
