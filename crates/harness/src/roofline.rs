//! Host-side roofline calibration and bench-suite validation.
//!
//! [`greenla_model::roofline::Roofline`] needs machine ceilings. The
//! spec-derived constructor models the *simulated* machine; this module
//! builds the *measured* counterpart for the host the benchmarks actually
//! run on, from five short kernel probes (one per code class) and
//! a streaming-triad bandwidth probe. [`validate_suite`] then replays the
//! closed-form profiles of every pinned `kernel_suite` entry through the
//! calibrated roofline and reports predicted-vs-measured attainable
//! GFLOP/s — the bench CI asserts the ratio stays inside
//! [`RELEASE_REL_TOL`].
//!
//! Probes deliberately reuse the bench suite's `median_wall` statistic so
//! correlated background load (the usual failure mode on shared runners)
//! shifts calibration and measurement together and cancels in the ratio.
//! Probe sizes are *not* suite sizes — the model must extrapolate, not
//! memorize.

use crate::bench::{median_wall, BenchSuite};
use greenla_linalg::blas3::{
    dgemm_blocked, dgemm_blocked_path, dgemm_reference, dtrsm_left_lower_unit, TRSM_BLOCK,
};
use greenla_linalg::flops;
use greenla_linalg::simd::{self, KernelPath};
use greenla_linalg::tune::Blocking;
use greenla_linalg::Matrix;
use greenla_model::roofline::{KernelProfile, Roofline};

/// Relative tolerance the release-mode validation asserts: predicted
/// attainable GFLOP/s within ±30% of measured for every suite entry
/// (`1/1.3 ≤ predicted/measured ≤ 1.3`).
pub const RELEASE_REL_TOL: f64 = 0.30;

/// Debug builds get a wider band: unoptimized codegen disperses the
/// per-class rates (bounds checks dominate some loops and not others), and
/// the scaled-down probes are short. The debug run is a plumbing smoke
/// test; the release run is the acceptance check.
pub const DEBUG_REL_TOL: f64 = 0.60;

/// The tolerance appropriate for the build actually running.
pub fn rel_tol() -> f64 {
    if cfg!(debug_assertions) {
        DEBUG_REL_TOL
    } else {
        RELEASE_REL_TOL
    }
}

/// A roofline calibrated on the running host, plus the kernel path the
/// dispatched probes resolved to (recorded so artifacts stay comparable —
/// the same contract as `BenchReport::kernel_path`).
#[derive(Clone, Copy, Debug)]
pub struct HostRoofline {
    pub rf: Roofline,
    pub path: KernelPath,
}

/// Probe edge for the per-class rates. 448 = 56 micro-panels: big enough
/// that per-call and packing overheads sit at their large-`n` asymptote
/// (a size sweep showed 320 still reads a few percent off the 512/1024
/// regime on the scalar nest), small enough that the batched repetitions
/// stay under a second per class — and not a suite size, so the model
/// extrapolates rather than memorizes.
const PROBE_N: usize = 448;

/// Triad length per array for the bandwidth probe: 3 × 8 MiB in debug
/// (keeps `cargo test` fast; debug predictions are compute-bound anyway),
/// 3 × 128 MiB in release — comfortably past the dev box's 105 MiB L3, so
/// the probe streams DRAM, not cache.
fn triad_len() -> usize {
    if cfg!(debug_assertions) {
        1 << 20
    } else {
        1 << 24
    }
}

fn probe_n() -> usize {
    if cfg!(debug_assertions) {
        64
    } else {
        PROBE_N
    }
}

/// Flop rate of `f` (which performs `flops` per call), batched `iters`
/// calls per timed repetition so every sample measures well above timer
/// granularity.
fn rate_of(flops: u64, iters: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let wall = median_wall(reps, || {
        for _ in 0..iters {
            f();
        }
    });
    (flops * iters as u64) as f64 / wall
}

/// Calibrate a [`Roofline`] on the running host. Four kernel probes (the
/// dispatched microkernel on square and thin panels, the scalar-pinned
/// packed nest, the reference nest) plus a streaming triad; cores from the
/// OS. Under `GREENLA_KERNEL=scalar` the dispatched probes calibrate the
/// scalar path, so predictions keep matching what the suite then measures.
pub fn calibrate() -> HostRoofline {
    let n = probe_n();
    let (reps, iters) = if cfg!(debug_assertions) {
        (3, 1)
    } else {
        (9, 4)
    };
    let tune = Blocking::default_blocking();
    let a = crate::bench::test_matrix(n, 0);
    let b = crate::bench::test_matrix(n, 2);
    let mut c = Matrix::zeros(n, n);
    let sq_flops = flops::dgemm(n, n, n);

    let simd_flops = rate_of(sq_flops, iters, reps, || {
        dgemm_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune);
    });
    let packed_scalar_flops = rate_of(sq_flops, iters, reps, || {
        dgemm_blocked_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            c.block_mut(),
            &tune,
        );
    });
    let reference_flops = rate_of(sq_flops, iters, reps, || {
        dgemm_reference(1.0, a.block(), b.block(), 0.0, c.block_mut());
    });

    // Thin-panel probe: k = TRSM_BLOCK and a tall-and-skinny C, the shape
    // every trailing update of the triangular solves has. Packing and
    // per-call overheads per flop are ~kc/k times the square probe's,
    // which is exactly what this rate is meant to capture.
    let kt = TRSM_BLOCK.min(n);
    let (mt, nt) = (2 * n, n / 2);
    let at = Matrix::from_fn(mt, kt, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
    let bt = Matrix::from_fn(kt, nt, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
    let mut ct = Matrix::zeros(mt, nt);
    // α = −1, β = 1 like the real updates: β = 1 reads C as well as
    // writing it, a per-flop cost that matters exactly when k is thin.
    let thin_simd_flops = rate_of(flops::dgemm(mt, nt, kt), iters * 4, reps, || {
        dgemm_blocked(-1.0, at.block(), bt.block(), 1.0, ct.block_mut(), &tune);
    });

    // Substitution probe, in context: a full triangular solve at a
    // non-suite size (same 2:1 aspect as the pinned entries). Substitution
    // never executes in isolation — every diagonal block's solve is
    // interleaved with packed trailing updates that disturb the caches,
    // and a pure m = TRSM_BLOCK probe measured the loop ~1.5× faster than
    // it runs inside a real solve. Timing the whole solve and removing the
    // update share predicted by the thin-panel rate calibrates the
    // substitution loop with that interference priced in. The floor guards
    // against a burst-inflated thin rate swallowing the whole wall.
    let (ms, ns) = if cfg!(debug_assertions) {
        (2 * kt, kt)
    } else {
        (384, 192)
    };
    let ls = Matrix::from_fn(ms, ms, |i, j| {
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Equal => 1.0,
            Greater => ((i * 3 + j * 7) % 5) as f64 * 0.01 - 0.02,
            Less => 0.0,
        }
    });
    let bs = Matrix::from_fn(ms, ns, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
    let mut xs = bs.as_slice().to_vec();
    let ps = flops::dtrsm_packed_profile(ms, ns, &tune);
    // Per-call RHS restore mirrors the suite's dtrsm entries, which also
    // time the copy — probe and measurement pay the same overhead.
    let subst_wall = median_wall(reps, || {
        xs.copy_from_slice(bs.as_slice());
        dtrsm_left_lower_unit(ms, ns, ls.as_slice(), ms, &mut xs, ms);
    });
    let update_s = ps.dgemm_flops as f64 / thin_simd_flops;
    let subst_s = (subst_wall - update_s).max(0.25 * subst_wall);
    let subst_flops = ps.subst_flops as f64 / subst_s;

    // Streaming triad c ← a + 3·b: 3 × 8 bytes per element per pass.
    let len = triad_len();
    let ta: Vec<f64> = (0..len).map(|i| (i % 17) as f64).collect();
    let tb: Vec<f64> = (0..len).map(|i| (i % 13) as f64).collect();
    let mut tc = vec![0.0f64; len];
    let triad_reps = if cfg!(debug_assertions) { 3 } else { 5 };
    let wall = median_wall(triad_reps, || {
        for ((y, &x), &z) in tc.iter_mut().zip(&ta).zip(&tb) {
            *y = x + 3.0 * z;
        }
        std::hint::black_box(&mut tc);
    });
    let mem_bw = (3 * 8 * len) as f64 / wall;

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let host = HostRoofline {
        rf: Roofline {
            simd_flops,
            thin_simd_flops,
            packed_scalar_flops,
            reference_flops,
            subst_flops,
            mem_bw,
            cores,
        },
        path: simd::resolved(),
    };
    host.rf.validate();
    host
}

/// Closed-form [`KernelProfile`] of a pinned `kernel_suite` entry, by its
/// stable id. Sizes mirror `bench::kernel_suite` — a new suite entry must
/// be added here too or [`validate_suite`] fails loudly (by design: the
/// roofline acceptance covers *every* entry).
pub fn entry_profile(id: &str, tune: &Blocking) -> Option<KernelProfile> {
    let packed = |n: usize, workers: usize| {
        KernelProfile::simd(
            flops::dgemm(n, n, n) as f64,
            flops::dgemm_packed_bytes(n, n, n, tune) as f64,
            workers,
        )
    };
    let trsm = || {
        let p = flops::dtrsm_packed_profile(512, 256, tune);
        KernelProfile {
            thin_simd_flops: p.dgemm_flops as f64,
            subst_flops: p.subst_flops as f64,
            bytes: p.bytes as f64,
            workers: 1,
            ..KernelProfile::default()
        }
    };
    // The sparse entries' shapes come from the closed form, not from
    // materialising the million-row matrix.
    let (sn, snnz) = crate::bench::laplace2d_shape(crate::bench::LAPLACE_BENCH_K);
    Some(match id {
        "spmv_2d_6m" => {
            KernelProfile::sparse(flops::spmv(snnz), flops::spmv_csr_bytes(sn, snnz), 1)
        }
        "cg_iter_2d_6m" => {
            let c = greenla_cg::formulas::cg_iter_cost(sn, snnz, 0, false);
            KernelProfile::sparse(c.flops, c.bytes, 1)
        }
        // Same matrix and byte model as `spmv_2d_6m`, spread over the
        // worker count the bench actually ran with (`GREENLA_SPMV_THREADS`
        // or the host's cores) — this is the entry the acceptance pins to
        // the *multi-core* memory ceiling.
        "spmv_par_2d_6m" => KernelProfile::sparse(
            flops::spmv(snnz),
            flops::spmv_csr_bytes(sn, snnz),
            greenla_linalg::sparse::default_spmv_workers(),
        ),
        // The overlapped solver's split sweep is an exact repartition of
        // the block SpMV, so the iteration profile is `cg_iter_2d_6m`'s.
        "cg_overlap_iter" => {
            let c = greenla_cg::formulas::cg_iter_cost(sn, snnz, 0, false);
            KernelProfile::sparse(c.flops, c.bytes, 1)
        }
        "dgemm_packed_128" => packed(128, 1),
        "dgemm_packed_256" => packed(256, 1),
        "dgemm_packed_512" => packed(512, 1),
        "dgemm_seq_1024" => packed(1024, 1),
        "dgemm_par_1024_w4" => packed(1024, 4),
        "dgemm_scalar_512" => KernelProfile::reference(
            flops::dgemm(512, 512, 512) as f64,
            flops::dgemm_reference_bytes(512, 512, 512) as f64,
        ),
        "dgemm_packed_scalar_512" => KernelProfile::packed_scalar(
            flops::dgemm(512, 512, 512) as f64,
            flops::dgemm_packed_bytes(512, 512, 512, tune) as f64,
        ),
        "dtrsm_lower_512x256" | "dtrsm_upper_512x256" => trsm(),
        _ => return None,
    })
}

/// One predicted-vs-measured comparison from [`validate_suite`].
#[derive(Clone, Debug)]
pub struct RooflineCheck {
    pub id: String,
    pub predicted_gflops: f64,
    pub measured_gflops: f64,
    /// `predicted / measured`; the acceptance band is
    /// `[1/(1+tol), 1+tol]`.
    pub ratio: f64,
    pub compute_bound: bool,
}

impl RooflineCheck {
    pub fn within(&self, rel_tol: f64) -> bool {
        crate::bench::retry::within_band(self.ratio, rel_tol)
    }
}

/// Predict every measured suite entry through the calibrated roofline.
/// Panics if an entry with a flop rate has no closed-form profile — the
/// validation must not silently shrink its coverage when the suite grows.
pub fn validate_suite(host: &HostRoofline, suite: &BenchSuite) -> Vec<RooflineCheck> {
    let tune = Blocking::default_blocking();
    suite
        .entries
        .iter()
        .filter(|e| e.gflops.is_some())
        .map(|e| {
            let profile = entry_profile(&e.id, &tune)
                .unwrap_or_else(|| panic!("no roofline profile for suite entry `{}`", e.id));
            let pred = host.rf.predict(&profile);
            let measured = e.gflops.expect("filtered to measured entries");
            RooflineCheck {
                id: e.id.clone(),
                predicted_gflops: pred.gflops,
                measured_gflops: measured,
                ratio: pred.gflops / measured,
                compute_bound: pred.compute_bound,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_id_has_a_profile() {
        // The ids pinned by bench::kernel_suite, spelled out so a rename
        // on either side breaks this test instead of the bench CI.
        let tune = Blocking::default_blocking();
        for id in [
            "dgemm_packed_128",
            "dgemm_packed_256",
            "dgemm_packed_512",
            "dgemm_scalar_512",
            "dgemm_packed_scalar_512",
            "dgemm_seq_1024",
            "dgemm_par_1024_w4",
            "dtrsm_lower_512x256",
            "dtrsm_upper_512x256",
            "spmv_2d_6m",
            "spmv_par_2d_6m",
            "cg_iter_2d_6m",
            "cg_overlap_iter",
        ] {
            assert!(entry_profile(id, &tune).is_some(), "missing profile {id}");
        }
        assert!(entry_profile("nonexistent", &tune).is_none());
    }

    #[test]
    fn sparse_profiles_sit_under_the_memory_ceiling() {
        // SpMV's arithmetic intensity (~1/6 flop/byte, stored f64 values
        // plus u32 indices) and the CG iteration's (~1/10) are both far
        // below any realistic machine balance, so the acceptance exercises
        // the bandwidth ceiling, not the flop ceilings.
        let tune = Blocking::default_blocking();
        for id in [
            "spmv_2d_6m",
            "spmv_par_2d_6m",
            "cg_iter_2d_6m",
            "cg_overlap_iter",
        ] {
            let p = entry_profile(id, &tune).unwrap();
            let flops = p.simd_flops
                + p.thin_simd_flops
                + p.packed_scalar_flops
                + p.reference_flops
                + p.subst_flops;
            let ai = flops / p.bytes;
            assert!(ai < 0.5, "{id}: AI {ai} is not memory-bound");
        }
    }

    #[test]
    fn trsm_profile_splits_classes() {
        let tune = Blocking::default_blocking();
        let p = entry_profile("dtrsm_lower_512x256", &tune).unwrap();
        assert!(p.thin_simd_flops > 0.0 && p.subst_flops > 0.0);
        assert_eq!(p.simd_flops, 0.0);
        assert_eq!(
            p.thin_simd_flops + p.subst_flops,
            flops::dtrsm(512, 256) as f64
        );
    }

    #[test]
    fn parallel_entry_requests_four_workers() {
        let tune = Blocking::default_blocking();
        let p = entry_profile("dgemm_par_1024_w4", &tune).unwrap();
        assert_eq!(p.workers, 4);
    }

    #[test]
    fn parallel_spmv_entry_rides_the_worker_knob() {
        // The profile must request exactly the worker count the bench ran
        // with, so the CI `GREENLA_SPMV_THREADS` matrix leg validates the
        // prediction at the swept count.
        let tune = Blocking::default_blocking();
        let p = entry_profile("spmv_par_2d_6m", &tune).unwrap();
        assert_eq!(p.workers, greenla_linalg::sparse::default_spmv_workers());
        let serial = entry_profile("spmv_2d_6m", &tune).unwrap();
        assert_eq!(p.bytes, serial.bytes, "same closed-form byte model");
        assert_eq!(p.reference_flops, serial.reference_flops);
    }
}
