//! Deflaking statistics shared by the bench suites and the roofline
//! acceptance: the outlier-resistant median behind every timed entry, the
//! symmetric ratio band every predicted-vs-measured comparison gates on,
//! and the best-of-N envelope that re-measures a whole check set when a
//! shared runner's background load bursts through one attempt.

use std::collections::BTreeMap;
use std::time::Instant;

/// Median of `reps` timed runs of `f` (wall seconds), preceded by one
/// untimed warm-up (first-touch page faults and cold caches belong to no
/// repetition). Even counts take the lower middle so one fast outlier
/// can't mask a regression.
pub fn median_wall(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    f();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    median_lower(times)
}

/// The lower-middle median of a sample (see [`median_wall`]).
fn median_lower(mut times: Vec<f64>) -> f64 {
    assert!(!times.is_empty());
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[(times.len() - 1) / 2]
}

/// Whether a predicted/measured ratio sits inside the symmetric band
/// `[1/(1+tol), 1+tol]`. Non-finite ratios (a zero or NaN measurement)
/// never pass.
pub fn within_band(ratio: f64, rel_tol: f64) -> bool {
    ratio.is_finite() && (1.0 / (1.0 + rel_tol)..=1.0 + rel_tol).contains(&ratio)
}

/// Best-of-N envelope over repeated measurement attempts, keyed by check
/// id. A background-load burst skews whichever checks it overlapped, and
/// moves around between attempts; a genuine model error misses every
/// attempt. Keeping, per id, the ratio closest to 1 in log space makes
/// the envelope converge on the former and stay failed on the latter.
#[derive(Clone, Debug, Default)]
pub struct BestRatios {
    best: BTreeMap<String, f64>,
}

impl BestRatios {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one attempt's ratio for `id` into the envelope, keeping
    /// whichever ratio is closest to 1 in log space (so 0.8 and 1.25
    /// count as equally far off).
    pub fn absorb(&mut self, id: &str, ratio: f64) {
        let entry = self.best.entry(id.to_string()).or_insert(ratio);
        if ratio.ln().abs() < entry.ln().abs() {
            *entry = ratio;
        }
    }

    /// The ids whose best ratio still falls outside the band, formatted
    /// for a failure message.
    pub fn failures(&self, rel_tol: f64) -> Vec<String> {
        self.best
            .iter()
            .filter(|(_, &r)| !within_band(r, rel_tol))
            .map(|(id, r)| format!("{id}: best ratio {r:.3}"))
            .collect()
    }

    /// Whether every absorbed id has landed in the band on some attempt.
    pub fn all_within(&self, rel_tol: f64) -> bool {
        self.failures(rel_tol).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_takes_the_lower_middle() {
        assert_eq!(median_lower(vec![3.0, 1.0, 2.0]), 2.0);
        // Even count: the lower of the two middles, so one fast outlier
        // cannot drag the statistic down.
        assert_eq!(median_lower(vec![4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median_lower(vec![5.0]), 5.0);
    }

    #[test]
    fn median_wall_times_the_body() {
        let mut calls = 0;
        let wall = median_wall(4, || calls += 1);
        assert_eq!(calls, 5, "4 timed reps + 1 warm-up");
        assert!(wall >= 0.0 && wall.is_finite());
    }

    #[test]
    fn band_is_symmetric_and_rejects_non_finite() {
        assert!(within_band(1.0, 0.30));
        assert!(within_band(1.29, 0.30) && within_band(1.0 / 1.29, 0.30));
        assert!(!within_band(1.31, 0.30) && !within_band(1.0 / 1.31, 0.30));
        assert!(!within_band(f64::NAN, 0.30));
        assert!(!within_band(f64::INFINITY, 0.30));
        assert!(!within_band(0.0, 0.30));
    }

    #[test]
    fn envelope_keeps_the_log_closest_ratio() {
        let mut best = BestRatios::new();
        best.absorb("a", 2.0);
        assert!(!best.all_within(0.30));
        // 0.6 is further from 1 in log space than 1.5; 1.1 beats both.
        best.absorb("a", 1.5);
        best.absorb("a", 0.6);
        best.absorb("a", 1.1);
        best.absorb("a", 3.0);
        assert!(best.all_within(0.30));
        assert!(best.failures(0.05) == vec!["a: best ratio 1.100".to_string()]);
    }

    #[test]
    fn envelope_reports_only_out_of_band_ids() {
        let mut best = BestRatios::new();
        best.absorb("ok", 1.05);
        best.absorb("bad", 1.9);
        assert_eq!(best.failures(0.30), vec!["bad: best ratio 1.900"]);
        assert!(!best.all_within(0.30));
    }
}
