//! Chrome Trace Event exporter for the virtual-time runtime traces.
//!
//! Converts the events a [`greenla_mpi::TraceSink`] collected during a run
//! into the Chrome Trace Event JSON format, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * one **process** per simulated node (`pid` = node index, named
//!   `node0`, `node1`, …);
//! * one **thread track** per MPI rank (`tid` = global rank), so nested
//!   `B`/`E` span pairs show the call structure — compute blocks,
//!   point-to-point sends/receives, collectives, and the monitoring
//!   protocol's measured region;
//! * one **counter track** per node sampling the simulated RAPL ground
//!   truth (package and DRAM Joules) over a uniform virtual-time grid,
//!   plus a cumulative transmitted-bytes counter rebuilt from the `send`
//!   spans' byte arguments.
//!
//! Timestamps are microseconds of *virtual* time — the clocks the
//! simulated ranks advanced, not wall time. All output ordering is
//! deterministic (events are drained rank-ordered, JSON objects preserve
//! insertion order), so exporting the same run twice yields byte-identical
//! JSON — the property the golden-file test pins down.

use crate::config::SolverChoice;
use greenla_cg::solver::{pcg, CgConfig};
use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::ft::solve_imep_ft;
use greenla_ime::solve_imep;
use greenla_linalg::generate;
use greenla_linalg::generate::SystemKind;
use greenla_linalg::sparse::{CsrMatrix, SparseSystem};
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_mpi::{EventKind, FaultPlan, FaultReport, FaultSink, Machine, TraceEvent, TraceSink};
use greenla_rapl::{Domain, RaplSim};
use greenla_scalapack::pdgesv::pdgesv;
use serde_json::Value;
use std::sync::Arc;

/// Number of counter samples per node in the exported grid.
pub const COUNTER_SAMPLES: usize = 64;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn args_obj(args: &[(&'static str, f64)]) -> Value {
    Value::Object(
        args.iter()
            .map(|(k, v)| (k.to_string(), Value::F64(*v)))
            .collect(),
    )
}

/// Convert drained trace events plus the run's RAPL simulator into a
/// Chrome Trace JSON document (`{"traceEvents": [...]}`).
///
/// `makespan_s` bounds the counter-sampling grid; `rapl` supplies the
/// energy ground truth at each grid point.
pub fn chrome_trace_json(
    events: &[TraceEvent],
    rapl: &RaplSim,
    makespan_s: f64,
    counter_samples: usize,
) -> Value {
    let mut out: Vec<Value> = Vec::new();

    // Track metadata: name the node processes and the rank threads.
    // Nodes and (node, rank) pairs are taken from the events themselves so
    // empty tracks never appear.
    let mut nodes: Vec<usize> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut rank_tracks: Vec<(usize, usize)> = events.iter().map(|e| (e.node, e.rank)).collect();
    rank_tracks.sort_unstable();
    rank_tracks.dedup();
    for &node in &nodes {
        out.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(node as u64)),
            ("tid", Value::U64(0)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("node{node}")))]),
            ),
        ]));
    }
    for &(node, rank) in &rank_tracks {
        out.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(node as u64)),
            ("tid", Value::U64(rank as u64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("rank {rank}")))]),
            ),
        ]));
    }

    // Energy counter track: sample the continuous ground truth on a
    // uniform grid so Perfetto draws package/DRAM Joules per node.
    let samples = counter_samples.max(2);
    for &node in &nodes {
        for i in 0..samples {
            let t = makespan_s * i as f64 / (samples - 1) as f64;
            let mut pkg = 0.0;
            let mut dram = 0.0;
            for socket in 0..rapl.sockets_per_node() {
                pkg += rapl
                    .ground_truth_j(node, socket, Domain::Package, t)
                    .unwrap_or(0.0);
                dram += rapl
                    .ground_truth_j(node, socket, Domain::Dram, t)
                    .unwrap_or(0.0);
            }
            out.push(obj(vec![
                ("name", Value::Str("energy (J)".into())),
                ("ph", Value::Str("C".into())),
                ("ts", Value::F64(t * 1e6)),
                ("pid", Value::U64(node as u64)),
                (
                    "args",
                    obj(vec![
                        ("pkg_j", Value::F64(pkg)),
                        ("dram_j", Value::F64(dram)),
                    ]),
                ),
            ]));
        }
    }

    // Cumulative transmitted bytes per node, rebuilt from the byte
    // arguments the send spans carry.
    let mut sends: Vec<(usize, f64, f64)> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == "send")
        .filter_map(|e| {
            e.args
                .iter()
                .find(|(k, _)| *k == "bytes")
                .map(|(_, bytes)| (e.node, e.t_s, *bytes))
        })
        .collect();
    sends.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite virtual times"));
    let mut cumulative: Vec<f64> = vec![0.0; nodes.iter().max().map_or(0, |&m| m + 1)];
    for (node, t, bytes) in sends {
        cumulative[node] += bytes;
        out.push(obj(vec![
            ("name", Value::Str("tx (bytes)".into())),
            ("ph", Value::Str("C".into())),
            ("ts", Value::F64(t * 1e6)),
            ("pid", Value::U64(node as u64)),
            (
                "args",
                obj(vec![("cumulative", Value::F64(cumulative[node]))]),
            ),
        ]));
    }

    // The spans and instants themselves, in drain order (rank-major,
    // record order within a rank — which is virtual-time order).
    for e in events {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let mut fields = vec![
            ("name", Value::Str(e.name.clone())),
            ("cat", Value::Str(e.cat.to_string())),
            ("ph", Value::Str(ph.into())),
            ("ts", Value::F64(e.t_s * 1e6)),
            ("pid", Value::U64(e.node as u64)),
            ("tid", Value::U64(e.rank as u64)),
        ];
        if e.kind == EventKind::Instant {
            fields.push(("s", Value::Str("t".into())));
        }
        if !e.args.is_empty() {
            fields.push(("args", args_obj(&e.args)));
        }
        out.push(obj(fields));
    }

    obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Result of [`traced_solve`]: the exported trace document plus the run's
/// virtual makespan (for overhead/invariance checks).
pub struct TracedSolve {
    pub trace: Value,
    pub makespan_s: f64,
    pub event_count: usize,
}

fn build_machine(ranks: usize, seed: u64) -> Machine {
    // A small node (4 cores over 2 sockets) so even a 4-rank trace fills a
    // node exactly and 16 ranks exercise the multi-node track layout.
    let node = greenla_cluster::spec::NodeSpec::test_node(2);
    let placement = Placement::layout(&node, ranks, LoadLayout::FullLoad).expect("rank count");
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: placement.nodes_used(),
        net: greenla_cluster::Interconnect::omni_path(),
    };
    let power = PowerModel::scaled_for(&node);
    Machine::new(spec, placement, power, seed).expect("valid machine")
}

fn run_solve(machine: &Machine, solver: SolverChoice, n: usize, seed: u64) -> f64 {
    // The machine's fault sink (disabled by default) is shared with the
    // RAPL simulator so counter faults land in the same report; a faulted
    // run monitors in degraded mode and routes IMe through the
    // checksum-protected solver, exactly like the measurement runner.
    let faulted = machine.faults().is_enabled();
    let rapl = Arc::new(
        RaplSim::new(machine.ledger(), machine.power().clone(), seed)
            .with_faults(machine.faults().clone()),
    );
    // CG needs a symmetric positive definite operator (sparsified on
    // entry, like the measurement runner); the dense solvers keep the
    // diagonally dominant draw the golden trace was pinned on.
    let sys = match solver {
        SolverChoice::Cg { .. } => SystemKind::Spd.generate(n, 3131),
        _ => generate::diag_dominant(n, 3131),
    };
    let sparse: Option<SparseSystem> =
        matches!(solver, SolverChoice::Cg { .. }).then(|| SparseSystem {
            a: CsrMatrix::from_dense(&sys.a),
            b: sys.b.clone(),
            x_ref: sys.x_ref.clone().unwrap_or_default(),
        });
    let sparse = &sparse;
    let mon_cfg = MonitorConfig {
        degrade_on_fault: faulted,
        ..MonitorConfig::default()
    };
    let out = machine.run(|ctx| {
        let world = ctx.world();
        monitored_run(ctx, &rapl, &mon_cfg, |ctx, handle| {
            let local_share = 8 * (n * n) as u64 / ctx.size() as u64;
            ctx.touch_memory(local_share);
            handle.phase(ctx, "allocation").expect("phase mark");
            match solver {
                SolverChoice::Ime { .. } if faulted => {
                    solve_imep_ft(ctx, &world, &sys, None).expect("IMe FT solve");
                }
                SolverChoice::Ime { .. } => {
                    solve_imep(ctx, &world, &sys, solver.imep_options().unwrap())
                        .expect("IMe solve");
                }
                SolverChoice::ScaLapack { nb } => {
                    pdgesv(ctx, &world, &sys, nb).expect("pdgesv solve");
                }
                SolverChoice::Cg { jacobi } => {
                    let cfg = CgConfig {
                        jacobi,
                        ..CgConfig::default()
                    };
                    pcg(ctx, &world, sparse.as_ref().unwrap(), &cfg)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
            }
            handle.phase(ctx, "execution").expect("phase mark");
        })
        .expect("monitoring protocol")
    });
    out.makespan
}

/// Run one monitored solve with tracing enabled and export the Chrome
/// Trace document. Fully deterministic in `(solver, n, ranks, seed)`.
pub fn traced_solve(solver: SolverChoice, n: usize, ranks: usize, seed: u64) -> TracedSolve {
    let machine = build_machine(ranks, seed).with_trace(TraceSink::enabled());
    let makespan_s = run_solve(&machine, solver, n, seed);
    let events = machine.trace().drain();
    let rapl = RaplSim::new(machine.ledger(), machine.power().clone(), seed);
    TracedSolve {
        trace: chrome_trace_json(&events, &rapl, makespan_s, COUNTER_SAMPLES),
        makespan_s,
        event_count: events.len(),
    }
}

/// The same solve without tracing — the baseline for the invariance test
/// (tracing observes the virtual clocks, it must never move them).
pub fn untraced_makespan(solver: SolverChoice, n: usize, ranks: usize, seed: u64) -> f64 {
    let machine = build_machine(ranks, seed);
    run_solve(&machine, solver, n, seed)
}

/// [`traced_solve`] under a (recoverable) fault plan: the exported trace
/// carries the `fault:*` instants the injection points emitted, and the
/// sink's consolidated [`FaultReport`] rides along. Fully deterministic in
/// `(solver, n, ranks, seed, plan)`.
pub fn traced_faulted_solve(
    solver: SolverChoice,
    n: usize,
    ranks: usize,
    seed: u64,
    plan: &FaultPlan,
) -> (TracedSolve, FaultReport) {
    let sink = FaultSink::with_plan(plan.clone());
    let machine = build_machine(ranks, seed)
        .with_trace(TraceSink::enabled())
        .with_faults(sink.clone());
    let makespan_s = run_solve(&machine, solver, n, seed);
    let events = machine.trace().drain();
    let rapl = RaplSim::new(machine.ledger(), machine.power().clone(), seed);
    let traced = TracedSolve {
        trace: chrome_trace_json(&events, &rapl, makespan_s, COUNTER_SAMPLES),
        makespan_s,
        event_count: events.len(),
    };
    (traced, sink.report())
}
