//! Terminal line charts for figure data — enough to eyeball the paper's
//! shapes (who is above whom, where lines cross) without leaving the shell.

use crate::output::Figure;
use std::fmt::Write as _;

const WIDTH: usize = 64;
const HEIGHT: usize = 18;
const GLYPHS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Render a figure as an ASCII chart with a legend.
pub fn ascii(fig: &Figure) -> String {
    let mut out = format!("── {} ({}) ──\n", fig.title, fig.id);
    let pts: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.x.iter().copied().zip(s.y.iter().copied()))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    ymin = ymin.min(0.0);
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, s) in fig.series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for (&x, &y) in s.x.iter().zip(&s.y) {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = (((x - xmin) / (xmax - xmin)) * (WIDTH - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (HEIGHT - 1) as f64).round() as usize;
            let row = HEIGHT - 1 - cy.min(HEIGHT - 1);
            grid[row][cx.min(WIDTH - 1)] = g;
        }
    }
    let fmt = |v: f64| {
        if v == 0.0 {
            "0".to_string()
        } else if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else if v.abs() >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.2e}")
        }
    };
    let _ = writeln!(out, "{:>12} ┐", fmt(ymax));
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>12} │{line}", "");
    }
    let _ = writeln!(out, "{:>12} └{}", fmt(ymin), "─".repeat(WIDTH));
    let _ = writeln!(
        out,
        "{:>13}{:<12}{:>width$}{:>12}",
        "",
        fmt(xmin),
        "",
        fmt(xmax),
        width = WIDTH.saturating_sub(24)
    );
    let _ = writeln!(out, "   x: {}   y: {}", fig.xlabel, fig.ylabel);
    for (si, s) in fig.series.iter().enumerate() {
        let _ = writeln!(out, "   {} {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::Series;

    #[test]
    fn renders_without_panic_and_contains_legend() {
        let mut fig = Figure::new("f", "demo", "n", "J");
        let mut s = Series::new("IMe");
        s.push(100.0, 5.0);
        s.push(200.0, 20.0);
        fig.series.push(s);
        let text = ascii(&fig);
        assert!(text.contains("demo"));
        assert!(text.contains("o IMe"));
        assert!(text.contains('o'));
    }

    #[test]
    fn empty_figure_is_graceful() {
        let fig = Figure::new("f", "empty", "x", "y");
        assert!(ascii(&fig).contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut fig = Figure::new("f", "const", "x", "y");
        let mut s = Series::new("flat");
        s.push(1.0, 3.0);
        s.push(1.0, 3.0);
        fig.series.push(s);
        let _ = ascii(&fig);
    }
}
