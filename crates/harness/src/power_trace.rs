//! E-PT — node power over time, via the black-box sampling daemon: the
//! kind of fine-grained profile the related-work systems the paper surveys
//! (DAVIDE, WattProf, Colmet) produce, here for both solvers on identical
//! workloads. Not a paper figure; an extension enabled by the black-box
//! monitoring mode.

use crate::config::SolverChoice;
use crate::output::{Figure, Series};
use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;
use greenla_ime::solve_imep;
use greenla_linalg::generate;
use greenla_monitor::blackbox::blackbox_run;
use greenla_monitor::monitoring::MonitorConfig;
use greenla_mpi::Machine;
use greenla_rapl::RaplSim;
use greenla_scalapack::pdgesv::pdgesv;
use std::sync::Arc;

/// Sample node-0 power over time for one solver run.
pub fn power_trace(
    solver: SolverChoice,
    n: usize,
    ranks: usize,
    sample_period_s: f64,
    seed: u64,
) -> Vec<(f64, f64)> {
    let node = NodeSpec::test_node(4);
    let placement = Placement::layout(&node, ranks, LoadLayout::FullLoad).unwrap();
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: placement.nodes_used(),
        net: greenla_cluster::Interconnect::omni_path(),
    };
    let power = PowerModel::scaled_for(&node);
    let machine = Machine::new(spec, placement, power, seed).unwrap();
    let rapl = Arc::new(RaplSim::new(
        machine.ledger(),
        machine.power().clone(),
        seed,
    ));
    let sys = generate::diag_dominant(n, 3131);
    let out = machine.run(|ctx| {
        blackbox_run(
            ctx,
            &rapl,
            &MonitorConfig::default(),
            sample_period_s,
            |ctx, app| match solver {
                SolverChoice::Ime { .. } => {
                    solve_imep(ctx, app, &sys, solver.imep_options().unwrap()).unwrap();
                }
                SolverChoice::ScaLapack { nb } => {
                    pdgesv(ctx, app, &sys, nb).unwrap();
                }
                SolverChoice::Cg { .. } => {
                    unreachable!("power traces sweep the dense solvers only")
                }
            },
        )
        .unwrap()
        .report
    });
    out.results
        .into_iter()
        .flatten()
        .find(|r| r.node == 0)
        .expect("node 0 daemon report")
        .power_trace()
}

/// Both solvers' traces as one figure.
pub fn figure(n: usize, ranks: usize, sample_period_s: f64, seed: u64) -> Figure {
    let mut fig = Figure::new(
        "power-trace",
        format!("E-PT — node-0 power over time (n={n}, {ranks} ranks, black-box sampling)"),
        "time [s]",
        "node power [W]",
    );
    for solver in [SolverChoice::ime_optimized(), SolverChoice::scalapack()] {
        let mut s = Series::new(solver.label());
        for (t, w) in power_trace(solver, n, ranks, sample_period_s, seed) {
            s.push(t, w);
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_samples_and_plausible_power() {
        let fig = figure(240, 8, 0.5e-3, 1);
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert!(s.x.len() >= 3, "{}: {} samples", s.label, s.x.len());
            for &w in &s.y {
                assert!((0.0..250.0).contains(&w), "{}: power {w}", s.label);
            }
        }
    }

    #[test]
    fn ime_trace_runs_longer_than_scalapack_when_compute_bound() {
        let fig = figure(320, 8, 1e-3, 2);
        let end = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.x.last().copied())
                .unwrap()
        };
        assert!(end("IMe") > end("ScaLAPACK"));
    }
}
