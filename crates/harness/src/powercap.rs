//! E-PC — the paper's stated future work, implemented: "the application of
//! power caps to restrict power consumption during execution, aiming to
//! achieve more efficient computations and investigate the behaviour of
//! IMe and ScaLAPACK under different power configurations" (§6).
//!
//! Sweeps a RAPL package power cap from uncapped down to deep throttling,
//! running both solvers under each cap on the simulated cluster: the cap
//! programs `MSR_PKG_POWER_LIMIT` (via the simulated RAPL device) and the
//! machine's DVFS model slows compute by `1/f` while dynamic power drops by
//! `f³` — the classic energy/time trade-off surface.

use crate::config::SolverChoice;
use crate::output::Table;
use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;
use greenla_ime::solve_imep;
use greenla_linalg::generate;
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_monitor::report::JobSummary;
use greenla_mpi::Machine;
use greenla_rapl::units::encode_power_limit;
use greenla_rapl::{RaplSim, MSR_PKG_POWER_LIMIT};
use greenla_scalapack::pdgesv::pdgesv;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One point of the power-cap sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapPoint {
    pub solver: String,
    /// Cap as a fraction of the uncapped fully-loaded socket power.
    pub cap_fraction: f64,
    /// Effective DVFS frequency scale the cap induces.
    pub freq_scale: f64,
    pub duration_s: f64,
    pub total_energy_j: f64,
    pub mean_power_w: f64,
}

/// Run the sweep: `fractions` of the uncapped loaded-socket power, both
/// solvers, full-load layout.
pub fn sweep(n: usize, ranks: usize, fractions: &[f64], seed: u64) -> Vec<CapPoint> {
    let node = NodeSpec::test_node(4);
    let base = PowerModel::scaled_deterministic(&node);
    let uncapped_w = base.loaded_socket_power_w(&node);
    let sys = generate::diag_dominant(n, 4242);
    let mut out = Vec::new();
    for solver in [SolverChoice::ime_optimized(), SolverChoice::scalapack()] {
        for &frac in fractions {
            let cap_w = uncapped_w * frac;
            let power = base.with_power_cap(&node, node.cpu.cores_per_socket, cap_w);
            let placement = Placement::layout(&node, ranks, LoadLayout::FullLoad).unwrap();
            let spec = ClusterSpec {
                node: node.clone(),
                nodes: placement.nodes_used(),
                net: greenla_cluster::Interconnect::omni_path(),
            };
            let machine = Machine::new(spec, placement, power.clone(), seed).unwrap();
            let rapl = Arc::new(RaplSim::new(
                machine.ledger(),
                machine.power().clone(),
                seed,
            ));
            let rapl2 = Arc::clone(&rapl);
            let limit = encode_power_limit(cap_w, &rapl.units());
            let run = machine.run(|ctx| {
                let world = ctx.world();
                monitored_run(ctx, &rapl2, &MonitorConfig::default(), |ctx, _| {
                    // The monitoring rank programs the cap into the MSR,
                    // as a power-capping agent would.
                    if ctx.rank() == 0 {
                        for node_i in 0..ctx.placement().nodes_used() {
                            for s in 0..2 {
                                rapl2
                                    .write_msr(node_i, s, MSR_PKG_POWER_LIMIT, limit)
                                    .expect("program power cap");
                            }
                        }
                    }
                    match solver {
                        SolverChoice::Ime { .. } => {
                            solve_imep(ctx, &world, &sys, solver.imep_options().unwrap()).unwrap()
                        }
                        SolverChoice::ScaLapack { nb } => pdgesv(ctx, &world, &sys, nb).unwrap(),
                        SolverChoice::Cg { .. } => {
                            unreachable!("the cap sweep covers the dense solvers only")
                        }
                    }
                })
                .unwrap()
                .report
            });
            let reports: Vec<_> = run.results.into_iter().flatten().collect();
            let s = JobSummary::aggregate(&reports);
            out.push(CapPoint {
                solver: solver.label().to_string(),
                cap_fraction: frac,
                freq_scale: power.freq_scale,
                duration_s: s.duration_s,
                total_energy_j: s.total_energy_j,
                mean_power_w: s.mean_power_w,
            });
        }
    }
    out
}

/// Render the sweep as a table.
pub fn table(points: &[CapPoint]) -> Table {
    Table {
        id: "powercap".into(),
        title: "E-PC — solvers under RAPL power caps (paper §6 future work)".into(),
        headers: [
            "solver",
            "cap",
            "freq",
            "time [s]",
            "energy [J]",
            "power [W]",
        ]
        .map(String::from)
        .to_vec(),
        rows: points
            .iter()
            .map(|p| {
                vec![
                    p.solver.clone(),
                    format!("{:.0}%", p.cap_fraction * 100.0),
                    format!("{:.2}", p.freq_scale),
                    format!("{:.6}", p.duration_s),
                    format!("{:.3}", p.total_energy_j),
                    format!("{:.1}", p.mean_power_w),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_trade_time_for_power() {
        // Compute-bound size: for latency-bound runs a cap barely moves the
        // needle (and sub-ms runs drown in counter quantisation).
        let pts = sweep(320, 8, &[1.0, 0.7], 1);
        assert_eq!(pts.len(), 4);
        for solver in ["IMe", "ScaLAPACK"] {
            let full: Vec<&CapPoint> = pts.iter().filter(|p| p.solver == solver).collect();
            let uncapped = full.iter().find(|p| p.cap_fraction == 1.0).unwrap();
            let capped = full.iter().find(|p| p.cap_fraction == 0.7).unwrap();
            assert!(capped.freq_scale < 1.0);
            assert!(
                capped.duration_s > uncapped.duration_s,
                "{solver}: capped run must be slower"
            );
            assert!(
                capped.mean_power_w < uncapped.mean_power_w,
                "{solver}: capped run must draw less power"
            );
        }
    }

    #[test]
    fn uncapped_fraction_keeps_full_frequency() {
        let pts = sweep(96, 8, &[1.0], 2);
        for p in pts {
            assert_eq!(p.freq_scale, 1.0);
        }
    }

    #[test]
    fn table_renders() {
        let pts = sweep(96, 8, &[1.0], 3);
        let t = table(&pts);
        assert_eq!(t.rows.len(), 2);
        assert!(t.to_text().contains("power caps"));
    }
}
