//! Headline-claim checking (experiment E-S1): distil the dataset (or the
//! paper-scale model) into the quantitative statements of §5.3/§5.4 and
//! compare each against the band the paper reports.

use crate::output::Table;
use crate::run::Dataset;
use greenla_cluster::placement::{LoadLayout, PAPER_DIMS, PAPER_RANKS};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_model::{predict, Scenario, Solver};
use serde::{Deserialize, Serialize};

/// One checked claim.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClaimCheck {
    pub id: String,
    /// The paper's statement.
    pub claim: String,
    /// What we measured/predicted.
    pub measured: String,
    /// Does the measurement land in (or reasonably near) the paper's band?
    pub pass: bool,
}

fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Claims evaluated on the functional-tier dataset.
pub fn check_dataset(ds: &Dataset) -> Vec<ClaimCheck> {
    let mut out = Vec::new();

    // --- S1: ScaLAPACK consumes less total energy than IMe (gap 50-60%) ---
    // Compared over the paper's n/ranks regime (its most distributed
    // configuration is 8640/1296 ≈ 6.7): scaled-down points below that
    // ratio have no paper counterpart and sit at the latency floor.
    const PAPER_MIN_RATIO: f64 = 6.5;
    let mut gaps = Vec::new();
    let mut wins = 0usize;
    let mut total = 0usize;
    for p in &ds.points {
        if p.solver == "IMe" && p.n as f64 / p.ranks as f64 >= PAPER_MIN_RATIO {
            if let Some(q) = ds.get("ScaLAPACK", p.n, p.ranks, p.layout) {
                total += 1;
                let gap = 1.0 - q.agg.total_energy_j.mean / p.agg.total_energy_j.mean;
                gaps.push(gap);
                if gap > 0.0 {
                    wins += 1;
                }
            }
        }
    }
    let gap_lo = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    let gap_hi = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let gap_mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    out.push(ClaimCheck {
        id: "S1-energy-gap".into(),
        claim: "ScaLAPACK consumes less energy than IMe, gap 50–60% (§5.4)".into(),
        measured: format!(
            "ScaLAPACK wins {wins}/{total} configs; gap {}..{} (mean {})",
            pct(gap_lo),
            pct(gap_hi),
            pct(gap_mean)
        ),
        // The paper itself notes "except for a few cases where the values
        // are quite similar" — require a clear majority plus a solid mean.
        pass: wins * 4 >= total * 3 && gap_mean > 0.20,
    });

    // --- S2: power gap is much smaller, 12-18% (§5.4) ---
    let mut pgaps = Vec::new();
    for p in &ds.points {
        if p.solver == "IMe" {
            if let Some(q) = ds.get("ScaLAPACK", p.n, p.ranks, p.layout) {
                pgaps.push(1.0 - q.agg.mean_power_w.mean / p.agg.mean_power_w.mean);
            }
        }
    }
    let pgap_mean = pgaps.iter().sum::<f64>() / pgaps.len().max(1) as f64;
    out.push(ClaimCheck {
        id: "S2-power-gap".into(),
        claim: "power gap between IMe and ScaLAPACK reduces to 12–18% (§5.4)".into(),
        measured: format!(
            "mean power gap {} (energy gap {})",
            pct(pgap_mean),
            pct(gap_mean)
        ),
        pass: pgap_mean.abs() < gap_mean && pgap_mean.abs() < 0.35,
    });

    // --- S3: full load is the most energy-efficient layout (§5.3) ---
    let mut full_wins = 0usize;
    let mut full_total = 0usize;
    for p in &ds.points {
        if p.layout == LoadLayout::FullLoad {
            for other in [LoadLayout::HalfOneSocket, LoadLayout::HalfTwoSockets] {
                if let Some(q) = ds.get(&p.solver, p.n, p.ranks, other) {
                    full_total += 1;
                    if p.agg.total_energy_j.mean <= q.agg.total_energy_j.mean {
                        full_wins += 1;
                    }
                }
            }
        }
    }
    out.push(ClaimCheck {
        id: "S3-full-load".into(),
        claim: "full-load deployments consume less than half-load ones (§5.3)".into(),
        measured: format!("full load wins {full_wins}/{full_total} comparisons"),
        pass: full_wins * 10 >= full_total * 9,
    });

    // --- S4: one-socket vs two-socket half load are similar (§5.2) ---
    let mut ratios = Vec::new();
    for p in &ds.points {
        if p.layout == LoadLayout::HalfOneSocket {
            if let Some(q) = ds.get(&p.solver, p.n, p.ranks, LoadLayout::HalfTwoSockets) {
                ratios.push(p.agg.total_energy_j.mean / q.agg.total_energy_j.mean);
            }
        }
    }
    let worst = ratios
        .iter()
        .map(|r| (r - 1.0).abs())
        .fold(0.0f64, f64::max);
    out.push(ClaimCheck {
        id: "S4-socket-split".into(),
        claim: "one-socket and two-socket half-load overlap, no clear winner (§5.2)".into(),
        measured: format!("1-socket/2-socket energy within ±{}", pct(worst)),
        pass: worst < 0.15,
    });

    // --- S5: the idle socket draws 50-60% less, not ~100% less (§5.3) ---
    // The per-socket split comes from simulated RAPL counters, which
    // update on a ~1 ms grid: a monitored window shorter than a couple of
    // update periods measures a phase-dependent sliver, not the socket's
    // power ratio. Only trust points whose duration lets each counter tick
    // at least twice (real RAPL consumers apply the same rule); if the
    // whole dataset is below that scale, fall back to every point rather
    // than dividing by zero.
    const MIN_MONITORABLE_S: f64 = 2.0e-3;
    let drop_of = |p: &&crate::run::DataPoint| {
        let loaded = p.agg.pkg0_j.mean;
        let idle = p.agg.pkg1_j.mean;
        (p.layout == LoadLayout::HalfOneSocket && loaded > 0.0).then(|| 1.0 - idle / loaded)
    };
    let mut drops: Vec<f64> = ds
        .points
        .iter()
        .filter(|p| p.agg.duration_s.mean >= MIN_MONITORABLE_S)
        .filter_map(|p| drop_of(&p))
        .collect();
    if drops.is_empty() {
        drops = ds.points.iter().filter_map(|p| drop_of(&p)).collect();
    }
    let drop_mean = drops.iter().sum::<f64>() / drops.len().max(1) as f64;
    out.push(ClaimCheck {
        id: "S5-idle-socket".into(),
        claim: "the idle socket consumes 50–60% less than the loaded one (§5.3)".into(),
        measured: format!("mean idle-socket reduction {}", pct(drop_mean)),
        pass: (0.35..=0.70).contains(&drop_mean),
    });

    // --- S6: duration crossover (§5.2) ---
    let (mut ime_fast, mut ge_fast) = (Vec::new(), Vec::new());
    for p in &ds.points {
        if p.solver == "IMe" && p.layout == LoadLayout::FullLoad {
            if let Some(q) = ds.get("ScaLAPACK", p.n, p.ranks, p.layout) {
                if p.agg.duration_s.mean < q.agg.duration_s.mean {
                    ime_fast.push((p.n, p.ranks));
                } else {
                    ge_fast.push((p.n, p.ranks));
                }
            }
        }
    }
    out.push(ClaimCheck {
        id: "S6-crossover".into(),
        claim: "ScaLAPACK faster on dense computations; IMe faster on distributed ones (§5.2)"
            .into(),
        measured: format!("IMe faster at {ime_fast:?}; ScaLAPACK faster at {ge_fast:?}"),
        // At functional scale, latency terms are tiny, so we only require
        // ScaLAPACK's dense-side win here; the crossover itself is checked
        // at paper scale (model tier, S6 below).
        pass: !ge_fast.is_empty(),
    });

    // --- S7: DRAM energy gap (§5.4: 12-42% depending on configuration) ---
    let mut dgaps = Vec::new();
    for p in &ds.points {
        if p.solver == "IMe" {
            if let Some(q) = ds.get("ScaLAPACK", p.n, p.ranks, p.layout) {
                let dp = p.agg.dram_energy_j.mean / p.agg.duration_s.mean;
                let dq = q.agg.dram_energy_j.mean / q.agg.duration_s.mean;
                dgaps.push(1.0 - dq / dp);
            }
        }
    }
    let dgap_mean = dgaps.iter().sum::<f64>() / dgaps.len().max(1) as f64;
    out.push(ClaimCheck {
        id: "S7-dram-gap".into(),
        claim: "DRAM power gap between IMe and ScaLAPACK is even more significant (§5.4)".into(),
        measured: format!("mean DRAM power gap {}", pct(dgap_mean)),
        pass: dgap_mean > 0.05,
    });

    out
}

/// Claims evaluated with the calibrated model at the paper's scale.
pub fn check_model() -> Vec<ClaimCheck> {
    let spec = ClusterSpec::marconi_a3(64);
    let power = PowerModel::marconi_a3();
    let p =
        |solver, n, ranks, layout| predict(solver, Scenario { n, ranks, layout }, &spec, &power);
    let mut out = Vec::new();

    // Energy gap at paper scale.
    let mut gaps = Vec::new();
    for &n in &PAPER_DIMS {
        for &ranks in &PAPER_RANKS {
            let ime = p(Solver::ImeOptimized, n, ranks, LoadLayout::FullLoad);
            let ge = p(Solver::ScaLapack { nb: 64 }, n, ranks, LoadLayout::FullLoad);
            gaps.push(1.0 - ge.energy.total_j / ime.energy.total_j);
        }
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    out.push(ClaimCheck {
        id: "M1-energy-gap".into(),
        claim: "total energy gap 50–60% at paper scale (§5.4)".into(),
        measured: format!(
            "model gap {}..{} (mean {})",
            pct(gaps.iter().cloned().fold(f64::INFINITY, f64::min)),
            pct(gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
            pct(mean_gap)
        ),
        pass: (0.30..=0.75).contains(&mean_gap),
    });

    // Power gap at paper scale.
    let ime = p(Solver::ImeOptimized, 17280, 144, LoadLayout::FullLoad);
    let ge = p(
        Solver::ScaLapack { nb: 64 },
        17280,
        144,
        LoadLayout::FullLoad,
    );
    let pgap = 1.0 - ge.energy.mean_power_w / ime.energy.mean_power_w;
    out.push(ClaimCheck {
        id: "M2-power-gap".into(),
        claim: "power gap 12–18% at paper scale (§5.4)".into(),
        measured: format!("model power gap {} at n=17280, 144 ranks", pct(pgap)),
        pass: (0.02..=0.30).contains(&pgap),
    });

    // Crossover at paper scale.
    let mut ime_wins = Vec::new();
    let mut ge_wins = Vec::new();
    for &n in &PAPER_DIMS {
        for &ranks in &PAPER_RANKS {
            let ti = p(Solver::ImeOptimized, n, ranks, LoadLayout::FullLoad).time_s;
            let tg = p(Solver::ScaLapack { nb: 64 }, n, ranks, LoadLayout::FullLoad).time_s;
            if ti < tg {
                ime_wins.push((n, ranks));
            } else {
                ge_wins.push((n, ranks));
            }
        }
    }
    let ime_wins_distributed = ime_wins.iter().any(|&(n, r)| n <= 17280 && r >= 576);
    let ge_wins_dense = ge_wins.iter().any(|&(n, r)| n >= 25920 && r == 144);
    out.push(ClaimCheck {
        id: "M3-crossover".into(),
        claim:
            "IMe faster for 576/1296 ranks at dims 8640/17280; ScaLAPACK faster when dense (§5.2)"
                .into(),
        measured: format!("IMe wins {ime_wins:?}; ScaLAPACK wins {ge_wins:?}"),
        pass: ime_wins_distributed && ge_wins_dense,
    });

    out
}

/// Render claim checks as a table.
pub fn claims_table(id: &str, title: &str, checks: &[ClaimCheck]) -> Table {
    Table {
        id: id.into(),
        title: title.into(),
        headers: ["id", "paper claim", "measured", "pass"]
            .map(String::from)
            .to_vec(),
        rows: checks
            .iter()
            .map(|c| {
                vec![
                    c.id.clone(),
                    c.claim.clone(),
                    c.measured.clone(),
                    if c.pass { "yes".into() } else { "NO".into() },
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_claims_pass_at_paper_scale() {
        let checks = check_model();
        for c in &checks {
            assert!(c.pass, "claim {} failed: {}", c.id, c.measured);
        }
    }

    #[test]
    fn claims_render_as_table() {
        let t = claims_table("x", "claims", &check_model());
        assert!(t.rows.len() >= 3);
        assert!(t.to_text().contains("claims"));
    }
}
