//! The dense-vs-sparse energy campaign: the same Poisson SPD system
//! solved by the dense direct solvers (IMe, ScaLAPACK) and by distributed
//! CG over the sparse row-block SpMV, on one simulated node.
//!
//! This is the memory-bound inversion the sparse workload family exists
//! to demonstrate: CG's achieved GFLOP/s sits far below every dense
//! solver's — SpMV's ~1/6 flop-per-byte intensity pins it to the DRAM
//! ceiling — yet its energy to solution is lower, because it moves
//! O(nnz·iters) data instead of executing O(n³) flops. Alongside the
//! measurements, every CG point is re-derived from the closed forms
//! (`greenla_cg::formulas` for flops/bytes through the spec roofline,
//! `greenla_model::comm` for the collectives and the halo exchange) and
//! gated against the simulator within the same ±30% band the dense
//! roofline validation uses.

use crate::config::SolverChoice;
use crate::run::{
    per_solve, run_once, system_seed, Aggregated, DataPoint, Dataset, Measurement, RunConfig,
};
use greenla_cg::formulas;
use greenla_cg::partition::{HaloPlan, RowBlocks, RowSplit};
use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;
use greenla_linalg::generate::SystemKind;
use greenla_linalg::sparse::CsrMatrix;
use greenla_model::comm;
use greenla_model::params::MachineParams;
use greenla_model::roofline::{KernelProfile, Roofline};
use serde::{Deserialize, Serialize};

/// The band shared with the dense roofline validations (host and
/// simulated): predictions must land within ±30% of the measurement.
pub const REL_TOL: f64 = 0.30;

fn within_band(ratio: f64) -> bool {
    crate::bench::retry::within_band(ratio, REL_TOL)
}

/// Minimum monitored-window length. The simulated RAPL refreshes its MSR
/// counters once per ~1 ms like the real hardware, so a window must span
/// many update periods before the start/stop deltas mean anything; a CG
/// solve on these dimensions finishes in well under a millisecond and is
/// batched up to this length (the ±1-update read error then amortises to
/// a few percent). Dense solves long enough on their own keep `batch = 1`.
const TARGET_WINDOW_S: f64 = 0.05;

/// Upper bound on the batch so a mis-probed duration cannot stall a run.
const MAX_BATCH: usize = 1024;

/// Grid of the sparse campaign. Dimensions must be perfect squares
/// ([`SystemKind::Poisson2d`] is a k×k 5-point stencil); all ranks run
/// full-load on a single node so every message is intra-node and the
/// closed-form communication model needs only one latency class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparseGrid {
    pub dims: Vec<usize>,
    pub ranks: usize,
    pub reps: usize,
    pub cores_per_socket: usize,
    pub base_seed: u64,
}

impl Default for SparseGrid {
    fn default() -> Self {
        Self {
            dims: vec![400, 784, 1296],
            ranks: 16,
            reps: 3,
            cores_per_socket: 8,
            base_seed: 2023,
        }
    }
}

impl SparseGrid {
    /// A minimal grid for CI smoke runs.
    pub fn smoke() -> Self {
        Self {
            dims: vec![196, 324],
            reps: 1,
            ..Self::default()
        }
    }

    /// The four solvers every dimension runs: both CG variants against
    /// both dense direct solvers.
    pub fn solvers() -> [SolverChoice; 4] {
        [
            SolverChoice::cg(),
            SolverChoice::cg_jacobi(),
            SolverChoice::ime_optimized(),
            SolverChoice::scalapack(),
        ]
    }
}

/// One solver × dimension summary row of the campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparsePoint {
    pub solver: String,
    pub n: usize,
    pub duration_s: f64,
    pub energy_j: f64,
    /// Achieved rate over the solver's closed-form flop count.
    pub gflops: f64,
    pub iterations: Option<u64>,
    /// Solves per monitored window (sized so the window spans well past
    /// the RAPL update period); all figures above are already per solve.
    pub batch: usize,
}

/// Closed-form model vs simulator for one CG point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelCheck {
    pub solver: String,
    pub n: usize,
    pub iterations: u64,
    pub pred_wall_s: f64,
    pub meas_wall_s: f64,
    pub wall_ratio: f64,
    pub pred_iter_wall_s: f64,
    pub meas_iter_wall_s: f64,
    pub pred_energy_j: f64,
    pub meas_energy_j: f64,
    pub energy_ratio: f64,
    /// The roofline's verdict on the per-rank solve profile — must be
    /// `false` (memory-bound) for every CG point.
    pub compute_bound: bool,
    /// Achieved DRAM GB/s of the solve against the closed-form byte count.
    pub gbps: f64,
    pub within_band: bool,
}

/// The ranking divergence at one dimension: CG delivers the *lowest*
/// GFLOP/s yet the *lowest* energy to solution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InversionCheck {
    pub n: usize,
    pub cg_gflops: f64,
    pub min_dense_gflops: f64,
    pub cg_energy_j: f64,
    pub min_dense_energy_j: f64,
    pub holds: bool,
}

/// The campaign's machine-readable verdict, written as
/// `sparse_campaign.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparseReport {
    pub points: Vec<SparsePoint>,
    pub checks: Vec<ModelCheck>,
    pub inversions: Vec<InversionCheck>,
    pub all_within_band: bool,
    pub all_memory_bound: bool,
    pub inversion_holds: bool,
}

/// Run the dense-vs-sparse campaign: every solver at every dimension,
/// `reps` repetitions, on `ranks` full-load ranks of one node. Returns
/// the dataset (same schema the dense campaign writes) and the report.
pub fn campaign(grid: &SparseGrid, progress: impl Fn(&str) + Sync) -> (Dataset, SparseReport) {
    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for &n in &grid.dims {
        for solver in SparseGrid::solvers() {
            progress(&format!("n={n} solver={}", solver.label()));
            let cfg = RunConfig {
                n,
                ranks: grid.ranks,
                layout: LoadLayout::FullLoad,
                solver,
                system: SystemKind::Poisson2d,
                cores_per_socket: grid.cores_per_socket,
                seed: grid.base_seed,
                check: false,
                faults: None,
                scheduler: Default::default(),
                batch: 1,
                cg_overlap: true,
            };
            // Probe at batch 1 to size the monitored window, then measure.
            let probe = run_once(&cfg);
            let batch = if probe.duration_s >= TARGET_WINDOW_S {
                1
            } else {
                ((TARGET_WINDOW_S / probe.duration_s).ceil() as usize).clamp(1, MAX_BATCH)
            };
            let mut runs: Vec<Measurement> = Vec::with_capacity(grid.reps);
            if batch == 1 {
                // The probe is already rep 0 (same seed, same window).
                runs.push(probe);
            }
            while runs.len() < grid.reps {
                let rep = runs.len();
                runs.push(per_solve(
                    run_once(&RunConfig {
                        seed: grid.base_seed + rep as u64,
                        batch,
                        ..cfg.clone()
                    }),
                    batch,
                ));
            }
            let agg = Aggregated::from_runs(&runs);
            let flops = solve_flops(&cfg, &runs[0]);
            let point = SparsePoint {
                solver: solver.label().to_string(),
                n,
                duration_s: agg.duration_s.mean,
                energy_j: agg.total_energy_j.mean,
                gflops: flops / agg.duration_s.mean / 1e9,
                iterations: runs[0].iterations,
                batch,
            };
            if matches!(solver, SolverChoice::Cg { .. }) {
                checks.push(model_check(&cfg, &point, &runs[0]));
            }
            rows.push(point);
            points.push(DataPoint {
                solver: solver.label().to_string(),
                n,
                ranks: grid.ranks,
                layout: LoadLayout::FullLoad,
                agg,
                violations: runs.iter().flat_map(|m| m.violations.clone()).collect(),
                fault_reports: Vec::new(),
            });
        }
    }
    let inversions: Vec<InversionCheck> = grid
        .dims
        .iter()
        .map(|&n| {
            let here: Vec<&SparsePoint> = rows.iter().filter(|p| p.n == n).collect();
            let cg_gflops = here
                .iter()
                .filter(|p| p.solver.starts_with("CG"))
                .map(|p| p.gflops)
                .fold(0.0, f64::max);
            let cg_energy_j = here
                .iter()
                .filter(|p| p.solver.starts_with("CG"))
                .map(|p| p.energy_j)
                .fold(f64::INFINITY, f64::min);
            let min_dense_gflops = here
                .iter()
                .filter(|p| !p.solver.starts_with("CG"))
                .map(|p| p.gflops)
                .fold(f64::INFINITY, f64::min);
            let min_dense_energy_j = here
                .iter()
                .filter(|p| !p.solver.starts_with("CG"))
                .map(|p| p.energy_j)
                .fold(f64::INFINITY, f64::min);
            InversionCheck {
                n,
                cg_gflops,
                min_dense_gflops,
                cg_energy_j,
                min_dense_energy_j,
                holds: cg_gflops < min_dense_gflops && cg_energy_j < min_dense_energy_j,
            }
        })
        .collect();
    let report = SparseReport {
        all_within_band: checks.iter().all(|c| c.within_band),
        all_memory_bound: checks.iter().all(|c| !c.compute_bound),
        inversion_holds: inversions.iter().all(|i| i.holds),
        points: rows,
        checks,
        inversions,
    };
    (Dataset { points }, report)
}

/// Closed-form flop count of one solve, per solver: the IMe model from
/// `greenla_ime::formulas`, the classic ²⁄₃·n³ LU factor + 2n² solve for
/// ScaLAPACK, and the summed per-rank CG recurrence cost.
fn solve_flops(cfg: &RunConfig, m: &Measurement) -> f64 {
    match cfg.solver {
        SolverChoice::Ime { .. } => greenla_ime::formulas::flops_ime_ours(cfg.n) as f64,
        SolverChoice::ScaLapack { .. } => {
            let n = cfg.n as f64;
            2.0 * n * n * n / 3.0 + 2.0 * n * n
        }
        SolverChoice::Cg { jacobi } => cg_rank_costs(cfg, jacobi, m)
            .iter()
            .map(|c| c.flops as f64)
            .sum(),
    }
}

/// Per-rank closed-form solve costs of a CG run, derived from the same
/// system `run_once` generated and the measured iteration counts.
fn cg_rank_costs(cfg: &RunConfig, jacobi: bool, m: &Measurement) -> Vec<formulas::IterCost> {
    let sys = cfg.system.generate(cfg.n, system_seed(cfg));
    let a = CsrMatrix::from_dense(&sys.a);
    let blocks = RowBlocks::new(cfg.n, cfg.ranks);
    let plans = HaloPlan::build_all(&a, blocks);
    let iters = m.iterations.expect("CG run records iterations");
    let refreshes = m.refreshes.expect("CG run records refreshes");
    (0..cfg.ranks)
        .map(|r| {
            let rows = blocks.rows(r);
            let nnz = a.row_block(blocks.lo(r), blocks.hi(r)).nnz();
            formulas::cg_solve_cost(rows, nnz, plans[r].recv_elems(), jacobi, iters, refreshes)
        })
        .collect()
}

/// Re-derive one CG measurement from the closed forms and gate it.
fn model_check(cfg: &RunConfig, point: &SparsePoint, m: &Measurement) -> ModelCheck {
    let jacobi = matches!(cfg.solver, SolverChoice::Cg { jacobi: true });
    let node = NodeSpec::test_node(cfg.cores_per_socket);
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: m.nodes,
        net: greenla_cluster::Interconnect::omni_path(),
    };
    let rf = Roofline::from_spec(&spec);
    let costs = cg_rank_costs(cfg, jacobi, m);
    let iters = m.iterations.expect("CG run records iterations");
    let refreshes = m.refreshes.expect("CG run records refreshes");

    // Compute side: the straggler rank's closed-form time through the
    // spec roofline (ranks run concurrently, each on its own core).
    let (worst_rank, worst) = costs
        .iter()
        .copied()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            let t = |c: &formulas::IterCost| {
                rf.predict(&KernelProfile::sparse(c.flops, c.bytes, 1))
                    .time_s
            };
            t(a).total_cmp(&t(b))
        })
        .expect("at least one rank");
    let per_rank = KernelProfile::sparse(worst.flops, worst.bytes, 1);
    let pred = rf.predict(&per_rank);

    // Communication side: everything is intra-node on the single-node
    // campaign, so evaluate the closed forms at the intra latency class.
    let mp = MachineParams::from_spec(&spec);
    let mi = MachineParams {
        alpha: mp.alpha_intra,
        beta: mp.beta_intra,
        ..mp
    };
    let sys = cfg.system.generate(cfg.n, system_seed(cfg));
    let a = CsrMatrix::from_dense(&sys.a);
    let blocks = RowBlocks::new(cfg.n, cfg.ranks);
    let plans = HaloPlan::build_all(&a, blocks);
    // One exchange: the bottleneck rank drains its incoming messages.
    let halo_s = plans
        .iter()
        .map(|pl| {
            pl.recv
                .iter()
                .map(|(_, idxs)| mi.p2p(8.0 * idxs.len() as f64))
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    // The overlapped solver posts the halo first and computes its interior
    // rows while the payloads are in flight, so every exchange hides
    // `min(halo, interior)` seconds of communication. Charge the credit at
    // the straggler rank's interior profile — the same rank the compute
    // side models — and hand the reduced communication share to the energy
    // prediction too.
    let overlap_credit = if cfg.cg_overlap {
        let split = RowSplit::build(&a, blocks, worst_rank);
        let (interior, _) = formulas::spmv_split_cost(
            split.interior.len(),
            split.interior_nnz,
            split.boundary.len(),
            split.boundary_nnz,
            plans[worst_rank].recv_elems(),
        );
        rf.overlap_credit(
            &KernelProfile::sparse(interior.flops, interior.bytes, 1),
            halo_s,
        )
    } else {
        0.0
    };
    let p = cfg.ranks;
    let iter_comm =
        comm::allreduce(p, 8.0, &mi) + comm::allreduce(p, 16.0, &mi) + halo_s - overlap_credit;
    let comm_s = comm::allreduce(p, 16.0, &mi)
        + iters as f64 * iter_comm
        + refreshes as f64 * (halo_s - overlap_credit)
        + comm::allgather_ring(p, 8.0 * cfg.n as f64, &mi);

    let pred_wall_s = pred.time_s + comm_s;
    let bytes_total: f64 = costs.iter().map(|c| c.bytes as f64).sum();
    let power = PowerModel::scaled_for(&node);
    let e = rf.predict_energy(
        &node,
        &power,
        LoadLayout::FullLoad,
        p,
        &per_rank,
        comm_s,
        bytes_total,
    );
    let wall_ratio = pred_wall_s / m.duration_s;
    let energy_ratio = e.total_j / m.total_energy_j;
    ModelCheck {
        solver: point.solver.clone(),
        n: cfg.n,
        iterations: iters,
        pred_wall_s,
        meas_wall_s: m.duration_s,
        wall_ratio,
        pred_iter_wall_s: pred_wall_s / iters as f64,
        meas_iter_wall_s: m.duration_s / iters as f64,
        pred_energy_j: e.total_j,
        meas_energy_j: m.total_energy_j,
        energy_ratio,
        compute_bound: pred.compute_bound,
        gbps: bytes_total / m.duration_s / 1e9,
        within_band: within_band(wall_ratio) && within_band(energy_ratio),
    }
}

/// Render the report as the terminal table `repro --exp sparse` prints.
pub fn table(report: &SparseReport) -> crate::output::Table {
    let fmt = |v: f64| format!("{v:.4}");
    crate::output::Table {
        id: "sparse".into(),
        title: "E-SP — dense vs sparse on the same Poisson system (energy inversion)".into(),
        headers: ["solver", "n", "time [s]", "energy [J]", "GFLOP/s", "iters"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: report
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.solver.clone(),
                    pt.n.to_string(),
                    fmt(pt.duration_s),
                    fmt(pt.energy_j),
                    fmt(pt.gflops),
                    pt.iterations.map_or("-".into(), |i| i.to_string()),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_check_is_symmetric_in_the_ratio() {
        assert!(within_band(1.0));
        assert!(within_band(1.29) && within_band(1.0 / 1.29));
        assert!(!within_band(1.31) && !within_band(1.0 / 1.31));
        assert!(!within_band(f64::NAN));
    }

    #[test]
    fn smoke_grid_dims_are_perfect_squares_on_one_node() {
        for grid in [SparseGrid::default(), SparseGrid::smoke()] {
            let node = NodeSpec::test_node(grid.cores_per_socket);
            assert_eq!(node.cores(), grid.ranks, "one full node exactly");
            for &n in &grid.dims {
                let k = (n as f64).sqrt().round() as usize;
                assert_eq!(k * k, n, "{n} is not a perfect square");
            }
        }
    }
}
