//! Figure/table data containers and CSV/JSON emission.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// One plotted line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }
}

/// A reproducible figure: id, axes, series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    pub id: String,
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub series: Vec<Series>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// CSV rendering: `x, <series 1>, <series 2>, …` on the union of x
    /// values (missing points are empty cells).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let mut out = String::new();
        let _ = write!(out, "{}", self.xlabel.replace(',', ";"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.x.iter().position(|&v| v == x) {
                    Some(i) => {
                        let _ = write!(out, ",{:.6}", s.y[i]);
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A plain table (Table 1, summary tables).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Fixed-width text rendering for the terminal.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(line, "{c:>w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Write a string artefact under `dir`.
pub fn write_artifact(dir: &Path, name: &str, content: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Serialise any serde value as pretty JSON next to the CSV.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> io::Result<PathBuf> {
    let text = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    write_artifact(dir, name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_csv_unions_x() {
        let mut f = Figure::new("t", "t", "x", "y");
        let mut s1 = Series::new("a");
        s1.push(1.0, 10.0);
        s1.push(2.0, 20.0);
        let mut s2 = Series::new("b");
        s2.push(2.0, 5.0);
        f.series.push(s1);
        f.series.push(s2);
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10.000000,");
        assert_eq!(lines[2], "2,20.000000,5.000000");
    }

    #[test]
    fn table_text_aligns() {
        let t = Table {
            id: "x".into(),
            title: "demo".into(),
            headers: vec!["a".into(), "bbbb".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let text = t.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("bbbb"));
        assert_eq!(t.to_csv(), "a,bbbb\n1,2\n");
    }
}
