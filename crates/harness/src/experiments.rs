//! Per-artefact experiment definitions: one function per paper table or
//! figure, for each tier.
//!
//! Functional-tier figures slice the measured [`Dataset`]; model-tier
//! figures evaluate the calibrated analytic model at the paper's exact
//! configurations. Figure numbering follows the paper (§5.2).

use crate::config::paper;
use crate::output::{Figure, Series, Table};
use crate::run::Dataset;
use greenla_cluster::placement::{table1_rows, LoadLayout, PAPER_RANKS};
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;
use greenla_model::{predict, Prediction, Scenario, Solver};

/// Table 1: the test configurations (nodes, ranks, sockets).
pub fn table1() -> Table {
    let rows = table1_rows(&NodeSpec::marconi_a3(), &PAPER_RANKS);
    Table {
        id: "table1".into(),
        title: "Table 1 — test configurations for nodes, ranks and sockets".into(),
        headers: [
            "Ranks",
            "Nodes",
            "Ranks/Node",
            "Sockets",
            "Ranks/Socket0",
            "Ranks/Socket1",
        ]
        .map(String::from)
        .to_vec(),
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.ranks.to_string(),
                    r.nodes.to_string(),
                    r.ranks_per_node.to_string(),
                    r.sockets.to_string(),
                    r.ranks_per_socket.0.to_string(),
                    r.ranks_per_socket.1.to_string(),
                ]
            })
            .collect(),
    }
}

const SOLVERS: [&str; 2] = ["IMe", "ScaLAPACK"];

/// Evaluate the model at a paper-scale scenario.
fn model_point(solver: &str, n: usize, ranks: usize, layout: LoadLayout) -> Prediction {
    let spec = ClusterSpec::marconi_a3(64);
    let power = PowerModel::marconi_a3();
    let s = match solver {
        "IMe" => Solver::ImeOptimized,
        _ => Solver::ScaLapack { nb: paper::NB },
    };
    predict(s, Scenario { n, ranks, layout }, &spec, &power)
}

/// Figure 3: total energy for full-loaded vs half-loaded processors, per
/// solver, energy vs matrix dimension at a fixed rank count.
pub fn fig3_functional(ds: &Dataset, ranks: usize) -> Figure {
    let mut fig = Figure::new(
        "fig3",
        format!("Fig.3 — full vs half-loaded processors (ranks={ranks})"),
        "matrix dimension",
        "total energy [J]",
    );
    for solver in SOLVERS {
        for layout in LoadLayout::all() {
            let mut s = Series::new(format!("{solver} {layout}"));
            for p in &ds.points {
                if p.solver == solver && p.ranks == ranks && p.layout == layout {
                    s.push(p.n as f64, p.agg.total_energy_j.mean);
                }
            }
            fig.series.push(s);
        }
    }
    fig
}

/// Figure 3 at paper scale (model tier).
pub fn fig3_model(ranks: usize) -> Figure {
    let mut fig = Figure::new(
        "fig3-model",
        format!("Fig.3 (paper scale, model) — load levels (ranks={ranks})"),
        "matrix dimension",
        "total energy [J]",
    );
    for solver in SOLVERS {
        for layout in LoadLayout::all() {
            let mut s = Series::new(format!("{solver} {layout}"));
            for &n in &paper::PAPER_DIMS {
                s.push(
                    n as f64,
                    model_point(solver, n, ranks, layout).energy.total_j,
                );
            }
            fig.series.push(s);
        }
    }
    fig
}

/// Figure 4: energy and time vs matrix dimension at fixed rank counts
/// (full-load deployments). Returns `(energy figure, time figure)`.
pub fn fig4_functional(ds: &Dataset) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig4-energy",
        "Fig.4 — energy vs matrix dimension at fixed ranks (full load)",
        "matrix dimension",
        "total energy [J]",
    );
    let mut ft = Figure::new(
        "fig4-time",
        "Fig.4 — duration vs matrix dimension at fixed ranks (full load)",
        "matrix dimension",
        "duration [s]",
    );
    let ranks_list: Vec<usize> = {
        let mut r: Vec<usize> = ds
            .points
            .iter()
            .filter(|p| p.layout == LoadLayout::FullLoad)
            .map(|p| p.ranks)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    for solver in SOLVERS {
        for &ranks in &ranks_list {
            let mut se = Series::new(format!("{solver} {ranks} ranks"));
            let mut st = Series::new(format!("{solver} {ranks} ranks"));
            for p in &ds.points {
                if p.solver == solver && p.ranks == ranks && p.layout == LoadLayout::FullLoad {
                    se.push(p.n as f64, p.agg.total_energy_j.mean);
                    st.push(p.n as f64, p.agg.duration_s.mean);
                }
            }
            fe.series.push(se);
            ft.series.push(st);
        }
    }
    (fe, ft)
}

/// Figure 4 at paper scale.
pub fn fig4_model() -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig4-energy-model",
        "Fig.4 (paper scale, model) — energy vs dimension at fixed ranks",
        "matrix dimension",
        "total energy [J]",
    );
    let mut ft = Figure::new(
        "fig4-time-model",
        "Fig.4 (paper scale, model) — duration vs dimension at fixed ranks",
        "matrix dimension",
        "duration [s]",
    );
    for solver in SOLVERS {
        for &ranks in &paper::PAPER_RANKS {
            let mut se = Series::new(format!("{solver} {ranks} ranks"));
            let mut st = Series::new(format!("{solver} {ranks} ranks"));
            for &n in &paper::PAPER_DIMS {
                let p = model_point(solver, n, ranks, LoadLayout::FullLoad);
                se.push(n as f64, p.energy.total_j);
                st.push(n as f64, p.time_s);
            }
            fe.series.push(se);
            ft.series.push(st);
        }
    }
    (fe, ft)
}

/// Figure 5: energy and time vs rank count at fixed matrix dimensions
/// (strong scaling; the crossover figure).
pub fn fig5_functional(ds: &Dataset) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig5-energy",
        "Fig.5 — energy vs ranks at fixed matrix size (full load)",
        "ranks",
        "total energy [J]",
    );
    let mut ft = Figure::new(
        "fig5-time",
        "Fig.5 — duration vs ranks at fixed matrix size (full load)",
        "ranks",
        "duration [s]",
    );
    let dims: Vec<usize> = {
        let mut d: Vec<usize> = ds.points.iter().map(|p| p.n).collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    for solver in SOLVERS {
        for &n in &dims {
            let mut se = Series::new(format!("{solver} n={n}"));
            let mut st = Series::new(format!("{solver} n={n}"));
            for p in &ds.points {
                if p.solver == solver && p.n == n && p.layout == LoadLayout::FullLoad {
                    se.push(p.ranks as f64, p.agg.total_energy_j.mean);
                    st.push(p.ranks as f64, p.agg.duration_s.mean);
                }
            }
            fe.series.push(se);
            ft.series.push(st);
        }
    }
    (fe, ft)
}

/// Figure 5 at paper scale.
pub fn fig5_model() -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig5-energy-model",
        "Fig.5 (paper scale, model) — energy vs ranks at fixed matrix size",
        "ranks",
        "total energy [J]",
    );
    let mut ft = Figure::new(
        "fig5-time-model",
        "Fig.5 (paper scale, model) — duration vs ranks at fixed matrix size",
        "ranks",
        "duration [s]",
    );
    for solver in SOLVERS {
        for &n in &paper::PAPER_DIMS {
            let mut se = Series::new(format!("{solver} n={n}"));
            let mut st = Series::new(format!("{solver} n={n}"));
            for &ranks in &paper::PAPER_RANKS {
                let p = model_point(solver, n, ranks, LoadLayout::FullLoad);
                se.push(ranks as f64, p.energy.total_j);
                st.push(ranks as f64, p.time_s);
            }
            fe.series.push(se);
            ft.series.push(st);
        }
    }
    (fe, ft)
}

/// Figure 6: energy and mean power vs matrix dimension at fixed ranks.
pub fn fig6_functional(ds: &Dataset, ranks: usize) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig6-energy",
        format!("Fig.6 — energy vs dimension (ranks={ranks}, full load)"),
        "matrix dimension",
        "total energy [J]",
    );
    let mut fp = Figure::new(
        "fig6-power",
        format!("Fig.6 — mean power vs dimension (ranks={ranks}, full load)"),
        "matrix dimension",
        "mean power [W]",
    );
    for solver in SOLVERS {
        let mut se = Series::new(solver);
        let mut sp = Series::new(solver);
        for p in &ds.points {
            if p.solver == solver && p.ranks == ranks && p.layout == LoadLayout::FullLoad {
                se.push(p.n as f64, p.agg.total_energy_j.mean);
                sp.push(p.n as f64, p.agg.mean_power_w.mean);
            }
        }
        fe.series.push(se);
        fp.series.push(sp);
    }
    (fe, fp)
}

/// Figure 6 at paper scale.
pub fn fig6_model(ranks: usize) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig6-energy-model",
        format!("Fig.6 (paper scale, model) — energy vs dimension (ranks={ranks})"),
        "matrix dimension",
        "total energy [J]",
    );
    let mut fp = Figure::new(
        "fig6-power-model",
        format!("Fig.6 (paper scale, model) — power vs dimension (ranks={ranks})"),
        "matrix dimension",
        "mean power [W]",
    );
    for solver in SOLVERS {
        let mut se = Series::new(solver);
        let mut sp = Series::new(solver);
        for &n in &paper::PAPER_DIMS {
            let p = model_point(solver, n, ranks, LoadLayout::FullLoad);
            se.push(n as f64, p.energy.total_j);
            sp.push(n as f64, p.energy.mean_power_w);
        }
        fe.series.push(se);
        fp.series.push(sp);
    }
    (fe, fp)
}

/// Figure 7: energy and mean power vs rank count at a fixed dimension.
pub fn fig7_functional(ds: &Dataset, n: usize) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig7-energy",
        format!("Fig.7 — energy vs ranks (n={n}, full load)"),
        "ranks",
        "total energy [J]",
    );
    let mut fp = Figure::new(
        "fig7-power",
        format!("Fig.7 — mean power vs ranks (n={n}, full load)"),
        "ranks",
        "mean power [W]",
    );
    for solver in SOLVERS {
        let mut se = Series::new(solver);
        let mut sp = Series::new(solver);
        for p in &ds.points {
            if p.solver == solver && p.n == n && p.layout == LoadLayout::FullLoad {
                se.push(p.ranks as f64, p.agg.total_energy_j.mean);
                sp.push(p.ranks as f64, p.agg.mean_power_w.mean);
            }
        }
        fe.series.push(se);
        fp.series.push(sp);
    }
    (fe, fp)
}

/// Figure 7 at paper scale.
pub fn fig7_model(n: usize) -> (Figure, Figure) {
    let mut fe = Figure::new(
        "fig7-energy-model",
        format!("Fig.7 (paper scale, model) — energy vs ranks (n={n})"),
        "ranks",
        "total energy [J]",
    );
    let mut fp = Figure::new(
        "fig7-power-model",
        format!("Fig.7 (paper scale, model) — power vs ranks (n={n})"),
        "ranks",
        "mean power [W]",
    );
    for solver in SOLVERS {
        let mut se = Series::new(solver);
        let mut sp = Series::new(solver);
        for &ranks in &paper::PAPER_RANKS {
            let p = model_point(solver, n, ranks, LoadLayout::FullLoad);
            se.push(ranks as f64, p.energy.total_j);
            sp.push(ranks as f64, p.energy.mean_power_w);
        }
        fe.series.push(se);
        fp.series.push(sp);
    }
    (fe, fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.rows[0], vec!["144", "3", "48", "2", "24", "24"]);
        assert_eq!(t.rows[8], vec!["1296", "54", "24", "2", "12", "12"]);
    }

    #[test]
    fn model_figures_have_expected_series() {
        let (fe, ft) = fig4_model();
        assert_eq!(fe.series.len(), 6); // 2 solvers × 3 rank counts
        assert_eq!(ft.series.len(), 6);
        for s in &fe.series {
            assert_eq!(s.x.len(), 4); // 4 matrix dims
                                      // Energy grows with dimension.
            assert!(
                s.y.windows(2).all(|w| w[1] > w[0]),
                "{}: {:?}",
                s.label,
                s.y
            );
        }
    }

    #[test]
    fn fig5_model_strong_scaling_time_decreases() {
        let (_, ft) = fig5_model();
        for s in &ft.series {
            // Duration decreases as ranks grow, except that the smallest
            // matrix may hit the latency floor at the largest rank count
            // (which is exactly why IMe overtakes ScaLAPACK there, §5.2);
            // tolerate a mild upturn for n=8640.
            let slack = if s.label.contains("8640") { 1.25 } else { 1.0 };
            assert!(
                *s.y.last().unwrap() <= s.y.first().unwrap() * slack,
                "{}: {:?}",
                s.label,
                s.y
            );
        }
    }

    #[test]
    fn fig6_model_power_flat_in_dimension() {
        let (_, fp) = fig6_model(144);
        for s in &fp.series {
            let min = s.y.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = s.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                max / min < 1.6,
                "power should be near-constant in dimension: {} {:?}",
                s.label,
                s.y
            );
        }
    }

    #[test]
    fn fig7_model_power_grows_with_ranks() {
        let (_, fp) = fig7_model(17280);
        for s in &fp.series {
            assert!(
                s.y.last().unwrap() > s.y.first().unwrap(),
                "power must grow with ranks: {} {:?}",
                s.label,
                s.y
            );
        }
    }
}
