//! The rank-scheduling engine must be invisible in virtual time.
//!
//! Wall-clock scheduling now varies along two independent axes. Within the
//! thread-per-rank engine, blocked ranks park on condvars / blocking
//! receives while checked runs poll (the deadlock probe needs a
//! heartbeat). And the whole engine is swappable: `SchedulerKind::
//! EventDriven` multiplexes every rank as a fiber over a small worker
//! pool instead of giving it an OS thread. None of that may leak into the
//! simulation: fixed-seed campaigns must produce byte-identical
//! [`Measurement`]s run over run, checked and unchecked runs must agree
//! bit for bit, both engines must agree bit for bit — including under
//! active fault plans — and the observers must see the exact same event
//! stream. This file is the executable form of the scheduler-invariance
//! contract documented in ARCHITECTURE.md §10.

use greenla_cluster::placement::LoadLayout;
use greenla_harness::chrome_trace::traced_solve;
use greenla_harness::run::{run_once, Measurement, RunConfig};
use greenla_harness::SolverChoice;
use greenla_linalg::generate::SystemKind;
use greenla_mpi::SchedulerKind;

fn cfg(solver: SolverChoice, check: bool) -> RunConfig {
    // CG needs a symmetric positive definite operator; the dense solvers
    // keep the unsymmetric diagonally-dominant draw they have always used.
    let system = match solver {
        SolverChoice::Cg { .. } => SystemKind::Spd,
        _ => SystemKind::DiagDominant,
    };
    RunConfig {
        n: 96,
        ranks: 16,
        layout: LoadLayout::FullLoad,
        solver,
        system,
        cores_per_socket: 4,
        seed: 11,
        check,
        faults: None,
        scheduler: SchedulerKind::ThreadPerRank,
        batch: 1,
        cg_overlap: true,
    }
}

/// Bit-level equality of everything a campaign records.
fn assert_bit_identical(a: &Measurement, b: &Measurement, what: &str) {
    let bits = |m: &Measurement| {
        let mut v = vec![
            m.duration_s.to_bits(),
            m.total_energy_j.to_bits(),
            m.pkg_energy_j.to_bits(),
            m.dram_energy_j.to_bits(),
            m.mean_power_w.to_bits(),
            m.residual.to_bits(),
            m.msgs,
            m.volume_elems,
            m.nodes as u64,
        ];
        v.extend(m.pkg_by_socket_j.iter().map(|x| x.to_bits()));
        v.extend(m.dram_by_socket_j.iter().map(|x| x.to_bits()));
        // Iterative-solver counters (None on direct solves): CG iteration
        // and refresh counts are part of the determinism contract too.
        v.push(m.iterations.unwrap_or(u64::MAX));
        v.push(m.refreshes.unwrap_or(u64::MAX));
        v
    };
    assert_eq!(
        bits(a),
        bits(b),
        "{what}: measurements must be bit-identical"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    for solver in [
        SolverChoice::ime_optimized(),
        SolverChoice::scalapack(),
        SolverChoice::cg(),
        SolverChoice::cg_jacobi(),
    ] {
        let first = run_once(&cfg(solver, false));
        let second = run_once(&cfg(solver, false));
        assert_bit_identical(&first, &second, "repeat, unchecked");
    }
}

#[test]
fn parked_and_polling_schedulers_agree() {
    // Unchecked runs park in blocking waits; checked runs poll with a
    // timeout so the deadlock probe keeps running. Two different wall-clock
    // wait mechanisms, one virtual timeline. CG rides along: its halo
    // exchange is point-to-point-heavy where the dense solvers are
    // broadcast-heavy, so it stresses a different wait pattern.
    for solver in [SolverChoice::ime_optimized(), SolverChoice::cg()] {
        let polled = run_once(&cfg(solver, true));
        let parked = run_once(&cfg(solver, false));
        assert!(polled.violations.is_empty(), "{:#?}", polled.violations);
        assert_bit_identical(&polled, &parked, "checked vs unchecked");
    }
}

#[test]
fn overlapped_and_blocking_cg_agree_on_everything_but_the_clock() {
    // Halo/compute overlap is a *virtual-time* optimisation: it reorders
    // wall work but never arithmetic, so the solution, the iteration and
    // refresh counts, and the traffic ledger must be bit-identical to the
    // blocking exchange — only durations (and hence energies) may move,
    // and only downward.
    for solver in [SolverChoice::cg(), SolverChoice::cg_jacobi()] {
        let over = run_once(&cfg(solver, false));
        let block = run_once(&RunConfig {
            cg_overlap: false,
            ..cfg(solver, false)
        });
        assert_eq!(over.residual.to_bits(), block.residual.to_bits());
        assert_eq!(over.iterations, block.iterations, "iteration counts");
        assert_eq!(over.refreshes, block.refreshes, "refresh counts");
        assert_eq!(over.msgs, block.msgs, "message counts");
        assert_eq!(over.volume_elems, block.volume_elems, "traffic volume");
        assert!(
            over.duration_s <= block.duration_s,
            "overlap may only shrink the virtual window: {} vs {}",
            over.duration_s,
            block.duration_s
        );
        // And the overlapped path repeats bit-identically like every run.
        assert_bit_identical(&over, &run_once(&cfg(solver, false)), "overlapped repeat");
    }
}

#[test]
fn trace_event_stream_is_identical_across_runs() {
    let run = |_: u32| traced_solve(SolverChoice::ime_optimized(), 96, 16, 11);
    let first = run(0);
    let second = run(1);
    assert_eq!(first.event_count, second.event_count);
    assert!(first.event_count > 0, "traced run must record events");
    assert_eq!(
        first.makespan_s.to_bits(),
        second.makespan_s.to_bits(),
        "virtual makespan must not depend on wall-clock scheduling"
    );
    let text = |r: &greenla_harness::chrome_trace::TracedSolve| {
        serde_json::to_string(&r.trace).expect("serialise trace")
    };
    assert_eq!(
        text(&first),
        text(&second),
        "observers must see an unchanged event stream"
    );
}

/// A recoverable plan exercising every fault family that completes: message
/// drop (within the retry budget), duplicate, delay, a counter glitch and a
/// monitoring-rank death (degrading one node), plus an IMe column loss.
fn recoverable_plan() -> greenla_mpi::FaultPlan {
    use greenla_mpi::{
        ColumnLoss, CounterFault, CounterFaultKind, FaultPlan, MsgFault, MsgFaultKind,
    };
    FaultPlan {
        seed: 7,
        messages: vec![
            MsgFault {
                src: 1,
                nth_send: 2,
                kind: MsgFaultKind::Drop { count: 2 },
            },
            MsgFault {
                src: 3,
                nth_send: 0,
                kind: MsgFaultKind::Duplicate,
            },
            MsgFault {
                src: 5,
                nth_send: 4,
                kind: MsgFaultKind::Delay { extra_s: 2.5e-4 },
            },
        ],
        crashes: vec![],
        // On the degraded node: its session never starts, so the glitch
        // stays unobserved — the disabled-read path must stay deterministic.
        counters: vec![CounterFault {
            node: 1,
            socket: 0,
            from_s: 1e-5,
            kind: CounterFaultKind::Glitch,
        }],
        monitor_deaths: vec![1],
        column_loss: Some(ColumnLoss {
            level: 9,
            column: 30,
        }),
    }
}

#[test]
fn faulted_runs_are_bit_identical_across_schedulers() {
    // Identical seed + plan ⇒ bit-identical virtual timings and identical
    // FaultReports whether the ranks poll (checked) or park (unchecked).
    let faulted = |check: bool| RunConfig {
        faults: Some(recoverable_plan()),
        ..cfg(SolverChoice::ime_optimized(), check)
    };
    let polled = run_once(&faulted(true));
    let parked = run_once(&faulted(false));
    assert_bit_identical(&polled, &parked, "faulted checked vs unchecked");
    let (pr, kr) = (
        polled.fault_report.clone().expect("faulted run reports"),
        parked.fault_report.clone().expect("faulted run reports"),
    );
    assert_eq!(pr, kr, "fault accounting must not depend on the scheduler");
    assert!(pr.injected.total() > 0, "the plan actually fired: {pr:?}");
    assert_eq!(pr.injected.msg_drop, 2);
    assert_eq!(pr.recovered.msg_drop, 2, "drops within budget recover");
    assert_eq!(pr.injected.monitor, 1);
    assert_eq!(pr.degraded_nodes, vec![1], "node 1 runs unmeasured");
    assert_eq!(pr.injected.column_loss, 1);
    assert_eq!(pr.recovered.column_loss, 1);
    // And the repeat is bit-identical too.
    let again = run_once(&faulted(false));
    assert_bit_identical(&parked, &again, "faulted repeat");
    assert_eq!(again.fault_report.unwrap(), kr);
}

#[test]
fn collectives_straddling_the_size_switch_are_scheduler_invariant() {
    // The allreduce/allgather families switch algorithms at 512 B
    // (64 f64 elements). Drive both sides of the switch — one element
    // below, at, and above — under an active fault plan, checked
    // (polling) and unchecked (parked): virtual clocks, traffic and every
    // rank's numerical results must be bit-identical, and the lockstep
    // checker must see matching collective signatures on both paths.
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::{CheckSink, FaultPlan, FaultSink, Machine, MsgFault, MsgFaultKind};

    let plan = || FaultPlan {
        seed: 3,
        messages: vec![
            MsgFault {
                src: 2,
                nth_send: 1,
                kind: MsgFaultKind::Drop { count: 1 },
            },
            MsgFault {
                src: 7,
                nth_send: 0,
                kind: MsgFaultKind::Duplicate,
            },
            MsgFault {
                src: 4,
                nth_send: 2,
                kind: MsgFaultKind::Delay { extra_s: 1.0e-4 },
            },
        ],
        ..FaultPlan::default()
    };
    let run = |check: bool| {
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
        let mut m = Machine::new(spec, placement, PowerModel::deterministic(), 23)
            .unwrap()
            .with_faults(FaultSink::with_plan(plan()));
        if check {
            m = m.with_check(CheckSink::enabled());
        }
        let out = m.run(|ctx| {
            let world = ctx.world();
            let mut acc: Vec<Vec<f64>> = Vec::new();
            // 63/64 elems take the tree pair, 65 recursive doubling.
            for elems in [63usize, 64, 65] {
                let mine = vec![ctx.rank() as f64 + elems as f64; elems];
                acc.push(ctx.allreduce_sum_f64(&world, &mine));
            }
            // 16 × 4 = 64 elems total rides the tree composition,
            // 16 × 5 = 80 the ring.
            for per in [4usize, 5] {
                let mine = vec![ctx.rank() as f64; per];
                let all = ctx.allgather_sized_f64(&world, &mine, 16 * per);
                acc.push(all.into_iter().flatten().collect());
            }
            acc
        });
        let violations = m.check().violations();
        assert!(violations.is_empty(), "checked={check}: {violations:#?}");
        out
    };
    let polled = run(true);
    let parked = run(false);
    assert_eq!(
        polled.makespan.to_bits(),
        parked.makespan.to_bits(),
        "virtual makespan must not depend on the scheduler"
    );
    for (r, (a, b)) in polled
        .final_clocks
        .iter()
        .zip(&parked.final_clocks)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "rank {r} final clock");
    }
    assert_eq!(polled.traffic, parked.traffic, "traffic tallies");
    // Results are equal across schedulers AND across ranks: recursive
    // doubling applies the commutative combiner over one shared pairing
    // tree, so every rank must produce the same bits.
    assert_eq!(polled.results, parked.results, "numerical results");
    for (r, res) in parked.results.iter().enumerate() {
        assert_eq!(res, &parked.results[0], "rank {r} result divergence");
    }
    // And the faulted run repeats bit-identically.
    let again = run(false);
    assert_eq!(parked.makespan.to_bits(), again.makespan.to_bits());
    assert_eq!(parked.results, again.results);
}

#[test]
fn faulted_trace_streams_are_identical_and_carry_fault_instants() {
    use greenla_harness::chrome_trace::traced_faulted_solve;
    let run = || {
        traced_faulted_solve(
            SolverChoice::ime_optimized(),
            96,
            16,
            11,
            &recoverable_plan(),
        )
    };
    let (first, rep_a) = run();
    let (second, rep_b) = run();
    assert_eq!(rep_a, rep_b, "identical FaultReports run over run");
    assert_eq!(
        first.makespan_s.to_bits(),
        second.makespan_s.to_bits(),
        "faulted virtual makespan is deterministic"
    );
    let text = serde_json::to_string(&first.trace).expect("serialise trace");
    assert_eq!(
        text,
        serde_json::to_string(&second.trace).expect("serialise trace"),
        "faulted event streams must be identical"
    );
    assert!(
        text.contains("fault:"),
        "the trace records the injection instants"
    );
}

// ---------------------------------------------------------------------------
// Cross-engine invariance: thread-per-rank vs the event-driven M:N engine.
// Fibers only exist on x86_64; elsewhere the event engine refuses to start,
// so these cases are gated rather than silently vacuous.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod cross_engine {
    use super::*;

    fn with_engine(mut c: RunConfig, kind: SchedulerKind) -> RunConfig {
        c.scheduler = kind;
        c
    }

    #[test]
    fn engines_agree_bit_for_bit_on_plain_runs() {
        for solver in [
            SolverChoice::ime_optimized(),
            SolverChoice::scalapack(),
            SolverChoice::cg(),
            SolverChoice::cg_jacobi(),
        ] {
            let threads = run_once(&cfg(solver, false));
            let fibers = run_once(&with_engine(cfg(solver, false), SchedulerKind::EventDriven));
            assert_bit_identical(&threads, &fibers, "thread vs event engine");
        }
    }

    #[test]
    fn engines_agree_under_checking_with_zero_violations() {
        // The checked event engine replaces the thread engine's 25 ms timed
        // polls with an exact quiescence probe — a different deadlock
        // detector entirely, same virtual timeline, same (empty) findings.
        let threads = run_once(&cfg(SolverChoice::ime_optimized(), true));
        let fibers = run_once(&with_engine(
            cfg(SolverChoice::ime_optimized(), true),
            SchedulerKind::EventDriven,
        ));
        assert!(fibers.violations.is_empty(), "{:#?}", fibers.violations);
        assert_eq!(
            threads.violations.len(),
            fibers.violations.len(),
            "both engines must report the same diagnostics"
        );
        assert_bit_identical(&threads, &fibers, "checked, thread vs event");
    }

    #[test]
    fn faulted_runs_are_bit_identical_across_engines() {
        // Fault injection shifts *virtual* arrival times and send counts,
        // never wall-clock waits, so the full plan must replay identically
        // on fibers: same measurements, same FaultReport, checked or not.
        let faulted = |check: bool, kind: SchedulerKind| {
            let mut c = cfg(SolverChoice::ime_optimized(), check);
            c.faults = Some(recoverable_plan());
            c.scheduler = kind;
            c
        };
        for check in [false, true] {
            let threads = run_once(&faulted(check, SchedulerKind::ThreadPerRank));
            let fibers = run_once(&faulted(check, SchedulerKind::EventDriven));
            assert_bit_identical(
                &threads,
                &fibers,
                &format!("faulted (check={check}), thread vs event"),
            );
            let (tr, fr) = (
                threads.fault_report.expect("faulted run reports"),
                fibers.fault_report.expect("faulted run reports"),
            );
            assert_eq!(tr, fr, "fault accounting must not depend on the engine");
            assert!(tr.injected.total() > 0, "the plan actually fired: {tr:?}");
        }
    }

    #[test]
    fn campaign_runs_survive_a_worker_count_sweep() {
        // Within the event engine the worker count is pure wall-clock
        // capacity; run_once pins it via the Machine default, so vary it
        // through the raw Machine to prove the invariance holds there too.
        use greenla_cluster::placement::Placement;
        use greenla_cluster::spec::ClusterSpec;
        use greenla_cluster::PowerModel;
        use greenla_mpi::Machine;

        let run = |workers: usize| {
            let spec = ClusterSpec::test_cluster(4, 4);
            let placement = Placement::layout(&spec.node, 32, LoadLayout::FullLoad).unwrap();
            let mut m = Machine::new(spec, placement, PowerModel::deterministic(), 9)
                .unwrap()
                .with_scheduler(SchedulerKind::EventDriven);
            if workers > 0 {
                m = m.with_sched_workers(workers);
            }
            m.run(|ctx| {
                let world = ctx.world();
                let r = ctx.allreduce_sum_f64(&world, &[ctx.rank() as f64]);
                ctx.barrier(&world);
                r[0].to_bits()
            })
        };
        let auto = run(0);
        for workers in [1usize, 3, 8] {
            let out = run(workers);
            assert_eq!(
                auto.makespan.to_bits(),
                out.makespan.to_bits(),
                "worker count {workers} leaked into virtual time"
            );
            assert_eq!(auto.results, out.results, "workers={workers}");
        }
    }
}
