//! The wakeup-driven rank scheduler must be invisible in virtual time.
//!
//! Blocked ranks now park on condvars / blocking receives instead of
//! sleep-polling, and checked runs still poll (the deadlock probe needs a
//! heartbeat) while unchecked runs park. None of that may leak into the
//! simulation: fixed-seed campaigns must produce byte-identical
//! [`Measurement`]s run over run, checked and unchecked runs must agree
//! bit for bit, and the observers must see the exact same event stream.

use greenla_cluster::placement::LoadLayout;
use greenla_harness::chrome_trace::traced_solve;
use greenla_harness::run::{run_once, Measurement, RunConfig};
use greenla_harness::SolverChoice;
use greenla_linalg::generate::SystemKind;

fn cfg(solver: SolverChoice, check: bool) -> RunConfig {
    RunConfig {
        n: 96,
        ranks: 16,
        layout: LoadLayout::FullLoad,
        solver,
        system: SystemKind::DiagDominant,
        cores_per_socket: 4,
        seed: 11,
        check,
    }
}

/// Bit-level equality of everything a campaign records.
fn assert_bit_identical(a: &Measurement, b: &Measurement, what: &str) {
    let bits = |m: &Measurement| {
        let mut v = vec![
            m.duration_s.to_bits(),
            m.total_energy_j.to_bits(),
            m.pkg_energy_j.to_bits(),
            m.dram_energy_j.to_bits(),
            m.mean_power_w.to_bits(),
            m.residual.to_bits(),
            m.msgs,
            m.volume_elems,
            m.nodes as u64,
        ];
        v.extend(m.pkg_by_socket_j.iter().map(|x| x.to_bits()));
        v.extend(m.dram_by_socket_j.iter().map(|x| x.to_bits()));
        v
    };
    assert_eq!(
        bits(a),
        bits(b),
        "{what}: measurements must be bit-identical"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    for solver in [SolverChoice::ime_optimized(), SolverChoice::scalapack()] {
        let first = run_once(&cfg(solver, false));
        let second = run_once(&cfg(solver, false));
        assert_bit_identical(&first, &second, "repeat, unchecked");
    }
}

#[test]
fn parked_and_polling_schedulers_agree() {
    // Unchecked runs park in blocking waits; checked runs poll with a
    // timeout so the deadlock probe keeps running. Two different wall-clock
    // wait mechanisms, one virtual timeline.
    let polled = run_once(&cfg(SolverChoice::ime_optimized(), true));
    let parked = run_once(&cfg(SolverChoice::ime_optimized(), false));
    assert!(polled.violations.is_empty(), "{:#?}", polled.violations);
    assert_bit_identical(&polled, &parked, "checked vs unchecked");
}

#[test]
fn trace_event_stream_is_identical_across_runs() {
    let run = |_: u32| traced_solve(SolverChoice::ime_optimized(), 96, 16, 11);
    let first = run(0);
    let second = run(1);
    assert_eq!(first.event_count, second.event_count);
    assert!(first.event_count > 0, "traced run must record events");
    assert_eq!(
        first.makespan_s.to_bits(),
        second.makespan_s.to_bits(),
        "virtual makespan must not depend on wall-clock scheduling"
    );
    let text = |r: &greenla_harness::chrome_trace::TracedSolve| {
        serde_json::to_string(&r.trace).expect("serialise trace")
    };
    assert_eq!(
        text(&first),
        text(&second),
        "observers must see an unchanged event stream"
    );
}
