//! Roofline vs the simulated RAPL: on a compute-dominated campaign run the
//! spec-derived roofline (whose class rates collapse to the simulator's
//! sustained per-core flop rate) must reproduce the measured makespan and
//! the RAPL-integrated energy within the same ±30% band the host-side
//! validation uses. The run is fully deterministic — virtual time and the
//! power integrals never depend on the wall clock — so this is a tight
//! regression net over the model/simulator contract, not a tolerance for
//! noise.

use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::{Interconnect, PowerModel};
use greenla_harness::run::{run_once, RunConfig};
use greenla_harness::SolverChoice;
use greenla_ime::formulas;
use greenla_linalg::generate::SystemKind;
use greenla_model::roofline::{KernelProfile, Roofline};

const REL_TOL: f64 = 0.30;

fn within(pred: f64, measured: f64) -> bool {
    let ratio = pred / measured;
    (1.0 / (1.0 + REL_TOL)..=1.0 + REL_TOL).contains(&ratio)
}

#[test]
fn roofline_matches_simulated_rapl_on_compute_dominated_run() {
    // Two ranks on one node: big enough that IMe's ~3/2·n³ flops dwarf the
    // α/β message costs, small enough that the real numerics stay cheap in
    // a debug test run.
    let (n, ranks, cps) = (384, 2, 1);
    let cfg = RunConfig {
        n,
        ranks,
        layout: LoadLayout::FullLoad,
        solver: SolverChoice::Ime {
            collect_last_rows: false,
            centralized_h: false,
            pipelined_bcast: false,
        },
        system: SystemKind::DiagDominant,
        cores_per_socket: cps,
        seed: 42,
        check: false,
        faults: None,
        scheduler: Default::default(),
        batch: 1,
        cg_overlap: true,
    };
    let m = run_once(&cfg);
    assert_eq!(m.nodes, 1);

    let node = NodeSpec::test_node(cps);
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: m.nodes,
        net: Interconnect::omni_path(),
    };
    let rf = Roofline::from_spec(&spec);

    // Per-rank work: this implementation's IMe flop model (2n³ + O(n²) —
    // 4/3× the paper's 3/2·n³, see greenla_ime::formulas), split evenly.
    // The roofline only ever sees the closed form, never the run.
    let per_rank = KernelProfile::simd(formulas::flops_ime_ours(n) as f64 / ranks as f64, 0.0, 1);
    let pred = rf.predict(&per_rank);
    assert!(
        within(pred.time_s, m.duration_s),
        "predicted makespan {:.4}s vs simulated {:.4}s (ratio {:.3}) — run is \
         not compute-dominated enough or the rate model drifted",
        pred.time_s,
        m.duration_s,
        pred.time_s / m.duration_s,
    );

    // Energy through the same coefficients the simulated RAPL integrates.
    // comm_s = 0 and bytes_total = 0: the roofline models the compute-only
    // picture, and the tolerance covers what the real choreography adds.
    let power = PowerModel::scaled_for(&node);
    let e = rf.predict_energy(&node, &power, cfg.layout, ranks, &per_rank, 0.0, 0.0);
    assert!(
        within(e.total_j, m.total_energy_j),
        "predicted energy {:.3} J vs simulated RAPL {:.3} J (ratio {:.3})",
        e.total_j,
        m.total_energy_j,
        e.total_j / m.total_energy_j,
    );
    assert!(
        within(e.pkg_j, m.pkg_energy_j),
        "predicted pkg {:.3} J vs simulated {:.3} J",
        e.pkg_j,
        m.pkg_energy_j,
    );
}
