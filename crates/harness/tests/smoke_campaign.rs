//! Smoke test of the full measurement campaign: a tiny grid through the
//! real stack, then every figure extractor and the claim checker over the
//! resulting dataset.

use greenla_cluster::placement::LoadLayout;
use greenla_harness::config::FunctionalGrid;
use greenla_harness::run::{run_once, Dataset, RunConfig};
use greenla_harness::{charts, experiments, summary};
use greenla_linalg::generate::SystemKind;

fn smoke_dataset() -> Dataset {
    let grid = FunctionalGrid {
        reps: 1,
        ..FunctionalGrid::smoke()
    };
    Dataset::campaign(&grid, |_| {})
}

#[test]
fn campaign_produces_full_grid() {
    let ds = smoke_dataset();
    // 2 dims × 1 rank count × 3 layouts × 2 solvers.
    assert_eq!(ds.points.len(), 12);
    for p in &ds.points {
        assert!(p.agg.worst_residual < 1e-11, "{p:?}");
        assert!(p.agg.total_energy_j.mean > 0.0);
        assert!(p.agg.duration_s.mean > 0.0);
        assert!(p.agg.mean_power_w.mean > 0.0);
    }
    assert!(ds.get("IMe", 96, 16, LoadLayout::FullLoad).is_some());
    assert!(ds.get("nope", 96, 16, LoadLayout::FullLoad).is_none());
}

#[test]
fn figures_extract_and_render() {
    let ds = smoke_dataset();
    let f3 = experiments::fig3_functional(&ds, 16);
    assert_eq!(f3.series.len(), 6);
    assert!(f3.series.iter().all(|s| s.x.len() == 2));
    let (f4e, f4t) = experiments::fig4_functional(&ds);
    let (f5e, f5t) = experiments::fig5_functional(&ds);
    let (f6e, f6p) = experiments::fig6_functional(&ds, 16);
    let (f7e, f7p) = experiments::fig7_functional(&ds, 192);
    for f in [&f3, &f4e, &f4t, &f5e, &f5t, &f6e, &f6p, &f7e, &f7p] {
        let csv = f.to_csv();
        assert!(csv.lines().count() >= 2, "{} produced no rows", f.id);
        let chart = charts::ascii(f);
        assert!(!chart.contains("no data"), "{} rendered empty", f.id);
    }
}

#[test]
fn energy_increases_with_dimension_in_dataset() {
    let ds = smoke_dataset();
    for solver in ["IMe", "ScaLAPACK"] {
        let small = ds.get(solver, 96, 16, LoadLayout::FullLoad).unwrap();
        let large = ds.get(solver, 192, 16, LoadLayout::FullLoad).unwrap();
        assert!(
            large.agg.total_energy_j.mean > small.agg.total_energy_j.mean,
            "{solver}: energy must grow with n"
        );
        assert!(large.agg.duration_s.mean > small.agg.duration_s.mean);
    }
}

#[test]
fn claim_checker_runs_on_smoke_data() {
    let ds = smoke_dataset();
    let checks = summary::check_dataset(&ds);
    assert_eq!(checks.len(), 7);
    // Structural claims must hold even on the smoke grid.
    let by_id = |id: &str| checks.iter().find(|c| c.id == id).unwrap();
    assert!(by_id("S3-full-load").pass, "{:?}", by_id("S3-full-load"));
    assert!(
        by_id("S5-idle-socket").pass,
        "{:?}",
        by_id("S5-idle-socket")
    );
    let table = summary::claims_table("t", "claims", &checks);
    assert!(table.to_text().contains("S1-energy-gap"));
}

#[test]
fn run_once_respects_layout_node_count() {
    // n is chosen so the monitored window spans several RAPL counter
    // update periods (~1 ms each): below that, each socket's counter
    // snaps the window to a different quantised instant and the
    // phase-dependent sliver of *static* power can dwarf the active DRAM
    // split the ordering assertion below is about.
    let m = run_once(&RunConfig {
        n: 448,
        ranks: 16,
        layout: LoadLayout::HalfOneSocket,
        solver: greenla_harness::SolverChoice::scalapack(),
        system: SystemKind::DiagDominant,
        cores_per_socket: 4,
        seed: 1,
        check: false,
        faults: None,
        scheduler: Default::default(),
        batch: 1,
        cg_overlap: true,
    });
    assert_eq!(m.nodes, 4, "16 ranks at 4/node half-load = 4 nodes");
    assert!(m.residual < 1e-11);
    // One-socket layout: socket 1 has no DRAM traffic beyond static.
    assert!(m.dram_by_socket_j[0] >= m.dram_by_socket_j[1]);
}
