//! Roofline acceptance against the measured kernel suite: the calibrated
//! host roofline must predict every pinned entry's attainable GFLOP/s
//! within the documented tolerance band (±30% in release — the acceptance
//! figure — and a wider smoke band in debug, where unoptimized codegen
//! disperses the per-class rates and the full-size suite is too slow to
//! run at all).

use greenla_harness::bench;
use greenla_harness::bench::retry::{median_wall, BestRatios};
use greenla_harness::roofline::{self, RooflineCheck};
use greenla_linalg::blas3::{
    dgemm_blocked, dgemm_blocked_path, dgemm_reference, dtrsm_left_lower_unit,
};
use greenla_linalg::flops;
use greenla_linalg::simd::KernelPath;
use greenla_linalg::tune::Blocking;
use greenla_linalg::Matrix;
use greenla_model::roofline::KernelProfile;

fn mat(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * (7 + salt) + j * 13) % 17) as f64 - 8.0
    })
}

/// Debug-mode measurement set: the same code classes as the pinned suite,
/// at sizes `cargo test` can afford. Ids are local to this test; profiles
/// are built from the same closed forms `entry_profile` uses.
fn debug_checks(host: &roofline::HostRoofline) -> Vec<RooflineCheck> {
    let tune = Blocking::default_blocking();
    let n = 96;
    let a = mat(n, n, 0);
    let b = mat(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    let reps = 5;
    let fl = flops::dgemm(n, n, n) as f64;

    let mut checks = Vec::new();
    let mut push = |id: &str, profile: KernelProfile, measured_flops: f64, wall: f64| {
        let pred = host.rf.predict(&profile);
        let measured = measured_flops / wall / 1e9;
        checks.push(RooflineCheck {
            id: id.into(),
            predicted_gflops: pred.gflops,
            measured_gflops: measured,
            ratio: pred.gflops / measured,
            compute_bound: pred.compute_bound,
        });
    };

    let wall = median_wall(reps, || {
        dgemm_blocked(1.0, a.block(), b.block(), 0.0, c.block_mut(), &tune);
    });
    push(
        "debug_packed_96",
        KernelProfile::simd(fl, flops::dgemm_packed_bytes(n, n, n, &tune) as f64, 1),
        fl,
        wall,
    );

    let wall = median_wall(reps, || {
        dgemm_blocked_path(
            KernelPath::Scalar,
            1.0,
            a.block(),
            b.block(),
            0.0,
            c.block_mut(),
            &tune,
        );
    });
    push(
        "debug_packed_scalar_96",
        KernelProfile::packed_scalar(fl, flops::dgemm_packed_bytes(n, n, n, &tune) as f64),
        fl,
        wall,
    );

    let wall = median_wall(reps, || {
        dgemm_reference(1.0, a.block(), b.block(), 0.0, c.block_mut());
    });
    push(
        "debug_reference_96",
        KernelProfile::reference(fl, flops::dgemm_reference_bytes(n, n, n) as f64),
        fl,
        wall,
    );

    let (m, nrhs) = (96, 48);
    let l = Matrix::from_fn(m, m, |i, j| {
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Equal => 1.0,
            Greater => ((i * 3 + j * 7) % 5) as f64 * 0.01 - 0.02,
            Less => 0.0,
        }
    });
    let rhs = mat(m, nrhs, 4);
    let mut x = vec![0.0f64; m * nrhs];
    let wall = median_wall(reps, || {
        x.copy_from_slice(rhs.as_slice());
        dtrsm_left_lower_unit(m, nrhs, l.as_slice(), m, &mut x, m);
    });
    let p = flops::dtrsm_packed_profile(m, nrhs, &tune);
    push(
        "debug_trsm_96x48",
        KernelProfile {
            thin_simd_flops: p.dgemm_flops as f64,
            subst_flops: p.subst_flops as f64,
            bytes: p.bytes as f64,
            workers: 1,
            ..KernelProfile::default()
        },
        flops::dtrsm(m, nrhs) as f64,
        wall,
    );
    checks
}

fn run_attempt() -> (Vec<RooflineCheck>, f64) {
    let host = roofline::calibrate();
    let tol = roofline::rel_tol();
    let checks = if cfg!(debug_assertions) {
        debug_checks(&host)
    } else {
        // Release: the real pinned suite, every entry — the acceptance
        // check behind the ±30% figure.
        let suite = bench::kernel_suite(true);
        let mut checks = roofline::validate_suite(&host, &suite);
        assert!(
            checks.len() >= 13,
            "suite shrank to {} measured entries",
            checks.len()
        );
        // The sparse entries must exercise the *memory* ceiling — the
        // roofline classifying them as compute-bound means the bandwidth
        // calibration (or the byte model) is broken, whatever their
        // ratios say.
        for id in [
            "spmv_2d_6m",
            "spmv_par_2d_6m",
            "cg_iter_2d_6m",
            "cg_overlap_iter",
        ] {
            let c = checks.iter().find(|c| c.id == id).expect("sparse entry");
            assert!(!c.compute_bound, "{id} must sit on the memory ceiling");
        }
        // The parallel SpMV's ceiling is `workers ×` a *single-thread*
        // bandwidth calibration. Workers cannot beat that ceiling (the
        // lower side of the band stands), but a saturated memory
        // controller legitimately delivers less than linear scaling, so
        // the upper side is not a model error — drop the entry from the
        // two-sided band and gate its scaling via the speedup acceptance
        // below instead.
        let par = checks
            .iter()
            .position(|c| c.id == "spmv_par_2d_6m")
            .expect("parallel SpMV entry");
        let c = checks.swap_remove(par);
        assert!(
            c.ratio >= 1.0 / (1.0 + tol),
            "spmv_par_2d_6m beat the memory ceiling by >{:.0}%: ratio {:.3}",
            tol * 100.0,
            c.ratio
        );
        // Thread-scaling acceptance: on a genuinely multi-core runner the
        // parallel SpMV must deliver ≥ 2.5× the serial entry's GB/s (same
        // byte model, so the wall-clock ratio is the GB/s ratio).
        let workers = greenla_linalg::sparse::default_spmv_workers()
            .min(std::thread::available_parallelism().map_or(1, |p| p.get()));
        if workers >= 4 {
            let speedup = suite
                .entries
                .iter()
                .find(|e| e.id == "spmv_2d_6m")
                .map(|e| e.median_wall_s)
                .expect("serial entry")
                / suite
                    .entries
                    .iter()
                    .find(|e| e.id == "spmv_par_2d_6m")
                    .map(|e| e.median_wall_s)
                    .expect("parallel entry");
            assert!(
                speedup >= 2.5,
                "parallel SpMV speedup {speedup:.2}× < 2.5× at {workers} workers"
            );
        }
        checks
    };
    (checks, tol)
}

#[test]
fn roofline_predicts_measured_kernel_rates() {
    // Calibration and measurement are a cross-window comparison on a
    // shared machine: a sustained background-load burst during either
    // side skews the ratios of whichever entries it overlapped. Each
    // attempt recalibrates and remeasures from scratch, and an entry
    // passes if ANY attempt lands it in the band — a burst moves around
    // between attempts, while a genuine model error misses every time.
    const ATTEMPTS: usize = 3;
    let mut best = BestRatios::new();
    let mut tol = roofline::rel_tol();
    for attempt in 1..=ATTEMPTS {
        let (checks, t) = run_attempt();
        tol = t;
        for c in &checks {
            println!(
                "attempt {attempt}: {:26} predicted {:7.2} GF/s  measured {:7.2} GF/s  ratio {:5.3}  ({})",
                c.id,
                c.predicted_gflops,
                c.measured_gflops,
                c.ratio,
                if c.compute_bound { "compute" } else { "memory" },
            );
            best.absorb(&c.id, c.ratio);
        }
        if best.all_within(tol) {
            return;
        }
        println!(
            "after attempt {attempt}/{ATTEMPTS}, outside ±{:.0}%: {:?}",
            tol * 100.0,
            best.failures(tol)
        );
    }
    panic!(
        "roofline misses persisted across {ATTEMPTS} attempts: {:?}",
        best.failures(tol)
    );
}
