//! End-to-end smoke of the dense-vs-sparse campaign: one tiny Poisson
//! dimension through all four solvers, asserting the three verdicts the
//! full campaign gates on — every CG point memory-bound, the closed-form
//! wall/energy predictions within the shared ±30% band, and the energy
//! inversion (lowest GFLOP/s, lowest Joules) holding against both dense
//! direct solvers.

use greenla_harness::sparse::{campaign, SparseGrid};

#[test]
fn sparse_campaign_smoke_verdicts_hold() {
    // n = 196 is the smallest grid dimension past the dense/sparse energy
    // crossover — below it the dense direct solve is so small that CG's
    // per-iteration latency still wins on Joules.
    let grid = SparseGrid {
        dims: vec![196],
        reps: 1,
        ..SparseGrid::smoke()
    };
    let (data, report) = campaign(&grid, |_| {});

    // Dataset shape: one point per solver × dimension, same schema the
    // dense campaign writes.
    assert_eq!(data.points.len(), 4, "4 solvers × 1 dim");
    assert_eq!(report.points.len(), 4);
    assert_eq!(report.checks.len(), 2, "one model check per CG variant");
    assert_eq!(report.inversions.len(), 1);
    for p in &data.points {
        assert!(p.violations.is_empty(), "{}: {:?}", p.solver, p.violations);
    }

    // Only the CG points carry iteration counts, and a sub-millisecond CG
    // solve must have been batched across many RAPL counter updates.
    for pt in &report.points {
        let is_cg = pt.solver.starts_with("CG");
        assert_eq!(pt.iterations.is_some(), is_cg, "{}", pt.solver);
        assert!(pt.duration_s > 0.0 && pt.energy_j > 0.0, "{pt:?}");
        if is_cg {
            assert!(pt.batch > 1, "CG window must be batched: {pt:?}");
        }
    }

    assert!(
        report.all_memory_bound,
        "CG must sit on the memory ceiling: {:?}",
        report.checks
    );
    assert!(
        report.all_within_band,
        "closed forms out of band: {:?}",
        report.checks
    );
    assert!(
        report.inversion_holds,
        "energy inversion failed: {:?}",
        report.inversions
    );
}
