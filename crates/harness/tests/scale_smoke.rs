//! 10k-rank scale smoke: the event-driven engine must spin up, synchronise
//! and tear down a five-digit rank count in seconds, not minutes.
//!
//! This is the harness-level twin of the `green_engine` 10k test in
//! `greenla-mpi`: it goes through `ClusterSpec`/`Placement`/`Machine`
//! exactly like a campaign run would, so a regression anywhere on that
//! path (per-rank allocation blow-up, a stray O(P²) loop, a wake storm)
//! shows up as a CI timeout here. CI runs it as the dedicated `scale`
//! step (see .github/workflows/ci.yml) with its own `timeout-minutes`.
//!
//! Fibers only exist on x86_64; the thread engine would need 10k OS
//! threads for this, so the whole file is gated.
#![cfg(target_arch = "x86_64")]

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_mpi::{Machine, SchedulerKind};

const RANKS: usize = 10_000;

#[test]
fn ten_thousand_ranks_barrier_and_bcast() {
    let spec = ClusterSpec::test_cluster(RANKS.div_ceil(8), 4);
    let placement = Placement::layout(&spec.node, RANKS, LoadLayout::FullLoad).unwrap();
    let mut m = Machine::new(spec, placement, PowerModel::deterministic(), 42)
        .unwrap()
        .with_scheduler(SchedulerKind::EventDriven);
    m.set_sched_workers(4);
    let out = m.run(|ctx| {
        let world = ctx.world();
        ctx.barrier(&world);
        let data = (ctx.rank() == 0).then(|| vec![1.25f64; 256]);
        let payload = ctx.bcast_shared_f64(&world, 0, data);
        let sum = ctx.allreduce_sum_f64(&world, &[1.0])[0];
        ctx.barrier(&world);
        (payload[255].to_bits(), sum.to_bits())
    });
    assert_eq!(out.results.len(), RANKS);
    let expect = (1.25f64.to_bits(), (RANKS as f64).to_bits());
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(*r, expect, "rank {rank} saw a wrong payload or sum");
    }
    // The final barrier aligns every virtual clock to one release instant.
    let t0 = out.final_clocks[0];
    for (rank, t) in out.final_clocks.iter().enumerate() {
        assert!(
            (t - t0).abs() < 1e-9,
            "rank {rank} clock {t} drifted from {t0}"
        );
    }
    assert!(out.makespan > 0.0 && out.makespan.is_finite());
}
