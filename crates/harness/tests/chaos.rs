//! The chaos battery: a seeded grid of fault plans against both solvers,
//! proving the recovery story end to end. Every plan must terminate —
//! recover (correct answer + fault accounting), degrade (nodes drop to
//! unmeasured), or abort with a *stable* diagnostic. No hangs, no silent
//! wrong answers.
//!
//! Each run executes on a watchdog thread with a generous wall-clock
//! budget; a run that neither finishes nor panics within it fails the
//! battery loudly. Set `CHAOS_REPORT_DIR` to collect the per-plan
//! [`FaultReport`]s as a JSON artifact (CI uploads them).

use greenla_cluster::placement::LoadLayout;
use greenla_harness::run::{run_once, Measurement, RunConfig};
use greenla_harness::SolverChoice;
use greenla_linalg::generate::SystemKind;
use greenla_mpi::{
    CounterFault, CounterFaultKind, CrashFault, CrashWhen, FaultPlan, FaultReport, MsgFault,
    MsgFaultKind, PlanShape,
};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

const N: usize = 64;
const RANKS: usize = 16;
/// Wall-clock budget per chaos run. Vastly above the sub-second normal
/// case: hitting it means a genuine hang, not a slow machine.
const RUN_TIMEOUT: Duration = Duration::from_secs(120);

/// Every legitimate way a faulted run is allowed to die. Anything else —
/// and especially nothing at all — fails the battery.
const STABLE_DIAGNOSTICS: &[&str] = &[
    "injected fault:",
    "simulated MPI run aborted",
    "all peers gone while rank",
    "collective contract violated",
    // A wedged schedule dying loudly *is* the no-hang guarantee working:
    // the event engine's exact-quiescence probe aborts with this prefix
    // on unchecked runs (checked runs get the wait-for cycle instead).
    "deadlock:",
    // Every CgError Display starts with this prefix (enforced by a unit
    // test in greenla-cg): breakdowns under injected faults die loudly
    // with it instead of iterating forever on a corrupted Krylov basis.
    "cg aborted:",
];

fn chaos_cfg(solver: SolverChoice, plan: FaultPlan) -> RunConfig {
    // CG runs on the 8×8 Poisson stencil (N = 64 is a perfect square), the
    // sparse workload it exists for; the dense solvers keep DiagDominant.
    let system = match solver {
        SolverChoice::Cg { .. } => SystemKind::Poisson2d,
        _ => SystemKind::DiagDominant,
    };
    RunConfig {
        n: N,
        ranks: RANKS,
        layout: LoadLayout::FullLoad,
        solver,
        system,
        cores_per_socket: 4,
        seed: 77,
        check: true,
        faults: Some(plan),
        scheduler: Default::default(),
        batch: 1,
        cg_overlap: true,
    }
}

enum Outcome {
    Completed(Box<Measurement>),
    Aborted(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

/// Run one configuration to completion or panic on a watchdog thread; a
/// run that does neither within [`RUN_TIMEOUT`] is a hang and fails here.
fn run_with_watchdog(tag: &str, cfg: RunConfig) -> Outcome {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| run_once(&cfg)));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(RUN_TIMEOUT) {
        Ok(Ok(m)) => Outcome::Completed(Box::new(m)),
        Ok(Err(payload)) => Outcome::Aborted(panic_message(payload)),
        Err(_) => panic!("chaos run {tag} hung past {RUN_TIMEOUT:?} — the no-hang guarantee broke"),
    }
}

/// One battery entry for the JSON artifact.
#[derive(Serialize)]
struct ChaosRecord {
    seed: u64,
    solver: String,
    outcome: &'static str,
    diagnostic: Option<String>,
    fault_report: Option<FaultReport>,
}

#[test]
fn chaos_battery_every_plan_terminates_with_stable_outcome() {
    let shape = PlanShape {
        ranks: RANKS,
        nodes: 2,
        n: N,
    };
    let mut records = Vec::new();
    let (mut completed, mut aborted) = (0usize, 0usize);
    for seed in 0..50u64 {
        for solver in [
            SolverChoice::ime_optimized(),
            SolverChoice::scalapack(),
            SolverChoice::cg(),
        ] {
            let plan = FaultPlan::seeded(seed, &shape);
            assert!(!plan.is_empty(), "seeded plans always inject something");
            let tag = format!("seed{seed}-{}", solver.label());
            match run_with_watchdog(&tag, chaos_cfg(solver, plan)) {
                Outcome::Completed(m) => {
                    completed += 1;
                    assert!(
                        m.residual < 1e-6,
                        "{tag}: silent wrong answer (residual {})",
                        m.residual
                    );
                    let rep = m
                        .fault_report
                        .clone()
                        .expect("a faulted run carries its fault report");
                    records.push(ChaosRecord {
                        seed,
                        solver: solver.label().into(),
                        outcome: "completed",
                        diagnostic: None,
                        fault_report: Some(rep),
                    });
                }
                Outcome::Aborted(msg) => {
                    aborted += 1;
                    assert!(
                        STABLE_DIAGNOSTICS.iter().any(|d| msg.contains(d)),
                        "{tag}: unstable abort diagnostic: {msg:?}"
                    );
                    records.push(ChaosRecord {
                        seed,
                        solver: solver.label().into(),
                        outcome: "aborted",
                        diagnostic: Some(msg),
                        fault_report: None,
                    });
                }
            }
        }
    }
    assert_eq!(completed + aborted, 150, "every plan terminated");
    // The seeded mix guarantees both fates appear: ~40% of plans carry a
    // fatal fault, the rest are recoverable.
    assert!(completed > 0, "some plans must recover");
    assert!(aborted > 0, "some plans must abort");
    // CG specifically must show both fates: recovery proves the halo
    // retry path, abort proves the stable-diagnostic contract above.
    for outcome in ["completed", "aborted"] {
        assert!(
            records
                .iter()
                .any(|r| r.solver == "CG" && r.outcome == outcome),
            "no CG plan {outcome}"
        );
    }
    if let Some(dir) = std::env::var_os("CHAOS_REPORT_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create chaos report dir");
        let text = serde_json::to_string_pretty(&records).expect("serialise chaos records");
        std::fs::write(dir.join("chaos_reports.json"), text + "\n").expect("write chaos records");
    }
}

#[test]
fn drop_burst_past_retry_budget_aborts_end_to_end() {
    let plan = FaultPlan {
        messages: vec![MsgFault {
            src: 0,
            nth_send: 0,
            kind: MsgFaultKind::Drop { count: 99 },
        }],
        ..FaultPlan::default()
    };
    match run_with_watchdog("drop-burst", chaos_cfg(SolverChoice::ime_optimized(), plan)) {
        Outcome::Completed(_) => panic!("an unrecoverable drop burst must abort"),
        Outcome::Aborted(msg) => assert!(
            STABLE_DIAGNOSTICS.iter().any(|d| msg.contains(d)),
            "unstable diagnostic: {msg:?}"
        ),
    }
}

#[test]
fn planned_crash_aborts_end_to_end() {
    for solver in [SolverChoice::ime_optimized(), SolverChoice::scalapack()] {
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                rank: 3,
                when: CrashWhen::AtCall { calls: 5 },
            }],
            ..FaultPlan::default()
        };
        match run_with_watchdog("crash", chaos_cfg(solver, plan)) {
            Outcome::Completed(_) => panic!("a planned crash must abort the run"),
            Outcome::Aborted(msg) => assert!(
                STABLE_DIAGNOSTICS.iter().any(|d| msg.contains(d)),
                "unstable diagnostic: {msg:?}"
            ),
        }
    }
}

#[test]
fn wrap_storm_completes_and_is_accounted() {
    // A wrap-storm inflates the counters without killing the reads: the
    // run completes, stays numerically correct, and the report counts one
    // counter fault.
    let plan = FaultPlan {
        counters: vec![CounterFault {
            node: 0,
            socket: 0,
            from_s: 0.0,
            kind: CounterFaultKind::WrapStorm { extra_w: 5.0e7 },
        }],
        ..FaultPlan::default()
    };
    match run_with_watchdog("wrap-storm", chaos_cfg(SolverChoice::ime_optimized(), plan)) {
        Outcome::Completed(m) => {
            assert!(m.residual < 1e-10, "residual {}", m.residual);
            let rep = m.fault_report.clone().expect("fault report present");
            assert_eq!(rep.injected.counter, 1, "{rep:?}");
            assert_eq!(rep.observed.counter, 1);
        }
        Outcome::Aborted(msg) => panic!("wrap storm must not abort: {msg}"),
    }
}

#[test]
fn malformed_collective_aborts_within_the_stable_set() {
    // A rank feeding a wrong-length buffer into a reduction is a program
    // bug, not an injected fault — but the abort contract is the same:
    // terminate with a diagnostic from the stable set.
    use greenla_cluster::placement::Placement;
    use greenla_cluster::spec::ClusterSpec;
    use greenla_cluster::PowerModel;
    use greenla_mpi::Machine;
    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::layout(&spec.node, 8, LoadLayout::FullLoad).unwrap();
    let m = Machine::new(spec, placement, PowerModel::deterministic(), 77).unwrap();
    let r = catch_unwind(AssertUnwindSafe(|| {
        m.run(|ctx| {
            let world = ctx.world();
            let len = if ctx.rank() == 3 { 5 } else { 4 };
            ctx.allreduce_sum_f64(&world, &vec![1.0; len]);
        })
    }));
    let msg = match r {
        Err(payload) => panic_message(payload),
        Ok(_) => panic!("mismatched reduce lengths must abort"),
    };
    assert!(
        STABLE_DIAGNOSTICS.iter().any(|d| msg.contains(d)),
        "unstable diagnostic: {msg:?}"
    );
    assert!(
        msg.contains("reduce length mismatch"),
        "diagnostic must name the contract breach: {msg:?}"
    );
}

#[test]
fn empty_plan_runs_bit_identical_to_no_plan() {
    // `Some(FaultPlan::default())` must not even arm the sink: the run is
    // bit-identical in virtual time to a plain run and carries no report.
    let base = chaos_cfg(SolverChoice::ime_optimized(), FaultPlan::default());
    let plain = RunConfig {
        faults: None,
        ..base.clone()
    };
    let a = run_once(&base);
    let b = run_once(&plain);
    assert!(
        a.fault_report.is_none(),
        "empty plan leaves faults disabled"
    );
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
    assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    assert_eq!(a.msgs, b.msgs);
    assert_eq!(a.volume_elems, b.volume_elems);
}
