//! The measurement campaign under the correctness checker: both solvers'
//! real MPI choreography must be violation-free, and attaching the checker
//! must not perturb a single bit of the measured timings or energies.

use greenla_cluster::placement::LoadLayout;
use greenla_harness::config::FunctionalGrid;
use greenla_harness::run::{run_once, Dataset, RunConfig};
use greenla_harness::SolverChoice;
use greenla_linalg::generate::SystemKind;

fn tiny_grid(check: bool) -> FunctionalGrid {
    FunctionalGrid {
        dims: vec![96],
        ranks: vec![16],
        layouts: vec![LoadLayout::FullLoad],
        reps: 1,
        check,
        ..FunctionalGrid::default()
    }
}

#[test]
fn checked_campaign_reports_zero_violations() {
    let ds = Dataset::campaign(&tiny_grid(true), |_| {});
    assert_eq!(ds.points.len(), 2, "IMe and ScaLAPACK");
    for p in &ds.points {
        assert!(
            p.violations.is_empty(),
            "{} must be protocol-clean: {:#?}",
            p.solver,
            p.violations
        );
    }
    assert_eq!(ds.violations().count(), 0);
}

#[test]
fn checking_does_not_perturb_measurements() {
    let cfg = |check: bool| RunConfig {
        n: 96,
        ranks: 16,
        layout: LoadLayout::FullLoad,
        solver: SolverChoice::ime_optimized(),
        system: SystemKind::DiagDominant,
        cores_per_socket: 4,
        seed: 5,
        check,
        faults: None,
        scheduler: Default::default(),
        batch: 1,
        cg_overlap: true,
    };
    let checked = run_once(&cfg(true));
    let plain = run_once(&cfg(false));
    assert!(checked.violations.is_empty());
    assert!(
        plain.violations.is_empty(),
        "sink disabled, nothing recorded"
    );
    assert_eq!(
        checked.duration_s.to_bits(),
        plain.duration_s.to_bits(),
        "checker must be a pure observer of the virtual clock"
    );
    assert_eq!(
        checked.total_energy_j.to_bits(),
        plain.total_energy_j.to_bits()
    );
    assert_eq!(checked.msgs, plain.msgs);
    assert_eq!(checked.volume_elems, plain.volume_elems);
}

#[test]
fn dataset_with_violations_round_trips_through_serde() {
    // Forward compatibility: datasets written before the checker existed
    // (no `violations` field) still deserialize.
    let ds = Dataset::campaign(&tiny_grid(false), |_| {});
    let json = serde_json::to_string(&ds).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.points.len(), ds.points.len());
    assert!(back.points.iter().all(|p| p.violations.is_empty()));
}
