//! Exporter contract tests: the Chrome Trace document of a tiny traced
//! solve is stable (golden), structurally well formed (monotone per-track
//! timestamps, matched B/E pairs, counter tracks present, monitoring
//! choreography visible), and tracing never perturbs virtual time.

use greenla_harness::chrome_trace::{traced_solve, untraced_makespan};
use greenla_harness::config::SolverChoice;
use serde_json::Value;

const N: usize = 64;
const RANKS: usize = 4;
const SEED: u64 = 11;

fn export() -> Value {
    traced_solve(SolverChoice::ime_optimized(), N, RANKS, SEED).trace
}

fn trace_events(doc: &Value) -> &[Value] {
    doc.get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
}

fn field_u64(e: &Value, key: &str) -> u64 {
    e.get(key).and_then(Value::as_u64).expect("u64 field")
}

#[test]
fn export_is_deterministic_golden() {
    let a = serde_json::to_string_pretty(&export()).unwrap();
    let b = serde_json::to_string_pretty(&export()).unwrap();
    assert_eq!(a, b, "same run must export byte-identical JSON");
    assert!(
        a.len() > 1000,
        "trace should be substantive: {} bytes",
        a.len()
    );
}

#[test]
fn per_track_timestamps_are_monotone() {
    let doc = export();
    let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
    let mut span_events = 0usize;
    for e in trace_events(&doc) {
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        if !matches!(ph, "B" | "E" | "i") {
            continue;
        }
        span_events += 1;
        let key = (field_u64(e, "pid"), field_u64(e, "tid"));
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        if let Some(&prev) = last.get(&key) {
            assert!(
                ts >= prev,
                "track {key:?}: ts went backwards ({prev} -> {ts})"
            );
        }
        last.insert(key, ts);
    }
    assert!(
        span_events > 50,
        "expected a rich trace, got {span_events} events"
    );
    assert_eq!(last.len(), RANKS, "one span track per rank");
}

#[test]
fn begin_end_pairs_match_per_track() {
    let doc = export();
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> = Default::default();
    for e in trace_events(&doc) {
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        let key = (
            e.get("pid").and_then(Value::as_u64).unwrap_or(0),
            e.get("tid").and_then(Value::as_u64).unwrap_or(0),
        );
        let name = e.get("name").and_then(Value::as_str).unwrap().to_string();
        match ph {
            "B" => stacks.entry(key).or_default().push(name),
            "E" => {
                let open = stacks
                    .entry(key)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("track {key:?}: E '{name}' with no open span"));
                assert_eq!(open, name, "track {key:?}: spans must nest (LIFO)");
            }
            _ => {}
        }
    }
    for (key, stack) in &stacks {
        assert!(stack.is_empty(), "track {key:?}: unclosed spans {stack:?}");
    }
}

#[test]
fn counter_tracks_are_present_and_energy_grows() {
    let doc = export();
    let energy: Vec<&Value> = trace_events(&doc)
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("C")
                && e.get("name").and_then(Value::as_str) == Some("energy (J)")
        })
        .collect();
    assert!(!energy.is_empty(), "energy counter track missing");
    let pkg: Vec<f64> = energy
        .iter()
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("pkg_j"))
                .and_then(Value::as_f64)
                .expect("pkg_j arg")
        })
        .collect();
    assert!(
        pkg.windows(2).all(|w| w[1] >= w[0]),
        "cumulative package energy must be non-decreasing"
    );
    assert!(*pkg.last().unwrap() > 0.0, "final energy must be positive");
    let tx = trace_events(&doc).iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("C")
            && e.get("name").and_then(Value::as_str) == Some("tx (bytes)")
    });
    assert!(tx, "traffic counter track missing");
}

#[test]
fn monitor_choreography_is_visible() {
    let doc = export();
    let events = trace_events(&doc);
    let count = |name: &str, ph: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some(name)
                    && e.get("ph").and_then(Value::as_str) == Some(ph)
            })
            .count()
    };
    // Every rank runs the protocol: begin / measured region / finish.
    assert_eq!(count("monitor_begin", "B"), RANKS);
    assert_eq!(count("measured_region", "B"), RANKS);
    assert_eq!(count("monitor_finish", "B"), RANKS);
    // One monitoring rank per node (4 ranks on one test node here).
    assert_eq!(count("start_monitoring", "i"), 1);
    assert_eq!(count("end_monitoring", "i"), 1);
    // Phase markers from the harness workload.
    assert_eq!(count("phase:allocation", "i"), RANKS);
    assert_eq!(count("phase:execution", "i"), RANKS);
    // Collectives show up as spans nested in the protocol.
    assert!(count("barrier", "B") >= 4 * RANKS, "barriers missing");
}

#[test]
fn overlapped_cg_trace_carries_the_halo_and_split_spmv_spans() {
    // The overlapped solver narrates each SpMV phase: post the halo,
    // compute interior rows while payloads fly, drain, finish boundary
    // rows. All four spans must reach the exporter on every rank, in
    // matched numbers — one quartet per halo exchange.
    let traced = traced_solve(SolverChoice::cg(), N, RANKS, SEED);
    let events = trace_events(&traced.trace);
    let begins = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some(name)
                    && e.get("ph").and_then(Value::as_str) == Some("B")
            })
            .count()
    };
    let posts = begins("halo_post");
    assert!(
        posts >= RANKS,
        "one halo_post per rank per exchange: {posts}"
    );
    assert_eq!(begins("spmv_interior"), posts);
    assert_eq!(begins("halo_wait"), posts);
    assert_eq!(begins("spmv_boundary"), posts);
    assert_eq!(
        posts % RANKS,
        0,
        "every rank exchanges the same number of times"
    );
}

#[test]
fn tracing_does_not_change_virtual_time() {
    let traced = traced_solve(SolverChoice::ime_optimized(), N, RANKS, SEED);
    let baseline = untraced_makespan(SolverChoice::ime_optimized(), N, RANKS, SEED);
    assert_eq!(
        traced.makespan_s.to_bits(),
        baseline.to_bits(),
        "tracing must be a pure observer of the virtual clocks"
    );
    assert!(traced.event_count > 0);
}
