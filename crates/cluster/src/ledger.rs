//! Per-core activity ledger.
//!
//! The simulated MPI runtime records, for every core, the virtual-time
//! intervals during which the core was busy computing or communicating, and
//! per-socket DRAM traffic events. The RAPL layer later integrates the power
//! model over these records to answer "energy consumed up to time *t*" —
//! which is exactly what the hardware's energy-status MSRs report.
//!
//! Each core is driven by exactly one rank thread, so per-core interval
//! vectors are `Mutex`-protected but effectively uncontended; the mutex only
//! arbitrates against concurrent *readers* (RAPL queries from monitoring
//! ranks on the same node).

use crate::spec::NodeSpec;
use crate::topology::CoreId;
use parking_lot::Mutex;

/// What a core was doing during a busy interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityKind {
    /// Floating-point work (charged via `compute`).
    Compute,
    /// Message progression, copies, or synchronisation spinning.
    Comm,
}

/// One busy interval of a core.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    pub start: f64,
    pub end: f64,
    pub kind: ActivityKind,
    /// Flops executed during the interval (zero for `Comm`).
    pub flops: u64,
}

/// One DRAM traffic event: `bytes` moved at virtual time `t` on a socket's
/// memory controller.
#[derive(Clone, Copy, Debug)]
pub struct DramEvent {
    pub t: f64,
    pub bytes: u64,
}

/// The cluster-wide activity record for one run.
pub struct Ledger {
    node_spec: NodeSpec,
    nodes: usize,
    /// `cores[node * cores_per_node + flat_core]`
    cores: Vec<Mutex<Vec<Interval>>>,
    /// `dram[node * sockets + socket]`
    dram: Vec<Mutex<Vec<DramEvent>>>,
}

impl Ledger {
    pub fn new(node_spec: NodeSpec, nodes: usize) -> Self {
        let cores = (0..nodes * node_spec.cores())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let dram = (0..nodes * node_spec.sockets)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Self {
            node_spec,
            nodes,
            cores,
            dram,
        }
    }

    pub fn node_spec(&self) -> &NodeSpec {
        &self.node_spec
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn core_slot(&self, core: CoreId) -> &Mutex<Vec<Interval>> {
        let idx = core.node * self.node_spec.cores() + core.flat_in_node(&self.node_spec);
        &self.cores[idx]
    }

    fn dram_slot(&self, node: usize, socket: usize) -> &Mutex<Vec<DramEvent>> {
        &self.dram[node * self.node_spec.sockets + socket]
    }

    /// Record a busy interval on a core. Intervals of one core must be
    /// appended in non-decreasing start order (each rank owns one core and
    /// its clock only moves forward).
    pub fn record(&self, core: CoreId, interval: Interval) {
        assert!(
            interval.end >= interval.start,
            "interval ends before it starts: {interval:?}"
        );
        let mut v = self.core_slot(core).lock();
        if let Some(last) = v.last() {
            assert!(
                interval.start >= last.start - 1e-12,
                "non-monotonic interval on {core:?}: {interval:?} after {last:?}"
            );
        }
        v.push(interval);
    }

    /// Record DRAM traffic on a node's socket.
    pub fn record_dram(&self, node: usize, socket: usize, t: f64, bytes: u64) {
        self.dram_slot(node, socket)
            .lock()
            .push(DramEvent { t, bytes });
    }

    /// Seconds core `core` spent in activity `kind` up to virtual time `t`.
    pub fn core_busy_until(&self, core: CoreId, kind: ActivityKind, t: f64) -> f64 {
        self.core_slot(core)
            .lock()
            .iter()
            .filter(|iv| iv.kind == kind && iv.start < t)
            .map(|iv| iv.end.min(t) - iv.start)
            .sum()
    }

    /// Total busy seconds in `kind`, summed over every core of `(node,
    /// socket)`, up to time `t`.
    pub fn socket_busy_until(&self, node: usize, socket: usize, kind: ActivityKind, t: f64) -> f64 {
        (0..self.node_spec.cpu.cores_per_socket)
            .map(|c| self.core_busy_until(CoreId::new(node, socket, c), kind, t))
            .sum()
    }

    /// DRAM bytes moved on `(node, socket)` up to time `t`.
    pub fn dram_bytes_until(&self, node: usize, socket: usize, t: f64) -> u64 {
        self.dram_slot(node, socket)
            .lock()
            .iter()
            .filter(|e| e.t <= t)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total flops charged on `(node, socket)` up to time `t` (by interval
    /// start time).
    pub fn socket_flops_until(&self, node: usize, socket: usize, t: f64) -> u64 {
        (0..self.node_spec.cpu.cores_per_socket)
            .map(|c| {
                self.core_slot(CoreId::new(node, socket, c))
                    .lock()
                    .iter()
                    .filter(|iv| iv.start < t)
                    .map(|iv| iv.flops)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Total flops across the whole run.
    pub fn total_flops(&self) -> u64 {
        self.cores
            .iter()
            .map(|m| m.lock().iter().map(|iv| iv.flops).sum::<u64>())
            .sum()
    }

    /// Latest interval end across the cluster (the run's virtual makespan so
    /// far).
    pub fn max_time(&self) -> f64 {
        self.cores
            .iter()
            .map(|m| m.lock().last().map_or(0.0, |iv| iv.end))
            .fold(0.0, f64::max)
    }

    /// Did any rank run on this socket? (Used to verify idle-socket layouts.)
    pub fn socket_touched(&self, node: usize, socket: usize) -> bool {
        (0..self.node_spec.cpu.cores_per_socket).any(|c| {
            !self
                .core_slot(CoreId::new(node, socket, c))
                .lock()
                .is_empty()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn ledger() -> Ledger {
        Ledger::new(NodeSpec::test_node(4), 2)
    }

    fn iv(start: f64, end: f64, kind: ActivityKind, flops: u64) -> Interval {
        Interval {
            start,
            end,
            kind,
            flops,
        }
    }

    #[test]
    fn busy_time_accumulates_and_clips() {
        let l = ledger();
        let c = CoreId::new(0, 0, 0);
        l.record(c, iv(0.0, 1.0, ActivityKind::Compute, 100));
        l.record(c, iv(2.0, 4.0, ActivityKind::Compute, 200));
        assert_eq!(l.core_busy_until(c, ActivityKind::Compute, 10.0), 3.0);
        // Clip at t = 3.0: first interval full, second half.
        assert_eq!(l.core_busy_until(c, ActivityKind::Compute, 3.0), 2.0);
        // Before anything started.
        assert_eq!(l.core_busy_until(c, ActivityKind::Compute, 0.0), 0.0);
    }

    #[test]
    fn kinds_are_separated() {
        let l = ledger();
        let c = CoreId::new(0, 1, 2);
        l.record(c, iv(0.0, 1.0, ActivityKind::Comm, 0));
        assert_eq!(l.core_busy_until(c, ActivityKind::Compute, 2.0), 0.0);
        assert_eq!(l.core_busy_until(c, ActivityKind::Comm, 2.0), 1.0);
    }

    #[test]
    fn socket_aggregation() {
        let l = ledger();
        l.record(
            CoreId::new(1, 0, 0),
            iv(0.0, 1.0, ActivityKind::Compute, 10),
        );
        l.record(
            CoreId::new(1, 0, 3),
            iv(0.0, 2.0, ActivityKind::Compute, 20),
        );
        l.record(
            CoreId::new(1, 1, 0),
            iv(0.0, 5.0, ActivityKind::Compute, 40),
        );
        assert_eq!(l.socket_busy_until(1, 0, ActivityKind::Compute, 10.0), 3.0);
        assert_eq!(l.socket_flops_until(1, 0, 10.0), 30);
        assert_eq!(l.total_flops(), 70);
    }

    #[test]
    fn dram_accounting() {
        let l = ledger();
        l.record_dram(0, 0, 0.5, 1000);
        l.record_dram(0, 0, 1.5, 500);
        l.record_dram(0, 1, 0.1, 42);
        assert_eq!(l.dram_bytes_until(0, 0, 1.0), 1000);
        assert_eq!(l.dram_bytes_until(0, 0, 2.0), 1500);
        assert_eq!(l.dram_bytes_until(0, 1, 2.0), 42);
    }

    #[test]
    fn max_time_tracks_latest_end() {
        let l = ledger();
        assert_eq!(l.max_time(), 0.0);
        l.record(CoreId::new(0, 0, 1), iv(0.0, 3.5, ActivityKind::Compute, 1));
        l.record(CoreId::new(1, 1, 0), iv(0.0, 7.25, ActivityKind::Comm, 0));
        assert_eq!(l.max_time(), 7.25);
    }

    #[test]
    fn socket_touched_detects_idle_socket() {
        let l = ledger();
        l.record(CoreId::new(0, 0, 0), iv(0.0, 1.0, ActivityKind::Compute, 1));
        assert!(l.socket_touched(0, 0));
        assert!(!l.socket_touched(0, 1));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn rejects_backwards_interval() {
        let l = ledger();
        l.record(CoreId::new(0, 0, 0), iv(1.0, 0.5, ActivityKind::Compute, 0));
    }

    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn rejects_out_of_order_intervals() {
        let l = ledger();
        let c = CoreId::new(0, 0, 0);
        l.record(c, iv(5.0, 6.0, ActivityKind::Compute, 0));
        l.record(c, iv(1.0, 2.0, ActivityKind::Compute, 0));
    }
}
