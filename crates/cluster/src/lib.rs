#![forbid(unsafe_code)]
//! # greenla-cluster
//!
//! Simulated HPC hardware model: CPU/node/interconnect specifications (with
//! a CINECA Marconi A3 preset matching the paper's testbed), Slurm-like rank
//! placement generating exactly the paper's Table 1 configurations, the
//! power model that drives the simulated RAPL counters, and the activity
//! ledger in which the simulated MPI runtime records what every core did at
//! every instant of virtual time.
//!
//! Layering: `greenla-mpi` *writes* the ledger while ranks execute;
//! `greenla-rapl` *reads* it to expose energy counters; this crate owns the
//! shared vocabulary so neither needs to know about the other.

pub mod jitter;
pub mod ledger;
pub mod placement;
pub mod power;
pub mod slurm;
pub mod spec;
pub mod topology;

pub use ledger::{ActivityKind, Ledger};
pub use placement::{LoadLayout, Placement};
pub use power::PowerModel;
pub use spec::{ClusterSpec, CpuSpec, Interconnect, NodeSpec};
pub use topology::CoreId;
